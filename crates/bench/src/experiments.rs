//! Regeneration functions for Tables I–V and the ablations.

use cloud::{FaultConfig, Fleet, ReplicationPolicy};
use rayon::prelude::*;
use reassign::{learn, learn_parallel, LearnOutcome, ReassignConfig};
use sched::heft_plan;
use scirun::{ExecConfig, ExecutionEngine};
use wfcommon::{SimTime, VmId};
use wfsim::{FaultStats, FluctuationKind, Plan, SimConfig};
use workflow::montage50::montage50;
use workflow::{Workflow, WorkflowCache};

/// The parameter grid of the paper's sweep: α, γ, ε ∈ {0.1, 0.5, 1.0}.
pub const GRID: [f64; 3] = [0.1, 0.5, 1.0];

/// Network bandwidth used across all experiments (1 Gbps).
pub const BANDWIDTH: f64 = 125.0e6;

/// Number of learning episodes (the paper uses 100). Override through
/// [`SweepSettings::episodes`] for quick runs.
pub const PAPER_EPISODES: u32 = 100;

/// Settings for the parameter sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepSettings {
    /// Episodes per configuration (paper: 100).
    pub episodes: u32,
    /// Master seed.
    pub seed: u64,
    /// Simulator configuration knobs applied to learning episodes.
    pub fluctuation: FluctuationKind,
    /// Parallel exploration rollouts per learning round (1 = the exact
    /// serial algorithm; see `reassign::parallel`).
    pub rollouts: u32,
}

impl Default for SweepSettings {
    fn default() -> Self {
        Self {
            episodes: PAPER_EPISODES,
            seed: 2019,
            fluctuation: FluctuationKind::Mild,
            rollouts: 1,
        }
    }
}

impl SweepSettings {
    /// Quick settings for tests/benches (few episodes).
    pub fn quick(episodes: u32) -> Self {
        Self { episodes, ..Self::default() }
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig { fluctuation: self.fluctuation, ..SimConfig::default() }
    }
}

/// One row of Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// Total VMs.
    pub vms: usize,
    /// t2.micro count.
    pub micro: usize,
    /// t2.2xlarge count.
    pub large: usize,
    /// Total vCPUs.
    pub vcpus: u32,
}

/// Table I: the three fleet configurations.
pub fn table1() -> Vec<Table1Row> {
    Fleet::paper_fleets()
        .into_iter()
        .map(|(vcpus, fleet)| {
            let micro = fleet.iter().filter(|(_, vm)| vm.vm_type.name == "t2.micro").count();
            Table1Row { vms: fleet.len(), micro, large: fleet.len() - micro, vcpus }
        })
        .collect()
}

/// One row of Tables II/III: a parameter combination with one value per
/// fleet (16/32/64 vCPUs).
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Learning rate α.
    pub alpha: f64,
    /// Discount γ.
    pub gamma: f64,
    /// Exploitation probability ε.
    pub epsilon: f64,
    /// Value per fleet, in Table I order (16, 32, 64 vCPUs).
    pub per_fleet: [f64; 3],
}

/// Result of the full 27×3 sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Table II: learning wall-clock seconds.
    pub learning_secs: Vec<SweepRow>,
    /// Table III: simulated makespan of the learned (greedy) plan.
    pub simulated_makespans: Vec<SweepRow>,
    /// The learned plans, keyed by (α, γ, ε, fleet index).
    pub plans: Vec<(f64, f64, f64, usize, Plan)>,
}

/// Run the paper's 81-execution sweep (27 parameter combinations × 3
/// fleets). Parallelized over configurations with rayon.
pub fn sweep(settings: &SweepSettings) -> SweepResult {
    let wf = montage50();
    let fleets = Fleet::paper_fleets();
    let combos: Vec<(f64, f64, f64)> = GRID
        .iter()
        .flat_map(|&a| GRID.iter().flat_map(move |&g| GRID.iter().map(move |&e| (a, g, e))))
        .collect();

    type ComboResult = (f64, f64, f64, Vec<(usize, LearnOutcome)>);
    let sim_config = settings.sim_config();
    let results: Vec<ComboResult> = combos
        .par_iter()
        .map(|&(alpha, gamma, epsilon)| {
            let per_fleet: Vec<(usize, LearnOutcome)> = fleets
                .iter()
                .enumerate()
                .map(|(fi, (vcpus, fleet))| {
                    let config = ReassignConfig {
                        episodes: settings.episodes,
                        seed: settings.seed,
                        ..ReassignConfig::sweep_point(alpha, gamma, epsilon)
                    };
                    let label = format!("{vcpus}vcpus");
                    let out = if settings.rollouts > 1 {
                        learn_parallel(
                            &wf,
                            fleet,
                            &label,
                            &config,
                            &sim_config,
                            settings.rollouts,
                            None,
                        )
                    } else {
                        learn(&wf, fleet, &label, &config, &sim_config, None)
                    }
                    .expect("sweep learning run failed");
                    (fi, out)
                })
                .collect();
            (alpha, gamma, epsilon, per_fleet)
        })
        .collect();

    let mut learning_secs = Vec::with_capacity(combos.len());
    let mut simulated = Vec::with_capacity(combos.len());
    let mut plans = Vec::new();
    for (alpha, gamma, epsilon, per_fleet) in results {
        let mut lt = [0.0; 3];
        let mut ms = [0.0; 3];
        for (fi, out) in per_fleet {
            lt[fi] = out.learning_wall_secs;
            ms[fi] = out.greedy_makespan.as_secs();
            plans.push((alpha, gamma, epsilon, fi, out.greedy_plan));
        }
        learning_secs.push(SweepRow { alpha, gamma, epsilon, per_fleet: lt });
        simulated.push(SweepRow { alpha, gamma, epsilon, per_fleet: ms });
    }
    SweepResult { learning_secs, simulated_makespans: simulated, plans }
}

/// Wall-clock seconds of an `exp_table2`-equivalent learning pass run
/// **sequentially over the 27 parameter combinations × the three paper
/// fleets**, with the per-round rollout fan-out as the only parallelism.
/// This isolates the speedup of `reassign::learn_parallel` itself —
/// unlike [`sweep`], which already parallelizes across combinations.
pub fn learning_wall_clock(episodes: u32, rollouts: u32, seed: u64) -> f64 {
    let wf = montage50();
    let fleets = Fleet::paper_fleets();
    let sim_config = SimConfig::default();
    let started = std::time::Instant::now();
    for &alpha in &GRID {
        for &gamma in &GRID {
            for &epsilon in &GRID {
                for (vcpus, fleet) in &fleets {
                    let label = format!("{vcpus}vcpus");
                    let config = ReassignConfig {
                        episodes,
                        seed,
                        ..ReassignConfig::sweep_point(alpha, gamma, epsilon)
                    };
                    let out = if rollouts > 1 {
                        learn_parallel(&wf, fleet, &label, &config, &sim_config, rollouts, None)
                    } else {
                        learn(&wf, fleet, &label, &config, &sim_config, None)
                    }
                    .expect("timed learning run failed");
                    assert_eq!(out.episodes.len(), episodes as usize);
                }
            }
        }
    }
    started.elapsed().as_secs_f64()
}

/// One row of Table IV.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Scheduler name (`HEFT` or `ReASSIgN`).
    pub algorithm: String,
    /// Fleet size in vCPUs.
    pub vcpus: u32,
    /// α/γ/ε (None for HEFT).
    pub params: Option<(f64, f64, f64)>,
    /// "Actual" execution time on the threaded engine, virtual seconds.
    pub total_secs: SimTime,
}

/// Table IV: emulated "real cloud" execution of HEFT vs ReASSIgN
/// (γ = 1.0, ε = 0.1, α ∈ {0.1, 0.5, 1.0}) on the three fleets.
///
/// `episodes` controls learning depth; `compression` the emulator
/// time-compression (higher = faster tests, noisier measurements).
pub fn table4(episodes: u32, compression: f64, seed: u64) -> Vec<Table4Row> {
    table4_with_jitter(episodes, compression, seed, 0.08)
}

/// Number of threaded-engine repetitions averaged per Table IV row
/// (the emulator carries real OS-scheduling noise on top of the seeded
/// jitter, so single runs are not stable to the second).
pub const TABLE4_REPS: u32 = 5;

/// [`table4`] with an explicit emulator jitter coefficient (the t2
/// burstable family exhibits high runtime variability; 0.08 is the
/// default calibration, `exp_noise` sweeps it).
pub fn table4_with_jitter(
    episodes: u32,
    compression: f64,
    seed: u64,
    jitter_cv: f64,
) -> Vec<Table4Row> {
    let wf = montage50();
    let mut rows = Vec::new();
    for (vcpus, fleet) in Fleet::paper_fleets() {
        let exec = ExecutionEngine::new(
            fleet.clone(),
            ExecConfig { time_compression: compression, jitter_cv, seed, ..ExecConfig::default() },
        )
        .expect("engine config valid");

        let mean_makespan = |plan: &Plan| -> SimTime {
            let total: f64 = (0..TABLE4_REPS)
                .map(|_| exec.execute(&wf, plan).expect("execution").makespan.as_secs())
                .sum();
            SimTime(total / TABLE4_REPS as f64)
        };

        // HEFT baseline.
        let heft = heft_plan(&wf, &fleet, BANDWIDTH).expect("heft plan");
        rows.push(Table4Row {
            algorithm: "HEFT".into(),
            vcpus,
            params: None,
            total_secs: mean_makespan(&heft.plan),
        });

        // ReASSIgN at the paper's three highlighted configurations.
        for &alpha in &GRID {
            let config =
                ReassignConfig { episodes, seed, ..ReassignConfig::sweep_point(alpha, 1.0, 0.1) };
            let out =
                learn(&wf, &fleet, &format!("{vcpus}vcpus"), &config, &SimConfig::default(), None)
                    .expect("learning run");
            // Deploy the best plan the learning stage produced — the
            // paper's pipeline submits WorkflowSim's final scheduling
            // plan to SciCumulus, i.e. the best schedule the episodes
            // discovered, not a fresh greedy rollout.
            rows.push(Table4Row {
                algorithm: "ReASSIgN".into(),
                vcpus,
                params: Some((alpha, 1.0, 0.1)),
                total_secs: mean_makespan(&out.best_episode_plan),
            });
        }
    }
    // The paper sorts each vCPU block by total time.
    rows.sort_by(|a, b| a.vcpus.cmp(&b.vcpus).then(a.total_secs.cmp(&b.total_secs)));
    rows
}

/// Table V: per-activation VM assignments on the 16-vCPU fleet for
/// HEFT and the three ReASSIgN configurations C1 (α=1.0), C2 (α=0.5),
/// C3 (α=0.1), all with γ=1.0, ε=0.1.
pub struct Table5 {
    /// HEFT's plan.
    pub heft: Plan,
    /// ReASSIgN plans for α = 1.0, 0.5, 0.1 (C1, C2, C3).
    pub reassign: [Plan; 3],
    /// The workflow the plans cover.
    pub workflow: Workflow,
}

/// Compute Table V.
pub fn table5(episodes: u32, seed: u64) -> Table5 {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let heft = heft_plan(&wf, &fleet, BANDWIDTH).expect("heft plan").plan;
    let alphas = [1.0, 0.5, 0.1];
    let mut plans: Vec<Plan> = alphas
        .par_iter()
        .map(|&alpha| {
            let config =
                ReassignConfig { episodes, seed, ..ReassignConfig::sweep_point(alpha, 1.0, 0.1) };
            learn(&wf, &fleet, "16vcpus", &config, &SimConfig::default(), None)
                .expect("learning run")
                .greedy_plan
        })
        .collect();
    let c3 = plans.pop().unwrap();
    let c2 = plans.pop().unwrap();
    let c1 = plans.pop().unwrap();
    Table5 { heft, reassign: [c1, c2, c3], workflow: wf }
}

/// Baseline comparison (beyond the paper): deterministic simulated
/// makespan of every scheduler on one fleet.
pub fn baseline_comparison(fleet: &Fleet, episodes: u32, seed: u64) -> Vec<(String, f64)> {
    let wf = montage50();
    let cfg = SimConfig::deterministic();
    let seeds = wfcommon::SeedDerivation::new(seed);
    let mut rows: Vec<(String, f64)> = Vec::new();

    let mut run = |name: &str, s: &mut dyn wfsim::Scheduler| {
        let res = wfsim::simulate(&wf, fleet, s, &cfg, seeds, None).expect(name);
        rows.push((name.to_string(), res.makespan.as_secs()));
    };
    run("fifo", &mut sched::Fifo);
    run("round-robin", &mut sched::RoundRobin::default());
    run("random", &mut sched::Random::new(seeds));
    run("olb", &mut sched::Olb::default());
    run("mct", &mut sched::Mct);
    run("min-min", &mut sched::MinMin);
    run("max-min", &mut sched::MaxMin);
    run("data-aware", &mut sched::DataAware::default());

    let heft = heft_plan(&wf, fleet, BANDWIDTH).expect("heft");
    let mut replay = wfsim::FixedPlanScheduler::new(heft.plan);
    let res = wfsim::simulate(&wf, fleet, &mut replay, &cfg, seeds, None).expect("heft");
    rows.push(("heft".into(), res.makespan.as_secs()));

    let peft = sched::peft_plan(&wf, fleet, BANDWIDTH).expect("peft");
    let mut replay = wfsim::FixedPlanScheduler::new(peft.plan);
    let res = wfsim::simulate(&wf, fleet, &mut replay, &cfg, seeds, None).expect("peft");
    rows.push(("peft".into(), res.makespan.as_secs()));

    let cpop = sched::cpop_plan(&wf, fleet, BANDWIDTH).expect("cpop");
    let mut replay = wfsim::FixedPlanScheduler::new(cpop.plan);
    let res = wfsim::simulate(&wf, fleet, &mut replay, &cfg, seeds, None).expect("cpop");
    rows.push(("cpop".into(), res.makespan.as_secs()));

    let config = ReassignConfig { episodes, seed, ..ReassignConfig::default() };
    let out = learn(&wf, fleet, "cmp", &config, &cfg, None).expect("reassign");
    rows.push(("reassign".into(), out.greedy_makespan.as_secs()));

    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    rows
}

/// One row of the fault-degradation experiment (`exp_faults`): HEFT's
/// nominal plan vs the plan ReASSIgN learned *inside* the faulty
/// environment, both replayed deterministically under the same
/// pre-sampled fault schedule.
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// Scenario name (fault-profile label).
    pub scenario: String,
    /// HEFT makespan under the fault schedule, seconds.
    pub heft_makespan_secs: f64,
    /// Whether the HEFT replay completed within the retry budget.
    pub heft_success: bool,
    /// Fault/recovery counters of the HEFT replay.
    pub heft_faults: FaultStats,
    /// ReASSIgN best-episode-plan makespan under the same schedule.
    pub reassign_makespan_secs: f64,
    /// Whether the ReASSIgN replay completed.
    pub reassign_success: bool,
    /// Fault/recovery counters of the ReASSIgN replay.
    pub reassign_faults: FaultStats,
}

/// The fault scenarios `exp_faults` sweeps, mildest first.
pub fn fault_scenarios() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("none", FaultConfig::none()),
        ("mild", FaultConfig::mild()),
        ("heavy", FaultConfig::heavy()),
    ]
}

/// Makespan degradation under increasing fault rates: HEFT plans from
/// nominal estimates and eats every crash; ReASSIgN learns with the
/// fault model active (and a failure penalty on the reward), so it can
/// route work away from crash-prone placements.
pub fn fault_degradation(episodes: u32, seed: u64) -> Vec<FaultRow> {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let heft = heft_plan(&wf, &fleet, BANDWIDTH).expect("heft plan").plan;
    fault_scenarios()
        .into_iter()
        .map(|(scenario, faults)| {
            let cfg = SimConfig { faults, max_retries: 10, ..SimConfig::deterministic() };
            let replay = |plan: &Plan| {
                let mut s = wfsim::FixedPlanScheduler::new(plan.clone());
                wfsim::simulate(
                    &wf,
                    &fleet,
                    &mut s,
                    &cfg,
                    wfcommon::SeedDerivation::new(seed),
                    None,
                )
                .expect("fault replay")
            };
            let h = replay(&heft);
            let config = ReassignConfig {
                episodes,
                seed,
                failure_penalty: 10.0,
                ..ReassignConfig::default()
            };
            let out = learn(&wf, &fleet, "faults", &config, &cfg, None).expect("fault learn");
            let r = replay(&out.best_episode_plan);
            FaultRow {
                scenario: scenario.into(),
                heft_makespan_secs: h.makespan.as_secs(),
                heft_success: h.success,
                heft_faults: h.fault_stats,
                reassign_makespan_secs: r.makespan.as_secs(),
                reassign_success: r.success,
                reassign_faults: r.fault_stats,
            }
        })
        .collect()
}

/// Deterministic fault probe for the regression gate: the Montage-50
/// HEFT plan replayed once at a fixed seed under a profile hot enough
/// that every recovery path fires at probe scale — transient failures
/// (retries) plus crashes with repair (reschedules, recoveries), no
/// blacklisting (a pinned plan cannot re-route around a dead VM).
/// Returns `(makespan_secs, retries + reschedules, recoveries)` — all
/// pure functions of the seed, so the gate pins them exactly.
pub fn fault_probe(seed: u64) -> (f64, u64, u64) {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let heft = heft_plan(&wf, &fleet, BANDWIDTH).expect("heft plan").plan;
    let cfg = SimConfig {
        failure_prob: 0.05,
        max_retries: 10,
        faults: FaultConfig {
            vm_mtbf_hours: 0.05,
            repair_secs: 15.0,
            straggler_prob: 0.1,
            straggler_factor: 2.0,
            backoff_base_secs: 1.0,
            ..FaultConfig::none()
        },
        ..SimConfig::deterministic()
    };
    let mut s = wfsim::FixedPlanScheduler::new(heft);
    let res = wfsim::simulate(&wf, &fleet, &mut s, &cfg, wfcommon::SeedDerivation::new(seed), None)
        .expect("fault probe replay");
    assert!(res.success, "fault probe must complete within the retry budget");
    let f = &res.fault_stats;
    (res.makespan.as_secs(), f.retries + f.reschedules, f.recoveries)
}

/// Simulator event throughput probe: replay the seeded HEFT plan over
/// the 16-vCPU fleet in a tight loop for at least `min_wall_secs`,
/// reusing one [`wfsim::SimArena`] so the figure measures the event
/// loop rather than allocator churn, and report processed events per
/// wall-clock second. Feeds the ratcheted `bench.sim_events_per_sec`
/// floor in the regression gate.
pub fn sim_event_throughput(seed: u64, min_wall_secs: f64) -> f64 {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let heft = heft_plan(&wf, &fleet, BANDWIDTH).expect("heft plan").plan;
    let cfg = SimConfig::deterministic();
    let cache = WorkflowCache::new(&wf).expect("workflow cache");
    let mut arena = wfsim::SimArena::new();
    let mut events = 0u64;
    let mut replays = 0u64;
    let started = std::time::Instant::now();
    loop {
        let mut s = wfsim::FixedPlanScheduler::new(heft.clone());
        let res = wfsim::simulate_cached(
            &wf,
            &cache,
            &fleet,
            &mut s,
            &cfg,
            wfcommon::SeedDerivation::new(seed),
            None,
            &mut arena,
        )
        .expect("throughput probe replay");
        events += res.events_processed;
        replays += 1;
        // Replays are identical by construction; a minimum of two
        // proves the arena reuse path is the one being timed.
        if replays >= 2 && started.elapsed().as_secs_f64() >= min_wall_secs {
            break;
        }
    }
    events as f64 / started.elapsed().as_secs_f64()
}

/// Load share of the 2xlarge VM (vm 8 on the 16-vCPU fleet) under a
/// plan — the paper's Table V observation is that ReASSIgN concentrates
/// work on the robust VM.
pub fn big_vm_share(plan: &Plan) -> f64 {
    let total = plan.iter().count();
    if total == 0 {
        return 0.0;
    }
    let big = plan.iter().filter(|&(_, vm)| vm == VmId::new(8)).count();
    big as f64 / total as f64
}

/// One policy arm of the speculative-replication experiment
/// (`exp_replication`): the heavy-chaos makespan distribution plus the
/// hedging bill.
#[derive(Clone, Debug)]
pub struct ReplRow {
    /// Policy label (`off` | `static:2` | `learned`).
    pub policy: String,
    /// Per-seed makespans of the successful runs, in seed order.
    pub makespans_secs: Vec<f64>,
    /// Mean of `makespans_secs` (0 when every run failed).
    pub mean_makespan_secs: f64,
    /// 95th-percentile makespan (0 when every run failed).
    pub p95_makespan_secs: f64,
    /// Replica attempts launched across all seeds.
    pub launched: u64,
    /// Replica/primary attempts cancelled after a sibling won.
    pub cancelled: u64,
    /// Replication groups won by a replica rather than the primary.
    pub replica_wins: u64,
    /// PE-seconds billed to cancelled attempts (the hedging bill).
    pub waste_secs: f64,
    /// Seeds whose run exhausted the retry budget.
    pub failures: u64,
}

/// Train the replication head on Montage-50 under the heavy fault
/// profile: ReASSIgN learning with the learned policy active, so every
/// episode refines the extra-replica table through the
/// `failure_penalty` reward hook.
pub fn trained_replication_head(episodes: u32, seed: u64) -> ReplicationPolicy {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let sim_cfg = SimConfig {
        faults: FaultConfig::heavy(),
        max_retries: 30,
        replication: ReplicationPolicy::learned_heuristic(),
        ..SimConfig::default()
    };
    let config =
        ReassignConfig { episodes, seed, failure_penalty: 10.0, ..ReassignConfig::default() };
    let out = learn(&wf, &fleet, "repl", &config, &sim_cfg, None).expect("replication training");
    out.repl_policy.unwrap_or_else(ReplicationPolicy::learned_heuristic)
}

/// The three arms `exp_replication` compares: no hedging, blanket
/// static duplication, and the trained head.
pub fn replication_arms(episodes: u32, seed: u64) -> Vec<(String, ReplicationPolicy)> {
    vec![
        ("off".into(), ReplicationPolicy::Off),
        ("static:2".into(), ReplicationPolicy::Static { k: 2 }),
        ("learned".into(), trained_replication_head(episodes, seed)),
    ]
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Makespan distribution under the heavy fault profile, one arm per
/// policy: Montage-50 scheduled dynamically by MCT (so blacklisting
/// re-routes instead of wedging a pinned plan), replayed once per
/// seed. Pure in `(arms, seeds)` — the gate pins the counters exactly.
pub fn replication_cdf(arms: &[(String, ReplicationPolicy)], seeds: &[u64]) -> Vec<ReplRow> {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    arms.iter()
        .map(|(name, policy)| {
            let cfg = SimConfig {
                faults: FaultConfig::heavy(),
                max_retries: 30,
                replication: policy.clone(),
                ..SimConfig::default()
            };
            let mut makespans = Vec::with_capacity(seeds.len());
            let (mut launched, mut cancelled, mut wins) = (0u64, 0u64, 0u64);
            let mut waste_secs = 0.0f64;
            let mut failures = 0u64;
            for &seed in seeds {
                let mut s = sched::Mct;
                let res = wfsim::simulate(
                    &wf,
                    &fleet,
                    &mut s,
                    &cfg,
                    wfcommon::SeedDerivation::new(seed),
                    None,
                )
                .expect("replication replay");
                if res.success {
                    makespans.push(res.makespan.as_secs());
                } else {
                    failures += 1;
                }
                launched += res.repl_stats.launched;
                cancelled += res.repl_stats.cancelled;
                wins += res.repl_stats.replica_wins;
                waste_secs += res.repl_stats.waste_secs;
            }
            let mut sorted = makespans.clone();
            sorted.sort_by(f64::total_cmp);
            let mean = if makespans.is_empty() {
                0.0
            } else {
                makespans.iter().sum::<f64>() / makespans.len() as f64
            };
            ReplRow {
                policy: name.clone(),
                makespans_secs: makespans,
                mean_makespan_secs: mean,
                p95_makespan_secs: percentile(&sorted, 0.95),
                launched,
                cancelled,
                replica_wins: wins,
                waste_secs,
                failures,
            }
        })
        .collect()
}

/// Deterministic replication probe for the regression gate: the
/// static-2 arm of [`replication_cdf`] over a pinned seed set. The
/// launch/cancel/win counters are pure functions of the seeds and pin
/// exactly; the p95 makespan rides along as an advisory metric.
pub fn replication_probe() -> (u64, u64, u64, f64) {
    let seeds: Vec<u64> = (0..8).map(|i| 2019 + i).collect();
    let arms = vec![("static:2".to_string(), ReplicationPolicy::Static { k: 2 })];
    let rows = replication_cdf(&arms, &seeds);
    let r = &rows[0];
    assert_eq!(r.failures, 0, "probe runs must complete within the retry budget");
    (r.launched, r.cancelled, r.replica_wins, r.p95_makespan_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_cdf_hedges_and_stays_deterministic() {
        let arms = vec![
            ("off".to_string(), ReplicationPolicy::Off),
            ("static:2".to_string(), ReplicationPolicy::Static { k: 2 }),
        ];
        let seeds = [2019u64, 2020];
        let a = replication_cdf(&arms, &seeds);
        let b = replication_cdf(&arms, &seeds);
        assert_eq!(a[0].launched, 0, "off must not hedge");
        assert_eq!(a[0].replica_wins, 0);
        assert!(a[1].launched > 0, "static-2 must hedge");
        assert!(a[1].cancelled <= a[1].launched + seeds.len() as u64 * 50);
        assert_eq!(a[1].launched, b[1].launched, "counters must be pure in the seeds");
        assert_eq!(a[1].cancelled, b[1].cancelled);
        assert_eq!(a[1].makespans_secs, b[1].makespans_secs);
        for r in &a {
            assert_eq!(r.failures, 0, "{}: heavy profile must stay within 30 retries", r.policy);
            assert!(r.p95_makespan_secs >= r.mean_makespan_secs * 0.5);
        }
    }

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 3);
        assert_eq!((t[0].vms, t[0].micro, t[0].large, t[0].vcpus), (9, 8, 1, 16));
        assert_eq!((t[1].vms, t[1].micro, t[1].large, t[1].vcpus), (11, 8, 3, 32));
        assert_eq!((t[2].vms, t[2].micro, t[2].large, t[2].vcpus), (15, 8, 7, 64));
    }

    #[test]
    fn quick_sweep_has_27_rows() {
        let result = sweep(&SweepSettings::quick(2));
        assert_eq!(result.learning_secs.len(), 27);
        assert_eq!(result.simulated_makespans.len(), 27);
        assert_eq!(result.plans.len(), 81);
        for row in &result.simulated_makespans {
            for v in row.per_fleet {
                assert!(v > 0.0, "makespan must be positive");
            }
        }
    }

    #[test]
    fn sweep_with_rollouts_matches_serial_sweep() {
        // rollouts = 1 routes through the serial learner; any K keeps
        // the sweep deterministic, and K = 1 parallel ≡ serial bitwise,
        // so the quick sweep's makespans must be reproducible here.
        let serial = sweep(&SweepSettings::quick(2));
        let par = sweep(&SweepSettings { rollouts: 2, ..SweepSettings::quick(2) });
        assert_eq!(par.learning_secs.len(), 27);
        assert_eq!(par.plans.len(), 81);
        // Same shape; values may differ (K > 1 changes exploration).
        assert_eq!(serial.simulated_makespans.len(), par.simulated_makespans.len());
        for row in &par.simulated_makespans {
            for v in row.per_fleet {
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn quick_table4_shape() {
        let rows = table4(3, 50_000.0, 1);
        assert_eq!(rows.len(), 12);
        // 4 rows per fleet, sorted by time within each fleet.
        for vc in [16, 32, 64] {
            let block: Vec<_> = rows.iter().filter(|r| r.vcpus == vc).collect();
            assert_eq!(block.len(), 4);
            assert!(block.windows(2).all(|w| w[0].total_secs <= w[1].total_secs));
            assert_eq!(block.iter().filter(|r| r.algorithm == "HEFT").count(), 1);
        }
    }

    #[test]
    fn quick_table5_plans_are_complete() {
        let t5 = table5(2, 3);
        assert!(t5.heft.is_complete());
        for p in &t5.reassign {
            assert!(p.is_complete());
            assert_eq!(p.len(), 50);
        }
    }

    #[test]
    fn baseline_comparison_ranks_heft_well() {
        let fleet = Fleet::paper_16_vcpus();
        let rows = baseline_comparison(&fleet, 5, 2);
        assert_eq!(rows.len(), 12);
        let pos = |name: &str| rows.iter().position(|(n, _)| n == name).unwrap();
        // HEFT must beat uniform-random placement on a heterogeneous fleet.
        assert!(pos("heft") < pos("random"), "rows: {rows:?}");
    }

    #[test]
    fn quick_fault_degradation_shape() {
        let rows = fault_degradation(2, 7);
        assert_eq!(rows.len(), 3);
        // Fault-free row: clean makespans, zero fault counters.
        assert_eq!(rows[0].scenario, "none");
        assert!(rows[0].heft_success && rows[0].reassign_success);
        assert_eq!(rows[0].heft_faults, FaultStats::default());
        // Faulty rows record activity, and the degradation is real:
        // the heavy HEFT replay cannot beat the clean one.
        assert!(rows[2].heft_faults.crashes + rows[2].heft_faults.stragglers > 0);
        if rows[2].heft_success {
            assert!(rows[2].heft_makespan_secs >= rows[0].heft_makespan_secs);
        }
    }

    #[test]
    fn fault_probe_is_deterministic() {
        let a = fault_probe(2019);
        let b = fault_probe(2019);
        assert_eq!(a, b, "probe must be a pure function of the seed");
        assert!(a.0 > 0.0);
    }

    #[test]
    fn sim_event_throughput_reports_positive_rate() {
        let rate = sim_event_throughput(2019, 0.02);
        assert!(rate > 0.0, "events/sec must be positive, got {rate}");
    }

    #[test]
    fn big_vm_share_counts() {
        let mut plan = Plan::empty(4);
        for i in 0..4u32 {
            plan.assign(
                wfcommon::ActivationId::new(i),
                if i < 3 { VmId::new(8) } else { VmId::new(0) },
            );
        }
        assert!((big_vm_share(&plan) - 0.75).abs() < 1e-12);
    }
}
