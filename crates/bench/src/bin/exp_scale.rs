//! Extension: larger Montage instances and other workflow families —
//! the paper's future work ("more experiments with larger instances of
//! Montage and other workflows are still needed", §IV-C).
//!
//! ```text
//! cargo run --release -p bench --bin exp_scale
//! ```

use cloud::Fleet;
use reassign::{learn, ReassignConfig};
use sched::heft_plan;
use wfcommon::SeedDerivation;
use wfsim::{FixedPlanScheduler, SimConfig};
use workflow::generators::{cybershake, epigenomics, inspiral, montage, sipht};
use workflow::Workflow;

fn heft_makespan(wf: &Workflow, fleet: &Fleet) -> f64 {
    let plan = heft_plan(wf, fleet, bench::BANDWIDTH).expect("heft").plan;
    let mut replay = FixedPlanScheduler::new(plan);
    wfsim::simulate(
        wf,
        fleet,
        &mut replay,
        &SimConfig::deterministic(),
        SeedDerivation::new(0),
        None,
    )
    .expect("heft replay")
    .makespan
    .as_secs()
}

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let fleet = Fleet::paper_32_vcpus();
    println!("Scaling study: ReASSIgN vs HEFT on 32 vCPUs ({episodes} episodes)\n");
    println!(" workflow              |  n  | HEFT (s) | ReASSIgN best-episode (s) | ratio");
    println!("-----------------------+-----+----------+---------------------------+------");

    let mut workflows: Vec<Workflow> = Vec::new();
    for total in [50usize, 100, 200, 500] {
        let p = montage::MontageParams::with_total_activations(total, 2019).unwrap();
        workflows.push(montage::generate(&p).unwrap());
    }
    workflows.push(
        cybershake::generate(
            &cybershake::CyberShakeParams::with_total_activations(100, 7).unwrap(),
        )
        .unwrap(),
    );
    workflows.push(
        epigenomics::generate(&epigenomics::EpigenomicsParams { lanes: 24, seed: 7 }).unwrap(),
    );
    workflows.push(
        inspiral::generate(&inspiral::InspiralParams::with_total_activations(100, 7).unwrap())
            .unwrap(),
    );
    workflows.push(
        sipht::generate(&sipht::SiphtParams::with_total_activations(100, 7).unwrap()).unwrap(),
    );

    for wf in &workflows {
        let heft = heft_makespan(wf, &fleet);
        let config = ReassignConfig { episodes, ..ReassignConfig::default() };
        let out = learn(wf, &fleet, "32vcpus", &config, &SimConfig::default(), None)
            .expect("learning run");
        let rl = out.best_episode_makespan.as_secs();
        println!(
            " {:<21} | {:>3} | {:>8.1} | {:>25.1} | {:>4.2}",
            wf.name,
            wf.len(),
            heft,
            rl,
            rl / heft
        );
    }
    println!("\n(ratio < 1: ReASSIgN beats HEFT; expected near 1 with occasional wins)");
}
