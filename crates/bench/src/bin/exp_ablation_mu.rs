//! Ablation: sweep μ — the weight of execution time against queue time
//! in the performance indices (Eqs. 4–5). The paper fixes μ = 0.5 and
//! notes it "balances the relevance of the total execution time against
//! the queue time"; this experiment shows how sensitive the learned
//! plan is to that choice.
//!
//! ```text
//! cargo run --release -p bench --bin exp_ablation_mu
//! ```

use cloud::Fleet;
use reassign::{learn, ReassignConfig};
use wfsim::SimConfig;
use workflow::montage50::montage50;

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();
    println!("Ablation: mu (exec-time vs queue-time weight), {episodes} episodes\n");
    println!("   mu | 16 vCPUs makespan | 32 vCPUs makespan | 64 vCPUs makespan");
    println!("------+-------------------+-------------------+------------------");
    for mu in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cells = Vec::new();
        for (vcpus, fleet) in Fleet::paper_fleets() {
            let config = ReassignConfig { mu, episodes, ..ReassignConfig::default() };
            let out =
                learn(&wf, &fleet, &format!("{vcpus}vcpus"), &config, &SimConfig::default(), None)
                    .expect("learning run");
            cells.push(out.greedy_makespan.as_secs());
        }
        println!(" {:>4.2} | {:>17.2} | {:>17.2} | {:>17.2}", mu, cells[0], cells[1], cells[2]);
    }
    println!("\n(mu=0 optimizes queueing only; mu=1 execution speed only;");
    println!(" the paper's 0.5 balances both signals)");
}
