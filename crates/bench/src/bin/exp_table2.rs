//! Regenerates **Table II**: learning time of the Montage workflow in
//! the simulator for the 27-point (α, γ, ε) grid × 3 fleets.
//!
//! ```text
//! cargo run --release -p bench --bin exp_table2
//! REASSIGN_EPISODES=20 cargo run -p bench --bin exp_table2   # quick run
//! ```
//!
//! Absolute times depend on the host (the paper reports 78–120 s on
//! their machine for 100 episodes of WorkflowSim; our Rust simulator is
//! orders of magnitude faster). The paper's *shape* — learning time
//! grows with fleet size — must reproduce.

use bench::{sweep, SweepSettings};

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let settings = SweepSettings { episodes, ..SweepSettings::default() };
    eprintln!("running 27 configs x 3 fleets x {episodes} episodes …");
    let result = sweep(&settings);
    println!("Table II: learning time (seconds of wall clock, {episodes} episodes)\n");
    print!("{}", bench::format::render_sweep(&result.learning_secs, "Learn s", 4));
    let mean = |fi: usize| result.learning_secs.iter().map(|r| r.per_fleet[fi]).sum::<f64>() / 27.0;
    println!(
        "\nMean learning time: 16 vCPUs {:.4}s | 32 vCPUs {:.4}s | 64 vCPUs {:.4}s",
        mean(0),
        mean(1),
        mean(2)
    );
    println!("(paper shape: grows with fleet size — larger action space per decision)");
}
