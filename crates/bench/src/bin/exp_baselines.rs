//! Extension experiment: deterministic simulated makespan of every
//! scheduler in the repository on each Table I fleet — situates
//! ReASSIgN among the classical heuristics the paper's related work
//! discusses.
//!
//! ```text
//! cargo run --release -p bench --bin exp_baselines
//! ```

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    println!("Scheduler comparison on Montage-50 (deterministic simulator)\n");
    for (vcpus, fleet) in cloud::Fleet::paper_fleets() {
        println!("== {vcpus} vCPUs ==");
        for (name, makespan) in bench::baseline_comparison(&fleet, episodes, 2019) {
            println!("  {name:<12} {makespan:>10.2} s");
        }
        println!();
    }
}
