//! Regenerates **Table IV**: "actual" execution time of the Montage
//! workflow — HEFT vs ReASSIgN (γ=1.0, ε=0.1, α ∈ {0.1, 0.5, 1.0}) on
//! the three fleets, replayed on the threaded SciCumulus-substitute
//! engine (the real-cloud stand-in).
//!
//! ```text
//! cargo run --release -p bench --bin exp_table4
//! ```
//!
//! Expected shape (paper §IV-C): ReASSIgN is slightly behind HEFT at
//! 16 vCPUs and slightly ahead at 32/64 vCPUs; all times within a few
//! tens of seconds of each other (same order of magnitude).

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let compression: f64 =
        std::env::var("SCIRUN_COMPRESSION").ok().and_then(|v| v.parse().ok()).unwrap_or(1000.0);
    eprintln!("learning ({episodes} episodes/config) + threaded replay …");
    let rows = bench::table4(episodes, compression, 2019);
    println!("Table IV: actual execution time on the threaded execution engine\n");
    print!("{}", bench::format::render_table4(&rows));
    for vc in [16u32, 32, 64] {
        let block: Vec<_> = rows.iter().filter(|r| r.vcpus == vc).collect();
        let winner = &block[0];
        println!(
            "  {vc} vCPUs winner: {} ({})",
            winner.algorithm,
            wfcommon::fmt::hms_millis(winner.total_secs)
        );
    }
}
