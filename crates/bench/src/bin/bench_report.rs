//! Serial-vs-parallel learning wall-clock report, written as
//! `BENCH_learning.json`.
//!
//! Runs the `exp_table2`-equivalent quick sweep — the 27 (α, γ, ε)
//! combinations across the three Table I fleets, **sequentially** so the per-round
//! rollout fan-out inside `reassign::learn_parallel` is the only
//! parallelism being measured — once serially (`--rollouts 1` path) and
//! once with 8 rollouts per round.
//!
//! ```text
//! cargo run --release -p bench --bin bench_report
//! REASSIGN_EPISODES=16 cargo run --release -p bench --bin bench_report
//! BENCH_OUT=/tmp/b.json cargo run --release -p bench --bin bench_report
//! ```
//!
//! The speedup column is meaningful only on a multi-core host: rollouts
//! of one round run concurrently, so the ideal is `min(8, cores)` minus
//! merge overhead. On a single core the parallel run degenerates to
//! serial plus rayon overhead.

use bench::{learning_wall_clock, sim_event_throughput};
use obs::{MemSink, Tracer};

const ROLLOUTS: u32 = 8;

/// Wall-clock budget for the event-throughput probe: long enough to
/// amortize timer noise, short enough to keep the report quick.
const THROUGHPUT_PROBE_SECS: f64 = 0.5;

/// Telemetry probe: a short traced learning run whose event count and
/// TD-update total land in the report, so a regression that silences
/// the trace stream (or doubles it) shows up next to the timings.
fn telemetry_probe(seed: u64) -> (usize, u64) {
    let wf = workflow::montage50::montage50();
    let fleet = cloud::Fleet::paper_16_vcpus();
    let config =
        reassign::ReassignConfig { episodes: 4, seed, ..reassign::ReassignConfig::default() };
    let mut sink = MemSink::new();
    let mut tracer = Tracer::new(&mut sink);
    let outcome = reassign::learn_traced(
        &wf,
        &fleet,
        "16vcpus",
        &config,
        &wfsim::SimConfig::deterministic(),
        None,
        &mut tracer,
    )
    .expect("telemetry probe learn");
    (sink.take().lines().count(), outcome.telemetry.td_updates.count())
}

fn main() {
    let episodes =
        std::env::var("REASSIGN_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(100);
    let seed = 2019;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The pool rayon actually built can differ from the detected core
    // count (RAYON_NUM_THREADS, CI cgroup limits); report both so a
    // speedup number can always be read against the real fan-out.
    let rayon_threads = rayon::current_num_threads();

    eprintln!(
        "27 configs x 3 fleets x {episodes} episodes, outer loop sequential \
         ({cores} cores detected, rayon pool {rayon_threads}) …"
    );
    eprintln!("serial pass (rollouts = 1) …");
    let serial_secs = learning_wall_clock(episodes, 1, seed);
    eprintln!("serial: {serial_secs:.3}s; parallel pass (rollouts = {ROLLOUTS}) …");
    let parallel_secs = learning_wall_clock(episodes, ROLLOUTS, seed);
    let speedup = serial_secs / parallel_secs;
    eprintln!("parallel: {parallel_secs:.3}s; speedup {speedup:.2}x");
    let (trace_events, td_updates) = telemetry_probe(seed);
    eprintln!("telemetry probe: {trace_events} trace events, {td_updates} TD updates");
    let (fault_makespan_secs, fault_retries, fault_recoveries) = bench::fault_probe(seed);
    eprintln!(
        "fault probe (mild profile): {fault_makespan_secs:.1}s makespan, \
         {fault_retries} retries, {fault_recoveries} recoveries"
    );
    let sim_events_per_sec = sim_event_throughput(seed, THROUGHPUT_PROBE_SECS);
    eprintln!("throughput probe: {sim_events_per_sec:.0} simulator events/sec");
    let (replicas_launched, replicas_cancelled, replica_wins, repl_makespan_p95) =
        bench::replication_probe();
    eprintln!(
        "replication probe (heavy profile, static-2): {replicas_launched} launched, \
         {replica_wins} replica wins, {replicas_cancelled} cancelled, \
         p95 makespan {repl_makespan_p95:.1}s"
    );

    // Hand-rolled JSON keeps this binary dependency-light and the
    // output schema explicit.
    let json = format!(
        "{{\n  \"benchmark\": \"learning_serial_vs_parallel\",\n  \"workflow\": \"montage50\",\n  \"fleets\": \"16+32+64vcpus\",\n  \"combinations\": 27,\n  \"episodes\": {episodes},\n  \"rollouts\": {ROLLOUTS},\n  \"cores\": {cores},\n  \"rayon_threads\": {rayon_threads},\n  \"serial_secs\": {serial_secs:.6},\n  \"parallel_secs\": {parallel_secs:.6},\n  \"speedup\": {speedup:.4},\n  \"sim_events_per_sec\": {events_per_sec:.1},\n  \"trace_events\": {trace_events},\n  \"td_updates\": {td_updates},\n  \"fault_makespan_secs\": {fault_makespan},\n  \"fault_retries\": {fault_retries},\n  \"fault_recoveries\": {fault_recoveries},\n  \"replicas_launched\": {replicas_launched},\n  \"replicas_cancelled\": {replicas_cancelled},\n  \"replica_wins\": {replica_wins},\n  \"repl_makespan_p95\": {repl_p95}\n}}\n",
        events_per_sec = sim_events_per_sec,
        fault_makespan = obs::event::json_f64(fault_makespan_secs),
        repl_p95 = obs::event::json_f64(repl_makespan_p95),
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_learning.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("{json}");
    eprintln!("wrote {out}");
}
