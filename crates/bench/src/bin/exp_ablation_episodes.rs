//! Ablation: learning-curve over episode budget. The paper conjectures
//! "ReASSIgN will provide better scheduling plans as more episodes are
//! considered" (§IV-C) — this experiment tests that directly.
//!
//! ```text
//! cargo run --release -p bench --bin exp_ablation_episodes
//! ```

use cloud::Fleet;
use reassign::{learn, ReassignConfig};
use wfsim::SimConfig;
use workflow::montage50::montage50;

fn main() {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    println!("Ablation: episode budget, 16 vCPUs (alpha=0.5, gamma=1.0, eps=0.1)\n");
    println!(" episodes | greedy makespan (s) | best episode (s) | learn wall (s)");
    println!("----------+---------------------+------------------+---------------");
    for episodes in [1u32, 5, 10, 25, 50, 100, 200, 400] {
        let config = ReassignConfig { episodes, ..ReassignConfig::default() };
        let out = learn(&wf, &fleet, "16vcpus", &config, &SimConfig::default(), None)
            .expect("learning run");
        println!(
            " {:>8} | {:>19.2} | {:>16.2} | {:>13.4}",
            episodes,
            out.greedy_makespan.as_secs(),
            out.best_episode_makespan.as_secs(),
            out.learning_wall_secs
        );
    }
    println!("\n(paper shape: best-episode makespan is non-increasing in the budget;");
    println!(" greedy-plan quality improves then saturates)");
}
