//! Regenerates **Table V**: the per-activation scheduling plan on the
//! 16-vCPU fleet for HEFT and ReASSIgN configurations C1 (α=1.0),
//! C2 (α=0.5), C3 (α=0.1), all with γ=1.0, ε=0.1.
//!
//! ```text
//! cargo run --release -p bench --bin exp_table5
//! ```
//!
//! Expected shape (paper §IV-C): HEFT spreads the first wave of
//! activations round-robin across all 9 VMs, while the ReASSIgN plans
//! concentrate compute-intensive activations on VM 8 (the t2.2xlarge).

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    eprintln!("learning 3 configurations x {episodes} episodes …");
    let t5 = bench::table5(episodes, 2019);
    println!("Table V: scheduling plan for 16 vCPUs (VM ids; 8 = t2.2xlarge)\n");
    print!("{}", bench::format::render_table5(&t5));
    println!(
        "\nShare of activations on the 2xlarge (vm 8): HEFT {:.0}% | C1 {:.0}% | C2 {:.0}% | C3 {:.0}%",
        100.0 * bench::big_vm_share(&t5.heft),
        100.0 * bench::big_vm_share(&t5.reassign[0]),
        100.0 * bench::big_vm_share(&t5.reassign[1]),
        100.0 * bench::big_vm_share(&t5.reassign[2]),
    );
    println!("(paper shape: ReASSIgN plans favour the robust VM far more than HEFT)");
}
