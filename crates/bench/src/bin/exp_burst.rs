//! Extension: t2 burst-credit exhaustion. The paper's fleets are built
//! from *burstable* t2 instances; after a campaign of executions their
//! CPU credits deplete and the micros fall to a 10 % baseline. This
//! experiment re-runs the HEFT-vs-ReASSIgN comparison in the simulator
//! with burst throttling enabled — a candidate explanation for why the
//! paper measures ReASSIgN ahead of HEFT on the larger fleets even
//! though HEFT wins in a nominal-speed world.
//!
//! ```text
//! cargo run --release -p bench --bin exp_burst
//! ```

use cloud::Fleet;
use reassign::{learn, ReassignConfig};
use sched::heft_plan;
use wfcommon::SeedDerivation;
use wfsim::{simulate, FixedPlanScheduler, Plan, SimConfig};
use workflow::montage50::montage50;

fn replay(plan: &Plan, fleet: &Fleet, cfg: &SimConfig) -> f64 {
    let wf = montage50();
    let mut s = FixedPlanScheduler::new(plan.clone());
    simulate(&wf, fleet, &mut s, cfg, SeedDerivation::new(0), None)
        .expect("replay")
        .makespan
        .as_secs()
}

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();

    println!("Burst-credit study: Montage-50, HEFT vs ReASSIgN ({episodes} episodes)\n");
    println!(" vCPUs | credits | HEFT (s) | ReASSIgN (s) | winner");
    println!("-------+---------+----------+--------------+--------");
    for (vcpus, fleet) in Fleet::paper_fleets() {
        let heft = heft_plan(&wf, &fleet, bench::BANDWIDTH).expect("heft").plan;

        for (label, throttling, credit_scale) in
            [("fresh", false, 1.0), ("half", true, 0.1), ("drained", true, 0.0)]
        {
            // ReASSIgN learns in the same regime it will run in — the
            // whole point of a model-free scheduler.
            let learn_cfg = SimConfig {
                burst_throttling: throttling,
                burst_credit_scale: credit_scale,
                ..SimConfig::default()
            };
            let replay_cfg = SimConfig {
                burst_throttling: throttling,
                burst_credit_scale: credit_scale,
                ..SimConfig::deterministic()
            };

            let config = ReassignConfig { episodes, ..ReassignConfig::default() };
            let out =
                learn(&wf, &fleet, &format!("{vcpus}vcpus-{label}"), &config, &learn_cfg, None)
                    .expect("learn");

            let heft_ms = replay(&heft, &fleet, &replay_cfg);
            let rl_ms = replay(&out.best_episode_plan, &fleet, &replay_cfg);
            println!(
                " {:>5} | {:<7} | {:>8.1} | {:>12.1} | {}",
                vcpus,
                label,
                heft_ms,
                rl_ms,
                if rl_ms < heft_ms { "ReASSIgN" } else { "HEFT" }
            );
        }
    }
    println!("\n('drained' models a long experimental campaign on t2 instances:");
    println!(" micro VMs drop to 10 % speed once credits run out, 2xlarge to 17 %;");
    println!(" a learner that observes this adapts, a static cost model cannot)");
}
