//! Extension: speculative task replication under heavy chaos — the
//! makespan CDF of Montage-50 on the 16-vCPU fleet with hedging off,
//! with blanket static duplication, and with the learned replication
//! head (trained under the heavy profile via the failure-penalty
//! reward hook).
//!
//! ```text
//! cargo run --release -p bench --bin exp_replication
//! REASSIGN_EPISODES=16 REPL_SEEDS=10 cargo run --release -p bench --bin exp_replication
//! ```
//!
//! Expected shape: static-2 buys fault tolerance with a large hedging
//! bill (every dispatch is duplicated); the learned head matches or
//! beats its makespan while launching far fewer replicas, because it
//! only hedges retries, blacklist pressure and critical-slack tasks.

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let seed_count: u64 =
        std::env::var("REPL_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(25);
    let seeds: Vec<u64> = (0..seed_count).map(|i| 2000 + i).collect();

    eprintln!(
        "replication sweep, Montage-50 on 16 vCPUs, heavy profile \
         ({} seeds, {episodes} training episodes) …",
        seeds.len()
    );
    let arms = bench::replication_arms(episodes, 2019);
    let rows = bench::replication_cdf(&arms, &seeds);

    println!("Speculative replication under heavy chaos (seeds 2000..{})\n", 2000 + seed_count);
    println!(" policy   | mean (s) | p95 (s)  | launched | wins | cancelled | waste PE-s | failed");
    println!("----------+----------+----------+----------+------+-----------+------------+-------");
    for r in &rows {
        println!(
            " {:<8} | {:>8.1} | {:>8.1} | {:>8} | {:>4} | {:>9} | {:>10.1} | {:>5}",
            r.policy,
            r.mean_makespan_secs,
            r.p95_makespan_secs,
            r.launched,
            r.replica_wins,
            r.cancelled,
            r.waste_secs,
            r.failures,
        );
    }

    println!("\nMakespan CDF (cumulative fraction of seeds at or below each makespan):");
    for r in &rows {
        let mut sorted = r.makespans_secs.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len().max(1);
        let points: Vec<String> = sorted
            .iter()
            .enumerate()
            .map(|(i, m)| format!("{m:.0}:{:.2}", (i + 1) as f64 / n as f64))
            .collect();
        println!("  {:<8} {}", r.policy, points.join(" "));
    }

    let get = |name: &str| rows.iter().find(|r| r.policy == name).expect("arm");
    let (off, st, ln) = (get("off"), get("static:2"), get("learned"));
    println!(
        "\nstatic-2 vs off:   mean {:+.1}%  (hedging {} replicas)",
        100.0 * (st.mean_makespan_secs / off.mean_makespan_secs - 1.0),
        st.launched,
    );
    println!(
        "learned vs static: mean {:+.1}%  with {:.0}% fewer replicas launched",
        100.0 * (ln.mean_makespan_secs / st.mean_makespan_secs - 1.0),
        100.0 * (1.0 - ln.launched as f64 / st.launched.max(1) as f64),
    );
}
