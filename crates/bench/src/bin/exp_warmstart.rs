//! Extension: learning from demonstration. The paper's related work
//! (Li et al., AAMAS 2018) uses demonstrations to speed up RL via
//! shaping; here ReASSIgN's Q-table is warm-started from HEFT's plan
//! and compared against cold-started learning across episode budgets.
//!
//! ```text
//! cargo run --release -p bench --bin exp_warmstart
//! ```

use cloud::Fleet;
use reassign::{learn, learn_with_demonstration, ReassignConfig};
use sched::heft_plan;
use wfsim::SimConfig;
use workflow::montage50::montage50;

fn main() {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let demo = heft_plan(&wf, &fleet, bench::BANDWIDTH).expect("heft").plan;
    let sim = SimConfig::default();

    println!("Warm-start study: Montage-50, 16 vCPUs, HEFT demonstration\n");
    println!(" episodes | cold best (s) | warm best (s) | cold greedy (s) | warm greedy (s)");
    println!("----------+---------------+---------------+-----------------+----------------");
    for episodes in [1u32, 5, 10, 25, 50, 100] {
        let config = ReassignConfig { episodes, ..ReassignConfig::default() };
        let cold = learn(&wf, &fleet, "cold", &config, &sim, None).expect("cold");
        let warm = learn_with_demonstration(&wf, &fleet, "warm", &config, &sim, &demo, None)
            .expect("warm");
        println!(
            " {:>8} | {:>13.1} | {:>13.1} | {:>15.1} | {:>15.1}",
            episodes,
            cold.best_episode_makespan.as_secs(),
            warm.best_episode_makespan.as_secs(),
            cold.greedy_makespan.as_secs(),
            warm.greedy_makespan.as_secs(),
        );
    }
    println!("\n(the warm columns should dominate at small budgets — the agent");
    println!(" starts from HEFT's schedule instead of noise — and converge with");
    println!(" the cold columns as episodes accumulate)");
}
