//! Extension: space-shared vs time-shared cloudlet scheduling —
//! CloudSim's two execution disciplines, compared on the same plans.
//! Space sharing queues behind busy elements; time sharing degrades
//! everyone's rate instead. Plans that oversubscribe a VM look better
//! under time sharing for latency-insensitive stages and worse where
//! the critical path needs a full-speed element.
//!
//! ```text
//! cargo run --release -p bench --bin exp_sharing
//! ```

use cloud::Fleet;
use reassign::{learn, ReassignConfig};
use sched::heft_plan;
use wfcommon::SeedDerivation;
use wfsim::timeshared::replay_time_shared;
use wfsim::{simulate, FixedPlanScheduler, Plan, SimConfig};
use workflow::montage50::montage50;

fn space_shared(plan: &Plan, fleet: &Fleet) -> f64 {
    let wf = montage50();
    let mut s = FixedPlanScheduler::new(plan.clone());
    simulate(&wf, fleet, &mut s, &SimConfig::deterministic(), SeedDerivation::new(0), None)
        .expect("replay")
        .makespan
        .as_secs()
}

fn time_shared(plan: &Plan, fleet: &Fleet) -> f64 {
    let wf = montage50();
    replay_time_shared(&wf, fleet, plan).expect("ts replay").makespan.as_secs()
}

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();
    println!("Sharing-discipline study: Montage-50 ({episodes} episodes for RL plans)\n");
    println!(" vCPUs | plan      | space-shared (s) | time-shared (s) | ratio");
    println!("-------+-----------+------------------+-----------------+------");
    for (vcpus, fleet) in Fleet::paper_fleets() {
        let heft = heft_plan(&wf, &fleet, bench::BANDWIDTH).expect("heft").plan;
        let ss = space_shared(&heft, &fleet);
        let ts = time_shared(&heft, &fleet);
        println!(" {:>5} | {:<9} | {:>16.1} | {:>15.1} | {:>4.2}", vcpus, "heft", ss, ts, ts / ss);

        let config = ReassignConfig { episodes, ..ReassignConfig::default() };
        let out =
            learn(&wf, &fleet, &format!("{vcpus}vcpus"), &config, &SimConfig::default(), None)
                .expect("learn");
        let ss = space_shared(&out.best_episode_plan, &fleet);
        let ts = time_shared(&out.best_episode_plan, &fleet);
        println!(
            " {:>5} | {:<9} | {:>16.1} | {:>15.1} | {:>4.2}",
            vcpus,
            "reassign",
            ss,
            ts,
            ts / ss
        );
    }
    println!("\n(time sharing has no transfers/stage-in in this model, so ratios");
    println!(" below 1 reflect both the discipline and the lighter cost model)");
}
