//! Ablation: the TD rule behind ReASSIgN — the paper's Q-learning vs
//! double Q-learning vs Expected SARSA, identical everything else.
//!
//! ```text
//! cargo run --release -p bench --bin exp_ablation_algo
//! ```

use cloud::Fleet;
use reassign::{learn, ReassignConfig, RlAlgorithm};
use wfsim::SimConfig;
use workflow::montage50::montage50;

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();
    println!("Ablation: TD rule, {episodes} episodes, paper-default hyper-parameters\n");
    println!(" algorithm      | vCPUs | greedy (s) | best episode (s) | learn (ms)");
    println!("----------------+-------+------------+------------------+-----------");
    for (name, algorithm) in [
        ("q-learning", RlAlgorithm::QLearning),
        ("double-q", RlAlgorithm::DoubleQ),
        ("expected-sarsa", RlAlgorithm::ExpectedSarsa),
    ] {
        for (vcpus, fleet) in Fleet::paper_fleets() {
            let config = ReassignConfig { episodes, algorithm, ..ReassignConfig::default() };
            let out =
                learn(&wf, &fleet, &format!("{vcpus}vcpus"), &config, &SimConfig::default(), None)
                    .expect("learning run");
            println!(
                " {:<14} | {:>5} | {:>10.2} | {:>16.2} | {:>9.2}",
                name,
                vcpus,
                out.greedy_makespan.as_secs(),
                out.best_episode_makespan.as_secs(),
                out.learning_wall_secs * 1e3
            );
        }
    }
    println!("\n(all three should land in the same band; double-Q tends to commit");
    println!(" later, expected-SARSA is the least variance-prone)");
}
