//! Ablation: sweep ρ — the reward-smoothing factor of §III-B
//! (`r^t = r^{t-1} + ρ·(r_i − r^{t-1})`). ρ = 1 makes the agent learn
//! from the raw crisp ±1 reward (no smoothing); small ρ rewards
//! *trends* rather than single observations.
//!
//! ```text
//! cargo run --release -p bench --bin exp_ablation_rho
//! ```

use cloud::Fleet;
use reassign::{learn, ReassignConfig};
use wfsim::SimConfig;
use workflow::montage50::montage50;

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    println!("Ablation: rho (reward smoothing), 16 vCPUs, {episodes} episodes\n");
    println!("  rho | greedy makespan (s) | best episode (s) | final reward");
    println!("------+---------------------+------------------+-------------");
    for rho in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let config = ReassignConfig { rho, episodes, ..ReassignConfig::default() };
        let out = learn(&wf, &fleet, "16vcpus", &config, &SimConfig::default(), None)
            .expect("learning run");
        let final_reward = out.episodes.last().map(|e| e.final_reward).unwrap_or(0.0);
        println!(
            " {:>4.2} | {:>19.2} | {:>16.2} | {:>12.4}",
            rho,
            out.greedy_makespan.as_secs(),
            out.best_episode_makespan.as_secs(),
            final_reward
        );
    }
    println!("\n(rho=1.0 is the crisp-only reward; smaller rho damps reward noise)");
}
