//! Extension: the money axis. The paper's motivation for learning in a
//! simulator is that trial-and-error in a real cloud "may be
//! financially expensive … since the user pays per hour" (§III-D).
//! This experiment quantifies (a) what each Table I fleet costs per
//! Montage run under each scheduler, and (b) what the paper's
//! 100-episode learning stage *would* have cost if executed on real
//! VMs instead of the simulator.
//!
//! ```text
//! cargo run --release -p bench --bin exp_cost
//! ```

use cloud::{BillingGranularity, Fleet};
use reassign::{learn, ReassignConfig};
use sched::heft_plan;
use wfcommon::{SeedDerivation, SimTime};
use wfsim::{simulate, FixedPlanScheduler, Metrics, SimConfig};
use workflow::montage50::montage50;

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();
    println!("Cost analysis, Montage-50 ({episodes} learning episodes)\n");
    println!(" fleet | scheduler | makespan (s) | per-run cost | 100-episode cloud-learning cost");
    println!("-------+-----------+--------------+--------------+--------------------------------");
    for (vcpus, fleet) in Fleet::paper_fleets() {
        // HEFT.
        let plan = heft_plan(&wf, &fleet, bench::BANDWIDTH).expect("heft").plan;
        let mut replay = FixedPlanScheduler::new(plan);
        let res = simulate(
            &wf,
            &fleet,
            &mut replay,
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
            None,
        )
        .expect("replay");
        let m = Metrics::compute(&wf, &fleet, &res);
        println!(
            " {:>5} | {:<9} | {:>12.1} | {:>11.4}$ | {:>30}",
            vcpus, "heft", m.makespan_secs, m.cost_usd, "-"
        );

        // ReASSIgN: per-run cost of the learned plan plus the
        // hypothetical cost of running all episodes on real VMs.
        let config = ReassignConfig { episodes, ..ReassignConfig::default() };
        let out =
            learn(&wf, &fleet, &format!("{vcpus}vcpus"), &config, &SimConfig::default(), None)
                .expect("learn");
        let mut replay = FixedPlanScheduler::new(out.best_episode_plan.clone());
        let res = simulate(
            &wf,
            &fleet,
            &mut replay,
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
            None,
        )
        .expect("replay");
        let m = Metrics::compute(&wf, &fleet, &res);
        let episode_secs: f64 = out.episodes.iter().map(|e| e.makespan.as_secs()).sum();
        let cloud_learning_cost = cloud::pricing::whole_fleet_cost_usd(
            &fleet,
            SimTime(episode_secs),
            BillingGranularity::PerHour,
        );
        println!(
            " {:>5} | {:<9} | {:>12.1} | {:>11.4}$ | {:>28.2}$",
            vcpus, "reassign", m.makespan_secs, m.cost_usd, cloud_learning_cost
        );
    }
    println!("\n(the last column is the bill the paper avoids by learning in a");
    println!(" simulator: all episodes priced as real fleet-hours)");
}
