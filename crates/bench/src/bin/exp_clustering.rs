//! Extension: task-clustering study. WorkflowSim's clustering engine
//! trades scheduling flexibility for reduced per-job overhead; this
//! experiment shows how horizontal cluster width changes makespan for
//! HEFT on the clustered workflow, and what vertical chain-merging does
//! to Montage's tail pipeline.
//!
//! ```text
//! cargo run --release -p bench --bin exp_clustering
//! ```

use cloud::Fleet;
use sched::heft_plan;
use wfcommon::SeedDerivation;
use wfsim::clustering;
use wfsim::{simulate, FixedPlanScheduler, SimConfig};
use workflow::montage50::montage50;
use workflow::Workflow;

fn heft_makespan(wf: &Workflow, fleet: &Fleet) -> f64 {
    let plan = heft_plan(wf, fleet, bench::BANDWIDTH).expect("heft").plan;
    let mut replay = FixedPlanScheduler::new(plan);
    simulate(wf, fleet, &mut replay, &SimConfig::deterministic(), SeedDerivation::new(0), None)
        .expect("replay")
        .makespan
        .as_secs()
}

fn main() {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    println!("Clustering study: Montage-50 on 16 vCPUs (HEFT plans)\n");
    println!(" clustering            | jobs | makespan (s)");
    println!("-----------------------+------+-------------");
    println!(" none                  | {:>4} | {:>12.2}", wf.len(), heft_makespan(&wf, &fleet));
    for k in [1usize, 2, 4, 8] {
        let plan = clustering::horizontal(&wf, k).expect("horizontal");
        let (clustered, _) = clustering::apply(&wf, &plan).expect("apply");
        println!(
            " horizontal k={k:<8} | {:>4} | {:>12.2}",
            clustered.len(),
            heft_makespan(&clustered, &fleet)
        );
    }
    let plan = clustering::vertical(&wf).expect("vertical");
    let (clustered, _) = clustering::apply(&wf, &plan).expect("apply");
    println!(
        " vertical chains       | {:>4} | {:>12.2}",
        clustered.len(),
        heft_makespan(&clustered, &fleet)
    );
    println!("\n(small k throttles parallelism — the k=1 row serializes each level;");
    println!(" wide clustering approaches the unclustered makespan)");
}
