//! Extension: elastic fleet sizing. Sweeps micro/2xlarge mixes and
//! reports, per deadline, the cheapest fleet that meets it — the
//! operational flip side of Table I's fixed configurations.
//!
//! ```text
//! cargo run --release -p bench --bin exp_provisioning
//! ```

use cloud::BillingGranularity;
use wfcommon::{SeedDerivation, SimTime};
use wfsim::provisioning::{enumerate_mixes, provision, recommend};
use wfsim::{Scheduler, SimConfig};
use workflow::montage50::montage50;

fn main() {
    let wf = montage50();
    let candidates = enumerate_mixes(8, 4);
    println!(
        "Provisioning study: Montage-50, {} candidate fleets (HEFT-free MCT scheduling)\n",
        candidates.len()
    );
    println!(" deadline (s) | cheapest fleet       | makespan (s) | cost");
    println!("--------------+----------------------+--------------+---------");
    for deadline in [1200.0, 600.0, 400.0, 300.0, 260.0, 245.0] {
        let outcomes = provision(
            &wf,
            &candidates,
            SimTime(deadline),
            BillingGranularity::PerSecondMin60,
            || Box::new(sched::Mct) as Box<dyn Scheduler>,
            &SimConfig::deterministic(),
            SeedDerivation::new(2019),
        )
        .expect("provisioning sweep");
        match recommend(&outcomes) {
            Some(best) => println!(
                " {:>12.0} | {:<20} | {:>12.1} | {:>7.4}$",
                deadline,
                best.label,
                best.makespan.as_secs(),
                best.cost_usd
            ),
            None => println!(" {deadline:>12.0} | (no fleet meets it)  |            - |       -"),
        }
    }
    println!("\n(tighter deadlines force larger, more expensive fleets; beyond the");
    println!(" critical-path bound no amount of money helps)");
}
