//! Extension: makespan degradation under fault injection — HEFT's
//! nominal plan vs ReASSIgN learning *inside* the faulty environment
//! (VM crash/repair cycles, stragglers, per-attempt timeouts), replayed
//! under the same pre-sampled fault schedule.
//!
//! ```text
//! cargo run --release -p bench --bin exp_faults
//! REASSIGN_EPISODES=16 cargo run --release -p bench --bin exp_faults
//! ```
//!
//! Expected shape: both schedulers degrade as the fault profile
//! hardens, but the learned plan degrades less — the failure penalty
//! steers work off crash-prone placements, while HEFT keeps submitting
//! to whatever its nominal estimates ranked first.

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    eprintln!("fault sweep, Montage-50 on 16 vCPUs ({episodes} episodes/scenario) …");
    let rows = bench::fault_degradation(episodes, 2019);
    println!("Fault-injection degradation (deterministic replay, seed 2019)\n");
    println!(
        " profile | HEFT (s)    | ReASSIgN (s) | ratio | HEFT crash/strgl/retry | RL crash/strgl/retry"
    );
    println!(
        "---------+-------------+--------------+-------+------------------------+---------------------"
    );
    for r in &rows {
        let fmt = |ok: bool, secs: f64| {
            if ok {
                format!("{secs:>11.1}")
            } else {
                format!("{:>11}", "FAILED")
            }
        };
        println!(
            " {:<7} | {} | {}  | {:>5.2} | {:>6}/{:>5}/{:>5}     | {:>5}/{:>5}/{:>5}",
            r.scenario,
            fmt(r.heft_success, r.heft_makespan_secs),
            fmt(r.reassign_success, r.reassign_makespan_secs),
            r.reassign_makespan_secs / r.heft_makespan_secs,
            r.heft_faults.crashes,
            r.heft_faults.stragglers,
            r.heft_faults.retries + r.heft_faults.reschedules,
            r.reassign_faults.crashes,
            r.reassign_faults.stragglers,
            r.reassign_faults.retries + r.reassign_faults.reschedules,
        );
    }
    println!("\n(ratio < 1: the plan learned under faults outperforms HEFT's nominal");
    println!(" plan on the same fault schedule)");
}
