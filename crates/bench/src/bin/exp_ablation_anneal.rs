//! Ablation: annealed exploration. The paper keeps ε constant; here
//! ε (exploitation mass under the paper convention) ramps up over
//! episodes — explore early, exploit late — and is compared with the
//! best constant settings.
//!
//! ```text
//! cargo run --release -p bench --bin exp_ablation_anneal
//! ```

use cloud::Fleet;
use qlearn::Schedule;
use reassign::{learn, ReassignConfig};
use wfsim::SimConfig;
use workflow::montage50::montage50;

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let sim = SimConfig::default();

    println!("Ablation: exploration annealing, 16 vCPUs, {episodes} episodes\n");
    println!(" schedule                    | greedy (s) | best episode (s)");
    println!("-----------------------------+------------+-----------------");
    let schedules: Vec<(&str, Option<Schedule>)> = vec![
        ("constant eps=0.1", None),
        (
            "linear 0.0 -> 1.0",
            Some(Schedule::Linear { from: 0.0, to: 1.0, steps: episodes as u64 }),
        ),
        (
            "linear 0.0 -> 0.5",
            Some(Schedule::Linear { from: 0.0, to: 0.5, steps: episodes as u64 }),
        ),
        (
            "exp decay of exploration",
            // Exploitation mass grows as 1 - 0.9^t is not expressible
            // directly; approximate with a linear ramp to 0.9.
            Some(Schedule::Linear { from: 0.05, to: 0.9, steps: (episodes / 2).max(1) as u64 }),
        ),
    ];
    for (name, schedule) in schedules {
        let config =
            ReassignConfig { episodes, epsilon_schedule: schedule, ..ReassignConfig::default() };
        let out = learn(&wf, &fleet, "anneal", &config, &sim, None).expect("learn");
        println!(
            " {:<27} | {:>10.2} | {:>15.2}",
            name,
            out.greedy_makespan.as_secs(),
            out.best_episode_makespan.as_secs()
        );
    }
    println!("\n(annealing trades early coverage for late stability; on a 50-task");
    println!(" instance the constant paper setting is already near-saturated)");
}
