//! Regenerates **Table III**: simulated execution time (makespan of the
//! learned plan) of the Montage workflow for the 27-point grid × 3
//! fleets.
//!
//! ```text
//! cargo run --release -p bench --bin exp_table3
//! ```
//!
//! Expected shape (paper §IV-C): the γ = 1.0, ε = 0.1 rows dominate —
//! long-horizon credit assignment plus heavy exploration find far
//! better plans than myopic/greedy settings.

use bench::{sweep, SweepSettings};

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let settings = SweepSettings { episodes, ..SweepSettings::default() };
    eprintln!("running 27 configs x 3 fleets x {episodes} episodes …");
    let result = sweep(&settings);
    println!("Table III: simulated execution time of the learned plan (seconds)\n");
    print!("{}", bench::format::render_sweep(&result.simulated_makespans, "Makespan", 5));

    // Highlight the paper's observation.
    let best = result
        .simulated_makespans
        .iter()
        .min_by(|a, b| a.per_fleet[0].total_cmp(&b.per_fleet[0]))
        .unwrap();
    println!(
        "\nBest 16-vCPU row: alpha={:.1} gamma={:.1} epsilon={:.1} ({:.2}s)",
        best.alpha, best.gamma, best.epsilon, best.per_fleet[0]
    );
    println!("(paper shape: gamma=1.0, epsilon=0.1 rows dominate the sweep)");
}
