//! Runs every paper experiment end-to-end and prints all five tables —
//! the one-command reproduction of the evaluation section.
//!
//! ```text
//! cargo run --release -p bench --bin exp_all | tee experiments.txt
//! REASSIGN_EPISODES=20 cargo run --release -p bench --bin exp_all   # quick
//! ```

use bench::{sweep, SweepSettings};

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);

    println!("=== Table I: VM configurations ===\n");
    print!("{}", bench::format::render_table1(&bench::table1()));

    eprintln!("[exp_all] running 27x3 sweep ({episodes} episodes each) …");
    let settings = SweepSettings { episodes, ..SweepSettings::default() };
    let result = sweep(&settings);

    println!("\n=== Table II: learning time (wall seconds) ===\n");
    print!("{}", bench::format::render_sweep(&result.learning_secs, "Learn s", 4));

    println!("\n=== Table III: simulated execution time (s) ===\n");
    print!("{}", bench::format::render_sweep(&result.simulated_makespans, "Makespan", 5));

    eprintln!("[exp_all] running Table IV (threaded execution engine) …");
    let rows = bench::table4(episodes, 1000.0, 2019);
    println!("\n=== Table IV: actual execution time (threaded engine) ===\n");
    print!("{}", bench::format::render_table4(&rows));

    eprintln!("[exp_all] running Table V (plans on 16 vCPUs) …");
    let t5 = bench::table5(episodes, 2019);
    println!("\n=== Table V: scheduling plan for 16 vCPUs ===\n");
    print!("{}", bench::format::render_table5(&t5));
    println!(
        "\n2xlarge share: HEFT {:.0}% | C1 {:.0}% | C2 {:.0}% | C3 {:.0}%",
        100.0 * bench::big_vm_share(&t5.heft),
        100.0 * bench::big_vm_share(&t5.reassign[0]),
        100.0 * bench::big_vm_share(&t5.reassign[1]),
        100.0 * bench::big_vm_share(&t5.reassign[2]),
    );
}
