//! Extension: the static-planner tournament — HEFT vs PEFT vs CPOP
//! (all from the list-scheduling literature the paper builds on)
//! across workflow families and fleets, replayed in the deterministic
//! simulator.
//!
//! ```text
//! cargo run --release -p bench --bin exp_planners
//! ```

use cloud::Fleet;
use sched::{cpop_plan, heft_plan, peft_plan};
use wfcommon::SeedDerivation;
use wfsim::{simulate, FixedPlanScheduler, Plan, SimConfig};
use workflow::generators::*;
use workflow::Workflow;

fn replay(wf: &Workflow, plan: Plan, fleet: &Fleet) -> f64 {
    let mut s = FixedPlanScheduler::new(plan);
    simulate(wf, fleet, &mut s, &SimConfig::deterministic(), SeedDerivation::new(0), None)
        .expect("replay")
        .makespan
        .as_secs()
}

fn main() {
    let workflows: Vec<Workflow> = vec![
        workflow::montage50::montage50(),
        montage::generate(&montage::MontageParams::with_total_activations(200, 3).unwrap())
            .unwrap(),
        cybershake::generate(
            &cybershake::CyberShakeParams::with_total_activations(100, 3).unwrap(),
        )
        .unwrap(),
        epigenomics::generate(&epigenomics::EpigenomicsParams { lanes: 24, seed: 3 }).unwrap(),
        inspiral::generate(&inspiral::InspiralParams::with_total_activations(100, 3).unwrap())
            .unwrap(),
        sipht::generate(&sipht::SiphtParams::with_total_activations(100, 3).unwrap()).unwrap(),
    ];

    println!("Static-planner tournament (simulated makespans, seconds)\n");
    println!(" workflow              | vCPUs | HEFT    | PEFT    | CPOP    | winner");
    println!("-----------------------+-------+---------+---------+---------+-------");
    for wf in &workflows {
        for (vcpus, fleet) in Fleet::paper_fleets() {
            let h = replay(wf, heft_plan(wf, &fleet, bench::BANDWIDTH).unwrap().plan, &fleet);
            let p = replay(wf, peft_plan(wf, &fleet, bench::BANDWIDTH).unwrap().plan, &fleet);
            let c = replay(wf, cpop_plan(wf, &fleet, bench::BANDWIDTH).unwrap().plan, &fleet);
            let winner = if h <= p && h <= c {
                "HEFT"
            } else if p <= c {
                "PEFT"
            } else {
                "CPOP"
            };
            println!(
                " {:<21} | {:>5} | {:>7.1} | {:>7.1} | {:>7.1} | {}",
                wf.name, vcpus, h, p, c, winner
            );
        }
    }
    println!("\n(HEFT and PEFT trade wins by family; CPOP suffers when the critical");
    println!(" path is wide — pinning it to one VM serializes siblings)");
}
