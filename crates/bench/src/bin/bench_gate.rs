//! Regression gate binary: compare the current benchmark report and
//! golden-trace analytics against the committed baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench_gate                    # gate
//! cargo run --release -p bench --bin bench_gate -- --write-baseline
//! BENCH_GATE_BASELINE=/tmp/b.json cargo run -p bench --bin bench_gate
//! ```
//!
//! Exit codes: `0` pass, `1` regression, `2` usage / missing input.
//! Run from the repository root (paths default to the committed
//! `BENCH_learning.json`, `BENCH_service.json`, `BENCH_baseline.json`
//! and `tests/golden/*.trace.jsonl`); override any of them with
//! `--bench`, `--service`, `--baseline`, `--heft-trace`,
//! `--reassign-trace`.

use bench::gate::{
    baseline_json, collect, collect_service, compare, parse_baseline, ratchet, render,
};

struct Args {
    bench: String,
    service: String,
    baseline: String,
    heft: String,
    reassign: String,
    write_baseline: bool,
}

fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        bench: "BENCH_learning.json".into(),
        service: "BENCH_service.json".into(),
        baseline: std::env::var("BENCH_GATE_BASELINE")
            .unwrap_or_else(|_| "BENCH_baseline.json".into()),
        heft: "tests/golden/montage50_heft.trace.jsonl".into(),
        reassign: "tests/golden/montage50_reassign.trace.jsonl".into(),
        write_baseline: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--bench" => args.bench = value("--bench")?,
            "--service" => args.service = value("--service")?,
            "--baseline" => args.baseline = value("--baseline")?,
            "--heft-trace" => args.heft = value("--heft-trace")?,
            "--reassign-trace" => args.reassign = value("--reassign-trace")?,
            "--write-baseline" => args.write_baseline = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse(&argv)?;
    let mut metrics = collect(&read(&args.bench)?, &read(&args.heft)?, &read(&args.reassign)?)?;
    metrics.extend(collect_service(&read(&args.service)?)?);
    if args.write_baseline {
        // Throughput floors ratchet: refreshing the baseline from a
        // slower host keeps the faster committed figure, so a floor
        // only ever moves up. A missing/unreadable old baseline means
        // first write — current values stand.
        if let Ok(previous) = read(&args.baseline).and_then(|s| parse_baseline(&s)) {
            ratchet(&mut metrics, &previous);
        }
        let json = baseline_json(&metrics);
        std::fs::write(&args.baseline, &json).map_err(|e| format!("{}: {e}", args.baseline))?;
        println!("wrote {} ({} metrics)", args.baseline, metrics.len());
        return Ok(true);
    }
    let baseline = parse_baseline(&read(&args.baseline)?)?;
    let report = compare(&metrics, &baseline);
    print!("{}", render(&report));
    Ok(report.passed())
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    }
}
