//! Ablation: the two readings of Algorithm 1's ε.
//!
//! The paper's text says "with probability ε choose a as the **best**
//! action … otherwise choose a at random" — the inverse of textbook
//! ε-greedy. Its results (ε = 0.1 dominates) are consistent with that
//! inverted reading *when the deployed plan is extracted from the
//! learned Q matrix*: heavy exploration covers more (activation, VM)
//! pairs. This experiment runs both conventions across ε to show where
//! each breaks.
//!
//! ```text
//! cargo run --release -p bench --bin exp_ablation_epsilon
//! ```

use cloud::Fleet;
use reassign::{learn, EpsilonConvention, ReassignConfig};
use wfsim::SimConfig;
use workflow::montage50::montage50;

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    println!("Ablation: epsilon convention, 16 vCPUs, {episodes} episodes\n");
    println!("  eps | paper conv. greedy (s) | textbook conv. greedy (s)");
    println!("------+------------------------+--------------------------");
    for epsilon in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let mut cells = Vec::new();
        for convention in [EpsilonConvention::Paper, EpsilonConvention::Textbook] {
            let config = ReassignConfig {
                epsilon,
                episodes,
                epsilon_convention: convention,
                ..ReassignConfig::default()
            };
            let out = learn(&wf, &fleet, "16vcpus", &config, &SimConfig::default(), None)
                .expect("learning run");
            cells.push(out.greedy_makespan.as_secs());
        }
        println!(" {:>4.1} | {:>22.2} | {:>24.2}", epsilon, cells[0], cells[1]);
    }
    println!("\n(paper conv.: eps = P[exploit]; textbook: eps = P[explore].");
    println!(" The two columns mirror each other around eps = 0.5.)");
}
