//! Service load generator: drive `reassignd`'s in-process service with
//! a seeded open-loop arrival sequence and write `BENCH_service.json`.
//!
//! ```text
//! cargo run --release -p bench --bin loadgen -- \
//!     [--submissions N] [--tenants N] [--seed N] [--shards N]
//!     [--workers N] [--episodes N] [--finetune N] [--fleet 16|32|64]
//!     [--tenant-cap N] [--drain-rate N] [--prov-keep N]
//!     [--sizes 20,30] [--out FILE] [--trace-out FILE] [--summary-out FILE]
//!     [--snapshot-every N] [--snapshots-out FILE] [--slo FILE]
//! ```
//!
//! The arrival sequence is a pure function of `--seed`, so the
//! deterministic counters in the report (submissions, shed,
//! cache hits/misses, episode split, WFQ counters, makespan checksum)
//! reproduce exactly run to run and across worker counts; throughput
//! and sojourn quantiles are wall clock and vary. `--trace-out` keeps
//! binary frames when the path ends in `.bin` (the soak suite diffs
//! these byte-for-byte), JSONL otherwise. `--snapshot-every N` turns on
//! the sidecar metrics plane (schema-1.5 `snapshot` events every N
//! submissions plus one at drain); `--snapshots-out` writes that stream
//! and `--slo FILE` evaluates SLO rules live, recording breaches as
//! `slo_breach` sidecar events. The snapshot count, max observed queue
//! depth and final virtual time land in the report as strict gate
//! metrics. Megasubmission soaks combine
//! `--submissions 1000000 --tenants 10000 --prov-keep N` so the
//! provenance snapshots stay compact. Defaults match the committed
//! `BENCH_service.json` shape — mixed Montage/CyberShake/Epigenomics/
//! SIPHT/Inspiral arrivals over 16 tenants.

use svc::{generate_submissions, run_batch, LoadgenSpec, ServiceConfig};

struct Args {
    spec: LoadgenSpec,
    cfg: ServiceConfig,
    out: String,
    trace_out: Option<String>,
    summary_out: Option<String>,
    snapshots_out: Option<String>,
}

fn parse(argv: &[String]) -> Result<Args, String> {
    let mut spec = LoadgenSpec::default();
    let mut fleet: u32 = 16;
    let mut shards = None;
    let mut workers = None;
    let mut tenant_cap = None;
    let mut drain_rate = None;
    let mut prov_keep = None;
    let mut episodes = None;
    let mut finetune = None;
    let mut out = "BENCH_service.json".to_string();
    let mut trace_out = None;
    let mut summary_out = None;
    let mut snapshot_every = None;
    let mut snapshots_out = None;
    let mut slo_path: Option<String> = None;

    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        let num = |s: String, name: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("{name}: '{s}' is not a number"))
        };
        match a.as_str() {
            "--submissions" => spec.submissions = num(value("--submissions")?, a)? as u32,
            "--tenants" => spec.tenants = num(value("--tenants")?, a)? as u32,
            "--seed" => spec.seed = num(value("--seed")?, a)?,
            "--wf-seeds" => spec.workflow_seeds = num(value("--wf-seeds")?, a)?,
            "--sizes" => {
                spec.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("--sizes: bad entry '{s}'")))
                    .collect::<Result<_, _>>()?;
            }
            "--fleet" => fleet = num(value("--fleet")?, a)? as u32,
            "--shards" => shards = Some(num(value("--shards")?, a)? as u32),
            "--workers" => workers = Some(num(value("--workers")?, a)? as usize),
            "--tenant-cap" => tenant_cap = Some(num(value("--tenant-cap")?, a)? as usize),
            "--drain-rate" => drain_rate = Some(num(value("--drain-rate")?, a)? as u32),
            "--prov-keep" => prov_keep = Some(num(value("--prov-keep")?, a)? as u32),
            "--episodes" => episodes = Some(num(value("--episodes")?, a)? as u32),
            "--finetune" => finetune = Some(num(value("--finetune")?, a)? as u32),
            "--out" => out = value("--out")?,
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--summary-out" => summary_out = Some(value("--summary-out")?),
            "--snapshot-every" => snapshot_every = Some(num(value("--snapshot-every")?, a)?),
            "--snapshots-out" => snapshots_out = Some(value("--snapshots-out")?),
            "--slo" => slo_path = Some(value("--slo")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let mut cfg = ServiceConfig::with_paper_fleet(fleet).map_err(|e| e.to_string())?;
    if let Some(s) = shards {
        cfg.shards = s;
    }
    if let Some(w) = workers {
        cfg.workers = w;
    }
    if let Some(c) = tenant_cap {
        cfg.wfq.tenant_queue_cap = c;
    }
    if let Some(d) = drain_rate {
        cfg.wfq.drain_rate = d;
    }
    cfg.prov_keep_last = prov_keep;
    if let Some(e) = episodes {
        cfg.episodes_full = e;
    }
    if let Some(f) = finetune {
        cfg.episodes_finetune = f;
    }
    if let Some(n) = snapshot_every {
        cfg.snapshot_every = n;
    } else if snapshots_out.is_some() || slo_path.is_some() {
        // Sidecar output was asked for: default to a sensible cadence
        // instead of silently writing an empty stream.
        cfg.snapshot_every = 100;
    }
    if let Some(path) = &slo_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        cfg.slo = obs::slo::parse_rules(&text)?;
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(Args { spec, cfg, out, trace_out, summary_out, snapshots_out })
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse(&argv)?;
    let subs = generate_submissions(&args.spec);
    eprintln!(
        "loadgen: {} submissions, {} tenants, seed {}, {} shards × {} workers",
        args.spec.submissions, args.spec.tenants, args.spec.seed, args.cfg.shards, args.cfg.workers
    );
    let report = run_batch(&args.cfg, subs).map_err(|e| e.to_string())?;
    println!("{}", report.human_summary());
    std::fs::write(&args.out, report.bench_json()).map_err(|e| format!("{}: {e}", args.out))?;
    eprintln!("wrote {}", args.out);
    if let Some(path) = &args.trace_out {
        // `.bin` keeps the canonical binary frames (what the soak
        // suite byte-diffs across worker counts); else render JSONL.
        if path.ends_with(".bin") {
            std::fs::write(path, &report.trace).map_err(|e| format!("{path}: {e}"))?;
        } else {
            std::fs::write(path, report.trace_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    if let Some(path) = &args.summary_out {
        std::fs::write(path, report.all_tenant_summaries()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &args.snapshots_out {
        if path.ends_with(".bin") {
            std::fs::write(path, &report.snapshots).map_err(|e| format!("{path}: {e}"))?;
        } else {
            std::fs::write(path, report.snapshots_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        }
        eprintln!(
            "wrote {path} ({} snapshots, {} slo breach(es))",
            report.snapshot_count, report.slo_breaches
        );
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("loadgen: {e}");
        std::process::exit(2);
    }
}
