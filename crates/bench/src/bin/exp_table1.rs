//! Regenerates **Table I**: the VM configurations used in all
//! experiments.
//!
//! ```text
//! cargo run --release -p bench --bin exp_table1
//! ```

fn main() {
    println!("Table I: VM configurations used in the experiments\n");
    print!("{}", bench::format::render_table1(&bench::table1()));
    let fleets = cloud::Fleet::paper_fleets();
    println!("\nDerived fleet properties:");
    for (vcpus, fleet) in fleets {
        println!(
            "  {:>2} vCPUs: {:>2} VMs, {:>7.0} aggregate MIPS, ${:.4}/hour",
            vcpus,
            fleet.len(),
            fleet.total_mips(),
            fleet.hourly_cost_usd()
        );
    }
}
