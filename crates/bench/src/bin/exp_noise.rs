//! Extension: sensitivity to cloud dynamics — the performance
//! fluctuation, migration and failure effects that motivate RL
//! scheduling in the first place (paper §I). HEFT plans from nominal
//! estimates; ReASSIgN learns from the noisy environment directly.
//!
//! Methodology: ReASSIgN learns *inside* each scenario; its best plan
//! and HEFT's nominal plan are then both replayed through the same ten
//! fresh noise realizations, and mean makespans are compared.
//!
//! ```text
//! cargo run --release -p bench --bin exp_noise
//! ```

use cloud::Fleet;
use reassign::{learn, ReassignConfig};
use sched::heft_plan;
use wfcommon::SeedDerivation;
use wfsim::{FixedPlanScheduler, FluctuationKind, MigrationKind, Plan, SimConfig};
use workflow::montage50::montage50;

const REPLAY_SEEDS: u64 = 10;

/// Mean makespan of `plan` over fresh noise realizations (failed runs
/// are excluded; their count is returned separately).
fn mean_replay(plan: &Plan, cfg: &SimConfig) -> (f64, u32) {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let mut sum = 0.0;
    let mut ok = 0u32;
    let mut failed = 0u32;
    for seed in 1000..1000 + REPLAY_SEEDS {
        let mut s = FixedPlanScheduler::new(plan.clone());
        let res = wfsim::simulate(&wf, &fleet, &mut s, cfg, SeedDerivation::new(seed), None)
            .expect("replay");
        if res.success {
            sum += res.makespan.as_secs();
            ok += 1;
        } else {
            failed += 1;
        }
    }
    (if ok > 0 { sum / ok as f64 } else { f64::NAN }, failed)
}

fn main() {
    let episodes = std::env::var("REASSIGN_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(bench::PAPER_EPISODES);
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let heft = heft_plan(&wf, &fleet, bench::BANDWIDTH).expect("heft").plan;

    let scenarios: Vec<(&str, SimConfig)> = vec![
        ("quiet", SimConfig::deterministic()),
        ("mild noise", SimConfig::default()),
        ("heavy noise", SimConfig { fluctuation: FluctuationKind::Heavy, ..SimConfig::default() }),
        (
            "noise+migrations",
            SimConfig {
                fluctuation: FluctuationKind::Heavy,
                migration: MigrationKind::Poisson {
                    rate_per_hour: 12.0,
                    min_downtime_secs: 5.0,
                    max_downtime_secs: 20.0,
                },
                ..SimConfig::default()
            },
        ),
        (
            "noise+failures",
            SimConfig {
                fluctuation: FluctuationKind::Heavy,
                failure_prob: 0.02,
                max_retries: 5,
                ..SimConfig::default()
            },
        ),
        (
            "drained burst credits",
            SimConfig {
                fluctuation: FluctuationKind::Heavy,
                burst_throttling: true,
                burst_credit_scale: 0.0,
                ..SimConfig::default()
            },
        ),
    ];

    println!(
        "Noise sensitivity, Montage-50 on 16 vCPUs \
         ({episodes} episodes, {REPLAY_SEEDS}-seed replay means)\n"
    );
    println!(" scenario              | HEFT mean (s) | ReASSIgN mean (s) | ratio");
    println!("-----------------------+---------------+-------------------+------");
    for (name, cfg) in scenarios {
        // ReASSIgN learns inside this scenario.
        let config = ReassignConfig { episodes, ..ReassignConfig::default() };
        let out = learn(&wf, &fleet, "noise", &config, &cfg, None).expect("learn");
        let (heft_mean, heft_failed) = mean_replay(&heft, &cfg);
        let (rl_mean, rl_failed) = mean_replay(&out.best_episode_plan, &cfg);
        println!(
            " {:<21} | {:>13.1} | {:>17.1} | {:>4.2}{}",
            name,
            heft_mean,
            rl_mean,
            rl_mean / heft_mean,
            if heft_failed + rl_failed > 0 {
                format!("  ({heft_failed}/{rl_failed} failed)")
            } else {
                String::new()
            }
        );
    }
    println!("\n(ratio < 1: the learned plan outperforms HEFT's nominal plan under");
    println!(" the same weather; the gap should close as dynamics intensify)");
}
