//! Table rendering for the `exp_*` binaries, matching the paper's
//! layouts.

use crate::experiments::{SweepRow, Table1Row, Table4Row, Table5};
use wfcommon::fmt::hms_millis;
use wfcommon::ids::Idx;
use wfcommon::ActivationId;

/// Render Table I.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "# of VMs | # t2.micro | # t2.2xLarge | # of vCPUs\n---------+------------+--------------+-----------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>8} | {:>10} | {:>12} | {:>10}\n",
            r.vms, r.micro, r.large, r.vcpus
        ));
    }
    out
}

/// Render Tables II/III (same layout, different units).
pub fn render_sweep(rows: &[SweepRow], value_header: &str, decimals: usize) -> String {
    let mut out = format!(
        "alpha gamma epsilon | {vh} 16 vCPUs | {vh} 32 vCPUs | {vh} 64 vCPUs\n",
        vh = value_header
    );
    out.push_str(&"-".repeat(out.len().min(100)));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>5.1} {:>5.1} {:>7.1} | {:>16.d$} | {:>16.d$} | {:>16.d$}\n",
            r.alpha,
            r.gamma,
            r.epsilon,
            r.per_fleet[0],
            r.per_fleet[1],
            r.per_fleet[2],
            d = decimals,
        ));
    }
    out
}

/// Render Table IV with the paper's `HH:MM:SS.mmm` time format.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::from(
        "Algorithm | vCPUs | alpha | gamma | epsilon | Total Execution Time\n----------+-------+-------+-------+---------+---------------------\n",
    );
    for r in rows {
        let (a, g, e) = match r.params {
            Some((a, g, e)) => (format!("{a:.1}"), format!("{g:.1}"), format!("{e:.1}")),
            None => ("-".into(), "-".into(), "-".into()),
        };
        out.push_str(&format!(
            "{:<9} | {:>5} | {:>5} | {:>5} | {:>7} | {}\n",
            r.algorithm,
            r.vcpus,
            a,
            g,
            e,
            hms_millis(r.total_secs)
        ));
    }
    out
}

/// Render Table V: activation → VM per plan column.
pub fn render_table5(t: &Table5) -> String {
    let mut out = String::from(
        "Activation ID | HEFT | C1 (a=1.0) | C2 (a=0.5) | C3 (a=0.1)\n--------------+------+------------+------------+-----------\n",
    );
    for i in 0..t.workflow.len() {
        let ac = ActivationId::from_index(i);
        let cell = |p: &wfsim::Plan| {
            p.vm_for(ac).map(|v| v.raw().to_string()).unwrap_or_else(|| "-".into())
        };
        out.push_str(&format!(
            "{:>13} | {:>4} | {:>10} | {:>10} | {:>10}\n",
            i,
            cell(&t.heft),
            cell(&t.reassign[0]),
            cell(&t.reassign[1]),
            cell(&t.reassign[2]),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{table1, SweepSettings};

    #[test]
    fn table1_render_contains_counts() {
        let s = render_table1(&table1());
        assert!(s.contains("16"));
        assert!(s.contains("64"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn sweep_render_has_27_data_rows() {
        let result = crate::experiments::sweep(&SweepSettings::quick(1));
        let s = render_sweep(&result.simulated_makespans, "Makespan", 5);
        assert_eq!(s.lines().count(), 2 + 27);
    }

    #[test]
    fn table4_render_formats_hms() {
        let rows = vec![Table4Row {
            algorithm: "HEFT".into(),
            vcpus: 16,
            params: None,
            total_secs: wfcommon::SimTime(189.625),
        }];
        let s = render_table4(&rows);
        assert!(s.contains("00:03:09.625"), "{s}");
    }
}
