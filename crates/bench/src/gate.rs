//! Regression gate over the benchmark report and the golden traces.
//!
//! The gate folds two signal sources into one named-metric vector:
//!
//! 1. **`BENCH_learning.json`** — the serial/parallel wall-clock report
//!    written by the `bench_report` binary, which also carries two
//!    deterministic counters (`trace_events`, `td_updates`) from a
//!    seeded telemetry probe.
//! 2. **Golden traces** (`tests/golden/*.trace.jsonl`) — analyzed with
//!    `obs-analyze` into critical-path length, mean queue wait and VM
//!    utilization.
//!
//! Each metric carries a relative tolerance and an *advisory* flag.
//! Deterministic metrics are gated strictly (a seeded run must
//! reproduce them to within float round-trip); wall-clock metrics are
//! advisory only — they are reported but never fail the gate, because
//! CI hosts differ wildly in core count and load. Comparison is against
//! a committed baseline (`BENCH_baseline.json`, flat JSON written by
//! [`baseline_json`]); `bench_gate --write-baseline` refreshes it.
//!
//! A third class, **floor** metrics, gates throughput one-sidedly:
//! faster is always a pass, and a run only fails when it drops below
//! `baseline × (1 − tol)`. The generous tolerance absorbs host-to-host
//! variance while still catching order-of-magnitude collapses (an
//! accidental debug build, a quadratic merge, a serialization bottleneck).
//! `--write-baseline` *ratchets* floors: the written value is the max of
//! the previous baseline and the current measurement, so the floor only
//! ever moves up ([`ratchet`]).

use std::collections::HashMap;

use obs::event::json_f64;
use obs_analyze::{analyze_str, parse_flat_object, Scalar};

/// One gated quantity: a name, its current value, the relative
/// tolerance (`0.0` = must round-trip exactly), and whether a breach
/// only warns.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    pub name: String,
    pub value: f64,
    pub tol_frac: f64,
    pub advisory: bool,
    /// One-sided throughput floor: only a drop below
    /// `baseline × (1 − tol_frac)` regresses; any improvement passes
    /// and is ratcheted into the baseline on `--write-baseline`.
    pub floor: bool,
}

impl Metric {
    fn strict(name: &str, value: f64, tol_frac: f64) -> Self {
        Metric { name: name.into(), value, tol_frac, advisory: false, floor: false }
    }

    fn advisory(name: &str, value: f64) -> Self {
        Metric { name: name.into(), value, tol_frac: 0.5, advisory: true, floor: false }
    }

    fn floor(name: &str, value: f64) -> Self {
        Metric { name: name.into(), value, tol_frac: FLOOR_TOL, advisory: false, floor: true }
    }
}

/// Relative slack below a ratcheted throughput floor before the gate
/// fails. Wide enough for shared-runner noise and core-count skew,
/// narrow enough that a 2×+ collapse (debug build, accidental
/// re-serialization, clone-per-rollout relapse) cannot pass.
const FLOOR_TOL: f64 = 0.5;

/// Relative tolerance for trace-derived floats: generous enough for a
/// formatting round-trip, far tighter than any real regression.
const TRACE_TOL: f64 = 1e-3;

fn require(map: &HashMap<String, Scalar>, key: &str, src: &str) -> Result<f64, String> {
    let v = map
        .get(key)
        .and_then(Scalar::as_f64)
        .ok_or_else(|| format!("{src}: missing field '{key}' (regenerate with bench_report)"))?;
    if v.is_nan() {
        return Err(format!("{src}: field '{key}' is not a number"));
    }
    Ok(v)
}

/// Build the gated metric vector from the benchmark report and the two
/// golden traces. Fails loudly when a source is missing the fields the
/// gate needs — a silent skip would read as "no regression".
pub fn collect(
    bench_json: &str,
    heft_trace: &str,
    reassign_trace: &str,
) -> Result<Vec<Metric>, String> {
    let bench = parse_flat_object(bench_json.trim()).map_err(|e| format!("bench report: {e}"))?;
    let mut metrics = vec![
        Metric::strict("bench.trace_events", require(&bench, "trace_events", "bench report")?, 0.0),
        Metric::strict("bench.td_updates", require(&bench, "td_updates", "bench report")?, 0.0),
        Metric::advisory("bench.serial_secs", require(&bench, "serial_secs", "bench report")?),
        Metric::advisory("bench.parallel_secs", require(&bench, "parallel_secs", "bench report")?),
        // Simulator event throughput: ratcheted floor — may only rise.
        Metric::floor(
            "bench.sim_events_per_sec",
            require(&bench, "sim_events_per_sec", "bench report")?,
        ),
        // Fault probe: seeded HEFT replay under the mild fault profile —
        // pure functions of the seed, pinned exactly.
        Metric::strict(
            "bench.fault_makespan_secs",
            require(&bench, "fault_makespan_secs", "bench report")?,
            TRACE_TOL,
        ),
        Metric::strict(
            "bench.fault_retries",
            require(&bench, "fault_retries", "bench report")?,
            0.0,
        ),
        Metric::strict(
            "bench.fault_recoveries",
            require(&bench, "fault_recoveries", "bench report")?,
            0.0,
        ),
        // Replication probe: static-2 hedging over a pinned seed set
        // under the heavy profile. The launch/cancel/win counters are
        // pure functions of the seeds and pin exactly; the p95
        // makespan is advisory (it shifts with any legitimate change
        // to the fault schedule or scheduler).
        Metric::strict(
            "sim.replicas_launched",
            require(&bench, "replicas_launched", "bench report")?,
            0.0,
        ),
        Metric::strict(
            "sim.replicas_cancelled",
            require(&bench, "replicas_cancelled", "bench report")?,
            0.0,
        ),
        Metric::strict("sim.replica_wins", require(&bench, "replica_wins", "bench report")?, 0.0),
        Metric::advisory(
            "sim.repl_makespan_p95",
            require(&bench, "repl_makespan_p95", "bench report")?,
        ),
    ];

    let heft = analyze_str(heft_trace);
    let run = heft.final_run().ok_or_else(|| "heft trace: no simulation run found".to_string())?;
    if !run.complete {
        return Err("heft trace: run is truncated".into());
    }
    metrics.push(Metric::strict("heft.makespan_secs", run.makespan_secs, TRACE_TOL));
    metrics.push(Metric::strict(
        "heft.critical_path_secs",
        run.critical_path.length_secs,
        TRACE_TOL,
    ));
    metrics.push(Metric::strict(
        "heft.mean_queue_secs",
        run.queue.mean_secs().unwrap_or(0.0),
        TRACE_TOL,
    ));
    metrics.push(Metric::strict("heft.utilization", run.mean_vm_utilization(), TRACE_TOL));

    let learn = analyze_str(reassign_trace);
    if learn.learning.is_empty() {
        return Err("reassign trace: no learning events found".into());
    }
    metrics.push(Metric::strict(
        "reassign.best_makespan_secs",
        learn.learning.best_makespan_secs,
        TRACE_TOL,
    ));
    metrics.push(Metric::strict(
        "reassign.td_updates",
        learn.learning.total_td_updates as f64,
        0.0,
    ));
    Ok(metrics)
}

/// Build the service metric vector from a `BENCH_service.json` payload
/// (written by `loadgen` / `reassignd --report-out`). Counters and the
/// makespan checksum are pure functions of the loadgen seed and shard
/// count, so they gate strictly; throughput and sojourn quantiles are
/// wall clock and only warn.
pub fn collect_service(service_json: &str) -> Result<Vec<Metric>, String> {
    let svc = parse_flat_object(service_json.trim()).map_err(|e| format!("service report: {e}"))?;
    let f = |key: &str| require(&svc, key, "service report");
    Ok(vec![
        Metric::strict("svc.submissions", f("submissions")?, 0.0),
        Metric::strict("svc.admitted", f("admitted")?, 0.0),
        Metric::strict("svc.shed", f("shed")?, 0.0),
        Metric::strict("svc.completed", f("completed")?, 0.0),
        Metric::strict("svc.failed", f("failed")?, 0.0),
        Metric::strict("svc.cache_hits", f("cache_hits")?, 0.0),
        Metric::strict("svc.cache_misses", f("cache_misses")?, 0.0),
        Metric::strict("svc.hit_rate", f("hit_rate")?, TRACE_TOL),
        Metric::strict("svc.shed_rate", f("shed_rate")?, TRACE_TOL),
        Metric::strict("svc.episodes_per_hit", f("episodes_per_hit")?, TRACE_TOL),
        Metric::strict("svc.episodes_per_miss", f("episodes_per_miss")?, TRACE_TOL),
        Metric::strict("svc.makespan_sum_secs", f("makespan_sum_secs")?, TRACE_TOL),
        // WFQ admission counters: pure functions of the submission
        // sequence and tenant caps, so they pin exactly.
        Metric::strict("svc.wfq_backpressure", f("wfq_backpressure")?, 0.0),
        Metric::strict("svc.wfq_max_depth", f("wfq_max_depth")?, 0.0),
        Metric::strict("svc.wfq_rounds", f("wfq_rounds")?, 0.0),
        // Binary trace density: deterministic bytes over deterministic
        // events, gated tightly so frame bloat can't creep in.
        Metric::strict("obs.frame_bytes_per_event", f("frame_bytes_per_event")?, TRACE_TOL),
        // Metrics-plane snapshots ride a sidecar stream, but their
        // admission-plane payload is still a pure function of the
        // submission sequence: the snapshot count, the deepest queue
        // any snapshot observed, and the final WFQ virtual time all pin
        // exactly. A drift here means the snapshotter started sampling
        // nondeterministic state.
        Metric::strict("obs.snapshot_events", f("snapshot_events")?, 0.0),
        Metric::strict("obs.snapshot_max_queued", f("snapshot_max_queued")?, 0.0),
        Metric::strict("obs.snapshot_final_vt", f("snapshot_final_vt")?, 0.0),
        Metric::advisory("svc.throughput_per_sec", f("throughput_per_sec")?),
        // Same quantity as throughput_per_sec, but held to a ratcheted
        // one-sided floor: the service may not get slower than half the
        // best committed run, while the advisory twin keeps reporting
        // two-sided drift for humans.
        Metric::floor("svc.plans_per_sec", f("plans_per_sec")?),
        Metric::advisory("svc.p50_sojourn_ms", f("p50_sojourn_ms")?),
        Metric::advisory("svc.p99_sojourn_ms", f("p99_sojourn_ms")?),
        Metric::advisory("svc.wall_secs", f("wall_secs")?),
    ])
}

/// Serialize metrics as a flat JSON baseline, one key per metric, with
/// shortest-round-trip floats so exact-tolerance metrics survive the
/// write/read cycle bit-for-bit.
pub fn baseline_json(metrics: &[Metric]) -> String {
    let fields: Vec<String> =
        metrics.iter().map(|m| format!("\"{}\": {}", m.name, json_f64(m.value))).collect();
    format!("{{\n  {}\n}}\n", fields.join(",\n  "))
}

/// Parse a baseline produced by [`baseline_json`] into name → value.
pub fn parse_baseline(json: &str) -> Result<HashMap<String, f64>, String> {
    let flat = parse_flat_object(json.trim()).map_err(|e| format!("baseline: {e}"))?;
    Ok(flat.into_iter().filter_map(|(k, v)| v.as_f64().map(|f| (k, f))).collect())
}

/// Ratchet floor metrics against the previous baseline before writing a
/// new one: a floor value may only move up, so the written baseline is
/// `max(previous, current)`. One slow host refreshing the baseline can
/// therefore never erode a throughput floor established by a faster
/// run; non-floor metrics are written as measured.
pub fn ratchet(metrics: &mut [Metric], previous: &HashMap<String, f64>) {
    for m in metrics.iter_mut().filter(|m| m.floor) {
        if let Some(&prev) = previous.get(&m.name) {
            m.value = m.value.max(prev);
        }
    }
}

/// One comparison row in the gate report.
#[derive(Clone, Debug, PartialEq)]
pub struct GateRow {
    pub name: String,
    pub baseline: Option<f64>,
    pub current: f64,
    /// |current − baseline| / max(|baseline|, ε); `None` without a baseline.
    pub delta_frac: Option<f64>,
    pub status: GateStatus,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateStatus {
    Ok,
    /// Outside tolerance, but the metric is advisory (wall clock).
    Advisory,
    /// Present now, absent from the baseline (needs `--write-baseline`).
    New,
    Regression,
}

/// Gate outcome: per-metric rows plus the overall verdict.
#[derive(Clone, Debug)]
pub struct GateReport {
    pub rows: Vec<GateRow>,
    pub regressions: usize,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }
}

/// Compare current metrics against a baseline map. A baseline metric
/// that vanished from the current set is itself a regression — silent
/// metric loss must not read as a pass.
pub fn compare(metrics: &[Metric], baseline: &HashMap<String, f64>) -> GateReport {
    let mut rows = Vec::with_capacity(metrics.len());
    let mut regressions = 0usize;
    for m in metrics {
        let row = match baseline.get(&m.name) {
            None => GateRow {
                name: m.name.clone(),
                baseline: None,
                current: m.value,
                delta_frac: None,
                status: GateStatus::New,
            },
            Some(&base) => {
                let delta = (m.value - base).abs() / base.abs().max(1e-12);
                let within = if m.floor {
                    // One-sided: anything at or above the slackened
                    // floor passes; being *faster* than baseline is
                    // never a breach.
                    m.value >= base * (1.0 - m.tol_frac)
                } else if m.tol_frac == 0.0 {
                    m.value == base
                } else {
                    delta <= m.tol_frac
                };
                let status = match (within, m.advisory) {
                    (true, _) => GateStatus::Ok,
                    (false, true) => GateStatus::Advisory,
                    (false, false) => GateStatus::Regression,
                };
                GateRow {
                    name: m.name.clone(),
                    baseline: Some(base),
                    current: m.value,
                    delta_frac: Some(delta),
                    status,
                }
            }
        };
        if row.status == GateStatus::Regression {
            regressions += 1;
        }
        rows.push(row);
    }
    let current: std::collections::HashSet<&str> =
        metrics.iter().map(|m| m.name.as_str()).collect();
    for (name, &base) in baseline {
        if !current.contains(name.as_str()) {
            regressions += 1;
            rows.push(GateRow {
                name: name.clone(),
                baseline: Some(base),
                current: f64::NAN,
                delta_frac: None,
                status: GateStatus::Regression,
            });
        }
    }
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    GateReport { rows, regressions }
}

/// Render the gate report as an aligned human-readable table.
pub fn render(report: &GateReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>16} {:>16} {:>9}  status",
        "metric", "baseline", "current", "delta"
    );
    for r in &report.rows {
        let status = match r.status {
            GateStatus::Ok => "ok",
            GateStatus::Advisory => "ADVISORY",
            GateStatus::New => "NEW (run --write-baseline)",
            GateStatus::Regression => "REGRESSION",
        };
        let _ = writeln!(
            out,
            "{:<28} {:>16} {:>16} {:>9}  {status}",
            r.name,
            r.baseline.map_or_else(|| "-".into(), |v| format!("{v:.6}")),
            if r.current.is_nan() { "missing".into() } else { format!("{:.6}", r.current) },
            r.delta_frac.map_or_else(|| "-".into(), |d| format!("{:+.3}%", 100.0 * d)),
        );
    }
    let _ = writeln!(
        out,
        "gate: {}",
        if report.passed() {
            "PASS".to_string()
        } else {
            format!("FAIL ({} regression(s))", report.regressions)
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEFT: &str = include_str!("../../../tests/golden/montage50_heft.trace.jsonl");
    const REASSIGN: &str = include_str!("../../../tests/golden/montage50_reassign.trace.jsonl");
    const BENCH: &str = "{\"benchmark\":\"learning_serial_vs_parallel\",\"serial_secs\":0.6,\
                         \"parallel_secs\":0.8,\"sim_events_per_sec\":250000.5,\
                         \"trace_events\":132,\"td_updates\":200,\
                         \"fault_makespan_secs\":251.25,\"fault_retries\":4,\
                         \"fault_recoveries\":3,\"replicas_launched\":120,\
                         \"replicas_cancelled\":95,\"replica_wins\":14,\
                         \"repl_makespan_p95\":612.5}";

    const SERVICE: &str = "{\"submissions\":2000,\"admitted\":2000,\"shed\":0,\
                           \"completed\":2000,\"failed\":0,\"cache_hits\":1960,\
                           \"cache_misses\":40,\"hit_rate\":0.98,\"shed_rate\":0,\
                           \"episodes_per_hit\":2,\"episodes_per_miss\":6,\
                           \"makespan_sum_secs\":123456.5,\
                           \"wfq_backpressure\":0,\"wfq_max_depth\":3,\"wfq_rounds\":500,\
                           \"frame_bytes_per_event\":38.25,\"snapshot_events\":21,\
                           \"snapshot_max_queued\":3,\"snapshot_final_vt\":4000,\
                           \"throughput_per_sec\":41.5,\
                           \"plans_per_sec\":41.5,\"p50_sojourn_ms\":120.5,\
                           \"p99_sojourn_ms\":950.25,\"wall_secs\":48.2}";

    #[test]
    fn service_metrics_gate_strictly_except_wall_clock() {
        let metrics = collect_service(SERVICE).unwrap();
        assert_eq!(metrics.len(), 24);
        let baseline = parse_baseline(&baseline_json(&metrics)).unwrap();
        assert!(compare(&metrics, &baseline).passed());
        // Warm-start economics off by one episode: regression.
        let mut b1 = baseline.clone();
        *b1.get_mut("svc.episodes_per_hit").unwrap() += 1.0;
        assert!(!compare(&metrics, &b1).passed());
        // A WFQ counter drifting by one is a hard regression: the
        // admission schedule is deterministic.
        let mut b3 = baseline.clone();
        *b3.get_mut("svc.wfq_rounds").unwrap() += 1.0;
        assert!(!compare(&metrics, &b3).passed());
        // Frame bloat past the round-trip tolerance: regression.
        let mut b4 = baseline.clone();
        *b4.get_mut("obs.frame_bytes_per_event").unwrap() *= 1.05;
        assert!(!compare(&metrics, &b4).passed());
        // Snapshot-plane counters pin exactly: one extra snapshot or a
        // different final virtual time is a hard regression.
        let mut b5 = baseline.clone();
        *b5.get_mut("obs.snapshot_events").unwrap() += 1.0;
        assert!(!compare(&metrics, &b5).passed());
        let mut b6 = baseline.clone();
        *b6.get_mut("obs.snapshot_final_vt").unwrap() += 1.0;
        assert!(!compare(&metrics, &b6).passed());
        // Wall clock 10× off: advisory only.
        let mut b2 = baseline.clone();
        *b2.get_mut("svc.throughput_per_sec").unwrap() *= 10.0;
        *b2.get_mut("svc.p99_sojourn_ms").unwrap() *= 10.0;
        let report = compare(&metrics, &b2);
        assert!(report.passed(), "{}", render(&report));
    }

    #[test]
    fn truncated_service_report_is_rejected() {
        let err = collect_service("{\"submissions\":10}").unwrap_err();
        assert!(err.contains("admitted"), "{err}");
    }

    #[test]
    fn collect_roundtrips_through_baseline_exactly() {
        let metrics = collect(BENCH, HEFT, REASSIGN).unwrap();
        assert!(metrics.len() >= 13, "{metrics:?}");
        let baseline = parse_baseline(&baseline_json(&metrics)).unwrap();
        let report = compare(&metrics, &baseline);
        assert!(report.passed(), "{}", render(&report));
        assert!(report.rows.iter().all(|r| r.status == GateStatus::Ok));
    }

    #[test]
    fn deterministic_perturbation_fails_the_gate() {
        let metrics = collect(BENCH, HEFT, REASSIGN).unwrap();
        let mut baseline = parse_baseline(&baseline_json(&metrics)).unwrap();
        // Exact-tolerance counter off by one: regression.
        *baseline.get_mut("bench.td_updates").unwrap() += 1.0;
        let report = compare(&metrics, &baseline);
        assert_eq!(report.regressions, 1, "{}", render(&report));
        assert!(render(&report).contains("REGRESSION"));
        // Trace-derived float nudged past 0.1%: also a regression.
        let mut baseline2 = parse_baseline(&baseline_json(&metrics)).unwrap();
        *baseline2.get_mut("heft.critical_path_secs").unwrap() *= 1.01;
        assert!(!compare(&metrics, &baseline2).passed());
    }

    #[test]
    fn replication_counters_gate_strictly_but_p95_is_advisory() {
        let metrics = collect(BENCH, HEFT, REASSIGN).unwrap();
        let baseline = parse_baseline(&baseline_json(&metrics)).unwrap();
        for counter in ["sim.replicas_launched", "sim.replicas_cancelled", "sim.replica_wins"] {
            let mut b = baseline.clone();
            *b.get_mut(counter).unwrap() += 1.0;
            assert!(!compare(&metrics, &b).passed(), "{counter} must pin exactly");
        }
        let mut b = baseline.clone();
        *b.get_mut("sim.repl_makespan_p95").unwrap() *= 10.0;
        let report = compare(&metrics, &b);
        assert!(report.passed(), "p95 drift is advisory: {}", render(&report));
    }

    #[test]
    fn wall_clock_perturbation_is_advisory_only() {
        let metrics = collect(BENCH, HEFT, REASSIGN).unwrap();
        let mut baseline = parse_baseline(&baseline_json(&metrics)).unwrap();
        *baseline.get_mut("bench.serial_secs").unwrap() *= 10.0;
        let report = compare(&metrics, &baseline);
        assert!(report.passed(), "{}", render(&report));
        assert!(report.rows.iter().any(|r| r.status == GateStatus::Advisory));
        assert!(render(&report).contains("ADVISORY"));
    }

    #[test]
    fn missing_and_new_metrics_are_surfaced() {
        let metrics = collect(BENCH, HEFT, REASSIGN).unwrap();
        let mut baseline = parse_baseline(&baseline_json(&metrics)).unwrap();
        baseline.remove("heft.utilization");
        baseline.insert("ghost.metric".into(), 1.0);
        let report = compare(&metrics, &baseline);
        // The vanished-from-current metric is a regression; the
        // new-in-current one only asks for a baseline refresh.
        assert_eq!(report.regressions, 1, "{}", render(&report));
        assert!(report
            .rows
            .iter()
            .any(|r| r.name == "ghost.metric" && r.status == GateStatus::Regression));
        assert!(report
            .rows
            .iter()
            .any(|r| r.name == "heft.utilization" && r.status == GateStatus::New));
    }

    #[test]
    fn floor_metrics_gate_one_sidedly() {
        let metrics = collect(BENCH, HEFT, REASSIGN).unwrap();
        let floors: Vec<&Metric> = metrics.iter().filter(|m| m.floor).collect();
        assert_eq!(floors.len(), 1, "{floors:?}");
        assert_eq!(floors[0].name, "bench.sim_events_per_sec");
        let baseline = parse_baseline(&baseline_json(&metrics)).unwrap();

        // Being 10× faster than the floor is a plain pass, not even
        // advisory — improvement is the point.
        let mut fast = baseline.clone();
        *fast.get_mut("bench.sim_events_per_sec").unwrap() /= 10.0;
        let report = compare(&metrics, &fast);
        assert!(report.passed(), "{}", render(&report));
        assert!(report
            .rows
            .iter()
            .any(|r| r.name == "bench.sim_events_per_sec" && r.status == GateStatus::Ok));

        // Within the slack band below the floor: still a pass.
        let mut near = baseline.clone();
        *near.get_mut("bench.sim_events_per_sec").unwrap() *= 1.8;
        assert!(compare(&metrics, &near).passed());

        // Collapsing below baseline × (1 − tol): hard regression.
        let mut slow = baseline.clone();
        *slow.get_mut("bench.sim_events_per_sec").unwrap() *= 3.0;
        let report = compare(&metrics, &slow);
        assert!(!report.passed(), "{}", render(&report));
        assert!(report
            .rows
            .iter()
            .any(|r| r.name == "bench.sim_events_per_sec" && r.status == GateStatus::Regression));
    }

    #[test]
    fn service_plans_per_sec_is_a_floor() {
        let metrics = collect_service(SERVICE).unwrap();
        let floor = metrics.iter().find(|m| m.name == "svc.plans_per_sec").unwrap();
        assert!(floor.floor && !floor.advisory);
        let mut baseline = parse_baseline(&baseline_json(&metrics)).unwrap();
        *baseline.get_mut("svc.plans_per_sec").unwrap() *= 3.0;
        assert!(!compare(&metrics, &baseline).passed());
    }

    #[test]
    fn ratchet_only_raises_floor_metrics() {
        let mut metrics = collect(BENCH, HEFT, REASSIGN).unwrap();
        let mut previous = parse_baseline(&baseline_json(&metrics)).unwrap();
        // Previous baseline was faster and had a different strict value:
        // the floor keeps the faster figure, the strict metric follows
        // the current measurement.
        *previous.get_mut("bench.sim_events_per_sec").unwrap() *= 4.0;
        *previous.get_mut("bench.td_updates").unwrap() += 7.0;
        let faster = previous["bench.sim_events_per_sec"];
        let current_updates = metrics.iter().find(|m| m.name == "bench.td_updates").unwrap().value;
        ratchet(&mut metrics, &previous);
        let get = |name: &str| metrics.iter().find(|m| m.name == name).unwrap().value;
        assert_eq!(get("bench.sim_events_per_sec"), faster);
        assert_eq!(get("bench.td_updates"), current_updates);

        // A previous baseline *slower* than the current run is replaced.
        let mut slower = parse_baseline(&baseline_json(&metrics)).unwrap();
        *slower.get_mut("bench.sim_events_per_sec").unwrap() = 1.0;
        let mut fresh = collect(BENCH, HEFT, REASSIGN).unwrap();
        let measured = fresh.iter().find(|m| m.name == "bench.sim_events_per_sec").unwrap().value;
        ratchet(&mut fresh, &slower);
        assert_eq!(
            fresh.iter().find(|m| m.name == "bench.sim_events_per_sec").unwrap().value,
            measured
        );
    }

    #[test]
    fn trace_metrics_match_the_golden_values() {
        // The fixtures are committed; the analyzer must keep extracting
        // the same physics from them. Critical-path length equals the
        // HEFT makespan exactly (the chain telescopes to it).
        let metrics = collect(BENCH, HEFT, REASSIGN).unwrap();
        let get = |name: &str| metrics.iter().find(|m| m.name == name).unwrap().value;
        assert_eq!(get("heft.critical_path_secs"), get("heft.makespan_secs"));
        assert_eq!(get("heft.makespan_secs"), 242.27772627200002);
        assert_eq!(get("reassign.td_updates"), 150.0);
        assert!(
            (get("heft.utilization") - 0.18676789931879534).abs() < 1e-12,
            "{}",
            get("heft.utilization")
        );
    }

    #[test]
    fn stale_bench_report_is_rejected_with_guidance() {
        let stale = "{\"benchmark\":\"x\",\"serial_secs\":0.6,\"parallel_secs\":0.8}";
        let err = collect(stale, HEFT, REASSIGN).unwrap_err();
        assert!(err.contains("trace_events"), "{err}");
        assert!(err.contains("bench_report"), "{err}");
    }
}
