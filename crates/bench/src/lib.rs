//! Experiment harness shared by the `exp_*` binaries and the Criterion
//! benches.
//!
//! Every table of the paper's evaluation (§IV) has a regeneration
//! function here returning structured rows; the binaries format them,
//! and integration tests assert the qualitative *shape* the paper
//! reports (who wins, in which direction parameters move the result).

pub mod experiments;
pub mod format;
pub mod gate;

pub use experiments::*;
