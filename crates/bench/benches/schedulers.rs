//! Scheduler-cost benchmarks: HEFT plan construction (Table IV/V's
//! baseline) and per-decision cost of the online heuristics.

use cloud::Fleet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched::heft_plan;
use wfcommon::{ActivationId, SimTime, VmId};
use wfsim::{Decision, ExecHistory, Scheduler, SchedulerContext};
use workflow::generators::montage::{generate, MontageParams};
use workflow::montage50::montage50;

fn heft_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("heft_plan");
    for n in [50usize, 200, 500] {
        let wf = generate(&MontageParams::with_total_activations(n, 1).unwrap()).unwrap();
        for (vcpus, fleet) in Fleet::paper_fleets() {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), vcpus),
                &(&wf, fleet),
                |b, (wf, fleet)| b.iter(|| heft_plan(wf, fleet, 125.0e6).unwrap()),
            );
        }
    }
    group.finish();
}

fn online_decisions(c: &mut Criterion) {
    let wf = montage50();
    let fleet = Fleet::paper_64_vcpus();
    let hist = ExecHistory::new(fleet.len());
    let ready: Vec<ActivationId> = (0..11).map(ActivationId::new).collect();
    let idle: Vec<(VmId, u32)> = fleet.iter().map(|(id, vm)| (id, vm.vm_type.pes)).collect();

    let mut group = c.benchmark_group("decide");
    let mut bench_one = |name: &str, s: &mut dyn Scheduler| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let ctx = SchedulerContext {
                    now: SimTime::ZERO,
                    workflow: &wf,
                    fleet: &fleet,
                    ready: &ready,
                    idle_slots: &idle,
                    history: &hist,
                };
                match s.decide(&ctx) {
                    Decision::Assign { activation, vm } => (activation.raw(), vm.raw()),
                    Decision::DoNothing => (u32::MAX, u32::MAX),
                }
            })
        });
    };
    bench_one("fifo", &mut sched::Fifo);
    bench_one("mct", &mut sched::Mct);
    bench_one("min_min", &mut sched::MinMin);
    bench_one("max_min", &mut sched::MaxMin);
    let mut agent = reassign::ReassignScheduler::new(
        wf.len(),
        fleet.len(),
        reassign::ReassignConfig::default(),
    )
    .unwrap();
    bench_one("reassign", &mut agent);
    group.finish();
}

criterion_group!(benches, heft_planning, online_decisions);
criterion_main!(benches);
