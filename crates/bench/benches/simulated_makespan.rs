//! Table III's engine cost: one complete simulated Montage execution
//! per scheduler and fleet. These measure the simulator, not the
//! schedule quality (that is the `exp_table3` binary's job).

use cloud::Fleet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched::{heft_plan, Fifo, MinMin};
use wfcommon::SeedDerivation;
use wfsim::{simulate, FixedPlanScheduler, Scheduler, SimConfig};
use workflow::montage50::montage50;

fn simulate_montage(c: &mut Criterion) {
    let wf = montage50();
    let cfg = SimConfig::deterministic();
    let mut group = c.benchmark_group("simulate_montage50");
    for (vcpus, fleet) in Fleet::paper_fleets() {
        group.bench_with_input(BenchmarkId::new("fifo", vcpus), &fleet, |b, fleet| {
            b.iter(|| {
                simulate(&wf, fleet, &mut Fifo, &cfg, SeedDerivation::new(1), None)
                    .unwrap()
                    .makespan
            })
        });
        group.bench_with_input(BenchmarkId::new("min_min", vcpus), &fleet, |b, fleet| {
            b.iter(|| {
                simulate(&wf, fleet, &mut MinMin, &cfg, SeedDerivation::new(1), None)
                    .unwrap()
                    .makespan
            })
        });
        let plan = heft_plan(&wf, &fleet, 125.0e6).unwrap().plan;
        group.bench_with_input(BenchmarkId::new("heft_replay", vcpus), &fleet, |b, fleet| {
            b.iter(|| {
                let mut s: Box<dyn Scheduler> = Box::new(FixedPlanScheduler::new(plan.clone()));
                simulate(&wf, fleet, s.as_mut(), &cfg, SeedDerivation::new(1), None)
                    .unwrap()
                    .makespan
            })
        });
    }
    group.finish();
}

fn simulate_larger_montage(c: &mut Criterion) {
    use workflow::generators::montage::{generate, MontageParams};
    let fleet = Fleet::paper_32_vcpus();
    let cfg = SimConfig::deterministic();
    let mut group = c.benchmark_group("simulate_montage_scaling");
    for n in [50usize, 100, 200, 500] {
        let wf = generate(&MontageParams::with_total_activations(n, 1).unwrap()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &wf, |b, wf| {
            b.iter(|| {
                simulate(wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(2), None)
                    .unwrap()
                    .makespan
            })
        });
    }
    group.finish();
}

criterion_group!(benches, simulate_montage, simulate_larger_montage);
criterion_main!(benches);
