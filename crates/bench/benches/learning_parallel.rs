//! Serial vs parallel learning: wall-clock of the same episode budget
//! at different rollout fan-outs. On a multi-core machine the K > 1
//! variants should approach `serial / min(K, cores)`; on a single core
//! they stay within rayon's overhead of the serial time.

use cloud::Fleet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reassign::{learn, learn_parallel, ReassignConfig};
use wfsim::SimConfig;
use workflow::montage50::montage50;

const EPISODES: u32 = 32;

fn rollout_fanout(c: &mut Criterion) {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let sim = SimConfig::default();
    let config = ReassignConfig { episodes: EPISODES, ..ReassignConfig::default() };
    let mut group = c.benchmark_group("learning_rollouts");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| learn(&wf, &fleet, "bench", &config, &sim, None).unwrap().greedy_makespan)
    });
    for rollouts in [1u32, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", rollouts),
            &rollouts,
            |b, &rollouts| {
                b.iter(|| {
                    learn_parallel(&wf, &fleet, "bench", &config, &sim, rollouts, None)
                        .unwrap()
                        .greedy_makespan
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, rollout_fanout);
criterion_main!(benches);
