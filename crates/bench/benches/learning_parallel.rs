//! Serial vs parallel learning: wall-clock of the same episode budget
//! at different rollout fan-outs. On a multi-core machine the K > 1
//! variants should approach `serial / min(K, cores)`; on a single core
//! they stay within rayon's overhead of the serial time.
//!
//! The `learning_threads` group pins the rollout fan-out at 8 and
//! varies only the rayon pool size (1/2/4/8 worker threads), so the
//! scaling curve of the batched delta-rollout path can be read
//! directly against a known thread count instead of whatever the host
//! happens to provide. The detected core count is printed once so a
//! flat curve on a small machine isn't mistaken for a regression.

use cloud::Fleet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::ThreadPoolBuilder;
use reassign::{learn, learn_parallel, ReassignConfig};
use wfsim::SimConfig;
use workflow::montage50::montage50;

const EPISODES: u32 = 32;
const MATRIX_ROLLOUTS: u32 = 8;

fn rollout_fanout(c: &mut Criterion) {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let sim = SimConfig::default();
    let config = ReassignConfig { episodes: EPISODES, ..ReassignConfig::default() };
    let mut group = c.benchmark_group("learning_rollouts");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| learn(&wf, &fleet, "bench", &config, &sim, None).unwrap().greedy_makespan)
    });
    for rollouts in [1u32, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", rollouts),
            &rollouts,
            |b, &rollouts| {
                b.iter(|| {
                    learn_parallel(&wf, &fleet, "bench", &config, &sim, rollouts, None)
                        .unwrap()
                        .greedy_makespan
                })
            },
        );
    }
    group.finish();
}

fn thread_matrix(c: &mut Criterion) {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let sim = SimConfig::default();
    let config = ReassignConfig { episodes: EPISODES, ..ReassignConfig::default() };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "learning_threads: {cores} cores detected; pools above that \
         oversubscribe and should plateau, not regress"
    );
    let mut group = c.benchmark_group("learning_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        // A dedicated pool per data point pins the worker count exactly
        // — results must be identical across pools (worker-count
        // invariance), only the wall clock may move.
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().expect("rayon pool");
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                pool.install(|| {
                    learn_parallel(&wf, &fleet, "bench", &config, &sim, MATRIX_ROLLOUTS, None)
                        .unwrap()
                        .greedy_makespan
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, rollout_fanout, thread_matrix);
criterion_main!(benches);
