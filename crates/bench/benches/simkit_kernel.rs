//! Microbenchmarks of the discrete-event kernel: queue throughput and
//! cascade processing — the inner loop under every experiment table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simkit::{EventQueue, Simulation};
use wfcommon::SimTime;

fn queue_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Pseudo-random times via a multiplicative hash.
                for i in 0..n {
                    let t = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64;
                    q.push(SimTime(t), i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                sum
            })
        });
    }
    group.finish();
}

fn simulation_cascade(c: &mut Criterion) {
    c.bench_function("simulation_cascade_100k", |b| {
        b.iter(|| {
            let mut sim: Simulation<u32> = Simulation::new();
            sim.schedule(SimTime(0.0), 100_000).unwrap();
            sim.run(200_000, |sim, ev| {
                if ev > 0 {
                    sim.schedule_in(SimTime(0.001), ev - 1)?;
                }
                Ok(())
            })
            .unwrap()
        })
    });
}

criterion_group!(benches, queue_push_pop, simulation_cascade);
criterion_main!(benches);
