//! Table II's measurement as a Criterion benchmark: wall-clock cost of
//! ReASSIgN learning per fleet size. The paper's shape — learning time
//! grows with fleet size — shows up directly in these numbers.

use cloud::Fleet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reassign::{learn, ReassignConfig};
use wfsim::SimConfig;
use workflow::montage50::montage50;

fn learning_per_fleet(c: &mut Criterion) {
    let wf = montage50();
    let sim = SimConfig::default();
    let mut group = c.benchmark_group("learning_10_episodes");
    group.sample_size(20);
    for (vcpus, fleet) in Fleet::paper_fleets() {
        group.bench_with_input(BenchmarkId::from_parameter(vcpus), &fleet, |b, fleet| {
            b.iter(|| {
                let config = ReassignConfig { episodes: 10, ..ReassignConfig::default() };
                learn(&wf, fleet, "bench", &config, &sim, None).unwrap().greedy_makespan
            })
        });
    }
    group.finish();
}

fn learning_vs_episode_budget(c: &mut Criterion) {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let sim = SimConfig::default();
    let mut group = c.benchmark_group("learning_budget");
    group.sample_size(10);
    for episodes in [10u32, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(episodes), &episodes, |b, &episodes| {
            b.iter(|| {
                let config = ReassignConfig { episodes, ..ReassignConfig::default() };
                learn(&wf, &fleet, "bench", &config, &sim, None).unwrap().greedy_makespan
            })
        });
    }
    group.finish();
}

criterion_group!(benches, learning_per_fleet, learning_vs_episode_budget);
criterion_main!(benches);
