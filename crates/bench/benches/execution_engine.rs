//! Benchmarks of the threaded SciCumulus-substitute execution engine:
//! how much wall-clock overhead the master/worker machinery adds on top
//! of the (compressed) sleeps.

use cloud::Fleet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched::heft_plan;
use scirun::{ExecConfig, ExecutionEngine};
use workflow::generators::montage::{generate, MontageParams};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("scirun_execute");
    group.sample_size(10);
    for n in [50usize, 150] {
        let wf = generate(&MontageParams::with_total_activations(n, 1).unwrap()).unwrap();
        for (vcpus, fleet) in Fleet::paper_fleets() {
            let plan = heft_plan(&wf, &fleet, 125.0e6).unwrap().plan;
            let engine = ExecutionEngine::new(
                fleet.clone(),
                // Extreme compression: measures engine overhead, not sleeps.
                ExecConfig {
                    time_compression: 1.0e6,
                    jitter_cv: 0.0,
                    seed: 1,
                    ..ExecConfig::default()
                },
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), vcpus),
                &(&wf, &plan),
                |b, (wf, plan)| {
                    b.iter(|| {
                        let report = engine.execute(wf, plan).unwrap();
                        assert!(report.success);
                        report.makespan
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
