//! Pay-per-use cost accounting.
//!
//! The paper notes that executing RL trial-and-error directly in a real
//! cloud "may be financially expensive … since the user pays per hour"
//! (§III-D) — the very reason ReASSIgN learns in the simulator first.
//! This module quantifies that: given VM busy intervals it computes the
//! on-demand bill under hourly (EC2 2019) or per-second granularity.

use crate::fleet::Fleet;
use serde::{Deserialize, Serialize};
use wfcommon::{SimTime, VmId};

/// Billing rounding rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BillingGranularity {
    /// Round each VM's usage up to whole hours (classic EC2).
    PerHour,
    /// Bill exact seconds with a 60-second minimum (modern EC2/Linux).
    PerSecondMin60,
}

/// Cost in USD of running the given per-VM busy durations.
///
/// `usage` maps each VM to the span it was provisioned (typically
/// `deprovision_time - provision_time`, not just CPU-busy time — you
/// pay for idle VMs too).
pub fn execution_cost_usd(
    fleet: &Fleet,
    usage: &[(VmId, SimTime)],
    granularity: BillingGranularity,
) -> f64 {
    usage
        .iter()
        .map(|&(vm, span)| {
            let hourly = fleet.vm(vm).vm_type.price_per_hour;
            let secs = span.as_secs().max(0.0);
            match granularity {
                BillingGranularity::PerHour => hourly * (secs / 3600.0).ceil(),
                BillingGranularity::PerSecondMin60 => hourly * secs.max(60.0) / 3600.0,
            }
        })
        .sum()
}

/// Cost of keeping the *whole* fleet provisioned for `makespan`.
pub fn whole_fleet_cost_usd(
    fleet: &Fleet,
    makespan: SimTime,
    granularity: BillingGranularity,
) -> f64 {
    let usage: Vec<(VmId, SimTime)> = fleet.ids().into_iter().map(|id| (id, makespan)).collect();
    execution_cost_usd(fleet, &usage, granularity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmtype::VmType;

    fn one_micro() -> Fleet {
        let mut f = Fleet::new();
        f.add(&VmType::t2_micro(), 1);
        f
    }

    #[test]
    fn hourly_rounds_up() {
        let f = one_micro();
        let vm = f.ids()[0];
        let c = execution_cost_usd(&f, &[(vm, SimTime(3601.0))], BillingGranularity::PerHour);
        assert!((c - 2.0 * 0.0116).abs() < 1e-9);
    }

    #[test]
    fn per_second_has_sixty_second_floor() {
        let f = one_micro();
        let vm = f.ids()[0];
        let c = execution_cost_usd(&f, &[(vm, SimTime(10.0))], BillingGranularity::PerSecondMin60);
        assert!((c - 0.0116 * 60.0 / 3600.0).abs() < 1e-12);
        let c2 =
            execution_cost_usd(&f, &[(vm, SimTime(1800.0))], BillingGranularity::PerSecondMin60);
        assert!((c2 - 0.0116 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn whole_fleet_charges_every_vm() {
        let f = Fleet::paper_16_vcpus();
        let c = whole_fleet_cost_usd(&f, SimTime(3600.0), BillingGranularity::PerHour);
        assert!((c - f.hourly_cost_usd()).abs() < 1e-9);
    }

    #[test]
    fn negative_span_clamps_to_zero_then_floor() {
        let f = one_micro();
        let vm = f.ids()[0];
        let c = execution_cost_usd(&f, &[(vm, SimTime(-5.0))], BillingGranularity::PerHour);
        assert_eq!(c, 0.0);
    }
}
