//! Virtual-machine type catalogue.

use serde::{Deserialize, Serialize};

/// A VM flavour (e.g. `t2.micro`): processing elements, per-core
/// rating, memory and price.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VmType {
    /// Flavour name, e.g. `t2.micro`.
    pub name: String,
    /// Number of processing elements (vCPUs). A VM executes up to
    /// `pes` activations concurrently, one per element (space-shared),
    /// matching WorkflowSim's space-shared cloudlet scheduler.
    pub pes: u32,
    /// Rating of each processing element in MIPS. An activation of
    /// `L` MI takes `L / mips_per_pe` seconds on one element (before
    /// performance fluctuation).
    pub mips_per_pe: f64,
    /// Memory in MiB (capacity constraint for co-located activations).
    pub ram_mib: u32,
    /// On-demand price in USD per hour (us-east-1, 2019 pricing).
    pub price_per_hour: f64,
    /// Burstable-instance baseline as a fraction of full per-core
    /// speed (t2 family). 1.0 = not burstable / never throttles.
    pub baseline_fraction: f64,
    /// Full-speed seconds per processing element before CPU credits
    /// run out and the instance drops to `baseline_fraction` (only
    /// applied when the simulator enables burst throttling).
    pub burst_credit_secs_per_pe: f64,
}

impl VmType {
    /// Amazon EC2 `t2.micro`: 1 vCPU, 1 GiB — the paper's small flavour.
    pub fn t2_micro() -> Self {
        Self {
            name: "t2.micro".into(),
            pes: 1,
            mips_per_pe: 1000.0,
            ram_mib: 1024,
            price_per_hour: 0.0116,
            // t2.micro: 10 % baseline, small credit balance.
            baseline_fraction: 0.10,
            burst_credit_secs_per_pe: 600.0,
        }
    }

    /// Amazon EC2 `t2.2xlarge`: 8 vCPUs, 16 GiB — the paper's "robust"
    /// flavour. Slightly faster per core in addition to eight-way
    /// parallelism, which is what makes the RL scheduler concentrate
    /// compute-intensive activations on it (paper §IV-C, Table V).
    pub fn t2_2xlarge() -> Self {
        Self {
            name: "t2.2xlarge".into(),
            pes: 8,
            mips_per_pe: 1250.0,
            ram_mib: 16 * 1024,
            price_per_hour: 0.3712,
            // t2.2xlarge: ~17 % per-vCPU baseline, much deeper credits.
            baseline_fraction: 0.17,
            burst_credit_secs_per_pe: 1800.0,
        }
    }

    /// Aggregate rating of the whole VM in MIPS.
    pub fn total_mips(&self) -> f64 {
        self.mips_per_pe * self.pes as f64
    }

    /// Seconds to execute `length_mi` on one processing element.
    pub fn exec_secs(&self, length_mi: f64) -> f64 {
        length_mi / self.mips_per_pe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one_flavours() {
        let micro = VmType::t2_micro();
        assert_eq!(micro.pes, 1);
        assert_eq!(micro.ram_mib, 1024);
        let big = VmType::t2_2xlarge();
        assert_eq!(big.pes, 8);
        assert_eq!(big.ram_mib, 16384);
        assert!(big.mips_per_pe > micro.mips_per_pe);
    }

    #[test]
    fn exec_secs_scales_inverse_to_rating() {
        let micro = VmType::t2_micro();
        let big = VmType::t2_2xlarge();
        assert!((micro.exec_secs(10_000.0) - 10.0).abs() < 1e-12);
        assert!(big.exec_secs(10_000.0) < micro.exec_secs(10_000.0));
    }

    #[test]
    fn burst_parameters_follow_t2_family() {
        let micro = VmType::t2_micro();
        let big = VmType::t2_2xlarge();
        assert!(micro.baseline_fraction < big.baseline_fraction);
        assert!(micro.burst_credit_secs_per_pe < big.burst_credit_secs_per_pe);
        assert!((0.0..=1.0).contains(&micro.baseline_fraction));
    }

    #[test]
    fn total_mips_counts_all_elements() {
        assert_eq!(VmType::t2_2xlarge().total_mips(), 10_000.0);
        assert_eq!(VmType::t2_micro().total_mips(), 1000.0);
    }
}
