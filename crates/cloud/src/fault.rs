//! Fault taxonomy beyond transient attempt failures.
//!
//! The paper's activation state machine reaches *finished with
//! failure* "due to a problem in the hardware or other issues"
//! (§III-A). [`crate::FailureModel`] covers the transient per-attempt
//! case; this module adds the heavier hardware faults an RL scheduler
//! should learn around:
//!
//! * **VM crashes** — a VM dies, every activation in flight on it is
//!   lost, and the VM stays down for a repair interval before coming
//!   back. Crash times are pre-sampled per VM as a Poisson process
//!   (the [`crate::MigrationModel`] idiom), so a schedule is fixed by
//!   the seed alone and never depends on simulation order.
//! * **Stragglers** — an attempt runs on degraded hardware and takes a
//!   multiple of its nominal time. Drawn as a pure counter-RNG
//!   function of `(seed, activation, vm, attempt)` in the
//!   [`crate::FailureModel`] style: re-asking never consumes a stream,
//!   so query order cannot change outcomes.
//! * **Lost acks** — the completion message for an attempt is dropped
//!   on the worker channel (used by the real-time `scirun` engine).
//!   Keyed on `(seed, activation, attempt)` only, because in `scirun`
//!   the channel — not the VM — loses the message.
//!
//! Recovery knobs (retry backoff, per-attempt timeout, blacklist
//! threshold) live here too so every engine shares one policy source.

use serde::{Deserialize, Serialize};
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, SeedDerivation, SimTime, VmId};

use crate::failure::mix;

/// Fault-injection and recovery-policy knobs. The default is inert:
/// every probability/rate is zero, so engines behave exactly as they
/// did before the fault subsystem existed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Mean time between crashes per VM, in hours. `0` disables
    /// crashes entirely.
    pub vm_mtbf_hours: f64,
    /// Seconds a crashed VM stays down before its PEs return.
    pub repair_secs: f64,
    /// Probability that one attempt is a straggler.
    pub straggler_prob: f64,
    /// Runtime multiplier applied to straggler attempts (≥ 1).
    pub straggler_factor: f64,
    /// Probability that one attempt's completion ack is lost
    /// (`scirun` only; the simulator has no lossy channel).
    pub lost_ack_prob: f64,
    /// Per-attempt timeout in simulated seconds: an attempt that would
    /// run longer is killed and re-dispatched. `0` disables timeouts.
    pub timeout_secs: f64,
    /// Base of the exponential retry backoff: retry `n` (1-based)
    /// waits `backoff_base_secs * 2^(n-1)` before re-entering the
    /// ready queue. `0` keeps the legacy immediate-retry path.
    pub backoff_base_secs: f64,
    /// Blacklist a VM permanently after this many crash/timeout faults
    /// (graceful degradation instead of livelock). `0` never
    /// blacklists.
    pub blacklist_after: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultConfig {
    /// No faults, no recovery policies — byte-identical legacy
    /// behavior.
    pub fn none() -> Self {
        Self {
            vm_mtbf_hours: 0.0,
            repair_secs: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            lost_ack_prob: 0.0,
            timeout_secs: 0.0,
            backoff_base_secs: 0.0,
            blacklist_after: 0,
        }
    }

    /// A gentle profile: rare crashes with quick repair, occasional
    /// stragglers, no blacklisting.
    pub fn mild() -> Self {
        Self {
            vm_mtbf_hours: 2.0,
            repair_secs: 30.0,
            straggler_prob: 0.05,
            straggler_factor: 2.0,
            lost_ack_prob: 0.02,
            timeout_secs: 0.0,
            backoff_base_secs: 1.0,
            blacklist_after: 0,
        }
    }

    /// A hostile profile: frequent crashes, slow repair, heavy
    /// stragglers, timeouts and blacklisting engaged.
    pub fn heavy() -> Self {
        Self {
            vm_mtbf_hours: 0.25,
            repair_secs: 120.0,
            straggler_prob: 0.15,
            straggler_factor: 4.0,
            lost_ack_prob: 0.05,
            timeout_secs: 600.0,
            backoff_base_secs: 2.0,
            blacklist_after: 3,
        }
    }

    /// Resolve a named profile (`none` | `mild` | `heavy`).
    pub fn from_profile(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "mild" => Some(Self::mild()),
            "heavy" => Some(Self::heavy()),
            _ => None,
        }
    }

    /// Whether every fault channel is disabled (the config cannot
    /// change an engine's behavior).
    pub fn is_inert(&self) -> bool {
        self.vm_mtbf_hours == 0.0
            && self.straggler_prob == 0.0
            && self.lost_ack_prob == 0.0
            && self.timeout_secs == 0.0
            && self.backoff_base_secs == 0.0
    }

    /// Validate ranges; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..).contains(&self.vm_mtbf_hours) {
            return Err(format!("vm_mtbf_hours must be >= 0, got {}", self.vm_mtbf_hours));
        }
        if !(0.0..).contains(&self.repair_secs) {
            return Err(format!("repair_secs must be >= 0, got {}", self.repair_secs));
        }
        if !(0.0..=1.0).contains(&self.straggler_prob) {
            return Err(format!("straggler_prob must be in [0, 1], got {}", self.straggler_prob));
        }
        if !(1.0..).contains(&self.straggler_factor) {
            return Err(format!("straggler_factor must be >= 1, got {}", self.straggler_factor));
        }
        if !(0.0..=1.0).contains(&self.lost_ack_prob) {
            return Err(format!("lost_ack_prob must be in [0, 1], got {}", self.lost_ack_prob));
        }
        if !(0.0..).contains(&self.timeout_secs) {
            return Err(format!("timeout_secs must be >= 0, got {}", self.timeout_secs));
        }
        if !(0.0..).contains(&self.backoff_base_secs) {
            return Err(format!("backoff_base_secs must be >= 0, got {}", self.backoff_base_secs));
        }
        Ok(())
    }

    /// Seconds retry `n` (1-based) waits before re-entering the ready
    /// queue: `backoff_base_secs * 2^(n-1)`, saturating on the shift.
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        if self.backoff_base_secs <= 0.0 || retry == 0 {
            return 0.0;
        }
        self.backoff_base_secs * 2f64.powi((retry - 1).min(60) as i32)
    }
}

/// Deterministic fault injector: pre-sampled crash schedules plus pure
/// counter-RNG straggler / lost-ack draws.
#[derive(Clone, Debug)]
pub struct FaultModel {
    config: FaultConfig,
    seed: u64,
    /// Per-VM crash instants, sorted ascending. Consecutive crashes on
    /// one VM are at least `repair_secs` apart (a VM cannot crash
    /// while it is already down).
    crashes: Vec<Vec<SimTime>>,
}

impl FaultModel {
    /// Build the injector for `vm_count` VMs over `[0, horizon]`.
    /// Crash instants are fixed here, per VM, from the seed alone.
    pub fn new(
        config: FaultConfig,
        vm_count: usize,
        horizon: SimTime,
        seeds: SeedDerivation,
    ) -> Self {
        // Crash-free configs keep the outer schedule empty instead of
        // holding one empty list per VM — `crashes()` already treats a
        // missing entry as "no crashes", and learning loops rebuild the
        // model every episode, so the inert path must not allocate.
        let mut crashes =
            if config.vm_mtbf_hours > 0.0 { vec![Vec::new(); vm_count] } else { Vec::new() };
        if config.vm_mtbf_hours > 0.0 {
            let rate_per_sec = 1.0 / (config.vm_mtbf_hours * 3600.0);
            for (vm, list) in crashes.iter_mut().enumerate() {
                let mut rng = seeds.rng_for("faults-crash", vm as u64);
                let mut t = 0.0f64;
                loop {
                    use rand::Rng as _;
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() / rate_per_sec;
                    if t > horizon.as_secs() {
                        break;
                    }
                    list.push(SimTime(t));
                    // The VM is down (not exposed to crashes) while
                    // under repair.
                    t += config.repair_secs;
                }
            }
        }
        Self { config, seed: seeds.seed_for("faults", 0), crashes }
    }

    /// An injector that never faults.
    pub fn none() -> Self {
        Self { config: FaultConfig::none(), seed: 0, crashes: Vec::new() }
    }

    /// The config this model was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Pre-sampled crash instants for `vm`, sorted ascending. Empty
    /// for VMs beyond the sampled fleet or when crashes are disabled.
    pub fn crashes(&self, vm: VmId) -> &[SimTime] {
        self.crashes.get(vm.index()).map_or(&[], Vec::as_slice)
    }

    /// Total pre-sampled crash count across the fleet.
    pub fn crash_count(&self) -> usize {
        self.crashes.iter().map(Vec::len).sum()
    }

    /// The uniform variate in `[0, 1)` behind one salted draw.
    fn uniform(&self, salt: u64, a: u64, b: u64) -> f64 {
        let key = mix(mix(self.seed ^ salt)
            .wrapping_add((a << 1) | 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b);
        (mix(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether this attempt straggles (runs `straggler_factor` ×
    /// slower). Pure in `(seed, ac, vm, attempt)`.
    pub fn straggles(&self, ac: ActivationId, vm: VmId, attempt: u32) -> bool {
        self.config.straggler_prob > 0.0
            && self.uniform(
                0x7374_7261_6767_6c65, // "straggle"
                ac.index() as u64,
                ((vm.index() as u64) << 32) | u64::from(attempt),
            ) < self.config.straggler_prob
    }

    /// Runtime multiplier for this attempt (1.0 or the straggler
    /// factor).
    pub fn slowdown(&self, ac: ActivationId, vm: VmId, attempt: u32) -> f64 {
        if self.straggles(ac, vm, attempt) {
            self.config.straggler_factor
        } else {
            1.0
        }
    }

    /// Whether this attempt's completion ack is lost on the worker
    /// channel. Pure in `(seed, ac, attempt)`.
    pub fn ack_lost(&self, ac: ActivationId, attempt: u32) -> bool {
        self.config.lost_ack_prob > 0.0
            && self.uniform(
                0x6c6f_7374_2d61_636b, // "lost-ack"
                ac.index() as u64,
                u64::from(attempt),
            ) < self.config.lost_ack_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(config: FaultConfig, seed: u64) -> FaultModel {
        FaultModel::new(config, 4, SimTime(3600.0 * 10.0), SeedDerivation::new(seed))
    }

    #[test]
    fn default_is_inert() {
        let c = FaultConfig::default();
        assert!(c.is_inert());
        assert!(c.validate().is_ok());
        let m = model(c, 1);
        assert_eq!(m.crash_count(), 0);
        assert!(!m.straggles(ActivationId::new(0), VmId::new(0), 0));
        assert!(!m.ack_lost(ActivationId::new(0), 0));
        assert_eq!(m.slowdown(ActivationId::new(0), VmId::new(0), 0), 1.0);
    }

    #[test]
    fn profiles_resolve_and_validate() {
        for name in ["none", "mild", "heavy"] {
            let c = FaultConfig::from_profile(name).unwrap();
            assert!(c.validate().is_ok(), "{name}");
        }
        assert!(FaultConfig::from_profile("bogus").is_none());
        assert!(!FaultConfig::mild().is_inert());
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        for bad in [
            FaultConfig { vm_mtbf_hours: -1.0, ..FaultConfig::none() },
            FaultConfig { repair_secs: -1.0, ..FaultConfig::none() },
            FaultConfig { straggler_prob: 1.5, ..FaultConfig::none() },
            FaultConfig { straggler_factor: 0.5, ..FaultConfig::none() },
            FaultConfig { lost_ack_prob: -0.1, ..FaultConfig::none() },
            FaultConfig { timeout_secs: f64::NAN, ..FaultConfig::none() },
            FaultConfig { backoff_base_secs: -2.0, ..FaultConfig::none() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let c = FaultConfig { backoff_base_secs: 1.5, ..FaultConfig::none() };
        assert_eq!(c.backoff_secs(1), 1.5);
        assert_eq!(c.backoff_secs(2), 3.0);
        assert_eq!(c.backoff_secs(3), 6.0);
        assert_eq!(c.backoff_secs(0), 0.0);
        assert_eq!(FaultConfig::none().backoff_secs(5), 0.0);
        // Huge retry counts saturate instead of overflowing.
        assert!(c.backoff_secs(200).is_finite());
    }

    #[test]
    fn crash_rate_is_roughly_right() {
        let c = FaultConfig { vm_mtbf_hours: 1.0, ..FaultConfig::none() };
        let m = FaultModel::new(c, 1, SimTime(3600.0 * 200.0), SeedDerivation::new(5));
        let n = m.crashes(VmId::new(0)).len() as f64;
        assert!((150.0..250.0).contains(&n), "crashes {n}");
    }

    #[test]
    fn crashes_sorted_and_spaced_by_repair() {
        let c = FaultConfig { vm_mtbf_hours: 0.1, repair_secs: 60.0, ..FaultConfig::none() };
        let m = FaultModel::new(c, 3, SimTime(3600.0 * 20.0), SeedDerivation::new(6));
        assert!(m.crash_count() > 10);
        for vm in 0..3 {
            let list = m.crashes(VmId::new(vm));
            for pair in list.windows(2) {
                assert!(pair[1].as_secs() - pair[0].as_secs() >= 60.0, "{pair:?}");
            }
        }
        // Out-of-fleet VMs have no schedule.
        assert!(m.crashes(VmId::new(9)).is_empty());
    }

    #[test]
    fn crash_schedule_is_seed_deterministic() {
        let c = FaultConfig::heavy();
        let a = model(c, 42);
        let b = model(c, 42);
        for vm in 0..4 {
            assert_eq!(a.crashes(VmId::new(vm)), b.crashes(VmId::new(vm)));
        }
        let other = model(c, 43);
        assert_ne!(a.crashes(VmId::new(0)), other.crashes(VmId::new(0)));
    }

    #[test]
    fn straggler_draws_are_pure_and_rate_matches() {
        let c = FaultConfig { straggler_prob: 0.2, straggler_factor: 3.0, ..FaultConfig::none() };
        let m = model(c, 7);
        let n = 50_000u32;
        let hits =
            (0..n).filter(|&i| m.straggles(ActivationId::new(i), VmId::new(i % 4), i % 3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
        for i in 0..200 {
            let (ac, vm) = (ActivationId::new(i), VmId::new(i % 4));
            assert_eq!(m.straggles(ac, vm, 0), m.straggles(ac, vm, 0));
            let f = m.slowdown(ac, vm, 0);
            assert!(f == 1.0 || f == 3.0);
        }
    }

    #[test]
    fn lost_ack_draws_are_pure_and_rate_matches() {
        let c = FaultConfig { lost_ack_prob: 0.1, ..FaultConfig::none() };
        let m = model(c, 8);
        let n = 50_000u32;
        let hits = (0..n).filter(|&i| m.ack_lost(ActivationId::new(i), i % 3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
        for i in 0..200 {
            assert_eq!(m.ack_lost(ActivationId::new(i), 1), m.ack_lost(ActivationId::new(i), 1));
        }
    }

    #[test]
    fn draws_depend_on_each_coordinate() {
        let c = FaultConfig { straggler_prob: 0.5, straggler_factor: 2.0, ..FaultConfig::none() };
        let m = model(c, 9);
        let n = 500u32;
        let mut ac_flips = 0;
        let mut vm_flips = 0;
        let mut attempt_flips = 0;
        for i in 0..n {
            let base = m.straggles(ActivationId::new(i), VmId::new(0), 0);
            ac_flips += (m.straggles(ActivationId::new(i + n), VmId::new(0), 0) != base) as u32;
            vm_flips += (m.straggles(ActivationId::new(i), VmId::new(1), 0) != base) as u32;
            attempt_flips += (m.straggles(ActivationId::new(i), VmId::new(0), 1) != base) as u32;
        }
        for (label, flips) in [("ac", ac_flips), ("vm", vm_flips), ("attempt", attempt_flips)] {
            assert!((n / 5..n).contains(&flips), "{label} barely affects draws: {flips}/{n}");
        }
    }

    #[test]
    fn straggler_and_lost_ack_streams_are_independent() {
        // Same (ac, attempt) coordinates must not produce correlated
        // outcomes across the two salted channels.
        let c = FaultConfig { straggler_prob: 0.5, lost_ack_prob: 0.5, ..FaultConfig::none() };
        let m = model(c, 10);
        let n = 1000u32;
        let agree = (0..n)
            .filter(|&i| {
                m.straggles(ActivationId::new(i), VmId::new(0), 0)
                    == m.ack_lost(ActivationId::new(i), 0)
            })
            .count();
        assert!((300..700).contains(&agree), "channels correlate: {agree}/{n} agree");
    }
}
