//! VM fleets and the paper's Table I configurations.

use crate::vmtype::VmType;
use serde::{Deserialize, Serialize};
use wfcommon::ids::IdMap;
use wfcommon::VmId;

/// One deployed VM.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VmInstance {
    /// Flavour of this VM.
    pub vm_type: VmType,
    /// Human-readable instance name (e.g. `micro-3`).
    pub name: String,
}

/// A set of deployed VMs — the scheduling targets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    vms: IdMap<VmId, VmInstance>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Self { vms: IdMap::new() }
    }

    /// Add `count` VMs of `vm_type`, returning their ids.
    pub fn add(&mut self, vm_type: &VmType, count: usize) -> Vec<VmId> {
        (0..count)
            .map(|_| {
                let n = self.vms.len();
                self.vms.push(VmInstance {
                    vm_type: vm_type.clone(),
                    name: format!("{}-{}", vm_type.name, n),
                })
            })
            .collect()
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// True when the fleet has no VMs.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Borrow a VM by id.
    pub fn vm(&self, id: VmId) -> &VmInstance {
        &self.vms[id]
    }

    /// Iterate `(id, vm)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VmId, &VmInstance)> {
        self.vms.iter()
    }

    /// All VM ids.
    pub fn ids(&self) -> Vec<VmId> {
        self.vms.ids().collect()
    }

    /// Total vCPUs across the fleet (Table I's rightmost column).
    pub fn total_vcpus(&self) -> u32 {
        self.vms.values().map(|v| v.vm_type.pes).sum()
    }

    /// Aggregate fleet capacity in MIPS.
    pub fn total_mips(&self) -> f64 {
        self.vms.values().map(|v| v.vm_type.total_mips()).sum()
    }

    /// Hourly cost of keeping the whole fleet up, USD.
    pub fn hourly_cost_usd(&self) -> f64 {
        self.vms.values().map(|v| v.vm_type.price_per_hour).sum()
    }

    /// Paper Table I, row 1: 9 VMs = 8 × t2.micro + 1 × t2.2xlarge
    /// (16 vCPUs).
    pub fn paper_16_vcpus() -> Self {
        Self::micro_plus_2xlarge(8, 1)
    }

    /// Paper Table I, row 2: 11 VMs = 8 × t2.micro + 3 × t2.2xlarge
    /// (32 vCPUs).
    pub fn paper_32_vcpus() -> Self {
        Self::micro_plus_2xlarge(8, 3)
    }

    /// Paper Table I, row 3: 15 VMs = 8 × t2.micro + 7 × t2.2xlarge
    /// (64 vCPUs).
    pub fn paper_64_vcpus() -> Self {
        Self::micro_plus_2xlarge(8, 7)
    }

    /// All three Table I fleets with their vCPU labels.
    pub fn paper_fleets() -> Vec<(u32, Self)> {
        vec![
            (16, Self::paper_16_vcpus()),
            (32, Self::paper_32_vcpus()),
            (64, Self::paper_64_vcpus()),
        ]
    }

    fn micro_plus_2xlarge(micros: usize, bigs: usize) -> Self {
        let mut fleet = Self::new();
        fleet.add(&VmType::t2_micro(), micros);
        fleet.add(&VmType::t2_2xlarge(), bigs);
        fleet
    }

    /// The id of the fastest-per-core VM (used in tests and heuristics).
    pub fn fastest_vm(&self) -> Option<VmId> {
        self.vms
            .iter()
            .max_by(|a, b| {
                a.1.vm_type.mips_per_pe.total_cmp(&b.1.vm_type.mips_per_pe).then(b.0.cmp(&a.0))
                // tie-break: smallest id
            })
            .map(|(id, _)| id)
    }
}

impl Default for Fleet {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Index<VmId> for Fleet {
    type Output = VmInstance;
    fn index(&self, id: VmId) -> &VmInstance {
        &self.vms[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_row_counts() {
        let f16 = Fleet::paper_16_vcpus();
        assert_eq!(f16.len(), 9);
        assert_eq!(f16.total_vcpus(), 16);
        let f32v = Fleet::paper_32_vcpus();
        assert_eq!(f32v.len(), 11);
        assert_eq!(f32v.total_vcpus(), 32);
        let f64v = Fleet::paper_64_vcpus();
        assert_eq!(f64v.len(), 15);
        assert_eq!(f64v.total_vcpus(), 64);
    }

    #[test]
    fn vm_ids_are_dense_micro_first() {
        // The paper's Table V numbers VMs 0..8 with VM 8 the 2xlarge.
        let f = Fleet::paper_16_vcpus();
        for i in 0..8 {
            assert_eq!(f.vm(VmId::new(i)).vm_type.name, "t2.micro");
        }
        assert_eq!(f.vm(VmId::new(8)).vm_type.name, "t2.2xlarge");
    }

    #[test]
    fn fastest_vm_is_the_2xlarge() {
        let f = Fleet::paper_16_vcpus();
        assert_eq!(f.fastest_vm(), Some(VmId::new(8)));
    }

    #[test]
    fn aggregate_metrics() {
        let f = Fleet::paper_16_vcpus();
        assert_eq!(f.total_mips(), 8.0 * 1000.0 + 10_000.0);
        let cost = f.hourly_cost_usd();
        assert!((cost - (8.0 * 0.0116 + 0.3712)).abs() < 1e-9);
    }

    #[test]
    fn empty_fleet_has_no_fastest() {
        assert_eq!(Fleet::new().fastest_vm(), None);
        assert!(Fleet::new().is_empty());
    }

    #[test]
    fn names_are_unique() {
        let f = Fleet::paper_64_vcpus();
        let mut names: Vec<_> = f.iter().map(|(_, v)| v.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 15);
    }
}
