//! Cloud resource model.
//!
//! Models the execution environment of the paper's evaluation (§IV):
//! heterogeneous Amazon-EC2-style virtual machines, the three fleet
//! configurations of Table I, pay-per-use pricing, and the *dynamic*
//! characteristics that motivate an RL scheduler in the first place —
//! performance fluctuation, transient failures and live migrations
//! (paper §I: "live migrations and/or performance fluctuations … are
//! far from trivial to model").

pub mod failure;
pub mod fault;
pub mod fleet;
pub mod fluctuation;
pub mod migration;
pub mod pricing;
pub mod replication;
pub mod vmtype;

pub use failure::{Attempt, FailureModel};
pub use fault::{FaultConfig, FaultModel};
pub use fleet::{Fleet, VmInstance};
pub use fluctuation::{FluctuationModel, PerfFluctuation};
pub use migration::MigrationModel;
pub use pricing::{execution_cost_usd, BillingGranularity};
pub use replication::{ReplFeatures, ReplTable, ReplicationPolicy, REPL_MAX_EXTRA, REPL_STATES};
pub use vmtype::VmType;
