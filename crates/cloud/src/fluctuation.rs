//! Performance-fluctuation model.
//!
//! Multi-tenant clouds exhibit per-VM performance variability (noisy
//! neighbours, burst-credit throttling on the t2 family, hypervisor
//! contention). The paper's central claim is that a learning scheduler
//! adapts to such dynamics without an explicit model — so the simulator
//! must *have* such dynamics. We use a mean-reverting AR(1) process per
//! VM: each activation executed on VM `v` at time `t` has its runtime
//! multiplied by a slowdown factor ≥ `floor`, correlated over time.

use rand::Rng as _;
use serde::{Deserialize, Serialize};
use wfcommon::ids::Idx;
use wfcommon::rng::Rng;
use wfcommon::{SeedDerivation, VmId};

/// Interface for runtime-perturbation models.
pub trait FluctuationModel {
    /// Multiplicative runtime factor (1.0 = nominal) for an execution
    /// starting on `vm` at simulated second `t`.
    fn factor(&mut self, vm: VmId, t: f64) -> f64;
}

/// No fluctuation: every execution runs at nominal speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoFluctuation;

impl FluctuationModel for NoFluctuation {
    fn factor(&mut self, _vm: VmId, _t: f64) -> f64 {
        1.0
    }
}

/// Mean-reverting AR(1) slowdown per VM.
///
/// State `x` evolves as `x ← (1-θ)·x + θ·1 + σ·ε` on each query, with
/// mean-reversion rate θ, noise σ and clipping to `[floor, ceil]`.
#[derive(Clone, Debug)]
pub struct PerfFluctuation {
    theta: f64,
    sigma: f64,
    floor: f64,
    ceil: f64,
    states: Vec<f64>,
    rngs: Vec<Rng>,
}

impl PerfFluctuation {
    /// Build a model for `vm_count` VMs.
    ///
    /// * `sigma` — per-step noise amplitude (0.05 ≈ mild jitter,
    ///   0.3 ≈ heavily contended cloud).
    /// * `theta` — mean-reversion rate in (0, 1].
    pub fn new(vm_count: usize, sigma: f64, theta: f64, seeds: SeedDerivation) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        Self {
            theta,
            sigma,
            floor: 0.7,
            ceil: 3.0,
            states: vec![1.0; vm_count],
            rngs: (0..vm_count).map(|i| seeds.rng_for("perf-fluctuation", i as u64)).collect(),
        }
    }

    /// Mild default calibrated to public EC2 t2 variability reports
    /// (runtime CV of a few percent, occasional 1.5–2× slowdowns).
    pub fn mild(vm_count: usize, seeds: SeedDerivation) -> Self {
        Self::new(vm_count, 0.05, 0.3, seeds)
    }

    /// Heavy contention (stress scenario for the `exp_noise` ablation).
    pub fn heavy(vm_count: usize, seeds: SeedDerivation) -> Self {
        Self::new(vm_count, 0.25, 0.15, seeds)
    }
}

impl FluctuationModel for PerfFluctuation {
    fn factor(&mut self, vm: VmId, _t: f64) -> f64 {
        let i = vm.index();
        assert!(i < self.states.len(), "unknown VM {vm}");
        let rng = &mut self.rngs[i];
        let eps: f64 = rng.gen_range(-1.0..1.0);
        let x = &mut self.states[i];
        *x = (1.0 - self.theta) * *x + self.theta + self.sigma * eps;
        *x = x.clamp(self.floor, self.ceil);
        *x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fluctuation_is_identity() {
        let mut m = NoFluctuation;
        assert_eq!(m.factor(VmId::new(0), 0.0), 1.0);
        assert_eq!(m.factor(VmId::new(5), 99.0), 1.0);
    }

    #[test]
    fn factors_stay_in_bounds() {
        let mut m = PerfFluctuation::heavy(4, SeedDerivation::new(11));
        for t in 0..5000 {
            let f = m.factor(VmId::new((t % 4) as u32), t as f64);
            assert!((0.7..=3.0).contains(&f), "factor {f} escaped bounds");
        }
    }

    #[test]
    fn long_run_mean_is_near_one() {
        let mut m = PerfFluctuation::mild(1, SeedDerivation::new(5));
        let n = 20_000;
        let sum: f64 = (0..n).map(|t| m.factor(VmId::new(0), t as f64)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn vms_get_independent_streams() {
        let mut m = PerfFluctuation::heavy(2, SeedDerivation::new(7));
        let a: Vec<f64> = (0..50).map(|t| m.factor(VmId::new(0), t as f64)).collect();
        let mut m2 = PerfFluctuation::heavy(2, SeedDerivation::new(7));
        let b: Vec<f64> = (0..50).map(|t| m2.factor(VmId::new(1), t as f64)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PerfFluctuation::mild(3, SeedDerivation::new(42));
        let mut b = PerfFluctuation::mild(3, SeedDerivation::new(42));
        for t in 0..200 {
            let vm = VmId::new((t % 3) as u32);
            assert_eq!(a.factor(vm, t as f64), b.factor(vm, t as f64));
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_panics() {
        let _ = PerfFluctuation::new(1, 0.1, 0.0, SeedDerivation::new(0));
    }

    #[test]
    #[should_panic(expected = "unknown VM")]
    fn out_of_range_vm_panics() {
        let mut m = PerfFluctuation::mild(1, SeedDerivation::new(0));
        m.factor(VmId::new(9), 0.0);
    }
}
