//! Speculative task replication policy.
//!
//! Reactive recovery (retry/backoff/blacklist, [`crate::fault`]) pays
//! the full detection latency before it acts: a straggler on the
//! critical path stretches makespan by the whole timeout. Speculative
//! replication is the proactive complement — dispatch up to `k`
//! concurrent attempts of one task, keep the first finisher, cancel
//! the rest. This module holds the *policy*: given a task's fault
//! pressure, how many extra replicas to launch. The engines own the
//! mechanism (dispatch, first-finisher-wins, cancellation).
//!
//! Two policy families ship:
//!
//! * **Static-k** — every dispatch runs `k` concurrent attempts,
//!   the classical replication baseline.
//! * **Learned** — a compact table maps bucketed per-task
//!   fault-pressure features ([`ReplFeatures`]: attempt count, VM
//!   blacklist pressure, remaining critical-path slack) to an extra
//!   replica count. The table is trained by the ReASSIgN learning
//!   loop from per-decision outcomes (win/waste) under fault
//!   injection; [`ReplTable::heuristic`] gives an untrained but
//!   sensible policy for one-shot simulation.
//!
//! Everything here is pure data: same features in, same replica count
//! out, so replication never perturbs the engines' determinism
//! contract.

use serde::{Deserialize, Serialize};

/// Number of feature buckets a [`ReplTable`] distinguishes:
/// 3 attempt × 2 blacklist-pressure × 6 slack buckets. The slack axis
/// is the finest because it is the only feature that discriminates on
/// a healthy fleet: attempt and pressure stay at zero until recovery
/// machinery engages, while every dispatch carries a slack fraction.
pub const REPL_STATES: usize = 36;

/// Most extra replicas any policy may request per dispatch.
pub const REPL_MAX_EXTRA: u32 = 3;

/// Per-task fault-pressure features at dispatch time, the learned
/// policy's state. All fields are derived from engine state that is
/// itself deterministic, so feature extraction is reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplFeatures {
    /// Primary attempt counter (retries so far) of the task.
    pub attempt: u32,
    /// Fraction of the fleet currently blacklisted, in `[0, 1]`.
    pub blacklist_frac: f64,
    /// Remaining critical-path fraction: the task's downward rank over
    /// the workflow's total critical path, in `[0, 1]`. Near 1 means
    /// the task heads the critical chain — a straggler here costs the
    /// whole makespan.
    pub slack_frac: f64,
}

impl ReplFeatures {
    /// Map the features onto a table row in `0..REPL_STATES`.
    ///
    /// Slack bands are deliberately asymmetric: the low end (terminal
    /// tasks, where any delay lands directly on the makespan) and the
    /// high end (critical-chain heads) get their own bands, while the
    /// broad `[0.9, 0.95)` band isolates slack-rich fan-out tasks
    /// whose stragglers the DAG absorbs for free.
    pub fn bucket(&self) -> usize {
        let attempt = (self.attempt.min(2)) as usize;
        let pressure = usize::from(self.blacklist_frac >= 0.125);
        let slack = if self.slack_frac < 0.25 {
            0
        } else if self.slack_frac < 0.5 {
            1
        } else if self.slack_frac < 0.75 {
            2
        } else if self.slack_frac < 0.9 {
            3
        } else if self.slack_frac < 0.95 {
            4
        } else {
            5
        };
        attempt * 12 + pressure * 6 + slack
    }
}

/// A learned replication head: one extra-replica count per feature
/// bucket. Deliberately tiny (36 bytes of policy) so it serializes
/// into service submissions and svc warm-start caches for free.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplTable {
    /// Extra replicas per [`ReplFeatures::bucket`] row, each
    /// `<= REPL_MAX_EXTRA`.
    actions: Vec<u8>,
}

impl ReplTable {
    /// The all-zero table: never replicates until trained.
    pub fn zeros() -> Self {
        Self { actions: vec![0; REPL_STATES] }
    }

    /// The structured prior the learned head is anchored to.
    ///
    /// Shape (first-attempt, clean-fleet rows, by slack band):
    /// `[2, 2, 1, 1, 0, 2]` — hedge *terminal* tasks twice (the fleet
    /// is draining there, replicas are free, and a straggler lands
    /// directly on the makespan), hedge mid-workflow chains once,
    /// skip the slack-rich `[0.9, 0.95)` fan-out band entirely (the
    /// DAG absorbs its stragglers, and its replicas congest the
    /// busiest phase), and hedge critical-chain heads twice. Retry or
    /// blacklist-pressure rows hedge at the maximum: by the time the
    /// reactive machinery has engaged, duplicate work is cheaper than
    /// another timeout.
    pub fn heuristic() -> Self {
        let mut t = Self::zeros();
        for attempt in 0..3u32 {
            for pressure in 0..2usize {
                for (slack, band) in [0.1, 0.3, 0.6, 0.8, 0.92, 0.97].iter().enumerate() {
                    let f = ReplFeatures {
                        attempt,
                        blacklist_frac: [0.0, 0.25][pressure],
                        slack_frac: *band,
                    };
                    let extra =
                        if attempt >= 1 || pressure >= 1 { 3 } else { [2, 2, 1, 1, 0, 2][slack] };
                    t.set(f.bucket(), extra);
                }
            }
        }
        t
    }

    /// Extra replicas for table row `bucket`.
    pub fn extra(&self, bucket: usize) -> u32 {
        u32::from(self.actions[bucket])
    }

    /// Overwrite row `bucket` (clamped to [`REPL_MAX_EXTRA`]).
    pub fn set(&mut self, bucket: usize, extra: u32) {
        self.actions[bucket] = extra.min(REPL_MAX_EXTRA) as u8;
    }

    /// The raw per-bucket action row (for inspection/telemetry).
    pub fn actions(&self) -> &[u8] {
        &self.actions
    }

    /// Shape/range check after deserialization.
    pub fn validate(&self) -> Result<(), String> {
        if self.actions.len() != REPL_STATES {
            return Err(format!(
                "repl table has {} rows, expected {REPL_STATES}",
                self.actions.len()
            ));
        }
        if let Some(a) = self.actions.iter().find(|&&a| u32::from(a) > REPL_MAX_EXTRA) {
            return Err(format!("repl table action {a} exceeds max {REPL_MAX_EXTRA}"));
        }
        Ok(())
    }
}

impl Default for ReplTable {
    fn default() -> Self {
        Self::zeros()
    }
}

/// Which replication policy an engine runs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationPolicy {
    /// No replication — byte-identical legacy behavior.
    #[default]
    Off,
    /// Every dispatch runs `k` concurrent attempts (`k - 1` extras).
    Static {
        /// Total concurrent attempts per dispatch, `>= 2`.
        k: u32,
    },
    /// Feature-bucketed learned head.
    Learned {
        /// The trained (or heuristic) action table.
        table: ReplTable,
    },
}

impl ReplicationPolicy {
    /// A learned policy seeded with the heuristic prior.
    pub fn learned_heuristic() -> Self {
        Self::Learned { table: ReplTable::heuristic() }
    }

    /// Does this policy ever launch a replica?
    pub fn is_active(&self) -> bool {
        !matches!(self, Self::Off)
    }

    /// Extra replicas to launch alongside one primary dispatch.
    pub fn extra_replicas(&self, features: &ReplFeatures) -> u32 {
        match self {
            Self::Off => 0,
            Self::Static { k } => k.saturating_sub(1).min(REPL_MAX_EXTRA),
            Self::Learned { table } => table.extra(features.bucket()).min(REPL_MAX_EXTRA),
        }
    }

    /// Parse the CLI spelling: `off` | `static:K` | `learned`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "learned" => Some(Self::learned_heuristic()),
            _ => {
                let k = s.strip_prefix("static:")?.parse().ok()?;
                Some(Self::Static { k })
            }
        }
    }

    /// Short label for tables and trace provenance.
    pub fn label(&self) -> String {
        match self {
            Self::Off => "off".into(),
            Self::Static { k } => format!("static:{k}"),
            Self::Learned { .. } => "learned".into(),
        }
    }

    /// Validate ranges (static `k` bounded, learned table well-formed).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::Off => Ok(()),
            Self::Static { k } => {
                if !(2..=1 + REPL_MAX_EXTRA).contains(k) {
                    Err(format!("static replication k={k} not in 2..={}", 1 + REPL_MAX_EXTRA))
                } else {
                    Ok(())
                }
            }
            Self::Learned { table } => table.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_table_exactly() {
        let mut seen = [false; REPL_STATES];
        for attempt in [0u32, 1, 2, 7] {
            for blacklist_frac in [0.0, 0.2] {
                for slack_frac in [0.1, 0.3, 0.6, 0.8, 0.92, 0.97] {
                    let b = ReplFeatures { attempt, blacklist_frac, slack_frac }.bucket();
                    assert!(b < REPL_STATES);
                    seen[b] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every bucket must be reachable");
    }

    #[test]
    fn static_k_launches_k_minus_one_extras() {
        let p = ReplicationPolicy::Static { k: 2 };
        let f = ReplFeatures { attempt: 0, blacklist_frac: 0.0, slack_frac: 0.0 };
        assert_eq!(p.extra_replicas(&f), 1);
        assert!(p.is_active());
        assert!(!ReplicationPolicy::Off.is_active());
        assert_eq!(ReplicationPolicy::Off.extra_replicas(&f), 0);
    }

    #[test]
    fn heuristic_is_selective() {
        let p = ReplicationPolicy::learned_heuristic();
        let fanout = ReplFeatures { attempt: 0, blacklist_frac: 0.0, slack_frac: 0.92 };
        assert_eq!(p.extra_replicas(&fanout), 0, "slack-rich fan-out tasks must not replicate");
        let hot = ReplFeatures { attempt: 2, blacklist_frac: 0.5, slack_frac: 0.9 };
        assert_eq!(p.extra_replicas(&hot), 3, "pressured retries hedge at the maximum");
        let critical = ReplFeatures { attempt: 0, blacklist_frac: 0.0, slack_frac: 0.97 };
        assert_eq!(p.extra_replicas(&critical), 2, "critical-chain heads hedge twice");
        let terminal = ReplFeatures { attempt: 0, blacklist_frac: 0.0, slack_frac: 0.1 };
        assert_eq!(p.extra_replicas(&terminal), 2, "terminal tasks hedge twice");
        let mid = ReplFeatures { attempt: 0, blacklist_frac: 0.0, slack_frac: 0.6 };
        assert_eq!(p.extra_replicas(&mid), 1, "mid-workflow chains hedge once");
    }

    #[test]
    fn parse_round_trips_labels() {
        for s in ["off", "static:2", "static:3", "learned"] {
            let p = ReplicationPolicy::parse(s).unwrap();
            assert_eq!(p.label(), s);
            p.validate().unwrap();
        }
        assert!(ReplicationPolicy::parse("static:0").unwrap().validate().is_err());
        assert!(ReplicationPolicy::parse("static:9").unwrap().validate().is_err());
        assert!(ReplicationPolicy::parse("bogus").is_none());
        assert!(ReplicationPolicy::parse("static:x").is_none());
    }

    #[test]
    fn table_validation_catches_shape_and_range() {
        ReplTable::zeros().validate().unwrap();
        ReplTable::heuristic().validate().unwrap();
        let short = ReplTable { actions: vec![0; 3] };
        assert!(short.validate().is_err());
        let wild = ReplTable { actions: vec![REPL_MAX_EXTRA as u8 + 1; REPL_STATES] };
        assert!(wild.validate().is_err());
    }

    #[test]
    fn extras_are_always_bounded() {
        let f = ReplFeatures { attempt: 9, blacklist_frac: 1.0, slack_frac: 1.0 };
        for p in [
            ReplicationPolicy::Off,
            ReplicationPolicy::Static { k: 4 },
            ReplicationPolicy::learned_heuristic(),
        ] {
            assert!(p.extra_replicas(&f) <= REPL_MAX_EXTRA);
        }
    }
}
