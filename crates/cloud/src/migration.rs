//! Live-migration model.
//!
//! Cloud providers migrate VMs between hosts for maintenance and
//! consolidation; during the stop-and-copy phase the guest stalls. The
//! paper names live migration as one of the dynamics cost-model-based
//! schedulers cannot capture (§I). We model migrations as a Poisson
//! process per VM; each event freezes the VM for a sampled downtime,
//! which the simulator adds to any execution overlapping the window.

use rand::Rng as _;
use serde::{Deserialize, Serialize};
use wfcommon::ids::Idx;
use wfcommon::{SeedDerivation, SimTime, VmId};

/// One migration window on one VM.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MigrationWindow {
    /// VM being migrated.
    pub vm: VmId,
    /// Start of the stall.
    pub start: SimTime,
    /// Length of the stall.
    pub downtime: SimTime,
}

impl MigrationWindow {
    /// End of the stall.
    pub fn end(&self) -> SimTime {
        self.start + self.downtime
    }
}

/// Pre-sampled migration schedule over a horizon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    windows: Vec<MigrationWindow>,
}

impl MigrationModel {
    /// No migrations ever.
    pub fn none() -> Self {
        Self { windows: Vec::new() }
    }

    /// Sample a schedule: each of `vm_count` VMs migrates as a Poisson
    /// process with `rate_per_hour` events/hour over `[0, horizon]`;
    /// each downtime is uniform in `[min_downtime, max_downtime]`.
    pub fn poisson(
        vm_count: usize,
        rate_per_hour: f64,
        horizon: SimTime,
        min_downtime: SimTime,
        max_downtime: SimTime,
        seeds: SeedDerivation,
    ) -> Self {
        assert!(rate_per_hour >= 0.0);
        assert!(min_downtime.as_secs() >= 0.0);
        assert!(max_downtime >= min_downtime);
        let mut windows = Vec::new();
        for vm in 0..vm_count {
            let mut rng = seeds.rng_for("migrations", vm as u64);
            let rate_per_sec = rate_per_hour / 3600.0;
            if rate_per_sec <= 0.0 {
                continue;
            }
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival via inverse CDF.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / rate_per_sec;
                if t > horizon.as_secs() {
                    break;
                }
                let dt = rng.gen_range(
                    min_downtime.as_secs()
                        ..=max_downtime.as_secs().max(min_downtime.as_secs() + f64::MIN_POSITIVE),
                );
                windows.push(MigrationWindow {
                    vm: VmId::from_index(vm),
                    start: SimTime(t),
                    downtime: SimTime(dt),
                });
            }
        }
        windows.sort_by(|a, b| a.start.total_cmp(&b.start));
        Self { windows }
    }

    /// All windows, sorted by start time.
    pub fn windows(&self) -> &[MigrationWindow] {
        &self.windows
    }

    /// Total stall time that an execution on `vm` spanning
    /// `[start, end)` suffers from migration windows beginning inside
    /// the span (stall extends the execution; chained windows are
    /// handled by the caller re-querying, but a single pass summing
    /// overlapping windows is an adequate first-order model).
    pub fn stall_secs(&self, vm: VmId, start: SimTime, end: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.vm == vm && w.start >= start && w.start < end)
            .map(|w| w.downtime.as_secs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_no_windows() {
        let m = MigrationModel::none();
        assert!(m.windows().is_empty());
        assert_eq!(m.stall_secs(VmId::new(0), SimTime(0.0), SimTime(1e9)), 0.0);
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        let horizon = SimTime(3600.0 * 100.0); // 100 hours
        let m = MigrationModel::poisson(
            1,
            2.0,
            horizon,
            SimTime(5.0),
            SimTime(10.0),
            SeedDerivation::new(4),
        );
        let n = m.windows().len() as f64;
        assert!((150.0..250.0).contains(&n), "events {n}");
    }

    #[test]
    fn windows_sorted_and_in_horizon() {
        let horizon = SimTime(7200.0);
        let m = MigrationModel::poisson(
            4,
            6.0,
            horizon,
            SimTime(1.0),
            SimTime(3.0),
            SeedDerivation::new(8),
        );
        let ws = m.windows();
        for w in ws {
            assert!(w.start.as_secs() <= horizon.as_secs());
            assert!(w.downtime.as_secs() >= 1.0 && w.downtime.as_secs() <= 3.0);
        }
        for pair in ws.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
    }

    #[test]
    fn stall_counts_only_overlapping_windows_on_the_vm() {
        let m = MigrationModel {
            windows: vec![
                MigrationWindow { vm: VmId::new(0), start: SimTime(10.0), downtime: SimTime(2.0) },
                MigrationWindow { vm: VmId::new(1), start: SimTime(10.0), downtime: SimTime(5.0) },
                MigrationWindow { vm: VmId::new(0), start: SimTime(50.0), downtime: SimTime(4.0) },
            ],
        };
        assert_eq!(m.stall_secs(VmId::new(0), SimTime(0.0), SimTime(20.0)), 2.0);
        assert_eq!(m.stall_secs(VmId::new(0), SimTime(0.0), SimTime(100.0)), 6.0);
        assert_eq!(m.stall_secs(VmId::new(1), SimTime(0.0), SimTime(100.0)), 5.0);
        assert_eq!(m.stall_secs(VmId::new(0), SimTime(11.0), SimTime(20.0)), 0.0);
    }

    #[test]
    fn zero_rate_yields_nothing() {
        let m = MigrationModel::poisson(
            3,
            0.0,
            SimTime(1e6),
            SimTime(1.0),
            SimTime(2.0),
            SeedDerivation::new(1),
        );
        assert!(m.windows().is_empty());
    }
}
