//! Transient-failure model.
//!
//! The paper's workflow state machine includes the terminal state
//! *finished with failure* "due to a problem in the hardware or other
//! issues" (§III-A). This model injects such problems: each activation
//! execution attempt fails independently with a configurable
//! probability.
//!
//! The draw is a *pure function* of `(seed, activation, vm, attempt)`
//! — a counter-based RNG rather than a shared stream. Earlier versions
//! consumed one draw from a single stream per call (ignoring the
//! activation/VM arguments), which made outcomes depend on the order
//! the engine happened to ask in: two schedulers placing the same
//! activation on the same VM could see different failures. Keying the
//! draw on the full identity makes failures independent per
//! activation/VM/attempt, order-insensitive, and replayable.

use serde::{Deserialize, Serialize};
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, SeedDerivation, VmId};

/// Bernoulli per-execution-attempt failure injector.
#[derive(Clone, Debug)]
pub struct FailureModel {
    prob: f64,
    max_retries: u32,
    seed: u64,
}

/// Outcome of asking the model about one execution attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attempt {
    /// The execution completes normally.
    Succeeds,
    /// The execution fails after consuming its full runtime.
    Fails,
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FailureModel {
    /// A model that fails each attempt with probability `prob` and
    /// permits `max_retries` re-executions per activation.
    pub fn new(prob: f64, max_retries: u32, seeds: SeedDerivation) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        Self { prob, max_retries, seed: seeds.seed_for("failures", 0) }
    }

    /// A model that never fails.
    pub fn none(seeds: SeedDerivation) -> Self {
        Self::new(0.0, 0, seeds)
    }

    /// Failure probability per attempt.
    pub fn probability(&self) -> f64 {
        self.prob
    }

    /// Maximum retries per activation.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The uniform variate in `[0, 1)` behind one attempt's draw
    /// (exposed for tests asserting seed determinism).
    pub fn uniform(&self, ac: ActivationId, vm: VmId, attempt: u32) -> f64 {
        let key = mix(mix(self.seed ^ 0x6661_696c_7572_6573) // "failures"
            .wrapping_add(((ac.index() as u64) << 1) | 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(((vm.index() as u64) << 32) | u64::from(attempt));
        // 53 high bits → the standard [0, 1) double.
        (mix(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draw the outcome for one execution attempt of `ac` on `vm`
    /// (`attempt` is 0 for the first try). Pure: the same arguments
    /// always yield the same outcome for the same seed.
    pub fn draw(&self, ac: ActivationId, vm: VmId, attempt: u32) -> Attempt {
        if self.prob > 0.0 && self.uniform(ac, vm, attempt) < self.prob {
            Attempt::Fails
        } else {
            Attempt::Succeeds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fails() {
        let m = FailureModel::none(SeedDerivation::new(1));
        for i in 0..1000 {
            assert_eq!(m.draw(ActivationId::new(i), VmId::new(0), 0), Attempt::Succeeds);
        }
    }

    #[test]
    fn one_probability_always_fails() {
        let m = FailureModel::new(1.0, 3, SeedDerivation::new(2));
        for i in 0..100 {
            assert_eq!(m.draw(ActivationId::new(i), VmId::new(i % 4), i), Attempt::Fails);
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let m = FailureModel::new(0.2, 0, SeedDerivation::new(3));
        let n = 50_000;
        let fails = (0..n)
            .filter(|&i| m.draw(ActivationId::new(i), VmId::new(0), 0) == Attempt::Fails)
            .count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_per_seed_and_pure_per_call() {
        let a = FailureModel::new(0.5, 1, SeedDerivation::new(9));
        let b = FailureModel::new(0.5, 1, SeedDerivation::new(9));
        for i in 0..200 {
            let (ac, vm) = (ActivationId::new(i), VmId::new(i % 9));
            assert_eq!(a.draw(ac, vm, 0), b.draw(ac, vm, 0));
            // Re-asking does not consume a stream: the draw repeats.
            assert_eq!(a.draw(ac, vm, 0), a.draw(ac, vm, 0));
            assert_eq!(a.uniform(ac, vm, 1), b.uniform(ac, vm, 1));
        }
    }

    #[test]
    fn draw_depends_on_activation_vm_and_attempt() {
        // With p = 0.5 each coordinate must actually influence the
        // outcome: across many cells, flipping one coordinate flips a
        // healthy fraction of the draws.
        let m = FailureModel::new(0.5, 3, SeedDerivation::new(7));
        let mut ac_flips = 0;
        let mut vm_flips = 0;
        let mut attempt_flips = 0;
        let n = 500;
        for i in 0..n {
            let base = m.draw(ActivationId::new(i), VmId::new(0), 0);
            ac_flips += (m.draw(ActivationId::new(i + n), VmId::new(0), 0) != base) as u32;
            vm_flips += (m.draw(ActivationId::new(i), VmId::new(1), 0) != base) as u32;
            attempt_flips += (m.draw(ActivationId::new(i), VmId::new(0), 1) != base) as u32;
        }
        for (label, flips) in [("ac", ac_flips), ("vm", vm_flips), ("attempt", attempt_flips)] {
            assert!((n / 5..n).contains(&flips), "{label} barely affects draws: {flips}/{n} flips");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FailureModel::new(0.5, 0, SeedDerivation::new(1));
        let b = FailureModel::new(0.5, 0, SeedDerivation::new(2));
        let differing = (0..500)
            .filter(|&i| {
                a.draw(ActivationId::new(i), VmId::new(0), 0)
                    != b.draw(ActivationId::new(i), VmId::new(0), 0)
            })
            .count();
        assert!(differing > 100, "seeds barely differ: {differing}");
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let m = FailureModel::new(0.5, 0, SeedDerivation::new(4));
        for i in 0..1000 {
            let u = m.uniform(ActivationId::new(i), VmId::new(i % 3), i % 5);
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = FailureModel::new(1.5, 0, SeedDerivation::new(0));
    }
}
