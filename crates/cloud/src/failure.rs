//! Transient-failure model.
//!
//! The paper's workflow state machine includes the terminal state
//! *finished with failure* "due to a problem in the hardware or other
//! issues" (§III-A). This model injects such problems: each activation
//! execution fails independently with a configurable probability, and a
//! failed execution can optionally be retried.

use rand::Rng as _;
use serde::{Deserialize, Serialize};
use wfcommon::rng::Rng;
use wfcommon::{ActivationId, SeedDerivation, VmId};

/// Bernoulli per-execution failure injector.
#[derive(Clone, Debug)]
pub struct FailureModel {
    prob: f64,
    max_retries: u32,
    rng: Rng,
}

/// Outcome of asking the model about one execution attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attempt {
    /// The execution completes normally.
    Succeeds,
    /// The execution fails after consuming its full runtime.
    Fails,
}

impl FailureModel {
    /// A model that fails each attempt with probability `prob` and
    /// permits `max_retries` re-executions per activation.
    pub fn new(prob: f64, max_retries: u32, seeds: SeedDerivation) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        Self { prob, max_retries, rng: seeds.rng_for("failures", 0) }
    }

    /// A model that never fails.
    pub fn none(seeds: SeedDerivation) -> Self {
        Self::new(0.0, 0, seeds)
    }

    /// Failure probability per attempt.
    pub fn probability(&self) -> f64 {
        self.prob
    }

    /// Maximum retries per activation.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Draw the outcome for one execution attempt.
    pub fn draw(&mut self, _ac: ActivationId, _vm: VmId) -> Attempt {
        if self.prob > 0.0 && self.rng.gen::<f64>() < self.prob {
            Attempt::Fails
        } else {
            Attempt::Succeeds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fails() {
        let mut m = FailureModel::none(SeedDerivation::new(1));
        for i in 0..1000 {
            assert_eq!(m.draw(ActivationId::new(i), VmId::new(0)), Attempt::Succeeds);
        }
    }

    #[test]
    fn one_probability_always_fails() {
        let mut m = FailureModel::new(1.0, 3, SeedDerivation::new(2));
        for i in 0..100 {
            assert_eq!(m.draw(ActivationId::new(i), VmId::new(0)), Attempt::Fails);
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut m = FailureModel::new(0.2, 0, SeedDerivation::new(3));
        let n = 50_000;
        let fails = (0..n)
            .filter(|&i| m.draw(ActivationId::new(i), VmId::new(0)) == Attempt::Fails)
            .count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = FailureModel::new(0.5, 1, SeedDerivation::new(9));
        let mut b = FailureModel::new(0.5, 1, SeedDerivation::new(9));
        for i in 0..200 {
            assert_eq!(
                a.draw(ActivationId::new(i), VmId::new(0)),
                b.draw(ActivationId::new(i), VmId::new(0))
            );
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = FailureModel::new(1.5, 0, SeedDerivation::new(0));
    }
}
