//! The streaming analyzer: feed a trace line at a time, get a full
//! [`Analysis`] back — header info, one [`RunAnalysis`] per
//! `sim_start` .. `sim_end` segment, learning curves, phase-timer
//! totals, and tolerant accounting of unknown events and parse errors.

use crate::learn::{LearnAnalysis, LearnBuilder};
use crate::parse::{parse_line, ParsedEvent};
use crate::run::{RunAnalysis, RunBuilder};
use crate::service::{ServiceAnalysis, ServiceBuilder};

/// Wall-time total for one named engine phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTotal {
    /// Phase name (e.g. `sim.total`, `learn.episodes`).
    pub name: String,
    /// Number of `phase` events for this name.
    pub count: u64,
    /// Σ wall milliseconds.
    pub total_ms: f64,
}

/// Everything the analyzer extracted from one trace.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Producer string from the `header` event.
    pub producer: Option<String>,
    /// Schema version from the `header` event.
    pub schema_version: Option<u64>,
    /// Total non-empty lines consumed.
    pub lines: usize,
    /// Per-run analytics, in trace order.
    pub runs: Vec<RunAnalysis>,
    /// Learning-curve analytics (empty when the trace has no
    /// episode-level events — e.g. a bare `simulate` trace).
    pub learning: LearnAnalysis,
    /// Scheduling-service analytics (empty unless the trace was
    /// produced by `reassignd` / the `serve` command).
    pub service: ServiceAnalysis,
    /// Phase-timer totals in first-seen order (empty unless the trace
    /// was produced with `--phase-timings`).
    pub phases: Vec<PhaseTotal>,
    /// Unknown `ev` kinds skipped per the additive-schema rule, with
    /// occurrence counts, in first-seen order.
    pub unknown: Vec<(String, u64)>,
    /// Lines that failed to parse: (1-based line number, error).
    pub parse_errors: Vec<(usize, String)>,
}

impl Analysis {
    /// The run whose metrics summarize the trace: the last *complete*
    /// run (final episode of a learning trace, the only run of a
    /// simulate trace), falling back to the last run of any kind.
    pub fn final_run(&self) -> Option<&RunAnalysis> {
        self.runs.iter().rev().find(|r| r.complete).or_else(|| self.runs.last())
    }
}

/// Streaming trace analyzer. Lines go in via [`Analyzer::feed_line`];
/// [`Analyzer::finish`] closes any open run segment and returns the
/// [`Analysis`].
#[derive(Debug, Default)]
pub struct Analyzer {
    analysis: Analysis,
    learn: LearnBuilder,
    service: ServiceBuilder,
    cur: Option<RunBuilder>,
}

impl Analyzer {
    /// New, empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one trace line (empty/whitespace lines are ignored;
    /// malformed lines are recorded, never fatal).
    pub fn feed_line(&mut self, line: &str) {
        if line.trim().is_empty() {
            return;
        }
        self.analysis.lines += 1;
        let lineno = self.analysis.lines;
        match parse_line(line) {
            Ok(ev) => self.feed_event(&ev),
            Err(e) => self.analysis.parse_errors.push((lineno, e)),
        }
    }

    /// Consume one already-typed event (the binary-frame path — no
    /// JSON is parsed or even formatted). Counts toward
    /// [`Analysis::lines`] like a JSONL line would.
    pub fn feed_parsed(&mut self, ev: &ParsedEvent) {
        self.analysis.lines += 1;
        self.feed_event(ev);
    }

    fn feed_event(&mut self, ev: &ParsedEvent) {
        self.learn.feed(ev);
        self.service.feed(ev);
        match ev {
            ParsedEvent::Header { v, producer } => {
                self.analysis.schema_version = Some(*v);
                self.analysis.producer = Some(producer.clone());
            }
            ParsedEvent::SimStart { activations, vms } => {
                // A sim_start while a run is open means the previous
                // run was truncated; close it as incomplete.
                self.close_run();
                self.cur = Some(RunBuilder::new(*activations, *vms));
            }
            ParsedEvent::SimEnd { .. } => {
                if let Some(run) = self.cur.as_mut() {
                    run.feed(ev);
                }
                self.close_run();
            }
            ParsedEvent::Phase { name, wall_ms } => {
                match self.analysis.phases.iter_mut().find(|p| p.name == *name) {
                    Some(p) => {
                        p.count += 1;
                        p.total_ms += wall_ms;
                    }
                    None => self.analysis.phases.push(PhaseTotal {
                        name: name.clone(),
                        count: 1,
                        total_ms: *wall_ms,
                    }),
                }
            }
            ParsedEvent::Unknown { ev } => {
                match self.analysis.unknown.iter_mut().find(|(k, _)| k == ev) {
                    Some((_, n)) => *n += 1,
                    None => self.analysis.unknown.push((ev.clone(), 1)),
                }
            }
            _ => {
                if let Some(run) = self.cur.as_mut() {
                    run.feed(ev);
                }
            }
        }
    }

    fn close_run(&mut self) {
        if let Some(run) = self.cur.take() {
            let index = self.analysis.runs.len();
            self.analysis.runs.push(run.finish(index));
        }
    }

    /// Close any open segment and return the finished analysis.
    pub fn finish(mut self) -> Analysis {
        self.close_run();
        self.analysis.learning = self.learn.finish();
        self.analysis.service = self.service.finish();
        self.analysis
    }
}

/// Analyze a whole trace held in memory.
pub fn analyze_str(trace: &str) -> Analysis {
    let mut a = Analyzer::new();
    for line in trace.lines() {
        a.feed_line(line);
    }
    a.finish()
}

/// Analyze a binary trace from any reader, streaming — memory is
/// bounded by the largest single frame plus the analysis itself
/// (per-run state, per-tenant/per-shard rows), never by trace length.
/// Known frames feed the analyzer with no JSON intermediate; raw
/// frames take the line parser; unknown binary tags are counted under
/// a `bin#<tag>` pseudo-kind, mirroring the JSONL additive rule.
pub fn analyze_frames<R: std::io::Read>(r: R) -> Result<Analysis, obs::FrameError> {
    let mut rd = obs::FrameReader::new(r)?;
    let mut a = Analyzer::new();
    while let Some(frame) = rd.next_frame()? {
        match frame {
            obs::FrameRef::Event(ref ev) => a.feed_parsed(&ParsedEvent::from(ev)),
            obs::FrameRef::Raw(line) => a.feed_line(line),
            obs::FrameRef::Unknown { tag } => {
                a.feed_parsed(&ParsedEvent::Unknown { ev: format!("bin#{tag}") })
            }
        }
    }
    Ok(a.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = "\
{\"ev\":\"header\",\"v\":1,\"producer\":\"wfsim.simulate\"}\n\
{\"ev\":\"sim_start\",\"activations\":2,\"vms\":1}\n\
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}\n\
{\"ev\":\"finish\",\"t\":3,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":3,\"queue_secs\":0,\"failed\":false}\n\
{\"ev\":\"start\",\"t\":3,\"ac\":1,\"vm\":0,\"attempt\":0,\"ready_since\":3}\n\
{\"ev\":\"finish\",\"t\":8,\"ac\":1,\"vm\":0,\"attempt\":0,\"exec_secs\":5,\"queue_secs\":0,\"failed\":false}\n\
{\"ev\":\"sim_end\",\"t\":8,\"success\":true,\"events\":4,\"queue_pushes\":2,\"max_queue_depth\":1}\n";

    #[test]
    fn analyzes_a_minimal_simulate_trace() {
        let a = analyze_str(MINI);
        assert_eq!(a.producer.as_deref(), Some("wfsim.simulate"));
        assert_eq!(a.schema_version, Some(1));
        assert_eq!(a.runs.len(), 1);
        assert!(a.learning.is_empty());
        assert!(a.parse_errors.is_empty() && a.unknown.is_empty());
        let run = a.final_run().unwrap();
        assert_eq!(run.makespan_secs, 8.0);
        assert_eq!(run.critical_path.steps.len(), 2);
        assert_eq!(run.critical_path.length_secs, 8.0);
    }

    #[test]
    fn tolerates_unknown_events_and_bad_lines() {
        let trace = format!("{MINI}{{\"ev\":\"future_thing\",\"x\":1}}\nnot json\n");
        let a = analyze_str(&trace);
        assert_eq!(a.runs.len(), 1, "analysis survives junk");
        assert_eq!(a.unknown, vec![("future_thing".to_string(), 1)]);
        assert_eq!(a.parse_errors.len(), 1);
        assert_eq!(a.parse_errors[0].0, 9, "1-based line number of the bad line");
    }

    #[test]
    fn phase_totals_accumulate_by_name() {
        let trace = format!(
            "{MINI}{{\"ev\":\"phase\",\"name\":\"sim.total\",\"wall_ms\":2.5}}\n\
             {{\"ev\":\"phase\",\"name\":\"sim.total\",\"wall_ms\":1.5}}\n\
             {{\"ev\":\"phase\",\"name\":\"sim.sched\",\"wall_ms\":0.5}}\n"
        );
        let a = analyze_str(&trace);
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[0].name, "sim.total");
        assert_eq!(a.phases[0].count, 2);
        assert!((a.phases[0].total_ms - 4.0).abs() < 1e-12);
    }

    #[test]
    fn segments_multiple_runs_and_truncation() {
        // Two back-to-back sim_starts: the first run has no sim_end.
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":1}\n\
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}\n\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":1}\n\
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}\n\
{\"ev\":\"finish\",\"t\":2,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":2,\"queue_secs\":0,\"failed\":false}\n\
{\"ev\":\"sim_end\",\"t\":2,\"success\":true,\"events\":2,\"queue_pushes\":1,\"max_queue_depth\":1}\n";
        let a = analyze_str(trace);
        assert_eq!(a.runs.len(), 2);
        assert!(!a.runs[0].complete);
        assert_eq!(a.runs[0].unfinished_starts, 1);
        assert!(a.runs[1].complete);
        assert_eq!(a.final_run().unwrap().index, 1);
    }

    #[test]
    fn learning_events_flow_through() {
        let trace = "\
{\"ev\":\"header\",\"v\":1,\"producer\":\"reassign.learn\"}\n\
{\"ev\":\"episode_start\",\"episode\":0,\"epsilon\":0.9}\n\
{\"ev\":\"episode_end\",\"episode\":0,\"makespan_secs\":10,\"success\":true,\"reward\":-10,\"td_updates\":5,\"q_delta\":0.1}\n\
{\"ev\":\"learn_end\",\"episodes\":1,\"greedy_makespan_secs\":9,\"best_makespan_secs\":10}\n";
        let a = analyze_str(trace);
        assert_eq!(a.learning.episodes.len(), 1);
        assert_eq!(a.learning.end.unwrap().episodes, 1);
    }
}
