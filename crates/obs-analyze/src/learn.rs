//! Learning-curve analytics over the episode-level events
//! (`episode_start` / `episode_end` / `round_merge` / `learn_end`).

use crate::parse::ParsedEvent;

/// One training episode, joined from its start/end events.
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeRow {
    /// Episode index.
    pub episode: u32,
    /// ε at episode start (None if the start event was truncated away).
    pub epsilon: Option<f64>,
    /// Episode rollout makespan.
    pub makespan_secs: f64,
    /// Whether the rollout completed.
    pub success: bool,
    /// Terminal reward.
    pub reward: f64,
    /// TD updates applied this episode.
    pub td_updates: u64,
    /// Mean absolute Q change this episode — the convergence signal.
    pub q_delta: f64,
}

/// One parallel-learning merge round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundRow {
    /// Round index.
    pub round: u32,
    /// Episodes merged in this round.
    pub episodes: u32,
    /// Distinct transitions merged.
    pub transitions: u64,
    /// Q-table samples folded.
    pub samples: u64,
}

/// Final `learn_end` summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LearnEndRow {
    /// Total episodes trained.
    pub episodes: u32,
    /// Makespan of the final greedy rollout.
    pub greedy_makespan_secs: f64,
    /// Best makespan seen during training.
    pub best_makespan_secs: f64,
}

/// Rolling-window size for convergence detection.
pub const CONVERGENCE_WINDOW: usize = 5;
/// A window counts as converged when its mean `q_delta` drops to this
/// fraction of the first window's mean.
pub const CONVERGENCE_FRACTION: f64 = 0.05;

/// Learning-curve summary over a whole trace.
#[derive(Clone, Debug, Default)]
pub struct LearnAnalysis {
    /// Per-episode rows in trace order.
    pub episodes: Vec<EpisodeRow>,
    /// Merge rounds (parallel learner only).
    pub rounds: Vec<RoundRow>,
    /// Final summary if the trace ran to completion.
    pub end: Option<LearnEndRow>,
    /// Σ td_updates over all episodes.
    pub total_td_updates: u64,
    /// First episode's makespan.
    pub first_makespan_secs: f64,
    /// Best (minimum) episode makespan.
    pub best_makespan_secs: f64,
    /// Last episode's makespan.
    pub last_makespan_secs: f64,
    /// Episode index at which the rolling `q_delta` window first fell
    /// below [`CONVERGENCE_FRACTION`] of the initial window, if ever.
    pub converged_at: Option<u32>,
}

impl LearnAnalysis {
    /// Whether any learning events were seen at all.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty() && self.rounds.is_empty() && self.end.is_none()
    }

    /// Relative makespan improvement from first to best episode.
    pub fn improvement(&self) -> f64 {
        if self.first_makespan_secs > 0.0 {
            1.0 - self.best_makespan_secs / self.first_makespan_secs
        } else {
            0.0
        }
    }
}

/// Streaming builder for [`LearnAnalysis`].
#[derive(Debug, Default)]
pub struct LearnBuilder {
    pending_epsilon: Vec<(u32, f64)>,
    analysis: LearnAnalysis,
}

impl LearnBuilder {
    /// Feed one event (non-learning kinds are ignored).
    pub fn feed(&mut self, ev: &ParsedEvent) {
        match *ev {
            ParsedEvent::EpisodeStart { episode, epsilon } => {
                self.pending_epsilon.push((episode, epsilon));
            }
            ParsedEvent::EpisodeEnd {
                episode,
                makespan_secs,
                success,
                reward,
                td_updates,
                q_delta,
            } => {
                let epsilon = self
                    .pending_epsilon
                    .iter()
                    .rposition(|&(e, _)| e == episode)
                    .map(|i| self.pending_epsilon.remove(i).1);
                self.analysis.episodes.push(EpisodeRow {
                    episode,
                    epsilon,
                    makespan_secs,
                    success,
                    reward,
                    td_updates,
                    q_delta,
                });
            }
            ParsedEvent::RoundMerge { round, episodes, transitions, samples } => {
                self.analysis.rounds.push(RoundRow { round, episodes, transitions, samples });
            }
            ParsedEvent::LearnEnd { episodes, greedy_makespan_secs, best_makespan_secs } => {
                self.analysis.end =
                    Some(LearnEndRow { episodes, greedy_makespan_secs, best_makespan_secs });
            }
            _ => {}
        }
    }

    /// Finalize: derive totals and convergence.
    pub fn finish(mut self) -> LearnAnalysis {
        let eps = &self.analysis.episodes;
        self.analysis.total_td_updates = eps.iter().map(|e| e.td_updates).sum();
        self.analysis.first_makespan_secs = eps.first().map_or(f64::NAN, |e| e.makespan_secs);
        self.analysis.last_makespan_secs = eps.last().map_or(f64::NAN, |e| e.makespan_secs);
        self.analysis.best_makespan_secs =
            eps.iter().map(|e| e.makespan_secs).fold(f64::INFINITY, f64::min);
        if eps.is_empty() {
            self.analysis.best_makespan_secs = f64::NAN;
        }
        self.analysis.converged_at = converged_at(eps);
        self.analysis
    }
}

/// First episode whose trailing [`CONVERGENCE_WINDOW`]-mean of
/// `q_delta` is ≤ [`CONVERGENCE_FRACTION`] × the first window's mean.
/// A zero initial baseline means learning was already converged — the
/// first complete window qualifies.
fn converged_at(eps: &[EpisodeRow]) -> Option<u32> {
    let w = CONVERGENCE_WINDOW;
    if eps.len() < w {
        return None;
    }
    let window_mean =
        |i: usize| eps[i + 1 - w..=i].iter().map(|e| e.q_delta).sum::<f64>() / w as f64;
    let baseline = window_mean(w - 1);
    (w - 1..eps.len())
        .find(|&i| window_mean(i) <= CONVERGENCE_FRACTION * baseline)
        .map(|i| eps[i].episode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(episode: u32, makespan: f64, q_delta: f64) -> ParsedEvent {
        ParsedEvent::EpisodeEnd {
            episode,
            makespan_secs: makespan,
            success: true,
            reward: -makespan,
            td_updates: 10,
            q_delta,
        }
    }

    fn build(events: &[ParsedEvent]) -> LearnAnalysis {
        let mut b = LearnBuilder::default();
        for e in events {
            b.feed(e);
        }
        b.finish()
    }

    #[test]
    fn joins_episode_start_and_end() {
        let a = build(&[
            ParsedEvent::EpisodeStart { episode: 0, epsilon: 0.9 },
            ep(0, 300.0, 1.0),
            ParsedEvent::EpisodeStart { episode: 1, epsilon: 0.8 },
            ep(1, 280.0, 0.5),
            ParsedEvent::LearnEnd {
                episodes: 2,
                greedy_makespan_secs: 270.0,
                best_makespan_secs: 280.0,
            },
        ]);
        assert_eq!(a.episodes.len(), 2);
        assert_eq!(a.episodes[0].epsilon, Some(0.9));
        assert_eq!(a.episodes[1].epsilon, Some(0.8));
        assert_eq!(a.total_td_updates, 20);
        assert_eq!(a.first_makespan_secs, 300.0);
        assert_eq!(a.best_makespan_secs, 280.0);
        assert!((a.improvement() - (1.0 - 280.0 / 300.0)).abs() < 1e-12);
        assert_eq!(a.end.unwrap().greedy_makespan_secs, 270.0);
        assert!(!a.is_empty());
        assert!(build(&[]).is_empty());
    }

    #[test]
    fn convergence_detects_qdelta_collapse() {
        // 10 noisy episodes, then q_delta drops two orders of magnitude.
        let mut evs: Vec<ParsedEvent> =
            (0..10).map(|i| ep(i, 300.0, 1.0 + 0.1 * i as f64)).collect();
        evs.extend((10..20).map(|i| ep(i, 290.0, 0.001)));
        let a = build(&evs);
        // Window of 5 needs 4 tiny values after episode 10 to pull the
        // trailing mean under 5% of the initial window mean.
        let c = a.converged_at.expect("should converge");
        assert!((13..=14).contains(&c), "converged at {c}");
        // Monotone large deltas never converge.
        let b = build(&(0..20).map(|i| ep(i, 300.0, 1.0)).collect::<Vec<_>>());
        assert_eq!(b.converged_at, None);
        // Too few episodes: no verdict.
        assert_eq!(build(&(0..3).map(|i| ep(i, 1.0, 0.0)).collect::<Vec<_>>()).converged_at, None);
        // All-zero deltas: converged from the first full window.
        let z = build(&(0..6).map(|i| ep(i, 1.0, 0.0)).collect::<Vec<_>>());
        assert_eq!(z.converged_at, Some(4));
    }
}
