//! Offline SLO evaluation (schema minor 5): re-run an [`SloEngine`]
//! over the `snapshot` events of a sidecar stream and compare the
//! recomputed breaches against the `slo_breach` events the live engine
//! embedded in the same stream.
//!
//! The live and offline paths share one implementation — both fold
//! [`SnapshotView`]s through [`SloEngine::observe`] — so a seeded run's
//! breaches must reproduce *identically* offline. A mismatch means the
//! engine drifted (or the stream was truncated), and the report calls
//! it out instead of averaging over it.

use obs::event::{json_f64, json_str};
use obs::slo::{Breach, SloEngine, SloRule, SnapshotView};

use crate::parse::{parse_line, ParsedEvent};

/// Outcome of replaying SLO rules over a snapshot stream.
#[derive(Clone, Debug, Default)]
pub struct SloReplay {
    /// Rules the replay evaluated.
    pub rules: Vec<SloRule>,
    /// `snapshot` events consumed.
    pub snapshots: u64,
    /// Breaches recomputed offline by this replay.
    pub recomputed: Vec<Breach>,
    /// `slo_breach` events embedded in the stream by the live engine.
    pub embedded: Vec<Breach>,
}

impl SloReplay {
    /// True when the offline recomputation reproduced the embedded
    /// breaches exactly (same rules, values, thresholds and ticks, in
    /// the same order). An embedded stream from a run with *no* live
    /// rules (empty `embedded`) never matches a replay that found
    /// breaches — that asymmetry is reported, not hidden.
    pub fn matches(&self) -> bool {
        self.recomputed == self.embedded
    }
}

/// Replay `rules` over every `snapshot` event in a JSONL trace.
/// Unknown and unparseable lines are skipped, mirroring the additive
/// schema rule; `slo_breach` lines are collected for comparison.
pub fn replay_slo(text: &str, rules: Vec<SloRule>) -> SloReplay {
    let mut engine = SloEngine::new(rules);
    let mut replay = SloReplay { rules: engine.rules().to_vec(), ..SloReplay::default() };
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let Ok(ev) = parse_line(line) else { continue };
        match ev {
            ParsedEvent::Snapshot {
                tick,
                seq,
                queued,
                vt,
                backpressure,
                max_depth,
                admitted,
                shed,
                plans,
                hit_rate,
                plans_per_sec,
                p50_sojourn_ms,
                p99_sojourn_ms,
            } => {
                replay.snapshots += 1;
                let view = SnapshotView {
                    tick,
                    seq,
                    queued,
                    vt,
                    backpressure,
                    max_depth,
                    admitted,
                    shed,
                    plans,
                    hit_rate,
                    plans_per_sec,
                    p50_sojourn_ms,
                    p99_sojourn_ms,
                };
                replay.recomputed.extend(engine.observe(view));
            }
            ParsedEvent::SloBreach { rule, metric, value, threshold, tick } => {
                replay.embedded.push(Breach { rule, metric, value, threshold, tick });
            }
            _ => {}
        }
    }
    replay
}

fn breach_json(b: &Breach) -> String {
    format!(
        "{{\"rule\":{},\"metric\":{},\"value\":{},\"threshold\":{},\"tick\":{}}}",
        json_str(&b.rule),
        json_str(&b.metric),
        json_f64(b.value),
        json_f64(b.threshold),
        b.tick
    )
}

/// Machine-readable replay report.
pub fn slo_report_json(r: &SloReplay) -> String {
    let recomputed: Vec<String> = r.recomputed.iter().map(breach_json).collect();
    let embedded: Vec<String> = r.embedded.iter().map(breach_json).collect();
    format!(
        "{{\"rules\":{},\"snapshots\":{},\"matches\":{},\
         \"recomputed\":[{}],\"embedded\":[{}]}}",
        r.rules.len(),
        r.snapshots,
        r.matches(),
        recomputed.join(","),
        embedded.join(",")
    )
}

/// Human-readable replay report.
pub fn slo_report_human(r: &SloReplay) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "slo replay: {} rule(s) over {} snapshot(s)", r.rules.len(), r.snapshots);
    if r.snapshots == 0 {
        out.push_str("no snapshot events in trace (was it produced with --snapshot-every?)\n");
        return out;
    }
    if r.recomputed.is_empty() {
        out.push_str("no breaches: every snapshot satisfied every rule\n");
    }
    for b in &r.recomputed {
        let _ = writeln!(
            out,
            "  BREACH {:<16} {} = {} (threshold {}) at tick {}",
            b.rule,
            b.metric,
            json_f64(b.value),
            json_f64(b.threshold),
            b.tick
        );
    }
    let verdict = if r.matches() {
        format!("offline replay matches the live engine ({} embedded breach(es))", r.embedded.len())
    } else {
        format!(
            "MISMATCH: recomputed {} breach(es) but the stream embeds {}",
            r.recomputed.len(),
            r.embedded.len()
        )
    };
    let _ = writeln!(out, "{verdict}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::slo::parse_rules;

    const STREAM: &str = "\
{\"ev\":\"header\",\"v\":1,\"producer\":\"reassignd\"}\n\
{\"ev\":\"snapshot\",\"tick\":1,\"seq\":10,\"queued\":2,\"vt\":3,\"backpressure\":0,\"max_depth\":2,\"admitted\":10,\"shed\":0,\"plans\":8,\"hit_rate\":0.5,\"plans_per_sec\":100,\"p50_sojourn_ms\":1,\"p99_sojourn_ms\":2}\n\
{\"ev\":\"snapshot\",\"tick\":2,\"seq\":20,\"queued\":9,\"vt\":6,\"backpressure\":1,\"max_depth\":9,\"admitted\":19,\"shed\":1,\"plans\":15,\"hit_rate\":0.6,\"plans_per_sec\":90,\"p50_sojourn_ms\":1,\"p99_sojourn_ms\":3}\n\
{\"ev\":\"slo_breach\",\"rule\":\"depth\",\"metric\":\"queued\",\"value\":9,\"threshold\":8,\"tick\":2}\n";

    #[test]
    fn replay_reproduces_embedded_breaches() {
        let rules = parse_rules("depth queued > 8\n").unwrap();
        let r = replay_slo(STREAM, rules);
        assert_eq!(r.snapshots, 2);
        assert_eq!(r.recomputed.len(), 1);
        assert_eq!(r.recomputed[0].rule, "depth");
        assert_eq!(r.recomputed[0].tick, 2);
        assert!(r.matches(), "{r:?}");
        let human = slo_report_human(&r);
        assert!(human.contains("BREACH depth"), "{human}");
        assert!(human.contains("offline replay matches the live engine"), "{human}");
        let json = slo_report_json(&r);
        assert!(json.contains("\"matches\":true"), "{json}");
        assert!(json.contains("\"rule\":\"depth\",\"metric\":\"queued\",\"value\":9"), "{json}");
    }

    #[test]
    fn rule_drift_is_reported_as_mismatch() {
        // Offline rules looser than the live run: the embedded breach
        // has no recomputed twin.
        let rules = parse_rules("depth queued > 100\n").unwrap();
        let r = replay_slo(STREAM, rules);
        assert!(r.recomputed.is_empty());
        assert_eq!(r.embedded.len(), 1);
        assert!(!r.matches());
        assert!(slo_report_human(&r).contains("MISMATCH"), "{}", slo_report_human(&r));
        assert!(slo_report_json(&r).contains("\"matches\":false"));
    }

    #[test]
    fn snapshotless_trace_gets_a_hint() {
        let r = replay_slo("{\"ev\":\"header\",\"v\":1,\"producer\":\"x\"}\n", Vec::new());
        assert_eq!(r.snapshots, 0);
        assert!(slo_report_human(&r).contains("no snapshot events"));
    }
}
