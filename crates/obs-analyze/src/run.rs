//! Per-run analytics: one simulated execution (a `sim_start` ..
//! `sim_end` segment) reduced to critical path, per-VM utilization,
//! queue/retry breakdowns and aggregate counters.

use std::collections::HashMap;

use obs::{Histogram, REPLICA_ATTEMPT_BASE};

use crate::parse::ParsedEvent;

/// One completed (or failed) attempt of an activation on a VM.
#[derive(Clone, Debug, PartialEq)]
pub struct Attempt {
    /// Activation index.
    pub ac: u32,
    /// VM the attempt ran on.
    pub vm: u32,
    /// 0-based attempt number (>0 after retries).
    pub attempt: u32,
    /// Simulated time all dependencies were satisfied. Taken verbatim
    /// from the `start` event when present so that parent matching in
    /// the critical path can use exact float equality; otherwise
    /// derived as `start - queue_secs`.
    pub ready_since: f64,
    /// Simulated start time.
    pub start: f64,
    /// Simulated finish time.
    pub finish: f64,
    /// Pure execution seconds.
    pub exec_secs: f64,
    /// Seconds spent ready-but-queued before starting.
    pub queue_secs: f64,
    /// Whether the attempt failed (triggering a retry).
    pub failed: bool,
}

/// One step on the critical path, root first.
#[derive(Clone, Debug, PartialEq)]
pub struct CpStep {
    /// Activation index.
    pub ac: u32,
    /// VM it ran on.
    pub vm: u32,
    /// Simulated start time.
    pub start: f64,
    /// Simulated finish time.
    pub finish: f64,
    /// Execution seconds contributed to the path.
    pub exec_secs: f64,
    /// Queue-wait seconds contributed to the path.
    pub queue_secs: f64,
}

/// The longest cost-weighted chain of dependent activations,
/// reconstructed from the trace alone: the parent of a step is the
/// activation whose `finish` time equals the step's `ready_since`
/// (exact float equality — both sides are the same simulator-computed
/// value), tie-broken toward the smallest activation index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// Steps in dependency order (root first, makespan-defining last).
    pub steps: Vec<CpStep>,
    /// Finish time of the last step — equals the run makespan when the
    /// run completed.
    pub length_secs: f64,
    /// Total execution seconds along the path.
    pub exec_secs: f64,
    /// Total queue-wait seconds along the path.
    pub queue_secs: f64,
    /// Seconds of the path not attributed to any traced attempt (first
    /// step's `ready_since` when no parent finish matches it; 0 for a
    /// fully attributed path rooted at t=0).
    pub unattributed_secs: f64,
}

/// A contiguous busy interval of one attempt on a VM.
#[derive(Clone, Debug, PartialEq)]
pub struct Interval {
    /// Activation index.
    pub ac: u32,
    /// Interval start (simulated seconds).
    pub start: f64,
    /// Interval end (simulated seconds).
    pub finish: f64,
    /// Whether this attempt failed.
    pub failed: bool,
}

/// Per-VM usage over one run.
#[derive(Clone, Debug, PartialEq)]
pub struct VmUsage {
    /// VM index.
    pub vm: u32,
    /// Attempts that finished on this VM (including failed ones).
    pub attempts: usize,
    /// Σ `exec_secs` over attempts — PE-seconds of real work. Can
    /// exceed `busy_union_secs` on multi-PE VMs running concurrently.
    pub busy_pe_secs: f64,
    /// Length of the union of busy intervals — wall-clock seconds the
    /// VM had at least one attempt running.
    pub busy_union_secs: f64,
    /// Busy intervals sorted by start time (the Gantt row).
    pub intervals: Vec<Interval>,
}

impl VmUsage {
    /// Fraction of the run horizon this VM spent busy.
    pub fn utilization(&self, makespan_secs: f64) -> f64 {
        if makespan_secs > 0.0 {
            self.busy_union_secs / makespan_secs
        } else {
            0.0
        }
    }
}

/// Retry summary for one activation that needed more than one attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryRow {
    /// Activation index.
    pub ac: u32,
    /// Total attempts observed.
    pub attempts: usize,
    /// Of those, how many failed.
    pub failed: usize,
}

/// Count of one fault kind over a run (schema minor 2 `fault` events).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultCount {
    /// Taxonomy kind (`crash`, `straggler`, `timeout`, `lost_ack`, …).
    pub kind: String,
    /// Events of that kind.
    pub count: usize,
}

/// One VM permanently blacklisted during a run.
#[derive(Clone, Debug, PartialEq)]
pub struct BlacklistRow {
    /// VM index.
    pub vm: u32,
    /// Fault count that tripped the threshold.
    pub faults: u32,
    /// When it was removed (simulated seconds).
    pub t: f64,
}

/// Speculative-replication activity on one VM (schema v1.6
/// `replicate`/`cancel` events).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplVmRow {
    /// VM index.
    pub vm: u32,
    /// Replicas launched on this VM.
    pub launched: usize,
    /// Races won here by a replica (non-failed `finish` with a
    /// replica-namespace attempt id).
    pub won: usize,
    /// Attempts cancelled here after losing a race (primaries and
    /// replicas alike).
    pub cancelled: usize,
}

/// Run-level speculative-replication summary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplSummary {
    /// Total replicas launched (`replicate` events).
    pub launched: usize,
    /// Races won by a replica rather than the primary.
    pub won: usize,
    /// Attempts cancelled after losing a race (`cancel` events).
    pub cancelled: usize,
    /// PE-seconds burned by cancelled attempts — each one's dispatch →
    /// cancel interval, the price paid for the hedge.
    pub wasted_pe_secs: f64,
    /// Per-VM breakdown, sorted by VM index; only VMs with replication
    /// activity appear.
    pub per_vm: Vec<ReplVmRow>,
}

/// Everything derived from one `sim_start` .. `sim_end` segment.
#[derive(Clone, Debug)]
pub struct RunAnalysis {
    /// 0-based index of this run within the trace.
    pub index: usize,
    /// Activation count declared by `sim_start`.
    pub activations_declared: u32,
    /// VM count declared by `sim_start`.
    pub vms_declared: u32,
    /// Whether a `sim_end` closed the segment (false = truncated).
    pub complete: bool,
    /// `sim_end.success` (false when incomplete).
    pub success: bool,
    /// `sim_end.t`, or the max finish time for a truncated run.
    pub makespan_secs: f64,
    /// Engine event count from `sim_end`.
    pub events: u64,
    /// Queue pushes from `sim_end`.
    pub queue_pushes: u64,
    /// Max ready-queue depth from `sim_end`.
    pub max_queue_depth: u64,
    /// Number of `sched` scheduling passes traced.
    pub sched_passes: u64,
    /// Largest ready backlog seen at any scheduling pass.
    pub max_ready_backlog: u32,
    /// All finished attempts, in trace order.
    pub attempts: Vec<Attempt>,
    /// Successful (non-failed) finishes — completed activations.
    pub completed: usize,
    /// Failed attempts.
    pub failed_attempts: usize,
    /// `retry` events traced.
    pub retries: usize,
    /// `start` events with no matching finish (truncated runs).
    pub unfinished_starts: usize,
    /// Queue-wait distribution over all finished attempts.
    pub queue: Histogram,
    /// Execution-time distribution over all finished attempts.
    pub exec: Histogram,
    /// Per-VM usage, sorted by VM index. Only VMs that ran something
    /// appear; `vms_declared` is the full fleet size.
    pub vms: Vec<VmUsage>,
    /// The critical path.
    pub critical_path: CriticalPath,
    /// Activations that retried, sorted by activation index.
    pub retry_rows: Vec<RetryRow>,
    /// Per-kind `fault` event counts, sorted by kind.
    pub fault_counts: Vec<FaultCount>,
    /// Attempts closed by a crash/timeout fault instead of a `finish`.
    pub lost_attempts: usize,
    /// `reschedule` events traced.
    pub reschedules: usize,
    /// `recover` events traced.
    pub recoveries: usize,
    /// Blacklisted VMs, sorted by VM index.
    pub blacklist_rows: Vec<BlacklistRow>,
    /// Speculative-replication activity (zeroed when the run never
    /// replicated).
    pub replication: ReplSummary,
}

impl RunAnalysis {
    /// Mean per-VM busy fraction over the *declared* fleet — idle VMs
    /// count as zero, so this is Σ busy-union / (vms × makespan).
    pub fn mean_vm_utilization(&self) -> f64 {
        if self.vms_declared == 0 || self.makespan_secs <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.vms.iter().map(|v| v.busy_union_secs).sum();
        busy / (self.vms_declared as f64 * self.makespan_secs)
    }

    /// ASCII Gantt chart of this run: one row per VM, `width` cells
    /// over `[0, makespan]`, shaded by how much of each cell the VM
    /// spent busy (`·` idle, `▪` ≤ half, `▓` ≤ full, `█` oversubscribed
    /// — concurrent attempts on a multi-PE VM).
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let span = self.makespan_secs;
        let mut out = String::new();
        if span <= 0.0 {
            return out;
        }
        let cell = span / width as f64;
        for vm in &self.vms {
            let mut row = String::with_capacity(width * 3);
            for c in 0..width {
                let lo = c as f64 * cell;
                let hi = lo + cell;
                let busy: f64 = vm
                    .intervals
                    .iter()
                    .map(|iv| (iv.finish.min(hi) - iv.start.max(lo)).max(0.0))
                    .sum();
                let frac = busy / cell;
                row.push(if frac <= f64::EPSILON {
                    '·'
                } else if frac <= 0.5 {
                    '▪'
                } else if frac <= 1.0 + 1e-9 {
                    '▓'
                } else {
                    '█'
                });
            }
            out.push_str(&format!("{:>14} |{row}|\n", format!("vm{}", vm.vm)));
        }
        out.push_str(&format!("{:>14} |{:<w$}|\n", "t", format!("0 .. {:.2}s", span), w = width));
        out
    }
}

/// Streaming builder for one run segment.
#[derive(Debug, Default)]
pub struct RunBuilder {
    activations: u32,
    vms: u32,
    starts: HashMap<(u32, u32), (u32, f64, f64)>, // (ac, attempt) -> (vm, t, ready_since)
    attempts: Vec<Attempt>,
    retries: usize,
    sched_passes: u64,
    max_ready_backlog: u32,
    faults: HashMap<String, usize>,
    lost_attempts: usize,
    reschedules: usize,
    recoveries: usize,
    blacklists: Vec<BlacklistRow>,
    repl_per_vm: HashMap<u32, ReplVmRow>,
    repl_wasted_pe_secs: f64,
    end: Option<(f64, bool, u64, u64, u64)>,
}

impl RunBuilder {
    /// Open a segment from its `sim_start` event.
    pub fn new(activations: u32, vms: u32) -> Self {
        Self { activations, vms, ..Self::default() }
    }

    /// Feed one event belonging to this segment (anything other than
    /// the run-scoped kinds is ignored).
    pub fn feed(&mut self, ev: &ParsedEvent) {
        match *ev {
            ParsedEvent::Sched { ready, .. } => {
                self.sched_passes += 1;
                self.max_ready_backlog = self.max_ready_backlog.max(ready);
            }
            ParsedEvent::Start { t, ac, vm, attempt, ready_since } => {
                self.starts.insert((ac, attempt), (vm, t, ready_since));
            }
            ParsedEvent::Replicate { t, ac, vm, attempt, ready_since } => {
                // A replica occupies a PE from its launch, exactly
                // like a start; if it wins, its `finish` closes this
                // entry, and if it loses, `cancel` reclaims it.
                self.starts.insert((ac, attempt), (vm, t, ready_since));
                self.repl_per_vm
                    .entry(vm)
                    .or_insert(ReplVmRow { vm, ..Default::default() })
                    .launched += 1;
            }
            ParsedEvent::Cancel { t, ac, vm, attempt } => {
                if let Some((_, started, _)) = self.starts.remove(&(ac, attempt)) {
                    self.repl_wasted_pe_secs += (t - started).max(0.0);
                }
                self.repl_per_vm
                    .entry(vm)
                    .or_insert(ReplVmRow { vm, ..Default::default() })
                    .cancelled += 1;
            }
            ParsedEvent::Finish { t, ac, vm, attempt, exec_secs, queue_secs, failed } => {
                if attempt >= REPLICA_ATTEMPT_BASE && !failed {
                    self.repl_per_vm
                        .entry(vm)
                        .or_insert(ReplVmRow { vm, ..Default::default() })
                        .won += 1;
                }
                // Prefer the recorded start/ready (bit-exact, needed
                // for parent matching); derive them when the trace was
                // truncated before this attempt's `start`.
                let (start, ready_since) = match self.starts.remove(&(ac, attempt)) {
                    Some((_, s, r)) => (s, r),
                    None => (t - exec_secs, t - exec_secs - queue_secs),
                };
                self.attempts.push(Attempt {
                    ac,
                    vm,
                    attempt,
                    ready_since,
                    start,
                    finish: t,
                    exec_secs,
                    queue_secs,
                    failed,
                });
            }
            ParsedEvent::Retry { .. } => self.retries += 1,
            ParsedEvent::Fault { ref kind, ac, vm, .. } => {
                *self.faults.entry(kind.clone()).or_default() += 1;
                // A crash/timeout fault on an activation kills its
                // in-flight attempt: close the open `start` so it is
                // reported as lost, not as truncated-unfinished.
                // Stragglers only slow the attempt down.
                if ac >= 0 && kind != "straggler" {
                    let ac = ac as u32;
                    let fvm = vm;
                    // Prefer the attempt running on the faulted VM —
                    // with replication an activation may have siblings
                    // alive on other VMs that the fault spares.
                    let open = self
                        .starts
                        .iter()
                        .filter(|&(&(a, _), &(v, _, _))| a == ac && v == fvm)
                        .map(|(&(_, attempt), _)| attempt)
                        .max()
                        .or_else(|| {
                            self.starts
                                .keys()
                                .filter(|&&(a, _)| a == ac)
                                .map(|&(_, attempt)| attempt)
                                .max()
                        });
                    if let Some(attempt) = open {
                        self.starts.remove(&(ac, attempt));
                        self.lost_attempts += 1;
                    }
                }
            }
            ParsedEvent::Reschedule { .. } => self.reschedules += 1,
            ParsedEvent::Recover { .. } => self.recoveries += 1,
            ParsedEvent::Blacklist { t, vm, faults } => {
                self.blacklists.push(BlacklistRow { vm, faults, t });
            }
            ParsedEvent::SimEnd { t, success, events, queue_pushes, max_queue_depth } => {
                self.end = Some((t, success, events, queue_pushes, max_queue_depth));
            }
            _ => {}
        }
    }

    /// Close the segment and compute its analytics.
    pub fn finish(self, index: usize) -> RunAnalysis {
        let complete = self.end.is_some();
        let (end_t, success, events, queue_pushes, max_queue_depth) =
            self.end.unwrap_or((f64::NAN, false, 0, 0, 0));
        let makespan_secs = if complete {
            end_t
        } else {
            self.attempts.iter().map(|a| a.finish).fold(0.0, f64::max)
        };

        let mut queue = Histogram::default();
        let mut exec = Histogram::default();
        let mut per_vm: HashMap<u32, VmUsage> = HashMap::new();
        let mut per_ac: HashMap<u32, (usize, usize)> = HashMap::new();
        let mut completed = 0usize;
        let mut failed_attempts = 0usize;
        for a in &self.attempts {
            queue.record(a.queue_secs);
            exec.record(a.exec_secs);
            if a.failed {
                failed_attempts += 1;
            } else {
                completed += 1;
            }
            let row = per_ac.entry(a.ac).or_default();
            row.0 += 1;
            row.1 += a.failed as usize;
            let vm = per_vm.entry(a.vm).or_insert(VmUsage {
                vm: a.vm,
                attempts: 0,
                busy_pe_secs: 0.0,
                busy_union_secs: 0.0,
                intervals: Vec::new(),
            });
            vm.attempts += 1;
            vm.busy_pe_secs += a.exec_secs;
            vm.intervals.push(Interval {
                ac: a.ac,
                start: a.start,
                finish: a.finish,
                failed: a.failed,
            });
        }

        let mut vms: Vec<VmUsage> = per_vm.into_values().collect();
        vms.sort_by_key(|v| v.vm);
        for vm in &mut vms {
            vm.intervals
                .sort_by(|a, b| a.start.total_cmp(&b.start).then(a.finish.total_cmp(&b.finish)));
            vm.busy_union_secs = union_len(&vm.intervals);
        }

        let mut retry_rows: Vec<RetryRow> = per_ac
            .into_iter()
            .filter(|&(_, (attempts, _))| attempts > 1)
            .map(|(ac, (attempts, failed))| RetryRow { ac, attempts, failed })
            .collect();
        retry_rows.sort_by_key(|r| r.ac);

        let critical_path = critical_path(&self.attempts);

        let mut fault_counts: Vec<FaultCount> =
            self.faults.into_iter().map(|(kind, count)| FaultCount { kind, count }).collect();
        fault_counts.sort_by(|a, b| a.kind.cmp(&b.kind));
        let mut blacklist_rows = self.blacklists;
        blacklist_rows.sort_by_key(|r| r.vm);

        let mut repl_vms: Vec<ReplVmRow> = self.repl_per_vm.into_values().collect();
        repl_vms.sort_by_key(|r| r.vm);
        let replication = ReplSummary {
            launched: repl_vms.iter().map(|r| r.launched).sum(),
            won: repl_vms.iter().map(|r| r.won).sum(),
            cancelled: repl_vms.iter().map(|r| r.cancelled).sum(),
            wasted_pe_secs: self.repl_wasted_pe_secs,
            per_vm: repl_vms,
        };

        RunAnalysis {
            index,
            activations_declared: self.activations,
            vms_declared: self.vms,
            complete,
            success,
            makespan_secs,
            events,
            queue_pushes,
            max_queue_depth,
            sched_passes: self.sched_passes,
            max_ready_backlog: self.max_ready_backlog,
            completed,
            failed_attempts,
            retries: self.retries,
            unfinished_starts: self.starts.len(),
            queue,
            exec,
            vms,
            critical_path,
            retry_rows,
            fault_counts,
            lost_attempts: self.lost_attempts,
            reschedules: self.reschedules,
            recoveries: self.recoveries,
            blacklist_rows,
            replication,
            attempts: self.attempts,
        }
    }
}

/// Length of the union of (already start-sorted) intervals.
fn union_len(intervals: &[Interval]) -> f64 {
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for iv in intervals {
        match cur {
            Some((lo, hi)) if iv.start <= hi => cur = Some((lo, hi.max(iv.finish))),
            Some((lo, hi)) => {
                total += hi - lo;
                cur = Some((iv.start, iv.finish));
            }
            None => cur = Some((iv.start, iv.finish)),
        }
    }
    if let Some((lo, hi)) = cur {
        total += hi - lo;
    }
    total
}

/// Walk the makespan-defining chain backwards through the attempts.
///
/// The leaf is the successful attempt with the latest finish; each
/// parent is the successful attempt whose `finish` equals the child's
/// `ready_since` exactly (both are the same simulator-computed f64),
/// smallest activation index winning ties. The chain telescopes:
/// Σ (exec + queue) along it equals the leaf finish time minus
/// `unattributed_secs`, which is zero for a path rooted at t = 0.
pub fn critical_path(attempts: &[Attempt]) -> CriticalPath {
    let ok: Vec<&Attempt> = attempts.iter().filter(|a| !a.failed).collect();
    let Some(leaf) =
        ok.iter().copied().max_by(|a, b| a.finish.total_cmp(&b.finish).then(b.ac.cmp(&a.ac)))
    else {
        return CriticalPath::default();
    };
    let mut chain = vec![leaf];
    let mut cur = leaf;
    while cur.ready_since > 0.0 {
        let parent = ok
            .iter()
            .copied()
            .filter(|p| p.finish == cur.ready_since && p.ac != cur.ac)
            .min_by_key(|p| p.ac);
        match parent {
            Some(p) => {
                chain.push(p);
                cur = p;
            }
            None => break,
        }
    }
    chain.reverse();
    let unattributed_secs = chain.first().map_or(0.0, |a| a.ready_since);
    let steps: Vec<CpStep> = chain
        .iter()
        .map(|a| CpStep {
            ac: a.ac,
            vm: a.vm,
            start: a.start,
            finish: a.finish,
            exec_secs: a.exec_secs,
            queue_secs: a.queue_secs,
        })
        .collect();
    CriticalPath {
        length_secs: leaf.finish,
        exec_secs: steps.iter().map(|s| s.exec_secs).sum(),
        queue_secs: steps.iter().map(|s| s.queue_secs).sum(),
        unattributed_secs,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(ac: u32, vm: u32, ready: f64, start: f64, finish: f64) -> Attempt {
        Attempt {
            ac,
            vm,
            attempt: 0,
            ready_since: ready,
            start,
            finish,
            exec_secs: finish - start,
            queue_secs: start - ready,
            failed: false,
        }
    }

    #[test]
    fn critical_path_walks_ready_since_links() {
        // 0 -> 1 -> 3 is the long chain; 2 is a short sibling.
        let attempts = vec![
            attempt(0, 0, 0.0, 0.0, 10.0),
            attempt(1, 1, 10.0, 10.5, 30.0),
            attempt(2, 0, 10.0, 10.0, 12.0),
            attempt(3, 0, 30.0, 30.0, 42.0),
        ];
        let cp = critical_path(&attempts);
        assert_eq!(cp.steps.iter().map(|s| s.ac).collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(cp.length_secs, 42.0);
        assert!((cp.exec_secs + cp.queue_secs - 42.0).abs() < 1e-12, "path telescopes");
        assert_eq!(cp.unattributed_secs, 0.0);
    }

    #[test]
    fn critical_path_tie_breaks_smallest_ac() {
        // Two parents finish at exactly t=10; ac 1 must win.
        let attempts = vec![
            attempt(2, 0, 0.0, 0.0, 10.0),
            attempt(1, 1, 0.0, 0.0, 10.0),
            attempt(3, 0, 10.0, 10.0, 20.0),
        ];
        let cp = critical_path(&attempts);
        assert_eq!(cp.steps.iter().map(|s| s.ac).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn critical_path_skips_failed_attempts_and_reports_gaps() {
        let mut failed = attempt(0, 0, 0.0, 0.0, 10.0);
        failed.failed = true;
        // Leaf became ready at t=10 but only a *failed* attempt
        // finished then: the gap is unattributed, not mis-linked.
        let attempts = vec![failed, attempt(1, 0, 10.0, 11.0, 20.0)];
        let cp = critical_path(&attempts);
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.unattributed_secs, 10.0);
        assert!(critical_path(&[]).steps.is_empty());
    }

    #[test]
    fn union_len_merges_overlaps() {
        let iv = |s: f64, f: f64| Interval { ac: 0, start: s, finish: f, failed: false };
        assert_eq!(union_len(&[iv(0.0, 2.0), iv(1.0, 3.0), iv(5.0, 6.0)]), 4.0);
        assert_eq!(union_len(&[]), 0.0);
    }

    fn analyze(events: &[ParsedEvent]) -> RunAnalysis {
        let mut b = RunBuilder::new(3, 2);
        for e in events {
            b.feed(e);
        }
        b.finish(0)
    }

    #[test]
    fn run_builder_aggregates_a_segment() {
        let run = analyze(&[
            ParsedEvent::Sched { t: 0.0, ready: 2, idle_pes: 4 },
            ParsedEvent::Start { t: 0.0, ac: 0, vm: 0, attempt: 0, ready_since: 0.0 },
            ParsedEvent::Start { t: 0.0, ac: 1, vm: 1, attempt: 0, ready_since: 0.0 },
            ParsedEvent::Finish {
                t: 4.0,
                ac: 0,
                vm: 0,
                attempt: 0,
                exec_secs: 4.0,
                queue_secs: 0.0,
                failed: true,
            },
            ParsedEvent::Retry { t: 4.0, ac: 0, next_attempt: 1 },
            ParsedEvent::Start { t: 4.0, ac: 0, vm: 0, attempt: 1, ready_since: 0.0 },
            ParsedEvent::Finish {
                t: 5.0,
                ac: 1,
                vm: 1,
                attempt: 0,
                exec_secs: 5.0,
                queue_secs: 0.0,
                failed: false,
            },
            ParsedEvent::Finish {
                t: 9.0,
                ac: 0,
                vm: 0,
                attempt: 1,
                exec_secs: 5.0,
                queue_secs: 4.0,
                failed: false,
            },
            ParsedEvent::SimEnd {
                t: 9.0,
                success: true,
                events: 10,
                queue_pushes: 4,
                max_queue_depth: 2,
            },
        ]);
        assert!(run.complete && run.success);
        assert_eq!(run.makespan_secs, 9.0);
        assert_eq!((run.completed, run.failed_attempts, run.retries), (2, 1, 1));
        assert_eq!(run.retry_rows, vec![RetryRow { ac: 0, attempts: 2, failed: 1 }]);
        assert_eq!(run.queue.count(), 3);
        assert_eq!(run.vms.len(), 2);
        // vm0 ran [0,4] (failed) and [4,9]: 9s busy PE-secs and union.
        assert_eq!(run.vms[0].busy_pe_secs, 9.0);
        assert_eq!(run.vms[0].busy_union_secs, 9.0);
        assert!((run.mean_vm_utilization() - (9.0 + 5.0) / (2.0 * 9.0)).abs() < 1e-12);
        let gantt = run.gantt(20);
        assert!(gantt.contains("vm0") && gantt.contains("vm1"), "{gantt}");
        assert!(gantt.contains('·') || gantt.contains('▓'), "{gantt}");
    }

    #[test]
    fn fault_events_aggregate_and_close_lost_attempts() {
        let run = analyze(&[
            ParsedEvent::Start { t: 0.0, ac: 0, vm: 0, attempt: 0, ready_since: 0.0 },
            ParsedEvent::Start { t: 0.0, ac: 1, vm: 1, attempt: 0, ready_since: 0.0 },
            // Straggler slows ac 1 but must not close its start.
            ParsedEvent::Fault { t: 0.0, kind: "straggler".into(), ac: 1, vm: 1 },
            // VM 0 crashes: VM-level fault (ac = -1) plus the orphaned
            // attempt of ac 0, which is rescheduled.
            ParsedEvent::Fault { t: 2.0, kind: "crash".into(), ac: -1, vm: 0 },
            ParsedEvent::Fault { t: 2.0, kind: "crash".into(), ac: 0, vm: 0 },
            ParsedEvent::Reschedule { t: 2.0, ac: 0, vm: 0, next_attempt: 1 },
            ParsedEvent::Blacklist { t: 2.0, vm: 0, faults: 1 },
            ParsedEvent::Start { t: 2.0, ac: 0, vm: 1, attempt: 1, ready_since: 0.0 },
            ParsedEvent::Recover { t: 3.0, vm: 1, pes: 1 },
            ParsedEvent::Finish {
                t: 6.0,
                ac: 0,
                vm: 1,
                attempt: 1,
                exec_secs: 4.0,
                queue_secs: 2.0,
                failed: false,
            },
            ParsedEvent::Finish {
                t: 8.0,
                ac: 1,
                vm: 1,
                attempt: 0,
                exec_secs: 8.0,
                queue_secs: 0.0,
                failed: false,
            },
            ParsedEvent::SimEnd {
                t: 8.0,
                success: true,
                events: 12,
                queue_pushes: 4,
                max_queue_depth: 2,
            },
        ]);
        assert_eq!(
            run.fault_counts,
            vec![
                FaultCount { kind: "crash".into(), count: 2 },
                FaultCount { kind: "straggler".into(), count: 1 },
            ]
        );
        assert_eq!(run.lost_attempts, 1, "crash closed ac0/attempt0");
        assert_eq!(run.unfinished_starts, 0, "lost attempt is not 'unfinished'");
        assert_eq!(run.reschedules, 1);
        assert_eq!(run.recoveries, 1);
        assert_eq!(run.blacklist_rows, vec![BlacklistRow { vm: 0, faults: 1, t: 2.0 }]);
        assert_eq!(run.completed, 2);
    }

    #[test]
    fn replication_rows_aggregate_launches_wins_cancels_and_waste() {
        const REP: u32 = 1_000_000;
        let run = analyze(&[
            // ac0: replica on vm1 wins at t=4; primary cancelled after
            // 4 wasted PE-seconds.
            ParsedEvent::Start { t: 0.0, ac: 0, vm: 0, attempt: 0, ready_since: 0.0 },
            ParsedEvent::Replicate { t: 0.0, ac: 0, vm: 1, attempt: REP, ready_since: 0.0 },
            ParsedEvent::Finish {
                t: 4.0,
                ac: 0,
                vm: 1,
                attempt: REP,
                exec_secs: 4.0,
                queue_secs: 0.0,
                failed: false,
            },
            ParsedEvent::Cancel { t: 4.0, ac: 0, vm: 0, attempt: 0 },
            // ac1: primary wins at t=6; its replica on vm1 burned 2s.
            ParsedEvent::Start { t: 4.0, ac: 1, vm: 0, attempt: 0, ready_since: 4.0 },
            ParsedEvent::Replicate { t: 4.0, ac: 1, vm: 1, attempt: REP, ready_since: 4.0 },
            ParsedEvent::Finish {
                t: 6.0,
                ac: 1,
                vm: 0,
                attempt: 0,
                exec_secs: 2.0,
                queue_secs: 0.0,
                failed: false,
            },
            ParsedEvent::Cancel { t: 6.0, ac: 1, vm: 1, attempt: REP },
            ParsedEvent::SimEnd {
                t: 6.0,
                success: true,
                events: 10,
                queue_pushes: 2,
                max_queue_depth: 1,
            },
        ]);
        let r = &run.replication;
        assert_eq!((r.launched, r.won, r.cancelled), (2, 1, 2));
        assert!((r.wasted_pe_secs - 6.0).abs() < 1e-12, "{}", r.wasted_pe_secs);
        assert_eq!(
            r.per_vm,
            vec![
                ReplVmRow { vm: 0, launched: 0, won: 0, cancelled: 1 },
                ReplVmRow { vm: 1, launched: 2, won: 1, cancelled: 1 },
            ]
        );
        // Cancelled attempts are closed: nothing reads as unfinished,
        // and both activations completed exactly once.
        assert_eq!(run.unfinished_starts, 0);
        assert_eq!(run.completed, 2);
    }

    #[test]
    fn truncated_run_uses_max_finish_and_counts_unfinished() {
        let run = analyze(&[
            ParsedEvent::Start { t: 0.0, ac: 0, vm: 0, attempt: 0, ready_since: 0.0 },
            ParsedEvent::Start { t: 0.0, ac: 1, vm: 1, attempt: 0, ready_since: 0.0 },
            ParsedEvent::Finish {
                t: 7.0,
                ac: 0,
                vm: 0,
                attempt: 0,
                exec_secs: 7.0,
                queue_secs: 0.0,
                failed: false,
            },
        ]);
        assert!(!run.complete && !run.success);
        assert_eq!(run.makespan_secs, 7.0);
        assert_eq!(run.unfinished_starts, 1);
    }
}
