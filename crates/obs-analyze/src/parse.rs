//! Tolerant line parser for the v1 JSONL trace schema.
//!
//! Every v1 event is one *flat* JSON object (string/number/bool/null
//! values, no nesting), so a full JSON parser is unnecessary — and the
//! schema's stability rules demand that consumers **skip unknown `ev`
//! values** rather than reject them, which is exactly what
//! [`parse_line`] does: known kinds become typed [`ParsedEvent`]s,
//! unknown kinds become [`ParsedEvent::Unknown`], and syntactically
//! broken lines become parse errors the caller can count or surface.

use std::collections::HashMap;

/// A scalar JSON value as found in a flat trace line.
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// A JSON string (unescaped).
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null` (the schema uses it for non-finite floats).
    Null,
}

impl Scalar {
    /// Numeric view: numbers as-is, `null` as NaN (the writer encodes
    /// non-finite floats as `null`), everything else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Num(n) => Some(*n),
            Scalar::Null => Some(f64::NAN),
            _ => None,
        }
    }
    /// Non-negative integral numbers only.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    /// Integral numbers, possibly negative (the `fault` event uses
    /// `ac = -1` for VM-level faults).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(*n as i64),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one flat JSON object line into its fields.
///
/// Accepts exactly the subset the trace writer emits (object of
/// scalars); rejects nesting, trailing garbage and malformed escapes.
pub fn parse_flat_object(line: &str) -> Result<HashMap<String, Scalar>, String> {
    let mut chars = line.char_indices().peekable();
    let mut fields = HashMap::new();
    let err = |msg: &str, at: usize| format!("{msg} at byte {at}");

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        other => return Err(err("expected '{'", other.map_or(line.len(), |(i, _)| i))),
    }
    skip_ws(&mut chars);
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = match chars.next() {
                Some((i, '"')) => parse_string(&mut chars, i)?,
                other => return Err(err("expected key", other.map_or(line.len(), |(i, _)| i))),
            };
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                other => return Err(err("expected ':'", other.map_or(line.len(), |(i, _)| i))),
            }
            skip_ws(&mut chars);
            let value = parse_scalar(line, &mut chars)?;
            fields.insert(key, value);
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => {
                    return Err(err("expected ',' or '}'", other.map_or(line.len(), |(i, _)| i)))
                }
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((i, _)) = chars.next() {
        return Err(err("trailing garbage", i));
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

/// Parse a string body; the opening quote (at `start`) is consumed.
fn parse_string(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    start: usize,
) -> Result<String, String> {
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((i, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|(_, c)| c.to_digit(16))
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        code = code * 16 + d;
                    }
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("bad \\u codepoint at byte {i}"))?,
                    );
                }
                _ => return Err(format!("bad escape at byte {i}")),
            },
            Some((_, c)) => out.push(c),
            None => return Err(format!("unterminated string starting at byte {start}")),
        }
    }
}

fn parse_scalar(
    line: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Result<Scalar, String> {
    match chars.peek().copied() {
        Some((i, '"')) => {
            chars.next();
            Ok(Scalar::Str(parse_string(chars, i)?))
        }
        Some((i, 't' | 'f' | 'n')) => {
            let rest = &line[i..];
            for (lit, val) in [
                ("true", Scalar::Bool(true)),
                ("false", Scalar::Bool(false)),
                ("null", Scalar::Null),
            ] {
                if rest.starts_with(lit) {
                    for _ in 0..lit.len() {
                        chars.next();
                    }
                    return Ok(val);
                }
            }
            Err(format!("bad literal at byte {i}"))
        }
        Some((i, c)) if c == '-' || c.is_ascii_digit() => {
            let mut end = i;
            while let Some(&(j, c)) = chars.peek() {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    end = j + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            line[i..end]
                .parse()
                .map(Scalar::Num)
                .map_err(|e| format!("bad number at byte {i}: {e}"))
        }
        Some((i, _)) => Err(format!("expected scalar at byte {i}")),
        None => Err("expected scalar at end of line".into()),
    }
}

/// One typed trace event, owned (unlike `obs::TraceEvent`, which
/// borrows) and closed over the schema's additive rule via `Unknown`.
#[derive(Clone, Debug, PartialEq)]
pub enum ParsedEvent {
    /// `header` — schema version + producer.
    Header { v: u64, producer: String },
    /// `sim_start`.
    SimStart { activations: u32, vms: u32 },
    /// `vm_ready`.
    VmReady { t: f64, vm: u32, pes: u32 },
    /// `sched`.
    Sched { t: f64, ready: u32, idle_pes: u32 },
    /// `start`.
    Start { t: f64, ac: u32, vm: u32, attempt: u32, ready_since: f64 },
    /// `finish`.
    Finish { t: f64, ac: u32, vm: u32, attempt: u32, exec_secs: f64, queue_secs: f64, failed: bool },
    /// `retry`.
    Retry { t: f64, ac: u32, next_attempt: u32 },
    /// `sim_end`.
    SimEnd { t: f64, success: bool, events: u64, queue_pushes: u64, max_queue_depth: u64 },
    /// `episode_start`.
    EpisodeStart { episode: u32, epsilon: f64 },
    /// `episode_end`.
    EpisodeEnd {
        episode: u32,
        makespan_secs: f64,
        success: bool,
        reward: f64,
        td_updates: u64,
        q_delta: f64,
    },
    /// `round_merge`.
    RoundMerge { round: u32, episodes: u32, transitions: u64, samples: u64 },
    /// `learn_end`.
    LearnEnd { episodes: u32, greedy_makespan_secs: f64, best_makespan_secs: f64 },
    /// `fault` (schema minor 2) — a taxonomy fault fired; `ac` is `-1`
    /// for VM-level faults.
    Fault { t: f64, kind: String, ac: i64, vm: u32 },
    /// `recover` (schema minor 2) — a crashed VM finished repair.
    Recover { t: f64, vm: u32, pes: u32 },
    /// `blacklist` (schema minor 2) — a VM was permanently removed.
    Blacklist { t: f64, vm: u32, faults: u32 },
    /// `reschedule` (schema minor 2) — a lost attempt was re-queued.
    Reschedule { t: f64, ac: u32, vm: u32, next_attempt: u32 },
    /// `replicate` (schema minor 6) — a speculative replica launched.
    Replicate { t: f64, ac: u32, vm: u32, attempt: u32, ready_since: f64 },
    /// `cancel` (schema minor 6) — a live attempt lost the race and
    /// was cancelled.
    Cancel { t: f64, ac: u32, vm: u32, attempt: u32 },
    /// `submit` (schema minor 3) — a submission entered the service.
    Submit { seq: u64, tenant: String, family: String, size: u32, shard: u32 },
    /// `admit` (schema minor 3) — the submission was queued.
    Admit { seq: u64, shard: u32 },
    /// `shed` (schema minor 3) — admission control dropped it.
    Shed { seq: u64, tenant: String, shard: u32 },
    /// `cache_hit` (schema minor 3) — warm-start Q-table found.
    CacheHit { seq: u64, shard: u32, family: String, size: u32 },
    /// `cache_miss` (schema minor 3) — full learning required.
    CacheMiss { seq: u64, shard: u32, family: String, size: u32 },
    /// `plan_done` (schema minor 3) — a submission's plan completed.
    PlanDone {
        seq: u64,
        tenant: String,
        shard: u32,
        makespan_secs: f64,
        episodes: u32,
        cache_hit: bool,
    },
    /// `enqueue` (schema minor 4) — queued on its tenant's fair queue.
    Enqueue { seq: u64, tenant: String, shard: u32, depth: u32 },
    /// `dequeue` (schema minor 4) — DRR dispatch at virtual time `vt`.
    Dequeue { seq: u64, tenant: String, shard: u32, vt: u64 },
    /// `backpressure` (schema minor 4) — tenant queue full at arrival.
    Backpressure { seq: u64, tenant: String, depth: u32 },
    /// `snapshot` (schema minor 5) — periodic live-metrics snapshot
    /// (sidecar sink only, never in a canonical trace).
    Snapshot {
        tick: u64,
        seq: u64,
        queued: u64,
        vt: u64,
        backpressure: u64,
        max_depth: u32,
        admitted: u64,
        shed: u64,
        plans: u64,
        hit_rate: f64,
        plans_per_sec: f64,
        p50_sojourn_ms: f64,
        p99_sojourn_ms: f64,
    },
    /// `slo_breach` (schema minor 5) — an SLO rule fired.
    SloBreach { rule: String, metric: String, value: f64, threshold: f64, tick: u64 },
    /// `phase` (schema minor 1) — wall time of a named engine phase.
    Phase { name: String, wall_ms: f64 },
    /// Any `ev` this analyzer does not know — skipped per the additive
    /// schema rule, but counted so reports can mention it.
    Unknown { ev: String },
}

impl ParsedEvent {
    /// Borrow this event back as the writer's [`obs::TraceEvent`], the
    /// bridge from parsed JSONL to the binary frame encoder. `Unknown`
    /// has no writer-side spelling, and `Header` drops its parsed `v`
    /// (the writer always stamps the compiled-in schema version) —
    /// converters guard both cases by re-rendering and comparing
    /// against the original line before trusting the re-encode.
    pub fn to_trace_event(&self) -> Option<obs::TraceEvent<'_>> {
        use obs::TraceEvent as T;
        Some(match *self {
            ParsedEvent::Header { ref producer, .. } => T::Header { producer },
            ParsedEvent::SimStart { activations, vms } => T::SimStart { activations, vms },
            ParsedEvent::VmReady { t, vm, pes } => T::VmReady { t, vm, pes },
            ParsedEvent::Sched { t, ready, idle_pes } => T::Sched { t, ready, idle_pes },
            ParsedEvent::Start { t, ac, vm, attempt, ready_since } => {
                T::Start { t, ac, vm, attempt, ready_since }
            }
            ParsedEvent::Finish { t, ac, vm, attempt, exec_secs, queue_secs, failed } => {
                T::Finish { t, ac, vm, attempt, exec_secs, queue_secs, failed }
            }
            ParsedEvent::Retry { t, ac, next_attempt } => T::Retry { t, ac, next_attempt },
            ParsedEvent::SimEnd { t, success, events, queue_pushes, max_queue_depth } => {
                T::SimEnd { t, success, events, queue_pushes, max_queue_depth }
            }
            ParsedEvent::EpisodeStart { episode, epsilon } => T::EpisodeStart { episode, epsilon },
            ParsedEvent::EpisodeEnd {
                episode,
                makespan_secs,
                success,
                reward,
                td_updates,
                q_delta,
            } => T::EpisodeEnd { episode, makespan_secs, success, reward, td_updates, q_delta },
            ParsedEvent::RoundMerge { round, episodes, transitions, samples } => {
                T::RoundMerge { round, episodes, transitions, samples }
            }
            ParsedEvent::LearnEnd { episodes, greedy_makespan_secs, best_makespan_secs } => {
                T::LearnEnd { episodes, greedy_makespan_secs, best_makespan_secs }
            }
            ParsedEvent::Fault { t, ref kind, ac, vm } => T::Fault { t, kind, ac, vm },
            ParsedEvent::Recover { t, vm, pes } => T::Recover { t, vm, pes },
            ParsedEvent::Blacklist { t, vm, faults } => T::Blacklist { t, vm, faults },
            ParsedEvent::Reschedule { t, ac, vm, next_attempt } => {
                T::Reschedule { t, ac, vm, next_attempt }
            }
            ParsedEvent::Replicate { t, ac, vm, attempt, ready_since } => {
                T::Replicate { t, ac, vm, attempt, ready_since }
            }
            ParsedEvent::Cancel { t, ac, vm, attempt } => T::Cancel { t, ac, vm, attempt },
            ParsedEvent::Submit { seq, ref tenant, ref family, size, shard } => {
                T::Submit { seq, tenant, family, size, shard }
            }
            ParsedEvent::Admit { seq, shard } => T::Admit { seq, shard },
            ParsedEvent::Shed { seq, ref tenant, shard } => T::Shed { seq, tenant, shard },
            ParsedEvent::CacheHit { seq, shard, ref family, size } => {
                T::CacheHit { seq, shard, family, size }
            }
            ParsedEvent::CacheMiss { seq, shard, ref family, size } => {
                T::CacheMiss { seq, shard, family, size }
            }
            ParsedEvent::PlanDone {
                seq,
                ref tenant,
                shard,
                makespan_secs,
                episodes,
                cache_hit,
            } => T::PlanDone { seq, tenant, shard, makespan_secs, episodes, cache_hit },
            ParsedEvent::Enqueue { seq, ref tenant, shard, depth } => {
                T::Enqueue { seq, tenant, shard, depth }
            }
            ParsedEvent::Dequeue { seq, ref tenant, shard, vt } => {
                T::Dequeue { seq, tenant, shard, vt }
            }
            ParsedEvent::Backpressure { seq, ref tenant, depth } => {
                T::Backpressure { seq, tenant, depth }
            }
            ParsedEvent::Snapshot {
                tick,
                seq,
                queued,
                vt,
                backpressure,
                max_depth,
                admitted,
                shed,
                plans,
                hit_rate,
                plans_per_sec,
                p50_sojourn_ms,
                p99_sojourn_ms,
            } => T::Snapshot {
                tick,
                seq,
                queued,
                vt,
                backpressure,
                max_depth,
                admitted,
                shed,
                plans,
                hit_rate,
                plans_per_sec,
                p50_sojourn_ms,
                p99_sojourn_ms,
            },
            ParsedEvent::SloBreach { ref rule, ref metric, value, threshold, tick } => {
                T::SloBreach { rule, metric, value, threshold, tick }
            }
            ParsedEvent::Phase { ref name, wall_ms } => T::Phase { name, wall_ms },
            ParsedEvent::Unknown { .. } => return None,
        })
    }
}

impl From<&obs::TraceEvent<'_>> for ParsedEvent {
    /// Owned mirror of a decoded binary frame — the analyzer's path
    /// from frames to typed events with no JSON in between.
    fn from(ev: &obs::TraceEvent<'_>) -> Self {
        use obs::TraceEvent as T;
        match *ev {
            T::Header { producer } => ParsedEvent::Header {
                v: obs::SCHEMA_VERSION as u64,
                producer: producer.to_string(),
            },
            T::SimStart { activations, vms } => ParsedEvent::SimStart { activations, vms },
            T::VmReady { t, vm, pes } => ParsedEvent::VmReady { t, vm, pes },
            T::Sched { t, ready, idle_pes } => ParsedEvent::Sched { t, ready, idle_pes },
            T::Start { t, ac, vm, attempt, ready_since } => {
                ParsedEvent::Start { t, ac, vm, attempt, ready_since }
            }
            T::Finish { t, ac, vm, attempt, exec_secs, queue_secs, failed } => {
                ParsedEvent::Finish { t, ac, vm, attempt, exec_secs, queue_secs, failed }
            }
            T::Retry { t, ac, next_attempt } => ParsedEvent::Retry { t, ac, next_attempt },
            T::SimEnd { t, success, events, queue_pushes, max_queue_depth } => {
                ParsedEvent::SimEnd { t, success, events, queue_pushes, max_queue_depth }
            }
            T::EpisodeStart { episode, epsilon } => ParsedEvent::EpisodeStart { episode, epsilon },
            T::EpisodeEnd { episode, makespan_secs, success, reward, td_updates, q_delta } => {
                ParsedEvent::EpisodeEnd {
                    episode,
                    makespan_secs,
                    success,
                    reward,
                    td_updates,
                    q_delta,
                }
            }
            T::RoundMerge { round, episodes, transitions, samples } => {
                ParsedEvent::RoundMerge { round, episodes, transitions, samples }
            }
            T::LearnEnd { episodes, greedy_makespan_secs, best_makespan_secs } => {
                ParsedEvent::LearnEnd { episodes, greedy_makespan_secs, best_makespan_secs }
            }
            T::Fault { t, kind, ac, vm } => {
                ParsedEvent::Fault { t, kind: kind.to_string(), ac, vm }
            }
            T::Recover { t, vm, pes } => ParsedEvent::Recover { t, vm, pes },
            T::Blacklist { t, vm, faults } => ParsedEvent::Blacklist { t, vm, faults },
            T::Reschedule { t, ac, vm, next_attempt } => {
                ParsedEvent::Reschedule { t, ac, vm, next_attempt }
            }
            T::Replicate { t, ac, vm, attempt, ready_since } => {
                ParsedEvent::Replicate { t, ac, vm, attempt, ready_since }
            }
            T::Cancel { t, ac, vm, attempt } => ParsedEvent::Cancel { t, ac, vm, attempt },
            T::Submit { seq, tenant, family, size, shard } => ParsedEvent::Submit {
                seq,
                tenant: tenant.to_string(),
                family: family.to_string(),
                size,
                shard,
            },
            T::Admit { seq, shard } => ParsedEvent::Admit { seq, shard },
            T::Shed { seq, tenant, shard } => {
                ParsedEvent::Shed { seq, tenant: tenant.to_string(), shard }
            }
            T::CacheHit { seq, shard, family, size } => {
                ParsedEvent::CacheHit { seq, shard, family: family.to_string(), size }
            }
            T::CacheMiss { seq, shard, family, size } => {
                ParsedEvent::CacheMiss { seq, shard, family: family.to_string(), size }
            }
            T::PlanDone { seq, tenant, shard, makespan_secs, episodes, cache_hit } => {
                ParsedEvent::PlanDone {
                    seq,
                    tenant: tenant.to_string(),
                    shard,
                    makespan_secs,
                    episodes,
                    cache_hit,
                }
            }
            T::Enqueue { seq, tenant, shard, depth } => {
                ParsedEvent::Enqueue { seq, tenant: tenant.to_string(), shard, depth }
            }
            T::Dequeue { seq, tenant, shard, vt } => {
                ParsedEvent::Dequeue { seq, tenant: tenant.to_string(), shard, vt }
            }
            T::Backpressure { seq, tenant, depth } => {
                ParsedEvent::Backpressure { seq, tenant: tenant.to_string(), depth }
            }
            T::Snapshot {
                tick,
                seq,
                queued,
                vt,
                backpressure,
                max_depth,
                admitted,
                shed,
                plans,
                hit_rate,
                plans_per_sec,
                p50_sojourn_ms,
                p99_sojourn_ms,
            } => ParsedEvent::Snapshot {
                tick,
                seq,
                queued,
                vt,
                backpressure,
                max_depth,
                admitted,
                shed,
                plans,
                hit_rate,
                plans_per_sec,
                p50_sojourn_ms,
                p99_sojourn_ms,
            },
            T::SloBreach { rule, metric, value, threshold, tick } => ParsedEvent::SloBreach {
                rule: rule.to_string(),
                metric: metric.to_string(),
                value,
                threshold,
                tick,
            },
            T::Phase { name, wall_ms } => ParsedEvent::Phase { name: name.to_string(), wall_ms },
        }
    }
}

/// Parse one trace line into a typed event.
///
/// Syntactic failures and *known* events missing required fields are
/// errors; unknown event kinds succeed as [`ParsedEvent::Unknown`].
pub fn parse_line(line: &str) -> Result<ParsedEvent, String> {
    let fields = parse_flat_object(line)?;
    let ev = fields
        .get("ev")
        .and_then(Scalar::as_str)
        .ok_or_else(|| "missing \"ev\" field".to_string())?;
    let f64_of = |k: &str| {
        fields.get(k).and_then(Scalar::as_f64).ok_or_else(|| format!("{ev}: bad field {k:?}"))
    };
    let u64_of = |k: &str| {
        fields.get(k).and_then(Scalar::as_u64).ok_or_else(|| format!("{ev}: bad field {k:?}"))
    };
    let u32_of = |k: &str| u64_of(k).map(|v| v as u32);
    let bool_of = |k: &str| {
        fields.get(k).and_then(Scalar::as_bool).ok_or_else(|| format!("{ev}: bad field {k:?}"))
    };
    let str_of = |k: &str| {
        fields
            .get(k)
            .and_then(Scalar::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{ev}: bad field {k:?}"))
    };
    Ok(match ev {
        "header" => ParsedEvent::Header { v: u64_of("v")?, producer: str_of("producer")? },
        "sim_start" => {
            ParsedEvent::SimStart { activations: u32_of("activations")?, vms: u32_of("vms")? }
        }
        "vm_ready" => {
            ParsedEvent::VmReady { t: f64_of("t")?, vm: u32_of("vm")?, pes: u32_of("pes")? }
        }
        "sched" => ParsedEvent::Sched {
            t: f64_of("t")?,
            ready: u32_of("ready")?,
            idle_pes: u32_of("idle_pes")?,
        },
        "start" => ParsedEvent::Start {
            t: f64_of("t")?,
            ac: u32_of("ac")?,
            vm: u32_of("vm")?,
            attempt: u32_of("attempt")?,
            ready_since: f64_of("ready_since")?,
        },
        "finish" => ParsedEvent::Finish {
            t: f64_of("t")?,
            ac: u32_of("ac")?,
            vm: u32_of("vm")?,
            attempt: u32_of("attempt")?,
            exec_secs: f64_of("exec_secs")?,
            queue_secs: f64_of("queue_secs")?,
            failed: bool_of("failed")?,
        },
        "retry" => ParsedEvent::Retry {
            t: f64_of("t")?,
            ac: u32_of("ac")?,
            next_attempt: u32_of("next_attempt")?,
        },
        "sim_end" => ParsedEvent::SimEnd {
            t: f64_of("t")?,
            success: bool_of("success")?,
            events: u64_of("events")?,
            queue_pushes: u64_of("queue_pushes")?,
            max_queue_depth: u64_of("max_queue_depth")?,
        },
        "episode_start" => {
            ParsedEvent::EpisodeStart { episode: u32_of("episode")?, epsilon: f64_of("epsilon")? }
        }
        "episode_end" => ParsedEvent::EpisodeEnd {
            episode: u32_of("episode")?,
            makespan_secs: f64_of("makespan_secs")?,
            success: bool_of("success")?,
            reward: f64_of("reward")?,
            td_updates: u64_of("td_updates")?,
            q_delta: f64_of("q_delta")?,
        },
        "round_merge" => ParsedEvent::RoundMerge {
            round: u32_of("round")?,
            episodes: u32_of("episodes")?,
            transitions: u64_of("transitions")?,
            samples: u64_of("samples")?,
        },
        "learn_end" => ParsedEvent::LearnEnd {
            episodes: u32_of("episodes")?,
            greedy_makespan_secs: f64_of("greedy_makespan_secs")?,
            best_makespan_secs: f64_of("best_makespan_secs")?,
        },
        "fault" => ParsedEvent::Fault {
            t: f64_of("t")?,
            kind: str_of("kind")?,
            ac: fields
                .get("ac")
                .and_then(Scalar::as_i64)
                .ok_or_else(|| format!("{ev}: bad field \"ac\""))?,
            vm: u32_of("vm")?,
        },
        "recover" => {
            ParsedEvent::Recover { t: f64_of("t")?, vm: u32_of("vm")?, pes: u32_of("pes")? }
        }
        "blacklist" => {
            ParsedEvent::Blacklist { t: f64_of("t")?, vm: u32_of("vm")?, faults: u32_of("faults")? }
        }
        "reschedule" => ParsedEvent::Reschedule {
            t: f64_of("t")?,
            ac: u32_of("ac")?,
            vm: u32_of("vm")?,
            next_attempt: u32_of("next_attempt")?,
        },
        "replicate" => ParsedEvent::Replicate {
            t: f64_of("t")?,
            ac: u32_of("ac")?,
            vm: u32_of("vm")?,
            attempt: u32_of("attempt")?,
            ready_since: f64_of("ready_since")?,
        },
        "cancel" => ParsedEvent::Cancel {
            t: f64_of("t")?,
            ac: u32_of("ac")?,
            vm: u32_of("vm")?,
            attempt: u32_of("attempt")?,
        },
        "submit" => ParsedEvent::Submit {
            seq: u64_of("seq")?,
            tenant: str_of("tenant")?,
            family: str_of("family")?,
            size: u32_of("size")?,
            shard: u32_of("shard")?,
        },
        "admit" => ParsedEvent::Admit { seq: u64_of("seq")?, shard: u32_of("shard")? },
        "shed" => ParsedEvent::Shed {
            seq: u64_of("seq")?,
            tenant: str_of("tenant")?,
            shard: u32_of("shard")?,
        },
        "cache_hit" => ParsedEvent::CacheHit {
            seq: u64_of("seq")?,
            shard: u32_of("shard")?,
            family: str_of("family")?,
            size: u32_of("size")?,
        },
        "cache_miss" => ParsedEvent::CacheMiss {
            seq: u64_of("seq")?,
            shard: u32_of("shard")?,
            family: str_of("family")?,
            size: u32_of("size")?,
        },
        "plan_done" => ParsedEvent::PlanDone {
            seq: u64_of("seq")?,
            tenant: str_of("tenant")?,
            shard: u32_of("shard")?,
            makespan_secs: f64_of("makespan_secs")?,
            episodes: u32_of("episodes")?,
            cache_hit: bool_of("cache_hit")?,
        },
        "enqueue" => ParsedEvent::Enqueue {
            seq: u64_of("seq")?,
            tenant: str_of("tenant")?,
            shard: u32_of("shard")?,
            depth: u32_of("depth")?,
        },
        "dequeue" => ParsedEvent::Dequeue {
            seq: u64_of("seq")?,
            tenant: str_of("tenant")?,
            shard: u32_of("shard")?,
            vt: u64_of("vt")?,
        },
        "backpressure" => ParsedEvent::Backpressure {
            seq: u64_of("seq")?,
            tenant: str_of("tenant")?,
            depth: u32_of("depth")?,
        },
        "snapshot" => ParsedEvent::Snapshot {
            tick: u64_of("tick")?,
            seq: u64_of("seq")?,
            queued: u64_of("queued")?,
            vt: u64_of("vt")?,
            backpressure: u64_of("backpressure")?,
            max_depth: u32_of("max_depth")?,
            admitted: u64_of("admitted")?,
            shed: u64_of("shed")?,
            plans: u64_of("plans")?,
            hit_rate: f64_of("hit_rate")?,
            plans_per_sec: f64_of("plans_per_sec")?,
            p50_sojourn_ms: f64_of("p50_sojourn_ms")?,
            p99_sojourn_ms: f64_of("p99_sojourn_ms")?,
        },
        "slo_breach" => ParsedEvent::SloBreach {
            rule: str_of("rule")?,
            metric: str_of("metric")?,
            value: f64_of("value")?,
            threshold: f64_of("threshold")?,
            tick: u64_of("tick")?,
        },
        "phase" => ParsedEvent::Phase { name: str_of("name")?, wall_ms: f64_of("wall_ms")? },
        other => ParsedEvent::Unknown { ev: other.to_string() },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::TraceEvent;

    #[test]
    fn round_trips_every_writer_event() {
        // Feed the writer's own serialization back through the parser.
        let cases: Vec<(TraceEvent<'_>, ParsedEvent)> = vec![
            (
                TraceEvent::Header { producer: "wf\"sim" },
                ParsedEvent::Header { v: obs::SCHEMA_VERSION as u64, producer: "wf\"sim".into() },
            ),
            (
                TraceEvent::SimStart { activations: 50, vms: 9 },
                ParsedEvent::SimStart { activations: 50, vms: 9 },
            ),
            (
                TraceEvent::Start { t: 1.5, ac: 3, vm: 8, attempt: 0, ready_since: 0.25 },
                ParsedEvent::Start { t: 1.5, ac: 3, vm: 8, attempt: 0, ready_since: 0.25 },
            ),
            (
                TraceEvent::Finish {
                    t: 2.5,
                    ac: 3,
                    vm: 8,
                    attempt: 1,
                    exec_secs: 1.0,
                    queue_secs: 0.0,
                    failed: true,
                },
                ParsedEvent::Finish {
                    t: 2.5,
                    ac: 3,
                    vm: 8,
                    attempt: 1,
                    exec_secs: 1.0,
                    queue_secs: 0.0,
                    failed: true,
                },
            ),
            (
                TraceEvent::SimEnd {
                    t: 99.0,
                    success: true,
                    events: 50,
                    queue_pushes: 51,
                    max_queue_depth: 12,
                },
                ParsedEvent::SimEnd {
                    t: 99.0,
                    success: true,
                    events: 50,
                    queue_pushes: 51,
                    max_queue_depth: 12,
                },
            ),
            (
                TraceEvent::EpisodeEnd {
                    episode: 2,
                    makespan_secs: 300.5,
                    success: true,
                    reward: -0.25,
                    td_updates: 50,
                    q_delta: 1e-7,
                },
                ParsedEvent::EpisodeEnd {
                    episode: 2,
                    makespan_secs: 300.5,
                    success: true,
                    reward: -0.25,
                    td_updates: 50,
                    q_delta: 1e-7,
                },
            ),
            (
                TraceEvent::Phase { name: "sim.total", wall_ms: 12.5 },
                ParsedEvent::Phase { name: "sim.total".into(), wall_ms: 12.5 },
            ),
            (
                TraceEvent::Fault { t: 10.0, kind: "crash", ac: -1, vm: 3 },
                ParsedEvent::Fault { t: 10.0, kind: "crash".into(), ac: -1, vm: 3 },
            ),
            (
                TraceEvent::Fault { t: 12.0, kind: "timeout", ac: 7, vm: 2 },
                ParsedEvent::Fault { t: 12.0, kind: "timeout".into(), ac: 7, vm: 2 },
            ),
            (
                TraceEvent::Recover { t: 40.0, vm: 3, pes: 4 },
                ParsedEvent::Recover { t: 40.0, vm: 3, pes: 4 },
            ),
            (
                TraceEvent::Blacklist { t: 55.0, vm: 3, faults: 3 },
                ParsedEvent::Blacklist { t: 55.0, vm: 3, faults: 3 },
            ),
            (
                TraceEvent::Reschedule { t: 10.0, ac: 7, vm: 3, next_attempt: 1 },
                ParsedEvent::Reschedule { t: 10.0, ac: 7, vm: 3, next_attempt: 1 },
            ),
            (
                TraceEvent::Replicate {
                    t: 10.0,
                    ac: 7,
                    vm: 4,
                    attempt: 1_000_000,
                    ready_since: 9.5,
                },
                ParsedEvent::Replicate {
                    t: 10.0,
                    ac: 7,
                    vm: 4,
                    attempt: 1_000_000,
                    ready_since: 9.5,
                },
            ),
            (
                TraceEvent::Cancel { t: 12.0, ac: 7, vm: 4, attempt: 1_000_000 },
                ParsedEvent::Cancel { t: 12.0, ac: 7, vm: 4, attempt: 1_000_000 },
            ),
            (
                TraceEvent::Submit {
                    seq: 4,
                    tenant: "alice",
                    family: "montage",
                    size: 30,
                    shard: 2,
                },
                ParsedEvent::Submit {
                    seq: 4,
                    tenant: "alice".into(),
                    family: "montage".into(),
                    size: 30,
                    shard: 2,
                },
            ),
            (TraceEvent::Admit { seq: 4, shard: 2 }, ParsedEvent::Admit { seq: 4, shard: 2 }),
            (
                TraceEvent::Shed { seq: 5, tenant: "bob", shard: 0 },
                ParsedEvent::Shed { seq: 5, tenant: "bob".into(), shard: 0 },
            ),
            (
                TraceEvent::CacheHit { seq: 4, shard: 2, family: "montage", size: 30 },
                ParsedEvent::CacheHit { seq: 4, shard: 2, family: "montage".into(), size: 30 },
            ),
            (
                TraceEvent::CacheMiss { seq: 1, shard: 2, family: "montage", size: 30 },
                ParsedEvent::CacheMiss { seq: 1, shard: 2, family: "montage".into(), size: 30 },
            ),
            (
                TraceEvent::PlanDone {
                    seq: 4,
                    tenant: "alice",
                    shard: 2,
                    makespan_secs: 210.75,
                    episodes: 2,
                    cache_hit: true,
                },
                ParsedEvent::PlanDone {
                    seq: 4,
                    tenant: "alice".into(),
                    shard: 2,
                    makespan_secs: 210.75,
                    episodes: 2,
                    cache_hit: true,
                },
            ),
            (
                TraceEvent::Enqueue { seq: 6, tenant: "alice", shard: 2, depth: 3 },
                ParsedEvent::Enqueue { seq: 6, tenant: "alice".into(), shard: 2, depth: 3 },
            ),
            (
                TraceEvent::Dequeue { seq: 6, tenant: "alice", shard: 2, vt: 9 },
                ParsedEvent::Dequeue { seq: 6, tenant: "alice".into(), shard: 2, vt: 9 },
            ),
            (
                TraceEvent::Backpressure { seq: 7, tenant: "bob", depth: 8 },
                ParsedEvent::Backpressure { seq: 7, tenant: "bob".into(), depth: 8 },
            ),
            (
                TraceEvent::Snapshot {
                    tick: 1,
                    seq: 64,
                    queued: 5,
                    vt: 12,
                    backpressure: 2,
                    max_depth: 4,
                    admitted: 62,
                    shed: 2,
                    plans: 57,
                    hit_rate: 0.9,
                    plans_per_sec: 812.5,
                    p50_sojourn_ms: 60.5,
                    p99_sojourn_ms: 120.25,
                },
                ParsedEvent::Snapshot {
                    tick: 1,
                    seq: 64,
                    queued: 5,
                    vt: 12,
                    backpressure: 2,
                    max_depth: 4,
                    admitted: 62,
                    shed: 2,
                    plans: 57,
                    hit_rate: 0.9,
                    plans_per_sec: 812.5,
                    p50_sojourn_ms: 60.5,
                    p99_sojourn_ms: 120.25,
                },
            ),
            (
                TraceEvent::SloBreach {
                    rule: "queue-depth",
                    metric: "queued",
                    value: 9.0,
                    threshold: 8.0,
                    tick: 1,
                },
                ParsedEvent::SloBreach {
                    rule: "queue-depth".into(),
                    metric: "queued".into(),
                    value: 9.0,
                    threshold: 8.0,
                    tick: 1,
                },
            ),
        ];
        for (written, expected) in cases {
            let line = written.to_json_line();
            assert_eq!(parse_line(&line).unwrap(), expected, "{line}");
            // The parsed event borrows back as the writer event and
            // re-renders to the identical line (the canonical-form
            // bridge the binary converter relies on).
            let back = expected.to_trace_event().expect("known event");
            assert_eq!(back.to_json_line(), line);
            assert_eq!(ParsedEvent::from(&back), expected);
        }
    }

    #[test]
    fn unknown_events_are_skippable_not_errors() {
        let ev = parse_line("{\"ev\":\"telepathy\",\"strength\":11}").unwrap();
        assert_eq!(ev, ParsedEvent::Unknown { ev: "telepathy".into() });
    }

    #[test]
    fn null_floats_parse_as_nan() {
        match parse_line("{\"ev\":\"vm_ready\",\"t\":null,\"vm\":1,\"pes\":2}").unwrap() {
            ParsedEvent::VmReady { t, vm: 1, pes: 2 } => assert!(t.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_errors() {
        for bad in [
            "",
            "not json",
            "{\"ev\":\"sim_start\"",
            "{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2} trailing",
            "{\"activations\":1}",
            "{\"ev\":\"sim_start\",\"activations\":\"many\",\"vms\":2}",
            "{\"ev\":\"sim_start\",\"activations\":1}",
            "{\"ev\":\"start\",\"t\":0,\"ac\":-3,\"vm\":0,\"attempt\":0,\"ready_since\":0}",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn exponent_numbers_and_escapes_parse() {
        let fields = parse_flat_object(
            "{\"a\":1e-7,\"b\":-2.5E3,\"c\":\"x\\u0041\\n\",\"d\":true,\"e\":null}",
        )
        .unwrap();
        assert_eq!(fields["a"], Scalar::Num(1e-7));
        assert_eq!(fields["b"], Scalar::Num(-2.5e3));
        assert_eq!(fields["c"], Scalar::Str("xA\n".into()));
        assert_eq!(fields["d"], Scalar::Bool(true));
        assert_eq!(fields["e"], Scalar::Null);
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }
}
