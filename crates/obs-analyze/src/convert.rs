//! Lossless JSONL ↔ binary trace conversion.
//!
//! The binary frame format ([`obs::frame`]) is the fast path; JSONL is
//! the canonical, diffable, golden-fixture format. Conversion is
//! **bit-for-bit lossless in both directions** for every trace this
//! workspace writes, and never lossy even for traces it didn't:
//!
//! * JSONL → binary: each line is parsed and re-rendered; only when
//!   the re-rendering is byte-identical to the input line (the line is
//!   in canonical writer form) is it encoded as a structured frame.
//!   Anything else — unknown `ev` kinds, foreign formatting, future
//!   schema versions — rides through as a verbatim raw-line frame.
//! * binary → JSONL: structured frames re-render through the writer's
//!   own `to_json_line`, raw frames pass through verbatim. Unknown
//!   *binary* tags are the one lossy case (they have no JSONL
//!   spelling); they are counted, not silently dropped.
//!
//! The composition JSONL → binary → JSONL is therefore the identity on
//! bytes, which is what keeps `trace-diff` and the golden suite
//! working across the format boundary.

use crate::parse::parse_line;
use obs::frame;
use obs::FrameError;
use std::io::{BufRead, Read, Write};

/// What a conversion did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConvertStats {
    /// Lines/frames re-encoded structurally.
    pub events: u64,
    /// Lines/frames carried verbatim as raw payloads.
    pub raw: u64,
    /// Binary-only: unknown tags skipped (no JSONL spelling).
    pub skipped: u64,
}

impl ConvertStats {
    /// Total frames or lines processed.
    pub fn total(&self) -> u64 {
        self.events + self.raw + self.skipped
    }
}

/// Encode one JSONL line as a frame: structured when the line is in
/// canonical writer form, raw otherwise. Returns `true` when
/// structured.
pub fn encode_jsonl_line(line: &str, out: &mut Vec<u8>) -> bool {
    if let Ok(parsed) = parse_line(line) {
        if let Some(ev) = parsed.to_trace_event() {
            if ev.to_json_line() == line {
                frame::encode_event(&ev, out);
                return true;
            }
        }
    }
    frame::encode_raw_line(line, out);
    false
}

/// Convert a JSONL trace held in memory to a complete binary trace
/// (prelude included).
pub fn jsonl_to_frames(jsonl: &str) -> (Vec<u8>, ConvertStats) {
    let mut out = Vec::with_capacity(jsonl.len());
    frame::write_prelude(&mut out);
    let mut stats = ConvertStats::default();
    for line in jsonl.lines() {
        if line.is_empty() {
            continue;
        }
        if encode_jsonl_line(line, &mut out) {
            stats.events += 1;
        } else {
            stats.raw += 1;
        }
    }
    (out, stats)
}

/// Streaming JSONL → binary conversion: reads lines, writes frames,
/// one line resident at a time.
pub fn convert_jsonl_to_bin<R: BufRead, W: Write>(
    r: R,
    mut w: W,
) -> Result<ConvertStats, FrameError> {
    let mut prelude = Vec::with_capacity(8);
    frame::write_prelude(&mut prelude);
    w.write_all(&prelude).map_err(FrameError::Io)?;
    let mut stats = ConvertStats::default();
    let mut buf = Vec::new();
    for line in r.lines() {
        let line = line.map_err(FrameError::Io)?;
        if line.is_empty() {
            continue;
        }
        buf.clear();
        if encode_jsonl_line(&line, &mut buf) {
            stats.events += 1;
        } else {
            stats.raw += 1;
        }
        w.write_all(&buf).map_err(FrameError::Io)?;
    }
    w.flush().map_err(FrameError::Io)?;
    Ok(stats)
}

/// Streaming binary → JSONL conversion: reads frames, writes lines,
/// one frame resident at a time.
pub fn convert_bin_to_jsonl<R: Read, W: Write>(r: R, mut w: W) -> Result<ConvertStats, FrameError> {
    let mut rd = obs::FrameReader::new(r)?;
    let mut stats = ConvertStats::default();
    while let Some(fr) = rd.next_frame()? {
        match fr {
            obs::FrameRef::Event(ev) => {
                writeln!(w, "{}", ev.to_json_line()).map_err(FrameError::Io)?;
                stats.events += 1;
            }
            obs::FrameRef::Raw(line) => {
                writeln!(w, "{line}").map_err(FrameError::Io)?;
                stats.raw += 1;
            }
            obs::FrameRef::Unknown { .. } => stats.skipped += 1,
        }
    }
    w.flush().map_err(FrameError::Io)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::TraceEvent;

    fn canonical_jsonl() -> String {
        [
            TraceEvent::Header { producer: "convert-test" },
            TraceEvent::Submit { seq: 0, tenant: "t00", family: "montage", size: 20, shard: 3 },
            TraceEvent::Admit { seq: 0, shard: 3 },
            TraceEvent::Enqueue { seq: 0, tenant: "t00", shard: 3, depth: 1 },
            TraceEvent::Dequeue { seq: 0, tenant: "t00", shard: 3, vt: 1 },
            TraceEvent::PlanDone {
                seq: 0,
                tenant: "t00",
                shard: 3,
                makespan_secs: 251.5,
                episodes: 6,
                cache_hit: false,
            },
        ]
        .iter()
        .map(|e| e.to_json_line() + "\n")
        .collect()
    }

    #[test]
    fn jsonl_to_binary_to_jsonl_is_identity() {
        let jsonl = canonical_jsonl();
        let (bin, stats) = jsonl_to_frames(&jsonl);
        assert_eq!(stats.events, 6, "canonical lines encode structurally");
        assert_eq!(stats.raw, 0);
        let back = obs::frame::frames_to_jsonl(&bin).unwrap();
        assert_eq!(back, jsonl);
    }

    #[test]
    fn non_canonical_lines_survive_as_raw_frames() {
        // Non-shortest float spelling, unknown kind, reordered fields:
        // none can be structurally re-encoded, all must survive.
        let jsonl = "{\"ev\":\"vm_ready\",\"t\":1.50,\"vm\":0,\"pes\":1}\n\
                     {\"ev\":\"from_the_future\",\"x\":1}\n\
                     {\"vm\":0,\"ev\":\"admit\",\"seq\":0,\"shard\":1}\n";
        let (bin, stats) = jsonl_to_frames(jsonl);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.raw, 3);
        assert_eq!(obs::frame::frames_to_jsonl(&bin).unwrap(), jsonl);
    }

    #[test]
    fn streaming_matches_in_memory() {
        let jsonl = canonical_jsonl();
        let (bin, _) = jsonl_to_frames(&jsonl);
        let mut streamed = Vec::new();
        let stats = convert_jsonl_to_bin(jsonl.as_bytes(), &mut streamed).unwrap();
        assert_eq!(streamed, bin);
        assert_eq!(stats.events, 6);
        let mut back = Vec::new();
        let stats = convert_bin_to_jsonl(bin.as_slice(), &mut back).unwrap();
        assert_eq!(String::from_utf8(back).unwrap(), jsonl);
        assert_eq!(stats.events, 6);
    }

    #[test]
    fn corrupt_binary_input_is_a_typed_error() {
        let err = convert_bin_to_jsonl(&b"not a trace"[..], Vec::new()).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic));
        let (mut bin, _) = jsonl_to_frames(&canonical_jsonl());
        bin.truncate(bin.len() - 3);
        let err = convert_bin_to_jsonl(bin.as_slice(), Vec::new()).unwrap_err();
        assert!(matches!(err, FrameError::Truncated));
    }
}
