//! Scheduling-service analytics (schema minor 3): fold the
//! `submit`/`admit`/`shed`/`cache_hit`/`cache_miss`/`plan_done` stream
//! into service-wide counters plus per-tenant and per-shard breakdowns.
//!
//! Everything here is derived from deterministic events, so two runs of
//! the same workload produce identical analyses — which is exactly what
//! the service soak test diffs.

use crate::parse::ParsedEvent;
use std::collections::BTreeMap;

/// Aggregated outcomes for one tenant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantRow {
    /// Tenant id as submitted.
    pub tenant: String,
    /// Submissions seen (admitted + shed).
    pub submissions: u64,
    /// Submissions dropped by admission control.
    pub shed: u64,
    /// WFQ backpressure signals raised against this tenant's queue.
    pub backpressure: u64,
    /// Deepest queue this tenant reached when backpressured.
    pub backpressure_depth: u32,
    /// Completed plans.
    pub plans: u64,
    /// Plans that warm-started from the shard Q-cache.
    pub cache_hits: u64,
    /// Total learning episodes spent on this tenant's plans.
    pub episodes: u64,
    /// Σ plan makespans — the tenant's deterministic checksum.
    pub makespan_sum_secs: f64,
}

/// Aggregated activity on one shard.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardRow {
    /// Shard id.
    pub shard: u32,
    /// Submissions hashed to this shard.
    pub submissions: u64,
    /// Plans completed by this shard.
    pub plans: u64,
    /// Warm-start lookups that hit.
    pub cache_hits: u64,
    /// Lookups that missed (full learning).
    pub cache_misses: u64,
}

/// Service-level analysis of one trace.
#[derive(Clone, Debug, Default)]
pub struct ServiceAnalysis {
    /// `submit` events seen.
    pub submissions: u64,
    /// `admit` events seen.
    pub admitted: u64,
    /// `shed` events seen.
    pub shed: u64,
    /// `plan_done` events seen.
    pub plans: u64,
    /// `cache_hit` events seen.
    pub cache_hits: u64,
    /// `cache_miss` events seen.
    pub cache_misses: u64,
    /// `enqueue` events seen (WFQ admissions).
    pub enqueued: u64,
    /// `dequeue` events seen (WFQ dispatches).
    pub dequeued: u64,
    /// `backpressure` events seen (full tenant queues).
    pub backpressure: u64,
    /// Highest WFQ virtual time observed (exhausted quanta).
    pub wfq_rounds: u64,
    /// Deepest per-tenant queue depth observed.
    pub max_queue_depth: u32,
    /// Distribution of queue depths at every `enqueue` (the admission
    /// pressure profile; quantiles via [`obs::Histogram`]).
    pub depth: obs::Histogram,
    /// `snapshot` events seen (schema 1.5 metrics-plane sidecar).
    pub snapshots: u64,
    /// `slo_breach` events seen.
    pub slo_breaches: u64,
    /// Episodes spent on cache-hit plans.
    pub hit_episodes: u64,
    /// Episodes spent on cache-miss plans.
    pub miss_episodes: u64,
    /// Σ plan makespans across all tenants.
    pub makespan_sum_secs: f64,
    /// Per-tenant rows, sorted by tenant id.
    pub tenants: Vec<TenantRow>,
    /// Per-shard rows, sorted by shard id.
    pub shards: Vec<ShardRow>,
}

impl ServiceAnalysis {
    /// True when the trace carried no service events at all.
    pub fn is_empty(&self) -> bool {
        self.submissions == 0 && self.admitted == 0 && self.shed == 0 && self.plans == 0
    }

    /// Warm-start hit rate over all cache lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Mean episodes per cache-hit plan (0 when there were none).
    pub fn episodes_per_hit(&self) -> f64 {
        if self.cache_hits == 0 {
            0.0
        } else {
            self.hit_episodes as f64 / self.cache_hits as f64
        }
    }

    /// Mean episodes per cache-miss plan (0 when there were none).
    pub fn episodes_per_miss(&self) -> f64 {
        if self.cache_misses == 0 {
            0.0
        } else {
            self.miss_episodes as f64 / self.cache_misses as f64
        }
    }
}

/// Streaming builder behind [`ServiceAnalysis`].
#[derive(Debug, Default)]
pub struct ServiceBuilder {
    totals: ServiceAnalysis,
    tenants: BTreeMap<String, TenantRow>,
    shards: BTreeMap<u32, ShardRow>,
}

impl ServiceBuilder {
    fn tenant(&mut self, id: &str) -> &mut TenantRow {
        self.tenants
            .entry(id.to_string())
            .or_insert_with(|| TenantRow { tenant: id.to_string(), ..TenantRow::default() })
    }

    fn shard(&mut self, id: u32) -> &mut ShardRow {
        self.shards.entry(id).or_insert_with(|| ShardRow { shard: id, ..ShardRow::default() })
    }

    /// Consume one parsed event (non-service events are ignored).
    pub fn feed(&mut self, ev: &ParsedEvent) {
        match ev {
            ParsedEvent::Submit { tenant, shard, .. } => {
                self.totals.submissions += 1;
                self.tenant(tenant).submissions += 1;
                self.shard(*shard).submissions += 1;
            }
            ParsedEvent::Admit { .. } => self.totals.admitted += 1,
            ParsedEvent::Shed { tenant, .. } => {
                self.totals.shed += 1;
                self.tenant(tenant).shed += 1;
            }
            ParsedEvent::Enqueue { depth, .. } => {
                self.totals.enqueued += 1;
                self.totals.max_queue_depth = self.totals.max_queue_depth.max(*depth);
                self.totals.depth.record(f64::from(*depth));
            }
            ParsedEvent::Dequeue { vt, .. } => {
                self.totals.dequeued += 1;
                self.totals.wfq_rounds = self.totals.wfq_rounds.max(*vt);
            }
            ParsedEvent::Backpressure { tenant, depth, .. } => {
                self.totals.backpressure += 1;
                self.totals.max_queue_depth = self.totals.max_queue_depth.max(*depth);
                let t = self.tenant(tenant);
                t.backpressure += 1;
                t.backpressure_depth = t.backpressure_depth.max(*depth);
            }
            ParsedEvent::CacheHit { shard, .. } => {
                self.totals.cache_hits += 1;
                self.shard(*shard).cache_hits += 1;
            }
            ParsedEvent::CacheMiss { shard, .. } => {
                self.totals.cache_misses += 1;
                self.shard(*shard).cache_misses += 1;
            }
            ParsedEvent::PlanDone { tenant, shard, makespan_secs, episodes, cache_hit, .. } => {
                self.totals.plans += 1;
                self.totals.makespan_sum_secs += makespan_secs;
                if *cache_hit {
                    self.totals.hit_episodes += u64::from(*episodes);
                } else {
                    self.totals.miss_episodes += u64::from(*episodes);
                }
                let t = self.tenant(tenant);
                t.plans += 1;
                t.cache_hits += u64::from(*cache_hit);
                t.episodes += u64::from(*episodes);
                t.makespan_sum_secs += makespan_secs;
                self.shard(*shard).plans += 1;
            }
            ParsedEvent::Snapshot { .. } => self.totals.snapshots += 1,
            ParsedEvent::SloBreach { .. } => self.totals.slo_breaches += 1,
            _ => {}
        }
    }

    /// Finish: flatten the per-tenant and per-shard maps (already in
    /// key order) into the analysis.
    pub fn finish(mut self) -> ServiceAnalysis {
        self.totals.tenants = self.tenants.into_values().collect();
        self.totals.shards = self.shards.into_values().collect();
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_line;

    const TRACE: &[&str] = &[
        "{\"ev\":\"submit\",\"seq\":0,\"tenant\":\"a\",\"family\":\"montage\",\"size\":20,\"shard\":0}",
        "{\"ev\":\"admit\",\"seq\":0,\"shard\":0}",
        "{\"ev\":\"enqueue\",\"seq\":0,\"tenant\":\"a\",\"shard\":0,\"depth\":1}",
        "{\"ev\":\"submit\",\"seq\":1,\"tenant\":\"b\",\"family\":\"sipht\",\"size\":30,\"shard\":1}",
        "{\"ev\":\"admit\",\"seq\":1,\"shard\":1}",
        "{\"ev\":\"enqueue\",\"seq\":1,\"tenant\":\"b\",\"shard\":1,\"depth\":2}",
        "{\"ev\":\"submit\",\"seq\":2,\"tenant\":\"a\",\"family\":\"montage\",\"size\":20,\"shard\":0}",
        "{\"ev\":\"backpressure\",\"seq\":2,\"tenant\":\"a\",\"depth\":1}",
        "{\"ev\":\"shed\",\"seq\":2,\"tenant\":\"a\",\"shard\":0}",
        "{\"ev\":\"dequeue\",\"seq\":0,\"tenant\":\"a\",\"shard\":0,\"vt\":0}",
        "{\"ev\":\"dequeue\",\"seq\":1,\"tenant\":\"b\",\"shard\":1,\"vt\":1}",
        "{\"ev\":\"cache_miss\",\"seq\":0,\"shard\":0,\"family\":\"montage\",\"size\":20}",
        "{\"ev\":\"plan_done\",\"seq\":0,\"tenant\":\"a\",\"shard\":0,\"makespan_secs\":100.5,\"episodes\":6,\"cache_hit\":false}",
        "{\"ev\":\"cache_hit\",\"seq\":1,\"shard\":1,\"family\":\"sipht\",\"size\":30}",
        "{\"ev\":\"plan_done\",\"seq\":1,\"tenant\":\"b\",\"shard\":1,\"makespan_secs\":50.25,\"episodes\":2,\"cache_hit\":true}",
        "{\"ev\":\"snapshot\",\"tick\":1,\"seq\":3,\"queued\":0,\"vt\":1,\"backpressure\":1,\"max_depth\":2,\"admitted\":2,\"shed\":1,\"plans\":2,\"hit_rate\":0.5,\"plans_per_sec\":10.5,\"p50_sojourn_ms\":1.5,\"p99_sojourn_ms\":2.5}",
        "{\"ev\":\"slo_breach\",\"rule\":\"shed\",\"metric\":\"shed\",\"value\":1,\"threshold\":0,\"tick\":1}",
    ];

    fn built() -> ServiceAnalysis {
        let mut b = ServiceBuilder::default();
        for line in TRACE {
            b.feed(&parse_line(line).unwrap());
        }
        b.finish()
    }

    #[test]
    fn aggregates_service_counters() {
        let s = built();
        assert!(!s.is_empty());
        assert_eq!((s.submissions, s.admitted, s.shed, s.plans), (3, 2, 1, 2));
        assert_eq!((s.enqueued, s.dequeued, s.backpressure), (2, 2, 1));
        assert_eq!((s.wfq_rounds, s.max_queue_depth), (1, 2));
        assert_eq!((s.snapshots, s.slo_breaches), (1, 1));
        // The depth histogram samples every enqueue.
        assert_eq!(s.depth.count(), 2);
        assert_eq!(s.depth.max_secs(), Some(2.0));
        assert_eq!((s.cache_hits, s.cache_misses), (1, 1));
        assert_eq!((s.hit_episodes, s.miss_episodes), (2, 6));
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(s.episodes_per_hit(), 2.0);
        assert_eq!(s.episodes_per_miss(), 6.0);
        assert_eq!(s.makespan_sum_secs, 150.75);
    }

    #[test]
    fn partitions_by_tenant_and_shard() {
        let s = built();
        assert_eq!(s.tenants.len(), 2);
        let a = &s.tenants[0];
        assert_eq!((a.tenant.as_str(), a.submissions, a.shed, a.plans), ("a", 2, 1, 1));
        assert_eq!(a.backpressure, 1, "backpressure attributed to the offending tenant");
        assert_eq!(a.backpressure_depth, 1);
        assert_eq!((a.cache_hits, a.episodes), (0, 6));
        let b = &s.tenants[1];
        assert_eq!((b.tenant.as_str(), b.plans, b.cache_hits, b.episodes), ("b", 1, 1, 2));
        assert_eq!(b.makespan_sum_secs, 50.25);
        assert_eq!(s.shards.len(), 2);
        assert_eq!((s.shards[0].shard, s.shards[0].submissions, s.shards[0].plans), (0, 2, 1));
        assert_eq!((s.shards[1].cache_hits, s.shards[1].cache_misses), (1, 0));
    }

    #[test]
    fn empty_trace_is_empty() {
        assert!(ServiceBuilder::default().finish().is_empty());
    }
}
