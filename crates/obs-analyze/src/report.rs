//! Report rendering: each analysis as hand-rolled JSON (machine
//! consumers, the bench gate) or a compact human-readable summary.
//! JSON uses the same formatting helpers as the trace writer
//! (shortest-round-trip floats, `null` for non-finite), so analyzer
//! output is as deterministic as the traces it reads.

use std::fmt::Write as _;

use obs::event::{json_f64, json_str};

use crate::analyze::Analysis;
use crate::run::RunAnalysis;

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |n| n.to_string())
}

fn phases_json(a: &Analysis) -> String {
    let items: Vec<String> = a
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"name\":{},\"count\":{},\"total_ms\":{}}}",
                json_str(&p.name),
                p.count,
                json_f64(p.total_ms)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn run_json(r: &RunAnalysis) -> String {
    let steps: Vec<String> = r
        .critical_path
        .steps
        .iter()
        .map(|s| {
            format!(
                "{{\"ac\":{},\"vm\":{},\"start\":{},\"finish\":{},\"exec_secs\":{},\"queue_secs\":{}}}",
                s.ac,
                s.vm,
                json_f64(s.start),
                json_f64(s.finish),
                json_f64(s.exec_secs),
                json_f64(s.queue_secs)
            )
        })
        .collect();
    let vms: Vec<String> = r
        .vms
        .iter()
        .map(|v| {
            let intervals: Vec<String> = v
                .intervals
                .iter()
                .map(|iv| {
                    format!(
                        "{{\"ac\":{},\"start\":{},\"finish\":{},\"failed\":{}}}",
                        iv.ac,
                        json_f64(iv.start),
                        json_f64(iv.finish),
                        iv.failed
                    )
                })
                .collect();
            format!(
                "{{\"vm\":{},\"attempts\":{},\"busy_pe_secs\":{},\"busy_union_secs\":{},\"utilization\":{},\"intervals\":[{}]}}",
                v.vm,
                v.attempts,
                json_f64(v.busy_pe_secs),
                json_f64(v.busy_union_secs),
                json_f64(v.utilization(r.makespan_secs)),
                intervals.join(",")
            )
        })
        .collect();
    let retries: Vec<String> = r
        .retry_rows
        .iter()
        .map(|row| {
            format!("{{\"ac\":{},\"attempts\":{},\"failed\":{}}}", row.ac, row.attempts, row.failed)
        })
        .collect();
    let faults: Vec<String> = r
        .fault_counts
        .iter()
        .map(|f| format!("{{\"kind\":{},\"count\":{}}}", json_str(&f.kind), f.count))
        .collect();
    let blacklists: Vec<String> = r
        .blacklist_rows
        .iter()
        .map(|b| format!("{{\"vm\":{},\"faults\":{},\"t\":{}}}", b.vm, b.faults, json_f64(b.t)))
        .collect();
    let repl_vms: Vec<String> = r
        .replication
        .per_vm
        .iter()
        .map(|v| {
            format!(
                "{{\"vm\":{},\"launched\":{},\"won\":{},\"cancelled\":{}}}",
                v.vm, v.launched, v.won, v.cancelled
            )
        })
        .collect();
    let replication = format!(
        "{{\"launched\":{},\"won\":{},\"cancelled\":{},\"wasted_pe_secs\":{},\"per_vm\":[{}]}}",
        r.replication.launched,
        r.replication.won,
        r.replication.cancelled,
        json_f64(r.replication.wasted_pe_secs),
        repl_vms.join(",")
    );
    format!(
        "{{\"index\":{},\"complete\":{},\"success\":{},\"makespan_secs\":{},\
         \"activations\":{},\"vms_declared\":{},\"completed\":{},\"failed_attempts\":{},\
         \"retries\":{},\"unfinished_starts\":{},\"sched_passes\":{},\"max_ready_backlog\":{},\
         \"events\":{},\"queue_pushes\":{},\"max_queue_depth\":{},\
         \"queue\":{},\"exec\":{},\
         \"critical_path\":{{\"length_secs\":{},\"exec_secs\":{},\"queue_secs\":{},\
         \"unattributed_secs\":{},\"steps\":[{}]}},\
         \"mean_vm_utilization\":{},\"vms\":[{}],\"retries_by_activation\":[{}],\
         \"faults\":[{}],\"lost_attempts\":{},\"reschedules\":{},\"recoveries\":{},\
         \"blacklists\":[{}],\"replication\":{}}}",
        r.index,
        r.complete,
        r.success,
        json_f64(r.makespan_secs),
        r.activations_declared,
        r.vms_declared,
        r.completed,
        r.failed_attempts,
        r.retries,
        r.unfinished_starts,
        r.sched_passes,
        r.max_ready_backlog,
        r.events,
        r.queue_pushes,
        r.max_queue_depth,
        r.queue.summary_json(),
        r.exec.summary_json(),
        json_f64(r.critical_path.length_secs),
        json_f64(r.critical_path.exec_secs),
        json_f64(r.critical_path.queue_secs),
        json_f64(r.critical_path.unattributed_secs),
        steps.join(","),
        json_f64(r.mean_vm_utilization()),
        vms.join(","),
        retries.join(","),
        faults.join(","),
        r.lost_attempts,
        r.reschedules,
        r.recoveries,
        blacklists.join(","),
        replication
    )
}

fn service_json(a: &Analysis) -> String {
    let s = &a.service;
    if s.is_empty() {
        return "null".into();
    }
    let tenants: Vec<String> = s
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\":{},\"submissions\":{},\"shed\":{},\"backpressure\":{},\
                 \"backpressure_depth\":{},\
                 \"plans\":{},\"cache_hits\":{},\"episodes\":{},\"makespan_sum_secs\":{}}}",
                json_str(&t.tenant),
                t.submissions,
                t.shed,
                t.backpressure,
                t.backpressure_depth,
                t.plans,
                t.cache_hits,
                t.episodes,
                json_f64(t.makespan_sum_secs)
            )
        })
        .collect();
    let shards: Vec<String> = s
        .shards
        .iter()
        .map(|sh| {
            format!(
                "{{\"shard\":{},\"submissions\":{},\"plans\":{},\"cache_hits\":{},\
                 \"cache_misses\":{}}}",
                sh.shard, sh.submissions, sh.plans, sh.cache_hits, sh.cache_misses
            )
        })
        .collect();
    format!(
        "{{\"submissions\":{},\"admitted\":{},\"shed\":{},\"plans\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\
         \"enqueued\":{},\"dequeued\":{},\"backpressure\":{},\
         \"wfq_rounds\":{},\"max_queue_depth\":{},\
         \"depth_p50\":{},\"depth_p95\":{},\"depth_p99\":{},\
         \"snapshots\":{},\"slo_breaches\":{},\"hit_rate\":{},\
         \"episodes_per_hit\":{},\"episodes_per_miss\":{},\"makespan_sum_secs\":{},\
         \"tenants\":[{}],\"shards\":[{}]}}",
        s.submissions,
        s.admitted,
        s.shed,
        s.plans,
        s.cache_hits,
        s.cache_misses,
        s.enqueued,
        s.dequeued,
        s.backpressure,
        s.wfq_rounds,
        s.max_queue_depth,
        s.depth.quantile(0.5).map_or_else(|| "null".into(), json_f64),
        s.depth.quantile(0.95).map_or_else(|| "null".into(), json_f64),
        s.depth.quantile(0.99).map_or_else(|| "null".into(), json_f64),
        s.snapshots,
        s.slo_breaches,
        json_f64(s.hit_rate()),
        json_f64(s.episodes_per_hit()),
        json_f64(s.episodes_per_miss()),
        json_f64(s.makespan_sum_secs),
        tenants.join(","),
        shards.join(",")
    )
}

/// Full trace report as one JSON object.
pub fn trace_report_json(a: &Analysis) -> String {
    let runs: Vec<String> = a.runs.iter().map(run_json).collect();
    let unknown: Vec<String> =
        a.unknown.iter().map(|(k, n)| format!("{}:{n}", json_str(k))).collect();
    format!(
        "{{\"producer\":{},\"schema_version\":{},\"lines\":{},\"parse_errors\":{},\
         \"unknown_events\":{{{}}},\"phases\":{},\"service\":{},\"runs\":[{}]}}",
        a.producer.as_deref().map_or_else(|| "null".into(), json_str),
        json_opt_u64(a.schema_version),
        a.lines,
        a.parse_errors.len(),
        unknown.join(","),
        phases_json(a),
        service_json(a),
        runs.join(",")
    )
}

/// Learning-curve report as one JSON object.
pub fn learn_report_json(a: &Analysis) -> String {
    let l = &a.learning;
    let episodes: Vec<String> = l
        .episodes
        .iter()
        .map(|e| {
            format!(
                "{{\"episode\":{},\"epsilon\":{},\"makespan_secs\":{},\"success\":{},\
                 \"reward\":{},\"td_updates\":{},\"q_delta\":{}}}",
                e.episode,
                e.epsilon.map_or_else(|| "null".into(), json_f64),
                json_f64(e.makespan_secs),
                e.success,
                json_f64(e.reward),
                e.td_updates,
                json_f64(e.q_delta)
            )
        })
        .collect();
    let rounds: Vec<String> = l
        .rounds
        .iter()
        .map(|r| {
            format!(
                "{{\"round\":{},\"episodes\":{},\"transitions\":{},\"samples\":{}}}",
                r.round, r.episodes, r.transitions, r.samples
            )
        })
        .collect();
    let end = l.end.map_or_else(
        || "null".into(),
        |e| {
            format!(
                "{{\"episodes\":{},\"greedy_makespan_secs\":{},\"best_makespan_secs\":{}}}",
                e.episodes,
                json_f64(e.greedy_makespan_secs),
                json_f64(e.best_makespan_secs)
            )
        },
    );
    format!(
        "{{\"producer\":{},\"episodes\":[{}],\"rounds\":[{}],\"end\":{},\
         \"total_td_updates\":{},\"first_makespan_secs\":{},\"best_makespan_secs\":{},\
         \"last_makespan_secs\":{},\"improvement\":{},\"converged_at\":{},\"phases\":{}}}",
        a.producer.as_deref().map_or_else(|| "null".into(), json_str),
        episodes.join(","),
        rounds.join(","),
        end,
        l.total_td_updates,
        json_f64(l.first_makespan_secs),
        json_f64(l.best_makespan_secs),
        json_f64(l.last_makespan_secs),
        json_f64(l.improvement()),
        json_opt_u64(l.converged_at.map(u64::from)),
        phases_json(a)
    )
}

fn header_lines(a: &Analysis, out: &mut String) {
    let _ = writeln!(
        out,
        "trace: producer={} schema=v{} ({} lines)",
        a.producer.as_deref().unwrap_or("?"),
        a.schema_version.map_or_else(|| "?".into(), |v| v.to_string()),
        a.lines
    );
    if !a.parse_errors.is_empty() {
        let (line, err) = &a.parse_errors[0];
        let _ = writeln!(
            out,
            "warning: {} unparseable line(s), first at line {line}: {err}",
            a.parse_errors.len()
        );
    }
    if !a.unknown.is_empty() {
        let kinds: Vec<String> = a.unknown.iter().map(|(k, n)| format!("{k}:{n}")).collect();
        let _ = writeln!(out, "note: skipped unknown event kinds: {}", kinds.join(" "));
    }
}

fn phase_lines(a: &Analysis, out: &mut String) {
    if a.phases.is_empty() {
        return;
    }
    let _ = writeln!(out, "\nphase timers (wall clock):");
    for p in &a.phases {
        let _ = writeln!(out, "  {:<18} {:>10.3} ms  x{}", p.name, p.total_ms, p.count);
    }
}

fn fmt_q(h: &obs::Histogram) -> String {
    match (h.mean_secs(), h.quantile(0.5), h.quantile(0.95), h.max_secs()) {
        (Some(mean), Some(p50), Some(p95), Some(max)) => {
            format!("mean {mean:.4}s  p50 {p50:.4}s  p95 {p95:.4}s  max {max:.4}s")
        }
        _ => "no samples".into(),
    }
}

fn service_lines(a: &Analysis, out: &mut String) {
    let s = &a.service;
    if s.is_empty() {
        return;
    }
    let _ = writeln!(
        out,
        "\nservice: {} submissions ({} admitted, {} shed), {} plans",
        s.submissions, s.admitted, s.shed, s.plans
    );
    if s.enqueued + s.dequeued + s.backpressure > 0 {
        let _ = writeln!(
            out,
            "  wfq: {} enqueued, {} dequeued, {} backpressured \
             (max depth {}, {} rounds)",
            s.enqueued, s.dequeued, s.backpressure, s.max_queue_depth, s.wfq_rounds
        );
    }
    if let (Some(p50), Some(p95), Some(p99)) =
        (s.depth.quantile(0.5), s.depth.quantile(0.95), s.depth.quantile(0.99))
    {
        let _ = writeln!(
            out,
            "  wfq depth: p50 {p50:.1}  p95 {p95:.1}  p99 {p99:.1} (over {} enqueues)",
            s.depth.count()
        );
    }
    if s.snapshots + s.slo_breaches > 0 {
        let _ = writeln!(
            out,
            "  metrics plane: {} snapshot(s), {} slo breach(es)",
            s.snapshots, s.slo_breaches
        );
    }
    let _ = writeln!(
        out,
        "  warm-start cache: {} hits / {} misses ({:.1}% hit rate), \
         episodes/hit {:.2} vs episodes/miss {:.2}",
        s.cache_hits,
        s.cache_misses,
        100.0 * s.hit_rate(),
        s.episodes_per_hit(),
        s.episodes_per_miss()
    );
    let _ = writeln!(
        out,
        "  makespan sum: {:.4}s across {} tenants",
        s.makespan_sum_secs,
        s.tenants.len()
    );
    for t in &s.tenants {
        let _ = writeln!(
            out,
            "    {:<12} {:>4} submitted  {:>3} shed  {:>4} plans  {:>4} hits  {:>6} episodes  {:>12.4}s",
            t.tenant, t.submissions, t.shed, t.plans, t.cache_hits, t.episodes, t.makespan_sum_secs
        );
    }
    let pressured: Vec<_> = s.tenants.iter().filter(|t| t.backpressure > 0).collect();
    if !pressured.is_empty() {
        let _ = writeln!(out, "  backpressure by tenant:");
        for t in pressured {
            let _ = writeln!(
                out,
                "    {:<12} {:>4} signal(s)  deepest queue {}",
                t.tenant, t.backpressure, t.backpressure_depth
            );
        }
    }
    let _ = writeln!(out, "  shards:");
    for sh in &s.shards {
        let _ = writeln!(
            out,
            "    shard {:<3} {:>4} submitted  {:>4} plans  {:>4} hits  {:>4} misses",
            sh.shard, sh.submissions, sh.plans, sh.cache_hits, sh.cache_misses
        );
    }
}

/// Human-readable per-run trace report; `gantt` appends the ASCII
/// utilization chart for each run.
pub fn trace_report_human(a: &Analysis, gantt: bool) -> String {
    let mut out = String::new();
    header_lines(a, &mut out);
    service_lines(a, &mut out);
    if a.runs.is_empty() && a.service.is_empty() {
        out.push_str("no simulation runs in trace\n");
    }
    for r in &a.runs {
        let status = if !r.complete {
            "TRUNCATED"
        } else if r.success {
            "ok"
        } else {
            "FAILED"
        };
        let _ = writeln!(
            out,
            "\nrun {} [{status}]: makespan {:.4}s, {}/{} activations, {} retries",
            r.index, r.makespan_secs, r.completed, r.activations_declared, r.retries
        );
        let _ = writeln!(
            out,
            "  engine: {} events, {} sched passes (max backlog {}), queue pushes {} (depth ≤ {})",
            r.events, r.sched_passes, r.max_ready_backlog, r.queue_pushes, r.max_queue_depth
        );
        let _ = writeln!(out, "  queue wait: {}", fmt_q(&r.queue));
        let _ = writeln!(out, "  exec time:  {}", fmt_q(&r.exec));
        let cp = &r.critical_path;
        let _ = writeln!(
            out,
            "  critical path: {} steps, {:.4}s = {:.4}s exec + {:.4}s queue{}",
            cp.steps.len(),
            cp.length_secs,
            cp.exec_secs,
            cp.queue_secs,
            if cp.unattributed_secs > 0.0 {
                format!(" + {:.4}s unattributed", cp.unattributed_secs)
            } else {
                String::new()
            }
        );
        let acs: Vec<String> = cp.steps.iter().map(|s| format!("{}@vm{}", s.ac, s.vm)).collect();
        let _ = writeln!(out, "    chain: {}", acs.join(" -> "));
        let _ = writeln!(out, "  vm utilization (mean {:.1}%):", 100.0 * r.mean_vm_utilization());
        for v in &r.vms {
            let _ = writeln!(
                out,
                "    vm{:<3} {:>6.1}% busy  ({:.2}s union, {:.2}s PE-work, {} attempts)",
                v.vm,
                100.0 * v.utilization(r.makespan_secs),
                v.busy_union_secs,
                v.busy_pe_secs,
                v.attempts
            );
        }
        if !r.retry_rows.is_empty() {
            let rows: Vec<String> = r
                .retry_rows
                .iter()
                .map(|x| format!("ac{} x{} ({} failed)", x.ac, x.attempts, x.failed))
                .collect();
            let _ = writeln!(out, "  retries: {}", rows.join(", "));
        }
        if !r.fault_counts.is_empty() {
            let kinds: Vec<String> =
                r.fault_counts.iter().map(|f| format!("{} x{}", f.kind, f.count)).collect();
            let _ = writeln!(
                out,
                "  faults: {} ({} lost attempts, {} reschedules, {} recoveries)",
                kinds.join(", "),
                r.lost_attempts,
                r.reschedules,
                r.recoveries
            );
        }
        if !r.blacklist_rows.is_empty() {
            let rows: Vec<String> = r
                .blacklist_rows
                .iter()
                .map(|b| format!("vm{} at {:.2}s after {} faults", b.vm, b.t, b.faults))
                .collect();
            let _ = writeln!(out, "  blacklisted: {}", rows.join(", "));
        }
        let rep = &r.replication;
        if rep.launched + rep.cancelled > 0 {
            let _ = writeln!(
                out,
                "  replication: {} launched, {} replica wins, {} cancelled, \
                 {:.2}s wasted PE-time",
                rep.launched, rep.won, rep.cancelled, rep.wasted_pe_secs
            );
            for v in &rep.per_vm {
                let _ = writeln!(
                    out,
                    "    vm{:<3} {:>4} launched  {:>4} won  {:>4} cancelled",
                    v.vm, v.launched, v.won, v.cancelled
                );
            }
        }
        if gantt {
            out.push('\n');
            out.push_str(&r.gantt(72));
        }
    }
    phase_lines(a, &mut out);
    out
}

/// Human-readable learning-curve report.
pub fn learn_report_human(a: &Analysis) -> String {
    let mut out = String::new();
    header_lines(a, &mut out);
    let l = &a.learning;
    if l.is_empty() {
        out.push_str("no learning events in trace (was it produced by `learn --trace-out`?)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "\nlearning: {} episodes, {} td updates{}",
        l.episodes.len(),
        l.total_td_updates,
        match l.converged_at {
            Some(e) => format!(", q_delta converged at episode {e}"),
            None => ", not converged (by rolling q_delta)".into(),
        }
    );
    let _ = writeln!(
        out,
        "  makespan: first {:.4}s -> best {:.4}s -> last {:.4}s ({:+.1}% best vs first)",
        l.first_makespan_secs,
        l.best_makespan_secs,
        l.last_makespan_secs,
        -100.0 * l.improvement()
    );
    if let Some(end) = l.end {
        let _ = writeln!(
            out,
            "  final greedy rollout: {:.4}s (best during training {:.4}s)",
            end.greedy_makespan_secs, end.best_makespan_secs
        );
    }
    if !l.rounds.is_empty() {
        let transitions: u64 = l.rounds.iter().map(|r| r.transitions).sum();
        let samples: u64 = l.rounds.iter().map(|r| r.samples).sum();
        let _ = writeln!(
            out,
            "  parallel merge: {} rounds, {} transitions, {} samples",
            l.rounds.len(),
            transitions,
            samples
        );
    }
    let _ = writeln!(out, "\n  ep     epsilon   makespan_s      reward  td_upd     q_delta");
    for e in &l.episodes {
        let _ = writeln!(
            out,
            "  {:<4} {:>9} {:>12.4} {:>11.4} {:>7} {:>11.3e}{}",
            e.episode,
            e.epsilon.map_or_else(|| "-".into(), |x| format!("{x:.4}")),
            e.makespan_secs,
            e.reward,
            e.td_updates,
            e.q_delta,
            if e.success { "" } else { "  FAILED" }
        );
    }
    phase_lines(a, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_str;

    const TRACE: &str = "\
{\"ev\":\"header\",\"v\":1,\"producer\":\"reassign.learn\"}\n\
{\"ev\":\"episode_start\",\"episode\":0,\"epsilon\":0.9}\n\
{\"ev\":\"sim_start\",\"activations\":2,\"vms\":2}\n\
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}\n\
{\"ev\":\"finish\",\"t\":3,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":3,\"queue_secs\":0,\"failed\":false}\n\
{\"ev\":\"start\",\"t\":3,\"ac\":1,\"vm\":1,\"attempt\":0,\"ready_since\":3}\n\
{\"ev\":\"finish\",\"t\":8,\"ac\":1,\"vm\":1,\"attempt\":0,\"exec_secs\":5,\"queue_secs\":0,\"failed\":false}\n\
{\"ev\":\"sim_end\",\"t\":8,\"success\":true,\"events\":4,\"queue_pushes\":2,\"max_queue_depth\":1}\n\
{\"ev\":\"episode_end\",\"episode\":0,\"makespan_secs\":8,\"success\":true,\"reward\":-8,\"td_updates\":4,\"q_delta\":0.25}\n\
{\"ev\":\"learn_end\",\"episodes\":1,\"greedy_makespan_secs\":8,\"best_makespan_secs\":8}\n\
{\"ev\":\"phase\",\"name\":\"learn.episodes\",\"wall_ms\":1.25}\n";

    #[test]
    fn trace_json_is_flat_parseable_and_complete() {
        let a = analyze_str(TRACE);
        let json = trace_report_json(&a);
        for needle in [
            "\"producer\":\"reassign.learn\"",
            "\"schema_version\":1",
            "\"makespan_secs\":8",
            "\"critical_path\":{\"length_secs\":8",
            "\"steps\":[{\"ac\":0",
            "\"mean_vm_utilization\":0.5",
            "\"intervals\":[{\"ac\":0",
            "\"phases\":[{\"name\":\"learn.episodes\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn learn_json_has_curve_and_convergence_fields() {
        let a = analyze_str(TRACE);
        let json = learn_report_json(&a);
        for needle in [
            "\"episodes\":[{\"episode\":0,\"epsilon\":0.9",
            "\"end\":{\"episodes\":1",
            "\"total_td_updates\":4",
            "\"converged_at\":null",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    const FAULT_TRACE: &str = "\
{\"ev\":\"header\",\"v\":1,\"producer\":\"wfsim\"}\n\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2}\n\
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}\n\
{\"ev\":\"fault\",\"t\":1,\"kind\":\"crash\",\"ac\":-1,\"vm\":0}\n\
{\"ev\":\"fault\",\"t\":1,\"kind\":\"crash\",\"ac\":0,\"vm\":0}\n\
{\"ev\":\"reschedule\",\"t\":1,\"ac\":0,\"vm\":0,\"next_attempt\":1}\n\
{\"ev\":\"blacklist\",\"t\":1,\"vm\":0,\"faults\":1}\n\
{\"ev\":\"start\",\"t\":1,\"ac\":0,\"vm\":1,\"attempt\":1,\"ready_since\":0}\n\
{\"ev\":\"recover\",\"t\":2,\"vm\":1,\"pes\":1}\n\
{\"ev\":\"finish\",\"t\":4,\"ac\":0,\"vm\":1,\"attempt\":1,\"exec_secs\":3,\"queue_secs\":1,\"failed\":false}\n\
{\"ev\":\"sim_end\",\"t\":4,\"success\":true,\"events\":8,\"queue_pushes\":2,\"max_queue_depth\":1}\n";

    #[test]
    fn fault_rows_surface_in_json_and_human_reports() {
        let a = analyze_str(FAULT_TRACE);
        let json = trace_report_json(&a);
        for needle in [
            "\"faults\":[{\"kind\":\"crash\",\"count\":2}]",
            "\"lost_attempts\":1",
            "\"reschedules\":1",
            "\"recoveries\":1",
            "\"blacklists\":[{\"vm\":0,\"faults\":1,\"t\":1}]",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let human = trace_report_human(&a, false);
        assert!(human.contains("faults: crash x2 (1 lost attempts, 1 reschedules, 1 recoveries)"));
        assert!(human.contains("blacklisted: vm0 at 1.00s after 1 faults"), "{human}");
    }

    const REPLICATION_TRACE: &str = "\
{\"ev\":\"header\",\"v\":1,\"producer\":\"wfsim\"}\n\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2}\n\
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}\n\
{\"ev\":\"replicate\",\"t\":0,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"ready_since\":0}\n\
{\"ev\":\"finish\",\"t\":3,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"exec_secs\":3,\"queue_secs\":0,\"failed\":false}\n\
{\"ev\":\"cancel\",\"t\":3,\"ac\":0,\"vm\":0,\"attempt\":0}\n\
{\"ev\":\"sim_end\",\"t\":3,\"success\":true,\"events\":4,\"queue_pushes\":1,\"max_queue_depth\":1}\n";

    #[test]
    fn replication_rows_surface_in_json_and_human_reports() {
        let a = analyze_str(REPLICATION_TRACE);
        let json = trace_report_json(&a);
        for needle in [
            "\"replication\":{\"launched\":1,\"won\":1,\"cancelled\":1,\"wasted_pe_secs\":3",
            "\"per_vm\":[{\"vm\":0,\"launched\":0,\"won\":0,\"cancelled\":1},\
             {\"vm\":1,\"launched\":1,\"won\":1,\"cancelled\":0}]",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let human = trace_report_human(&a, false);
        assert!(
            human.contains("replication: 1 launched, 1 replica wins, 1 cancelled, 3.00s wasted"),
            "{human}"
        );
        assert!(human.contains("vm1"), "{human}");
        // Replication-free runs stay silent in the human report and
        // report zeros in JSON.
        let bare = analyze_str(TRACE);
        assert!(!trace_report_human(&bare, false).contains("replication:"));
        assert!(trace_report_json(&bare)
            .contains("\"replication\":{\"launched\":0,\"won\":0,\"cancelled\":0"));
    }

    const SERVICE_TRACE: &str = "\
{\"ev\":\"header\",\"v\":1,\"producer\":\"reassignd\"}\n\
{\"ev\":\"submit\",\"seq\":0,\"tenant\":\"a\",\"family\":\"montage\",\"size\":20,\"shard\":0}\n\
{\"ev\":\"admit\",\"seq\":0,\"shard\":0}\n\
{\"ev\":\"cache_miss\",\"seq\":0,\"shard\":0,\"family\":\"montage\",\"size\":20}\n\
{\"ev\":\"plan_done\",\"seq\":0,\"tenant\":\"a\",\"shard\":0,\"makespan_secs\":100.5,\"episodes\":6,\"cache_hit\":false}\n\
{\"ev\":\"submit\",\"seq\":1,\"tenant\":\"a\",\"family\":\"montage\",\"size\":20,\"shard\":0}\n\
{\"ev\":\"admit\",\"seq\":1,\"shard\":0}\n\
{\"ev\":\"enqueue\",\"seq\":1,\"tenant\":\"a\",\"shard\":0,\"depth\":1}\n\
{\"ev\":\"dequeue\",\"seq\":1,\"tenant\":\"a\",\"shard\":0,\"vt\":1}\n\
{\"ev\":\"cache_hit\",\"seq\":1,\"shard\":0,\"family\":\"montage\",\"size\":20}\n\
{\"ev\":\"plan_done\",\"seq\":1,\"tenant\":\"a\",\"shard\":0,\"makespan_secs\":100.5,\"episodes\":2,\"cache_hit\":true}\n";

    #[test]
    fn service_events_surface_in_json_and_human_reports() {
        let a = analyze_str(SERVICE_TRACE);
        let json = trace_report_json(&a);
        for needle in [
            "\"service\":{\"submissions\":2,\"admitted\":2,\"shed\":0,\"plans\":2",
            "\"hit_rate\":0.5",
            "\"episodes_per_hit\":2",
            "\"episodes_per_miss\":6",
            "\"enqueued\":1,\"dequeued\":1,\"backpressure\":0",
            "\"wfq_rounds\":1,\"max_queue_depth\":1",
            "\"depth_p50\":1,\"depth_p95\":1,\"depth_p99\":1",
            "\"snapshots\":0,\"slo_breaches\":0",
            "\"tenants\":[{\"tenant\":\"a\"",
            "\"shards\":[{\"shard\":0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let human = trace_report_human(&a, false);
        assert!(human.contains("service: 2 submissions (2 admitted, 0 shed), 2 plans"), "{human}");
        assert!(human.contains("wfq: 1 enqueued, 1 dequeued, 0 backpressured"), "{human}");
        assert!(
            human.contains("wfq depth: p50 1.0  p95 1.0  p99 1.0 (over 1 enqueues)"),
            "{human}"
        );
        assert!(human.contains("episodes/hit 2.00 vs episodes/miss 6.00"), "{human}");
        assert!(!human.contains("no simulation runs"), "{human}");
        // Non-service traces report the absence explicitly.
        let bare = analyze_str("{\"ev\":\"header\",\"v\":1,\"producer\":\"wfsim\"}\n");
        assert!(trace_report_json(&bare).contains("\"service\":null"));
        assert!(trace_report_human(&bare, false).contains("no simulation runs"));
    }

    const PRESSURED_TRACE: &str = "\
{\"ev\":\"header\",\"v\":1,\"producer\":\"reassignd\"}\n\
{\"ev\":\"submit\",\"seq\":0,\"tenant\":\"noisy\",\"family\":\"montage\",\"size\":20,\"shard\":0}\n\
{\"ev\":\"enqueue\",\"seq\":0,\"tenant\":\"noisy\",\"shard\":0,\"depth\":3}\n\
{\"ev\":\"submit\",\"seq\":1,\"tenant\":\"noisy\",\"family\":\"montage\",\"size\":20,\"shard\":0}\n\
{\"ev\":\"backpressure\",\"seq\":1,\"tenant\":\"noisy\",\"depth\":4}\n\
{\"ev\":\"shed\",\"seq\":1,\"tenant\":\"noisy\",\"shard\":0}\n\
{\"ev\":\"snapshot\",\"tick\":1,\"seq\":2,\"queued\":3,\"vt\":0,\"backpressure\":1,\"max_depth\":4,\"admitted\":1,\"shed\":1,\"plans\":0,\"hit_rate\":0,\"plans_per_sec\":0,\"p50_sojourn_ms\":0,\"p99_sojourn_ms\":0}\n\
{\"ev\":\"slo_breach\",\"rule\":\"no-shed\",\"metric\":\"shed\",\"value\":1,\"threshold\":0,\"tick\":1}\n";

    #[test]
    fn backpressure_and_metrics_plane_rows_surface_in_human_report() {
        let a = analyze_str(PRESSURED_TRACE);
        let human = trace_report_human(&a, false);
        assert!(human.contains("backpressure by tenant:"), "{human}");
        assert!(human.contains("noisy"), "{human}");
        assert!(human.contains("1 signal(s)  deepest queue 4"), "{human}");
        assert!(human.contains("metrics plane: 1 snapshot(s), 1 slo breach(es)"), "{human}");
        let json = trace_report_json(&a);
        assert!(json.contains("\"snapshots\":1,\"slo_breaches\":1"), "{json}");
        assert!(json.contains("\"backpressure_depth\":4"), "{json}");
    }

    #[test]
    fn human_reports_mention_the_load_bearing_numbers() {
        let a = analyze_str(TRACE);
        let human = trace_report_human(&a, true);
        assert!(human.contains("makespan 8.0000s"), "{human}");
        assert!(human.contains("critical path: 2 steps"), "{human}");
        assert!(human.contains("0@vm0 -> 1@vm1"), "{human}");
        assert!(human.contains("vm0"), "{human}");
        assert!(human.contains("phase timers"), "{human}");
        assert!(human.contains('|'), "gantt rows present: {human}");
        let learn = learn_report_human(&a);
        assert!(learn.contains("1 episodes"), "{learn}");
        assert!(learn.contains("final greedy rollout: 8.0000s"), "{learn}");
        // A bare simulate trace yields a helpful hint, not a panic.
        let sim_only = analyze_str("{\"ev\":\"header\",\"v\":1,\"producer\":\"wfsim\"}\n");
        assert!(learn_report_human(&sim_only).contains("no learning events"));
    }
}
