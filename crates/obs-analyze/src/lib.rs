//! Streaming analytics over v1 JSONL traces.
//!
//! The `obs` crate makes the simulator and learner *emit* a stable,
//! byte-deterministic event stream; this crate makes that stream
//! *legible*. It consumes a trace — from `--trace-out`, a committed
//! golden fixture, or stdin — one line at a time and derives:
//!
//! * **critical paths** ([`CriticalPath`]) — the longest cost-weighted
//!   chain of dependent activations, reconstructed purely from
//!   `start`/`finish` events via exact `finish == ready_since`
//!   matching, with per-step exec/queue attribution that telescopes to
//!   the makespan;
//! * **VM utilization** ([`VmUsage`]) — busy-interval timelines per
//!   VM (Gantt-style JSON and ASCII), union-busy seconds, fleet-wide
//!   utilization;
//! * **queue / retry breakdowns** — per-run wait and execution
//!   distributions (reusing [`obs::Histogram`] quantiles) and
//!   per-activation retry counts;
//! * **learning curves** ([`LearnAnalysis`]) — per-episode
//!   reward/ε/`q_delta` series with rolling-window convergence
//!   detection;
//! * **phase-timer totals** ([`PhaseTotal`]) — where wall-clock time
//!   went, when the trace was produced with `--phase-timings`.
//!
//! Parsing is deliberately dependency-free ([`parse`]): v1 events are
//! flat JSON objects, so a small tolerant reader suffices, and the
//! schema's additive rule (unknown `ev` kinds must be skipped, not
//! rejected) is enforced at the type level by [`ParsedEvent::Unknown`].
//! The same analyzer therefore works in every environment the traces
//! do — including ones without any JSON library at all.

pub mod analyze;
pub mod convert;
pub mod learn;
pub mod parse;
pub mod report;
pub mod run;
pub mod service;
pub mod slo;

pub use analyze::{analyze_frames, analyze_str, Analysis, Analyzer, PhaseTotal};
pub use convert::{
    convert_bin_to_jsonl, convert_jsonl_to_bin, encode_jsonl_line, jsonl_to_frames, ConvertStats,
};
pub use learn::{EpisodeRow, LearnAnalysis, LearnEndRow, RoundRow, CONVERGENCE_WINDOW};
pub use parse::{parse_flat_object, parse_line, ParsedEvent, Scalar};
pub use report::{learn_report_human, learn_report_json, trace_report_human, trace_report_json};
pub use run::{
    critical_path, Attempt, BlacklistRow, CpStep, CriticalPath, FaultCount, ReplSummary, ReplVmRow,
    RetryRow, RunAnalysis, VmUsage,
};
pub use service::{ServiceAnalysis, ShardRow, TenantRow};
pub use slo::{replay_slo, slo_report_human, slo_report_json, SloReplay};
