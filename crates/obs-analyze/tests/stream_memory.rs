//! Constant-memory regression for the streaming binary analyzer.
//!
//! [`obs_analyze::analyze_frames`] promises memory bounded by the
//! largest single frame plus the analysis state itself (per-tenant and
//! per-shard rows), never by trace length. This pins that promise with
//! a counting `#[global_allocator]` that tracks *live* bytes and their
//! high-water mark: a 100k-event binary service trace must analyze
//! within the same live-byte peak as a 10k-event one (same tenant and
//! shard cardinality), up to a fixed slack. A buffering regression —
//! reading the trace into memory, accumulating per-event rows —
//! scales the peak with the 10× event count and fails immediately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use obs::frame::{encode_event, write_prelude};
use obs::TraceEvent;
use obs_analyze::analyze_frames;

struct LiveAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::SeqCst) + size;
    PEAK.fetch_max(live, Ordering::SeqCst);
}

unsafe impl GlobalAlloc for LiveAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::SeqCst);
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc(new_size);
        LIVE.fetch_sub(layout.size(), Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: LiveAlloc = LiveAlloc;

/// Peak live bytes *above the starting waterline* while `f` runs.
fn peak_live_during<T>(f: impl FnOnce() -> T) -> (usize, T) {
    let base = LIVE.load(Ordering::SeqCst);
    PEAK.store(base, Ordering::SeqCst);
    let out = f();
    (PEAK.load(Ordering::SeqCst).saturating_sub(base), out)
}

const TENANTS: u64 = 16;
const SHARDS: u64 = 4;

/// Write a service-shaped binary trace: `cycles` × (submit, enqueue,
/// dequeue, plan_done) over a fixed tenant/shard population, streamed
/// straight to disk so the generator itself stays constant-memory.
fn write_trace(path: &PathBuf, cycles: u64) {
    let mut w = BufWriter::new(File::create(path).unwrap());
    let mut buf = Vec::new();
    write_prelude(&mut buf);
    encode_event(&TraceEvent::Header { producer: "stream-memory-test" }, &mut buf);
    w.write_all(&buf).unwrap();
    for i in 0..cycles {
        let tenant = format!("t{:02}", i % TENANTS);
        let shard = (i % SHARDS) as u32;
        buf.clear();
        encode_event(
            &TraceEvent::Submit { seq: i, tenant: &tenant, family: "montage", size: 20, shard },
            &mut buf,
        );
        encode_event(
            &TraceEvent::Enqueue { seq: i, tenant: &tenant, shard, depth: (i % 7) as u32 },
            &mut buf,
        );
        encode_event(
            &TraceEvent::Dequeue { seq: i, tenant: &tenant, shard, vt: i / TENANTS },
            &mut buf,
        );
        encode_event(
            &TraceEvent::PlanDone {
                seq: i,
                tenant: &tenant,
                shard,
                makespan_secs: 100.0 + (i % 50) as f64,
                episodes: 6,
                cache_hit: i % 2 == 0,
            },
            &mut buf,
        );
        w.write_all(&buf).unwrap();
    }
    w.flush().unwrap();
}

fn analyze_file(path: &PathBuf) -> obs_analyze::Analysis {
    analyze_frames(BufReader::new(File::open(path).unwrap())).unwrap()
}

#[test]
fn streaming_analyzer_peak_memory_is_independent_of_event_count() {
    let dir = std::env::temp_dir();
    let small_path = dir.join("reassign-stream-mem-small.trace.bin");
    let large_path = dir.join("reassign-stream-mem-large.trace.bin");
    let small_cycles = 2_500u64; // 10k events + header
    let large_cycles = 25_000u64; // 100k events + header
    write_trace(&small_path, small_cycles);
    write_trace(&large_path, large_cycles);

    // Warm one-time allocations (thread-local buffers, etc.) out of
    // the measurement.
    let _ = analyze_file(&small_path);

    let (small_peak, small) = peak_live_during(|| analyze_file(&small_path));
    let (large_peak, large) = peak_live_during(|| analyze_file(&large_path));

    // Both analyses saw everything they were fed…
    assert_eq!(small.lines, 1 + 4 * small_cycles as usize);
    assert_eq!(large.lines, 1 + 4 * large_cycles as usize);
    assert_eq!(small.service.submissions, small_cycles);
    assert_eq!(large.service.submissions, large_cycles);
    assert_eq!(large.service.plans, large_cycles);
    assert_eq!(large.service.enqueued, large_cycles);
    assert_eq!(large.service.dequeued, large_cycles);
    assert_eq!(large.service.tenants.len(), TENANTS as usize);
    assert_eq!(large.service.shards.len(), SHARDS as usize);

    // …and 10× the events must not move the live-byte peak: allow the
    // small run's peak plus a fixed (not event-proportional) slack.
    // 100k events ≈ 4 MB of frames, so even a 64 KiB drift is far
    // below any buffer-the-trace regression.
    let slack = 64 * 1024;
    assert!(
        large_peak <= small_peak + slack,
        "streaming analyzer peak grew with trace length: \
         {small_peak} live bytes at 10k events vs {large_peak} at 100k"
    );

    let _ = std::fs::remove_file(&small_path);
    let _ = std::fs::remove_file(&large_path);
}
