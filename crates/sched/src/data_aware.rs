//! Data-aware scheduling (locality-sensitive MCT).
//!
//! The paper's introduction cites data-aware scheduling (Wang et al.,
//! IEEE Big Data 2014) among the cost-model approaches ReASSIgN
//! competes with. This baseline extends MCT with transfer costs: the
//! completion estimate of `ac` on `vm` includes staging every input
//! produced on a *different* VM across the network, so the heuristic
//! prefers co-locating consumers with their producers when the
//! transfer term dominates.

use std::collections::HashMap;
use wfcommon::{ActivationId, VmId};
use wfsim::{CompletionInfo, Decision, ExecHistory, Scheduler, SchedulerContext};

/// Locality-aware minimum-completion-time scheduler.
#[derive(Debug, Clone)]
pub struct DataAware {
    /// Network bandwidth used in the transfer estimates, bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Where each completed activation ran (learned from completions).
    placement: HashMap<ActivationId, VmId>,
}

impl DataAware {
    /// Build with the given bandwidth estimate.
    pub fn new(bandwidth_bytes_per_sec: f64) -> Self {
        Self { bandwidth_bytes_per_sec, placement: HashMap::new() }
    }

    fn completion_estimate(&self, ctx: &SchedulerContext<'_>, ac: ActivationId, vm: VmId) -> f64 {
        let exec = ctx.fleet.vm(vm).vm_type.exec_secs(ctx.workflow.activations[ac].length_mi);
        let mut transfer_bytes = 0u64;
        for parent in ctx.workflow.parents(ac) {
            if self.placement.get(&parent) != Some(&vm) {
                transfer_bytes += ctx.workflow.transfer_bytes(parent, ac);
            }
        }
        exec + transfer_bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

impl Default for DataAware {
    fn default() -> Self {
        Self::new(125.0e6)
    }
}

impl Scheduler for DataAware {
    fn name(&self) -> &str {
        "data-aware"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        if ctx.ready.is_empty() || ctx.idle_slots.is_empty() {
            return Decision::DoNothing;
        }
        // Min-min over the locality-aware completion estimates.
        let mut best: Option<(ActivationId, VmId, f64)> = None;
        for &ac in ctx.ready {
            for &(vm, _) in ctx.idle_slots {
                let c = self.completion_estimate(ctx, ac, vm);
                if best.is_none_or(|(_, _, bc)| c < bc) {
                    best = Some((ac, vm, c));
                }
            }
        }
        let (activation, vm, _) = best.unwrap();
        Decision::Assign { activation, vm }
    }

    fn on_completion(&mut self, info: &CompletionInfo, _history: &ExecHistory) {
        if !info.failed {
            self.placement.insert(info.activation, info.vm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud::{Fleet, VmType};
    use wfcommon::SeedDerivation;
    use wfsim::{simulate, SimConfig};
    use workflow::montage50::montage50;
    use workflow::WorkflowBuilder;

    #[test]
    fn completes_montage() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let mut s = DataAware::default();
        let res = simulate(
            &wf,
            &fleet,
            &mut s,
            &SimConfig::deterministic(),
            SeedDerivation::new(1),
            None,
        )
        .unwrap();
        assert!(res.success);
        assert_eq!(res.records.len(), 50);
    }

    #[test]
    fn colocates_consumer_with_producer_when_transfers_dominate() {
        // producer → consumer over a 10 GB file; two identical VMs. A
        // data-oblivious MCT is indifferent; data-aware must choose the
        // producer's VM for the consumer.
        let mut b = WorkflowBuilder::new("pair");
        let act = b.activity("p", "n");
        let seed = b.file("seed", 1);
        let huge = b.file("huge.dat", 10_000_000_000);
        b.activation(act, "producer", 1000.0, vec![seed], vec![huge]);
        b.activation(act, "consumer", 1000.0, vec![huge], vec![]);
        let wf = b.build().unwrap();
        let mut fleet = Fleet::new();
        fleet.add(&VmType::t2_micro(), 2);
        let mut s = DataAware::default();
        let mut cfg = SimConfig::deterministic();
        cfg.stage_in_inputs = false; // isolate the inter-VM transfer
        let res = simulate(&wf, &fleet, &mut s, &cfg, SeedDerivation::new(2), None).unwrap();
        let producer_vm = res.record_for(ActivationId::new(0)).unwrap().vm;
        let consumer_vm = res.record_for(ActivationId::new(1)).unwrap().vm;
        assert_eq!(producer_vm, consumer_vm, "consumer should co-locate");
    }

    #[test]
    fn beats_oblivious_mct_on_transfer_heavy_workflow() {
        // A fan of producer→consumer pairs with huge files: locality
        // pays. Compare against plain Mct.
        let mut b = WorkflowBuilder::new("fan");
        let act = b.activity("p", "n");
        for i in 0..6 {
            let seed = b.file(&format!("seed{i}"), 1);
            let big = b.file(&format!("big{i}.dat"), 5_000_000_000);
            b.activation(act, &format!("prod{i}"), 5000.0, vec![seed], vec![big]);
            b.activation(act, &format!("cons{i}"), 5000.0, vec![big], vec![]);
        }
        let wf = b.build().unwrap();
        let mut fleet = Fleet::new();
        fleet.add(&VmType::t2_micro(), 6);
        let mut cfg = SimConfig::deterministic();
        cfg.stage_in_inputs = false;

        let aware =
            simulate(&wf, &fleet, &mut DataAware::default(), &cfg, SeedDerivation::new(3), None)
                .unwrap();
        let oblivious =
            simulate(&wf, &fleet, &mut crate::listsched::Mct, &cfg, SeedDerivation::new(3), None)
                .unwrap();
        assert!(
            aware.makespan <= oblivious.makespan,
            "aware {} should not lose to oblivious {}",
            aware.makespan,
            oblivious.makespan
        );
    }
}
