//! Baseline workflow schedulers.
//!
//! The paper compares ReASSIgN against HEFT (Topcuoglu et al. 2002),
//! WorkflowSim's default. This crate provides a faithful HEFT
//! implementation ([`heft`]) plus the classical list heuristics the
//! paper's introduction cites (Min-Min, Max-Min — [`listsched`]) and
//! naive baselines ([`simple`]) for calibration.
//!
//! Two scheduler shapes exist:
//!
//! * **static planners** (HEFT) compute a full activation → VM `Plan`
//!   offline from nominal performance estimates; the plan is then
//!   replayed by `wfsim`'s `FixedPlanScheduler` or `scirun`'s engine;
//! * **online policies** (Min-Min, Max-Min, MCT, OLB, round-robin,
//!   random, FIFO) implement `wfsim::Scheduler` and decide at runtime.

pub mod cpop;
pub mod data_aware;
pub mod heft;
pub mod listsched;
pub mod peft;
pub mod simple;

pub use cpop::{cpop_plan, CpopOutput};
pub use data_aware::DataAware;
pub use heft::{heft_plan, HeftOutput};
pub use listsched::{MaxMin, Mct, MinMin, Olb};
pub use peft::{peft_plan, PeftOutput};
pub use simple::{Fifo, Random, RoundRobin};
