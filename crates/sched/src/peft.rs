//! PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa, IEEE TPDS
//! 2014) — a look-ahead list scheduler that beats HEFT on many DAG
//! classes at the same O(v²·p) complexity.
//!
//! PEFT precomputes an *Optimistic Cost Table*:
//!
//! ```text
//! OCT(t, p) = max_{s ∈ succ(t)} min_{q} ( OCT(s, q) + w(s, q) + [p ≠ q]·c(t,s) )
//! ```
//!
//! (0 for exit tasks) — the best-case cost of everything downstream of
//! `t` if `t` runs on `p`. Tasks are prioritized by the mean OCT row
//! (`rank_oct`), and each task takes the processor minimizing the
//! *predicted* finish time `EFT(t,p) + OCT(t,p)` rather than the myopic
//! EFT — the one-step look-ahead that distinguishes PEFT from HEFT.

use crate::heft::insert_slot;
use cloud::Fleet;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Result, SimTime, VmId};
use wfsim::Plan;
use workflow::Workflow;

/// Output of PEFT planning.
#[derive(Clone, Debug, PartialEq)]
pub struct PeftOutput {
    /// The activation → VM mapping.
    pub plan: Plan,
    /// PEFT's own predicted makespan (nominal speeds, no noise).
    pub predicted_makespan: SimTime,
    /// `rank_oct` per activation (diagnostics / tests).
    pub ranks: Vec<f64>,
}

/// Compute a PEFT plan for `workflow` on `fleet`.
pub fn peft_plan(
    workflow: &Workflow,
    fleet: &Fleet,
    bandwidth_bytes_per_sec: f64,
) -> Result<PeftOutput> {
    if fleet.is_empty() {
        return Err(wfcommon::Error::Config("PEFT needs a non-empty fleet".into()));
    }
    if bandwidth_bytes_per_sec <= 0.0 {
        return Err(wfcommon::Error::Config("bandwidth must be positive".into()));
    }
    let n = workflow.len();

    // Processing elements (VMs expanded per element, like our HEFT).
    struct Pe {
        vm: VmId,
        speed: f64,
        slots: Vec<(f64, f64)>,
    }
    let mut pes: Vec<Pe> = Vec::new();
    for (vm_id, vm) in fleet.iter() {
        for _ in 0..vm.vm_type.pes {
            pes.push(Pe { vm: vm_id, speed: vm.vm_type.mips_per_pe, slots: Vec::new() });
        }
    }
    let p_count = pes.len();
    let speeds: Vec<f64> = pes.iter().map(|pe| pe.speed).collect();
    let pe_vm: Vec<VmId> = pes.iter().map(|pe| pe.vm).collect();
    let w = move |t: usize, p: usize| {
        workflow.activations[ActivationId::from_index(t)].length_mi / speeds[p]
    };
    let comm = |t: usize, s: usize| {
        workflow.transfer_bytes(ActivationId::from_index(t), ActivationId::from_index(s)) as f64
            / bandwidth_bytes_per_sec
    };

    // OCT over reverse topological order.
    let order = dag::topo_sort(&workflow.dag)
        .map_err(|e| wfcommon::Error::InvalidWorkflow(e.to_string()))?;
    let mut oct = vec![vec![0.0f64; p_count]; n];
    for &t in order.iter().rev() {
        for p in 0..p_count {
            let mut worst = 0.0f64;
            for &s in workflow.dag.succs(t) {
                let c_ts = comm(t, s);
                let mut best = f64::INFINITY;
                for q in 0..p_count {
                    let cross = if pe_vm[p] == pe_vm[q] { 0.0 } else { c_ts };
                    best = best.min(oct[s][q] + w(s, q) + cross);
                }
                worst = worst.max(best);
            }
            oct[t][p] = worst;
        }
    }
    let ranks: Vec<f64> = (0..n).map(|t| oct[t].iter().sum::<f64>() / p_count as f64).collect();

    // Priority list: decreasing rank_oct, ties by id.
    let mut by_rank: Vec<usize> = (0..n).collect();
    by_rank.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]).then(a.cmp(&b)));

    // PEFT schedules tasks in rank order but only when ready (all
    // predecessors placed); we iterate the priority list repeatedly,
    // which preserves the published behaviour on DAGs where rank order
    // is not topological.
    let mut placed = vec![false; n];
    let mut placed_vm: Vec<Option<VmId>> = vec![None; n];
    let mut aft = vec![0.0f64; n];
    let mut plan = Plan::empty(n);
    let mut remaining = n;
    while remaining > 0 {
        let Some(&t) = by_rank
            .iter()
            .find(|&&t| !placed[t] && workflow.dag.preds(t).iter().all(|&p| placed[p]))
        else {
            return Err(wfcommon::Error::InvalidWorkflow(
                "PEFT could not find a ready task (cyclic input?)".into(),
            ));
        };
        let at = ActivationId::from_index(t);
        let mut best: Option<(usize, f64, f64, f64)> = None; // (pe, est, eft, o_eft)
        for (pi, pe) in pes.iter().enumerate() {
            let mut ready = 0.0f64;
            for &pred in workflow.dag.preds(t) {
                let cross = if placed_vm[pred] == Some(pe.vm) { 0.0 } else { comm(pred, t) };
                ready = ready.max(aft[pred] + cross);
            }
            let exec = w(t, pi);
            let (est, eft) = insert_slot(&pe.slots, ready, exec);
            let o_eft = eft + oct[t][pi];
            if best.is_none_or(|(_, _, _, bo)| o_eft < bo) {
                best = Some((pi, est, eft, o_eft));
            }
        }
        let (pi, est, eft, _) = best.expect("fleet has PEs");
        let pe = &mut pes[pi];
        let pos = pe.slots.partition_point(|&(s, _)| s < est);
        pe.slots.insert(pos, (est, eft));
        plan.assign(at, pe.vm);
        placed[t] = true;
        placed_vm[t] = Some(pe.vm);
        aft[t] = eft;
        remaining -= 1;
    }

    let predicted = aft.iter().copied().fold(0.0, f64::max);
    Ok(PeftOutput { plan, predicted_makespan: SimTime(predicted), ranks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfcommon::SeedDerivation;
    use wfsim::{simulate, FixedPlanScheduler, SimConfig};
    use workflow::montage50::montage50;

    const BW: f64 = 125.0e6;

    #[test]
    fn plan_is_complete_and_valid() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = peft_plan(&wf, &fleet, BW).unwrap();
        out.plan.validate(&wf, &fleet).unwrap();
        assert!(out.predicted_makespan.as_secs() > 0.0);
    }

    #[test]
    fn exit_tasks_have_zero_rank() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = peft_plan(&wf, &fleet, BW).unwrap();
        for exit in wf.exits() {
            assert_eq!(out.ranks[wfcommon::ids::Idx::index(exit)], 0.0);
        }
        // Entry tasks see the whole downstream cost.
        for entry in wf.entries() {
            assert!(out.ranks[wfcommon::ids::Idx::index(entry)] > 0.0);
        }
    }

    #[test]
    fn replay_is_close_to_prediction_and_to_heft() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = peft_plan(&wf, &fleet, BW).unwrap();
        let mut replay = FixedPlanScheduler::new(out.plan.clone());
        let res = simulate(
            &wf,
            &fleet,
            &mut replay,
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
            None,
        )
        .unwrap();
        assert!(res.success);
        let ratio = res.makespan.as_secs() / out.predicted_makespan.as_secs();
        assert!((0.7..1.6).contains(&ratio), "ratio {ratio}");

        let heft = crate::heft::heft_plan(&wf, &fleet, BW).unwrap();
        let mut replay = FixedPlanScheduler::new(heft.plan);
        let heft_res = simulate(
            &wf,
            &fleet,
            &mut replay,
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
            None,
        )
        .unwrap();
        // PEFT should be within 20 % of HEFT on Montage (usually equal
        // or better on heterogeneous fleets).
        let vs_heft = res.makespan.as_secs() / heft_res.makespan.as_secs();
        assert!(vs_heft < 1.2, "PEFT {} vs HEFT {}", res.makespan, heft_res.makespan);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let wf = montage50();
        assert!(peft_plan(&wf, &Fleet::new(), BW).is_err());
        assert!(peft_plan(&wf, &Fleet::paper_16_vcpus(), 0.0).is_err());
    }
}
