//! Online list-scheduling heuristics: Min-Min, Max-Min, MCT, OLB.
//!
//! These are the classical batch-mode heuristics the paper's
//! introduction lists alongside HEFT. All operate at each *available*
//! decision point over the ready × idle cross-product, using nominal
//! (noise-free) performance estimates:
//!
//! * **MCT** (minimum completion time): assign the first ready
//!   activation to the VM completing it earliest.
//! * **Min-Min**: of all ready activations, pick the one whose best
//!   completion time is smallest, on its best VM (favours short tasks;
//!   keeps fast machines saturated).
//! * **Max-Min**: pick the activation whose best completion time is
//!   *largest* (front-loads long tasks).
//! * **OLB** (opportunistic load balancing): assign to the
//!   least-loaded idle VM regardless of speed.

use cloud::Fleet;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, VmId};
use wfsim::{Decision, Scheduler, SchedulerContext};
use workflow::Workflow;

/// Estimated completion seconds of `ac` on `vm` (execution only —
/// queue time is zero because assignments target idle elements).
fn estimate(workflow: &Workflow, fleet: &Fleet, ac: ActivationId, vm: VmId) -> f64 {
    fleet.vm(vm).vm_type.exec_secs(workflow.activations[ac].length_mi)
}

/// For `ac`, the `(vm, completion)` minimizing estimated completion
/// over idle VMs.
fn best_vm(
    workflow: &Workflow,
    fleet: &Fleet,
    idle: &[(VmId, u32)],
    ac: ActivationId,
) -> (VmId, f64) {
    let mut best = (idle[0].0, f64::INFINITY);
    for &(vm, _) in idle {
        let c = estimate(workflow, fleet, ac, vm);
        if c < best.1 {
            best = (vm, c);
        }
    }
    best
}

/// Minimum completion time.
#[derive(Debug, Default, Clone, Copy)]
pub struct Mct;

impl Scheduler for Mct {
    fn name(&self) -> &str {
        "mct"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        match ctx.ready.first() {
            Some(&ac) => {
                let (vm, _) = best_vm(ctx.workflow, ctx.fleet, ctx.idle_slots, ac);
                Decision::Assign { activation: ac, vm }
            }
            None => Decision::DoNothing,
        }
    }
}

/// Min-Min list heuristic.
#[derive(Debug, Default, Clone, Copy)]
pub struct MinMin;

impl Scheduler for MinMin {
    fn name(&self) -> &str {
        "min-min"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        pick_by_completion(ctx, /*take_max=*/ false)
    }
}

/// Max-Min list heuristic.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxMin;

impl Scheduler for MaxMin {
    fn name(&self) -> &str {
        "max-min"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        pick_by_completion(ctx, /*take_max=*/ true)
    }
}

fn pick_by_completion(ctx: &SchedulerContext<'_>, take_max: bool) -> Decision {
    if ctx.ready.is_empty() || ctx.idle_slots.is_empty() {
        return Decision::DoNothing;
    }
    let mut chosen: Option<(ActivationId, VmId, f64)> = None;
    for &ac in ctx.ready {
        let (vm, c) = best_vm(ctx.workflow, ctx.fleet, ctx.idle_slots, ac);
        let better = match &chosen {
            None => true,
            Some((_, _, best_c)) => {
                if take_max {
                    c > *best_c
                } else {
                    c < *best_c
                }
            }
        };
        if better {
            chosen = Some((ac, vm, c));
        }
    }
    let (activation, vm, _) = chosen.expect("ready is non-empty");
    Decision::Assign { activation, vm }
}

/// Opportunistic load balancing: round-robin over idle VMs weighted by
/// free elements, ignoring speed.
#[derive(Debug, Default, Clone)]
pub struct Olb {
    assigned: Vec<u64>,
}

impl Scheduler for Olb {
    fn name(&self) -> &str {
        "olb"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let Some(&ac) = ctx.ready.first() else {
            return Decision::DoNothing;
        };
        if self.assigned.len() < ctx.fleet.len() {
            self.assigned.resize(ctx.fleet.len(), 0);
        }
        // Least-assigned idle VM.
        let vm = ctx
            .idle_slots
            .iter()
            .min_by_key(|(vm, _)| (self.assigned[vm.index()], *vm))
            .map(|&(vm, _)| vm)
            .expect("idle_slots non-empty");
        self.assigned[vm.index()] += 1;
        Decision::Assign { activation: ac, vm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud::VmType;
    use wfcommon::SeedDerivation;
    use wfsim::{simulate, SimConfig};
    use workflow::montage50::montage50;

    fn run(s: &mut dyn Scheduler, fleet: &Fleet) -> wfsim::SimResult {
        simulate(&montage50(), fleet, s, &SimConfig::deterministic(), SeedDerivation::new(1), None)
            .unwrap()
    }

    #[test]
    fn all_heuristics_complete_montage() {
        let fleet = Fleet::paper_16_vcpus();
        for s in [&mut Mct as &mut dyn Scheduler, &mut MinMin, &mut MaxMin] {
            let res = run(s, &fleet);
            assert!(res.success, "{} failed", s.name());
            assert_eq!(res.records.len(), 50);
        }
        let mut olb = Olb::default();
        let res = run(&mut olb, &fleet);
        assert!(res.success);
    }

    #[test]
    fn mct_prefers_the_fast_vm_when_idle() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let hist = wfsim::ExecHistory::new(fleet.len());
        let ready = [ActivationId::new(0)];
        let idle: Vec<(VmId, u32)> = fleet.ids().into_iter().map(|v| (v, 1)).collect();
        let ctx = SchedulerContext {
            now: wfcommon::SimTime::ZERO,
            workflow: &wf,
            fleet: &fleet,
            ready: &ready,
            idle_slots: &idle,
            history: &hist,
        };
        match Mct.decide(&ctx) {
            Decision::Assign { vm, .. } => assert_eq!(vm, VmId::new(8)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn min_min_and_max_min_differ_on_mixed_lengths() {
        // Two ready tasks of very different lengths, one idle VM:
        // Min-Min starts the short one, Max-Min the long one.
        let mut b = workflow::WorkflowBuilder::new("two");
        let act = b.activity("p", "n");
        let s1 = b.file("s1", 1);
        let s2 = b.file("s2", 1);
        b.activation(act, "short", 1000.0, vec![s1], vec![]);
        b.activation(act, "long", 50_000.0, vec![s2], vec![]);
        let wf = b.build().unwrap();
        let mut fleet = Fleet::new();
        fleet.add(&VmType::t2_micro(), 1);
        let hist = wfsim::ExecHistory::new(1);
        let ready = [ActivationId::new(0), ActivationId::new(1)];
        let idle = [(VmId::new(0), 1u32)];
        let ctx = SchedulerContext {
            now: wfcommon::SimTime::ZERO,
            workflow: &wf,
            fleet: &fleet,
            ready: &ready,
            idle_slots: &idle,
            history: &hist,
        };
        match MinMin.decide(&ctx) {
            Decision::Assign { activation, .. } => {
                assert_eq!(activation, ActivationId::new(0))
            }
            other => panic!("unexpected {other:?}"),
        }
        match MaxMin.decide(&ctx) {
            Decision::Assign { activation, .. } => {
                assert_eq!(activation, ActivationId::new(1))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn olb_spreads_load() {
        let fleet = Fleet::paper_16_vcpus();
        let mut olb = Olb::default();
        let res = run(&mut olb, &fleet);
        let hist = res.plan.load_histogram(fleet.len());
        // Every VM gets at least one activation (50 tasks over 9 VMs).
        assert!(hist.iter().all(|&c| c > 0), "load histogram {hist:?}");
    }

    #[test]
    fn empty_ready_yields_do_nothing() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let hist = wfsim::ExecHistory::new(fleet.len());
        let idle = [(VmId::new(0), 1u32)];
        let ctx = SchedulerContext {
            now: wfcommon::SimTime::ZERO,
            workflow: &wf,
            fleet: &fleet,
            ready: &[],
            idle_slots: &idle,
            history: &hist,
        };
        assert_eq!(Mct.decide(&ctx), Decision::DoNothing);
        assert_eq!(MinMin.decide(&ctx), Decision::DoNothing);
        assert_eq!(MaxMin.decide(&ctx), Decision::DoNothing);
        assert_eq!(Olb::default().decide(&ctx), Decision::DoNothing);
    }
}
