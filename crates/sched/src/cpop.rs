//! CPOP — Critical Path On a Processor (Topcuoglu, Hariri & Wu, IEEE
//! TPDS 2002) — HEFT's companion algorithm from the same paper.
//!
//! CPOP prioritizes tasks by `rank_u + rank_d` (upward + downward
//! rank). The tasks whose priority equals the graph's critical-path
//! length form the *critical path set*; all of them are pinned to the
//! single *critical-path processor* (the one executing the whole set
//! fastest), while every other task is placed by insertion-based EFT.

use crate::heft::insert_slot;
use cloud::Fleet;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Result, SimTime, VmId};
use wfsim::Plan;
use workflow::Workflow;

/// Output of CPOP planning.
#[derive(Clone, Debug, PartialEq)]
pub struct CpopOutput {
    /// The activation → VM mapping.
    pub plan: Plan,
    /// Predicted makespan (nominal speeds).
    pub predicted_makespan: SimTime,
    /// The critical-path tasks, in topological order.
    pub critical_path: Vec<ActivationId>,
    /// The VM chosen as the critical-path processor.
    pub cp_vm: VmId,
}

/// Compute a CPOP plan.
pub fn cpop_plan(
    workflow: &Workflow,
    fleet: &Fleet,
    bandwidth_bytes_per_sec: f64,
) -> Result<CpopOutput> {
    if fleet.is_empty() {
        return Err(wfcommon::Error::Config("CPOP needs a non-empty fleet".into()));
    }
    if bandwidth_bytes_per_sec <= 0.0 {
        return Err(wfcommon::Error::Config("bandwidth must be positive".into()));
    }
    let n = workflow.len();

    // Mean cost per task over PEs.
    let mut pe_speeds: Vec<f64> = Vec::new();
    for (_, vm) in fleet.iter() {
        for _ in 0..vm.vm_type.pes {
            pe_speeds.push(vm.vm_type.mips_per_pe);
        }
    }
    let mean_inv: f64 = pe_speeds.iter().map(|s| 1.0 / s).sum::<f64>() / pe_speeds.len() as f64;
    let w_bar: Vec<f64> = workflow.activations.values().map(|a| a.length_mi * mean_inv).collect();
    let comm = |u: usize, v: usize| {
        workflow.transfer_bytes(ActivationId::from_index(u), ActivationId::from_index(v)) as f64
            / bandwidth_bytes_per_sec
    };

    let order = dag::topo_sort(&workflow.dag)
        .map_err(|e| wfcommon::Error::InvalidWorkflow(e.to_string()))?;

    // Upward rank.
    let mut rank_u = vec![0.0f64; n];
    for &u in order.iter().rev() {
        let mut best = 0.0;
        for &v in workflow.dag.succs(u) {
            best = f64::max(best, comm(u, v) + rank_u[v]);
        }
        rank_u[u] = w_bar[u] + best;
    }
    // Downward rank.
    let mut rank_d = vec![0.0f64; n];
    for &v in &order {
        let mut best = 0.0;
        for &p in workflow.dag.preds(v) {
            best = f64::max(best, rank_d[p] + w_bar[p] + comm(p, v));
        }
        rank_d[v] = best;
    }
    let priority: Vec<f64> = (0..n).map(|i| rank_u[i] + rank_d[i]).collect();

    // Critical path: walk from the highest-priority entry through the
    // successor with (numerically) equal priority.
    let cp_len = priority.iter().copied().fold(0.0f64, f64::max);
    let eps = 1e-6 * cp_len.max(1.0);
    let mut cp: Vec<usize> = Vec::new();
    let mut cur = workflow
        .dag
        .roots()
        .into_iter()
        .max_by(|&a, &b| priority[a].total_cmp(&priority[b]))
        .ok_or_else(|| wfcommon::Error::InvalidWorkflow("workflow has no entry".into()))?;
    loop {
        cp.push(cur);
        let next = workflow
            .dag
            .succs(cur)
            .iter()
            .copied()
            .find(|&v| (priority[v] - cp_len).abs() <= eps)
            .or_else(|| {
                workflow
                    .dag
                    .succs(cur)
                    .iter()
                    .copied()
                    .max_by(|&a, &b| priority[a].total_cmp(&priority[b]))
            });
        match next {
            Some(v) if !cp.contains(&v) => cur = v,
            _ => break,
        }
    }

    // Critical-path processor: the VM minimizing the CP's total
    // execution time (per-element speed; the CP is sequential).
    let cp_work: f64 =
        cp.iter().map(|&t| workflow.activations[ActivationId::from_index(t)].length_mi).sum();
    let (cp_vm, _) = fleet
        .iter()
        .map(|(id, vm)| (id, cp_work / vm.vm_type.mips_per_pe))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty fleet");

    // Placement: priority-descending, ready-gated; CP tasks pinned.
    struct Pe {
        vm: VmId,
        speed: f64,
        slots: Vec<(f64, f64)>,
    }
    let mut pes: Vec<Pe> = Vec::new();
    for (vm_id, vm) in fleet.iter() {
        for _ in 0..vm.vm_type.pes {
            pes.push(Pe { vm: vm_id, speed: vm.vm_type.mips_per_pe, slots: Vec::new() });
        }
    }
    let on_cp = {
        let mut v = vec![false; n];
        for &t in &cp {
            v[t] = true;
        }
        v
    };
    let mut by_priority: Vec<usize> = (0..n).collect();
    by_priority.sort_by(|&a, &b| priority[b].total_cmp(&priority[a]).then(a.cmp(&b)));

    let mut placed = vec![false; n];
    let mut placed_vm: Vec<Option<VmId>> = vec![None; n];
    let mut aft = vec![0.0f64; n];
    let mut plan = Plan::empty(n);
    let mut remaining = n;
    while remaining > 0 {
        let Some(&t) = by_priority
            .iter()
            .find(|&&t| !placed[t] && workflow.dag.preds(t).iter().all(|&p| placed[p]))
        else {
            return Err(wfcommon::Error::InvalidWorkflow("CPOP found no ready task".into()));
        };
        let at = ActivationId::from_index(t);
        let candidate_pes: Vec<usize> = if on_cp[t] {
            (0..pes.len()).filter(|&pi| pes[pi].vm == cp_vm).collect()
        } else {
            (0..pes.len()).collect()
        };
        let mut best: Option<(usize, f64, f64)> = None;
        for &pi in &candidate_pes {
            let pe = &pes[pi];
            let mut ready = 0.0f64;
            for &pred in workflow.dag.preds(t) {
                let cross = if placed_vm[pred] == Some(pe.vm) { 0.0 } else { comm(pred, t) };
                ready = ready.max(aft[pred] + cross);
            }
            let exec = workflow.activations[at].length_mi / pe.speed;
            let (est, eft) = insert_slot(&pe.slots, ready, exec);
            if best.is_none_or(|(_, _, beft)| eft < beft) {
                best = Some((pi, est, eft));
            }
        }
        let (pi, est, eft) = best.expect("candidate set non-empty");
        let pe = &mut pes[pi];
        let pos = pe.slots.partition_point(|&(s, _)| s < est);
        pe.slots.insert(pos, (est, eft));
        plan.assign(at, pe.vm);
        placed[t] = true;
        placed_vm[t] = Some(pe.vm);
        aft[t] = eft;
        remaining -= 1;
    }

    Ok(CpopOutput {
        plan,
        predicted_makespan: SimTime(aft.iter().copied().fold(0.0, f64::max)),
        critical_path: cp.into_iter().map(ActivationId::from_index).collect(),
        cp_vm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfcommon::SeedDerivation;
    use wfsim::{simulate, FixedPlanScheduler, SimConfig};
    use workflow::montage50::montage50;

    const BW: f64 = 125.0e6;

    #[test]
    fn plan_complete_and_cp_pinned() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = cpop_plan(&wf, &fleet, BW).unwrap();
        out.plan.validate(&wf, &fleet).unwrap();
        assert!(!out.critical_path.is_empty());
        // Every CP task sits on the CP processor.
        for &t in &out.critical_path {
            assert_eq!(out.plan.vm_for(t), Some(out.cp_vm), "CP task {t} strayed");
        }
        // The CP processor is the fastest VM (per-core) on this fleet.
        assert_eq!(out.cp_vm, VmId::new(8));
    }

    #[test]
    fn critical_path_is_a_real_path() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = cpop_plan(&wf, &fleet, BW).unwrap();
        for pair in out.critical_path.windows(2) {
            assert!(
                wf.dag.has_edge(pair[0].index(), pair[1].index()),
                "CP not contiguous at {:?}",
                pair
            );
        }
        // CP starts at an entry and ends at an exit.
        assert!(wf.entries().contains(&out.critical_path[0]));
        assert!(wf.exits().contains(out.critical_path.last().unwrap()));
    }

    #[test]
    fn replay_completes_within_heft_band() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = cpop_plan(&wf, &fleet, BW).unwrap();
        let mut replay = FixedPlanScheduler::new(out.plan.clone());
        let res = simulate(
            &wf,
            &fleet,
            &mut replay,
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
            None,
        )
        .unwrap();
        assert!(res.success);
        let heft = crate::heft::heft_plan(&wf, &fleet, BW).unwrap();
        let mut replay = FixedPlanScheduler::new(heft.plan);
        let heft_res = simulate(
            &wf,
            &fleet,
            &mut replay,
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
            None,
        )
        .unwrap();
        let ratio = res.makespan.as_secs() / heft_res.makespan.as_secs();
        assert!(ratio < 1.5, "CPOP {} vs HEFT {}", res.makespan, heft_res.makespan);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let wf = montage50();
        assert!(cpop_plan(&wf, &Fleet::new(), BW).is_err());
        assert!(cpop_plan(&wf, &Fleet::paper_16_vcpus(), -1.0).is_err());
    }
}
