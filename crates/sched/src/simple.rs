//! Naive baselines: FIFO, round-robin and uniform-random placement.
//!
//! These calibrate the experiment tables — any learning scheduler that
//! cannot beat uniform-random placement on a heterogeneous fleet has
//! learned nothing.

use rand::seq::SliceRandom as _;
use wfcommon::rng::Rng;
use wfcommon::SeedDerivation;
use wfsim::{Decision, Scheduler, SchedulerContext};

/// First ready activation onto the first idle VM.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        match (ctx.ready.first(), ctx.idle_slots.first()) {
            (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
            _ => Decision::DoNothing,
        }
    }
}

/// Cycle idle VMs in id order.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobin {
    next: usize,
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        let Some(&ac) = ctx.ready.first() else {
            return Decision::DoNothing;
        };
        if ctx.idle_slots.is_empty() {
            return Decision::DoNothing;
        }
        let (vm, _) = ctx.idle_slots[self.next % ctx.idle_slots.len()];
        self.next = self.next.wrapping_add(1);
        Decision::Assign { activation: ac, vm }
    }
}

/// Uniform-random (ready activation, idle VM) pair.
#[derive(Debug, Clone)]
pub struct Random {
    rng: Rng,
}

impl Random {
    /// Seeded random scheduler.
    pub fn new(seeds: SeedDerivation) -> Self {
        Self { rng: seeds.rng_for("random-scheduler", 0) }
    }
}

impl Scheduler for Random {
    fn name(&self) -> &str {
        "random"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        match (ctx.ready.choose(&mut self.rng), ctx.idle_slots.choose(&mut self.rng)) {
            (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
            _ => Decision::DoNothing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud::Fleet;
    use wfsim::{simulate, SimConfig};
    use workflow::montage50::montage50;

    #[test]
    fn all_simple_schedulers_complete() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::deterministic();
        for (name, s) in [
            ("fifo", &mut Fifo as &mut dyn Scheduler),
            ("rr", &mut RoundRobin::default()),
            ("rand", &mut Random::new(SeedDerivation::new(5))),
        ] {
            let res = simulate(&wf, &fleet, s, &cfg, SeedDerivation::new(2), None)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(res.success, "{name} did not finish");
        }
    }

    #[test]
    fn round_robin_rotates() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let res = simulate(
            &wf,
            &fleet,
            &mut RoundRobin::default(),
            &SimConfig::deterministic(),
            SeedDerivation::new(3),
            None,
        )
        .unwrap();
        let hist = res.plan.load_histogram(fleet.len());
        assert!(hist.iter().filter(|&&c| c > 0).count() >= 8, "{hist:?}");
    }

    #[test]
    fn random_is_reproducible_per_seed() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::deterministic();
        let a = simulate(
            &wf,
            &fleet,
            &mut Random::new(SeedDerivation::new(7)),
            &cfg,
            SeedDerivation::new(2),
            None,
        )
        .unwrap();
        let b = simulate(
            &wf,
            &fleet,
            &mut Random::new(SeedDerivation::new(7)),
            &cfg,
            SeedDerivation::new(2),
            None,
        )
        .unwrap();
        assert_eq!(a.plan, b.plan);
    }
}
