//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu,
//! IEEE TPDS 2002).
//!
//! The algorithm has two phases:
//!
//! 1. **Task prioritization**: compute each task's *upward rank*
//!    `rank_u(i) = w̄_i + max_{j ∈ succ(i)} (c̄_ij + rank_u(j))`, where
//!    `w̄_i` is the task's mean execution cost over all processors and
//!    `c̄_ij` the mean communication cost of the edge; order tasks by
//!    decreasing rank (a topological order by construction).
//! 2. **Processor selection**: assign each task, in rank order, to the
//!    processor minimizing its *earliest finish time*, using an
//!    insertion-based policy that may fill idle gaps between already
//!    scheduled tasks.
//!
//! VMs with multiple processing elements are modelled as `pes`
//! independent PE timelines sharing the VM's identity — a task placed
//! on any element of `vm` is mapped to `vm` in the resulting plan,
//! matching how the paper's Table V reports HEFT assignments on the
//! 9-VM fleet.

use cloud::Fleet;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Result, SimTime, VmId};
use wfsim::Plan;
use workflow::Workflow;

/// Output of HEFT planning.
#[derive(Clone, Debug, PartialEq)]
pub struct HeftOutput {
    /// The activation → VM mapping.
    pub plan: Plan,
    /// HEFT's own predicted makespan (nominal speeds, no noise).
    pub predicted_makespan: SimTime,
    /// Upward rank per activation (diagnostics / tests).
    pub ranks: Vec<f64>,
}

/// Compute a HEFT plan for `workflow` on `fleet`, with inter-VM
/// transfers costed at `bandwidth_bytes_per_sec`.
pub fn heft_plan(
    workflow: &Workflow,
    fleet: &Fleet,
    bandwidth_bytes_per_sec: f64,
) -> Result<HeftOutput> {
    if fleet.is_empty() {
        return Err(wfcommon::Error::Config("HEFT needs a non-empty fleet".into()));
    }
    if bandwidth_bytes_per_sec <= 0.0 {
        return Err(wfcommon::Error::Config("bandwidth must be positive".into()));
    }
    let n = workflow.len();

    // Mean execution cost per task over all PEs (each VM contributes
    // its per-element rating once per element, as HEFT averages over
    // processors).
    let mut pe_speeds: Vec<f64> = Vec::new();
    for (_, vm) in fleet.iter() {
        for _ in 0..vm.vm_type.pes {
            pe_speeds.push(vm.vm_type.mips_per_pe);
        }
    }
    let mean_inv_speed: f64 =
        pe_speeds.iter().map(|s| 1.0 / s).sum::<f64>() / pe_speeds.len() as f64;
    let w_bar: Vec<f64> =
        workflow.activations.values().map(|a| a.length_mi * mean_inv_speed).collect();

    // Upward ranks over reverse topological order.
    let order = dag::topo_sort(&workflow.dag)
        .map_err(|e| wfcommon::Error::InvalidWorkflow(e.to_string()))?;
    let mut rank = vec![0.0f64; n];
    for &u in order.iter().rev() {
        let au = ActivationId::from_index(u);
        let mut best = 0.0f64;
        for v in workflow.dag.succs(u) {
            let av = ActivationId::from_index(*v);
            let comm = workflow.transfer_bytes(au, av) as f64 / bandwidth_bytes_per_sec;
            best = best.max(comm + rank[*v]);
        }
        rank[u] = w_bar[u] + best;
    }

    // Rank-descending order; ties by id for determinism.
    let mut by_rank: Vec<usize> = (0..n).collect();
    by_rank.sort_by(|&a, &b| rank[b].total_cmp(&rank[a]).then(a.cmp(&b)));

    // PE timelines: per PE, a sorted list of (start, end) occupied slots.
    struct Pe {
        vm: VmId,
        speed: f64,
        slots: Vec<(f64, f64)>,
    }
    let mut pes: Vec<Pe> = Vec::new();
    for (vm_id, vm) in fleet.iter() {
        for _ in 0..vm.vm_type.pes {
            pes.push(Pe { vm: vm_id, speed: vm.vm_type.mips_per_pe, slots: Vec::new() });
        }
    }

    let mut plan = Plan::empty(n);
    let mut aft = vec![0.0f64; n]; // actual (planned) finish time
    let mut placed_vm: Vec<Option<VmId>> = vec![None; n];

    for &t in &by_rank {
        let at = ActivationId::from_index(t);
        let mut best: Option<(usize, f64, f64)> = None; // (pe, est, eft)
        for (pi, pe) in pes.iter().enumerate() {
            // Data-ready time on this PE's VM.
            let mut ready = 0.0f64;
            for p in workflow.dag.preds(t) {
                let ap = ActivationId::from_index(*p);
                let comm = if placed_vm[*p] == Some(pe.vm) {
                    0.0
                } else {
                    workflow.transfer_bytes(ap, at) as f64 / bandwidth_bytes_per_sec
                };
                ready = ready.max(aft[*p] + comm);
            }
            let exec = workflow.activations[at].length_mi / pe.speed;
            let (est, eft) = insert_slot(&pe.slots, ready, exec);
            match best {
                None => best = Some((pi, est, eft)),
                Some((_, _, beft)) if eft < beft => best = Some((pi, est, eft)),
                _ => {}
            }
        }
        let (pi, est, eft) = best.expect("fleet has at least one PE");
        let pe = &mut pes[pi];
        let pos = pe.slots.partition_point(|&(s, _)| s < est);
        pe.slots.insert(pos, (est, eft));
        plan.assign(at, pe.vm);
        placed_vm[t] = Some(pe.vm);
        aft[t] = eft;
    }

    let predicted = aft.iter().copied().fold(0.0, f64::max);
    Ok(HeftOutput { plan, predicted_makespan: SimTime(predicted), ranks: rank })
}

/// Insertion-based slot search: the earliest `(start, finish)` on a
/// timeline of occupied `slots` (sorted by start) such that
/// `start ≥ ready` and the `[start, start+exec)` window is free.
/// Shared with the PEFT planner.
pub(crate) fn insert_slot(slots: &[(f64, f64)], ready: f64, exec: f64) -> (f64, f64) {
    let mut candidate = ready;
    for &(s, e) in slots {
        if candidate + exec <= s + 1e-12 {
            return (candidate, candidate + exec);
        }
        candidate = candidate.max(e);
    }
    (candidate, candidate + exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud::VmType;
    use workflow::montage50::montage50;

    const BW: f64 = 125.0e6;

    #[test]
    fn plan_is_complete_and_valid() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = heft_plan(&wf, &fleet, BW).unwrap();
        out.plan.validate(&wf, &fleet).unwrap();
        assert!(out.predicted_makespan.as_secs() > 0.0);
    }

    #[test]
    fn ranks_decrease_along_edges() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = heft_plan(&wf, &fleet, BW).unwrap();
        for (u, v) in wf.dag.edges() {
            assert!(out.ranks[u] > out.ranks[v], "rank must strictly decrease along {u}->{v}");
        }
    }

    #[test]
    fn predicted_makespan_bounded_below_by_critical_path() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = heft_plan(&wf, &fleet, BW).unwrap();
        let fastest = 1250.0;
        let bound = wf.reference_critical_path_secs() * 1000.0 / fastest;
        assert!(out.predicted_makespan.as_secs() >= bound - 1e-6);
    }

    #[test]
    fn single_vm_serializes_everything() {
        let wf = montage50();
        let mut fleet = Fleet::new();
        fleet.add(&VmType::t2_micro(), 1);
        let out = heft_plan(&wf, &fleet, BW).unwrap();
        // Everything on vm0; predicted makespan ≥ serial work / speed.
        let serial = wf.total_work_mi() / 1000.0;
        assert!(out.predicted_makespan.as_secs() >= serial - 1e-6);
        for (_, vm) in out.plan.iter() {
            assert_eq!(vm, VmId::new(0));
        }
    }

    #[test]
    fn heterogeneous_fleet_prefers_fast_vm_for_critical_tasks() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = heft_plan(&wf, &fleet, BW).unwrap();
        // The top-ranked task should land on the fast 2xlarge (vm 8).
        let top =
            out.ranks.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert_eq!(
            out.plan.vm_for(ActivationId::from_index(top)),
            Some(VmId::new(8)),
            "highest-rank task should take the fastest PE"
        );
    }

    #[test]
    fn insert_slot_fills_gaps() {
        // Occupied [0,5) and [10,20): a 3-second task ready at 1 fits at 5.
        let slots = vec![(0.0, 5.0), (10.0, 20.0)];
        assert_eq!(insert_slot(&slots, 1.0, 3.0), (5.0, 8.0));
        // A 6-second task cannot fit the gap; goes to the end.
        assert_eq!(insert_slot(&slots, 1.0, 6.0), (20.0, 26.0));
        // Ready before everything with room at the front.
        let slots = vec![(8.0, 9.0)];
        assert_eq!(insert_slot(&slots, 0.0, 4.0), (0.0, 4.0));
        // Empty timeline.
        assert_eq!(insert_slot(&[], 2.0, 3.0), (2.0, 5.0));
    }

    #[test]
    fn simulated_replay_close_to_prediction() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let out = heft_plan(&wf, &fleet, BW).unwrap();
        let mut replay = wfsim::FixedPlanScheduler::new(out.plan.clone());
        let res = wfsim::simulate(
            &wf,
            &fleet,
            &mut replay,
            &wfsim::SimConfig::deterministic(),
            wfcommon::SeedDerivation::new(0),
            None,
        )
        .unwrap();
        assert!(res.success);
        // The DES adds stage-in costs HEFT's model ignores and its
        // replay is non-delaying, so allow a generous band.
        let ratio = res.makespan.as_secs() / out.predicted_makespan.as_secs();
        assert!(
            (0.7..1.6).contains(&ratio),
            "simulated {} vs predicted {} (ratio {ratio})",
            res.makespan,
            out.predicted_makespan
        );
    }

    #[test]
    fn empty_fleet_rejected() {
        let wf = montage50();
        assert!(heft_plan(&wf, &Fleet::new(), BW).is_err());
        assert!(heft_plan(&wf, &Fleet::paper_16_vcpus(), 0.0).is_err());
    }
}
