//! Property tests of HEFT and the list heuristics over random
//! workflows and fleets.

use cloud::{Fleet, VmType};
use proptest::prelude::*;
use sched::{heft_plan, MaxMin, MinMin};
use wfcommon::ids::Idx;
use wfcommon::SeedDerivation;
use wfsim::{simulate, FixedPlanScheduler, SimConfig};
use workflow::generators::layered::{generate, LayeredParams};
use workflow::Workflow;

fn arb_workflow() -> impl Strategy<Value = Workflow> {
    (2usize..6, 2usize..7, 1usize..4, 0u64..500).prop_map(|(l, w, f, seed)| {
        generate(&LayeredParams {
            layers: l,
            width: w,
            max_fanin: f,
            median_secs: 8.0,
            sigma: 0.7,
            seed,
        })
        .unwrap()
    })
}

fn arb_fleet() -> impl Strategy<Value = Fleet> {
    (1usize..4, 0usize..3).prop_map(|(m, b)| {
        let mut f = Fleet::new();
        f.add(&VmType::t2_micro(), m);
        f.add(&VmType::t2_2xlarge(), b);
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// HEFT's plan is always complete and its prediction is bounded
    /// below by both classical lower bounds.
    #[test]
    fn heft_plan_is_sound(wf in arb_workflow(), fleet in arb_fleet()) {
        let out = heft_plan(&wf, &fleet, 125.0e6).unwrap();
        out.plan.validate(&wf, &fleet).unwrap();

        // Ranks strictly decrease along edges.
        for (u, v) in wf.dag.edges() {
            prop_assert!(out.ranks[u] > out.ranks[v]);
        }

        // Prediction ≥ critical path over the fastest element.
        let fastest = fleet.iter().map(|(_, v)| v.vm_type.mips_per_pe)
            .fold(0.0f64, f64::max);
        let cp = wf.reference_critical_path_secs() * 1000.0 / fastest;
        prop_assert!(out.predicted_makespan.as_secs() >= cp - 1e-6);

        // Prediction ≥ total work over total capacity.
        let cap: f64 = fleet.iter().map(|(_, v)| v.vm_type.total_mips()).sum();
        let work = wf.total_work_mi() / cap;
        prop_assert!(out.predicted_makespan.as_secs() >= work - 1e-6);
    }

    /// Replaying HEFT's plan in the deterministic simulator stays
    /// within a modest factor of the prediction (the simulator adds
    /// stage-in transfer and non-delay replay semantics).
    #[test]
    fn heft_replay_tracks_prediction(wf in arb_workflow(), fleet in arb_fleet()) {
        let out = heft_plan(&wf, &fleet, 125.0e6).unwrap();
        let mut replay = FixedPlanScheduler::new(out.plan.clone());
        let mut cfg = SimConfig::deterministic();
        cfg.stage_in_inputs = false; // HEFT's model has no stage-in either
        let res = simulate(&wf, &fleet, &mut replay, &cfg, SeedDerivation::new(1), None)
            .unwrap();
        prop_assert!(res.success);
        let ratio = res.makespan.as_secs() / out.predicted_makespan.as_secs();
        prop_assert!((0.5..2.5).contains(&ratio),
            "simulated {} vs predicted {} (ratio {ratio})",
            res.makespan, out.predicted_makespan);
    }

    /// Min-Min and Max-Min both complete and produce valid plans; on a
    /// uniform fleet their makespans bracket each other within 2×.
    #[test]
    fn list_heuristics_complete(wf in arb_workflow(), fleet in arb_fleet()) {
        let cfg = SimConfig::deterministic();
        let a = simulate(&wf, &fleet, &mut MinMin, &cfg, SeedDerivation::new(2), None)
            .unwrap();
        let b = simulate(&wf, &fleet, &mut MaxMin, &cfg, SeedDerivation::new(2), None)
            .unwrap();
        prop_assert!(a.success && b.success);
        prop_assert!(a.plan.is_complete() && b.plan.is_complete());
        let ratio = a.makespan.as_secs() / b.makespan.as_secs();
        prop_assert!((0.3..3.0).contains(&ratio), "min-min vs max-min ratio {ratio}");
        // Keep Idx linked in for id arithmetic in failure output.
        let _ = a.records.first().map(|r| r.activation.index());
    }
}
