//! Property tests of the CPOP, PEFT and data-aware schedulers over
//! random workflows and fleets, mirroring the HEFT invariants in
//! `heft_props.rs`: plans are topologically valid and complete, no VM
//! runs more concurrent attempts than it has processing elements, and
//! makespans respect the classical lower bounds (critical path over
//! the fastest element; total work over total capacity).

use cloud::{Fleet, VmType};
use proptest::prelude::*;
use sched::{cpop_plan, peft_plan, DataAware};
use wfcommon::ids::Idx;
use wfcommon::SeedDerivation;
use wfsim::{simulate, FixedPlanScheduler, SimConfig, SimResult};
use workflow::generators::layered::{generate, LayeredParams};
use workflow::Workflow;

fn arb_workflow() -> impl Strategy<Value = Workflow> {
    (2usize..6, 2usize..7, 1usize..4, 0u64..500).prop_map(|(l, w, f, seed)| {
        generate(&LayeredParams {
            layers: l,
            width: w,
            max_fanin: f,
            median_secs: 8.0,
            sigma: 0.7,
            seed,
        })
        .unwrap()
    })
}

fn arb_fleet() -> impl Strategy<Value = Fleet> {
    (1usize..4, 0usize..3).prop_map(|(m, b)| {
        let mut f = Fleet::new();
        f.add(&VmType::t2_micro(), m);
        f.add(&VmType::t2_2xlarge(), b);
        f
    })
}

/// Critical path over the fastest element, seconds.
fn cp_bound(wf: &Workflow, fleet: &Fleet) -> f64 {
    let fastest = fleet.iter().map(|(_, v)| v.vm_type.mips_per_pe).fold(0.0f64, f64::max);
    wf.reference_critical_path_secs() * 1000.0 / fastest
}

/// Total work over total fleet capacity, seconds.
fn work_bound(wf: &Workflow, fleet: &Fleet) -> f64 {
    let cap: f64 = fleet.iter().map(|(_, v)| v.vm_type.total_mips()).sum();
    wf.total_work_mi() / cap
}

/// No VM may run more concurrent attempts than it has PEs, and no
/// activation may start before every parent has finished (topological
/// execution). Checked directly on the execution records.
fn assert_execution_invariants(wf: &Workflow, fleet: &Fleet, res: &SimResult) {
    // Dependency order: child start ≥ every parent finish.
    let mut finished = vec![f64::NEG_INFINITY; wf.len()];
    for r in &res.records {
        finished[r.activation.index()] = r.finished_at.as_secs();
    }
    for r in &res.records {
        for parent in wf.parents(r.activation) {
            assert!(
                r.started_at.as_secs() >= finished[parent.index()] - 1e-9,
                "{} started at {} before parent {} finished at {}",
                r.activation,
                r.started_at,
                parent,
                finished[parent.index()]
            );
        }
    }
    // PE capacity: sweep start/finish events per VM.
    for (vm_id, vm) in fleet.iter() {
        let mut events: Vec<(f64, i64)> = Vec::new();
        for r in res.records.iter().filter(|r| r.vm == vm_id) {
            events.push((r.started_at.as_secs(), 1));
            events.push((r.finished_at.as_secs(), -1));
        }
        // Finishes sort before starts at the same instant: a PE freed
        // at t may be reused at t.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut running = 0i64;
        for (t, delta) in events {
            running += delta;
            assert!(
                running <= i64::from(vm.vm_type.pes),
                "{vm_id} runs {running} concurrent attempts at t={t} with only {} PEs",
                vm.vm_type.pes
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CPOP plans are complete and valid, pin the whole critical-path
    /// set to one VM, and predict no faster than the lower bounds.
    #[test]
    fn cpop_plan_is_sound(wf in arb_workflow(), fleet in arb_fleet()) {
        let out = cpop_plan(&wf, &fleet, 125.0e6).unwrap();
        out.plan.validate(&wf, &fleet).unwrap();
        prop_assert!(!out.critical_path.is_empty());
        for ac in &out.critical_path {
            prop_assert_eq!(out.plan.vm_for(*ac), Some(out.cp_vm),
                "critical-path task {} not on the CP processor", ac);
        }
        prop_assert!(out.predicted_makespan.as_secs() >= cp_bound(&wf, &fleet) - 1e-6);
        prop_assert!(out.predicted_makespan.as_secs() >= work_bound(&wf, &fleet) - 1e-6);
    }

    /// PEFT plans are complete and valid, carry one OCT rank per
    /// activation, and replay without violating execution invariants.
    #[test]
    fn peft_plan_is_sound(wf in arb_workflow(), fleet in arb_fleet()) {
        let out = peft_plan(&wf, &fleet, 125.0e6).unwrap();
        out.plan.validate(&wf, &fleet).unwrap();
        prop_assert_eq!(out.ranks.len(), wf.len());
        prop_assert!(out.ranks.iter().all(|r| r.is_finite() && *r >= 0.0));
        prop_assert!(out.predicted_makespan.as_secs() >= cp_bound(&wf, &fleet) - 1e-6);
        prop_assert!(out.predicted_makespan.as_secs() >= work_bound(&wf, &fleet) - 1e-6);

        let mut replay = FixedPlanScheduler::new(out.plan.clone());
        let res = simulate(&wf, &fleet, &mut replay, &SimConfig::deterministic(),
            SeedDerivation::new(3), None).unwrap();
        prop_assert!(res.success);
        assert_execution_invariants(&wf, &fleet, &res);
        prop_assert!(res.makespan.as_secs() >= cp_bound(&wf, &fleet) - 1e-6);
    }

    /// The data-aware heuristic completes every workflow with a valid
    /// full plan, honours the execution invariants, and cannot beat
    /// the physical lower bounds.
    #[test]
    fn data_aware_is_sound(wf in arb_workflow(), fleet in arb_fleet()) {
        let mut sched = DataAware::default();
        let res = simulate(&wf, &fleet, &mut sched, &SimConfig::deterministic(),
            SeedDerivation::new(4), None).unwrap();
        prop_assert!(res.success);
        prop_assert!(res.plan.is_complete());
        res.plan.validate(&wf, &fleet).unwrap();
        assert_execution_invariants(&wf, &fleet, &res);
        prop_assert!(res.makespan.as_secs() >= cp_bound(&wf, &fleet) - 1e-6);
        prop_assert!(res.makespan.as_secs() >= work_bound(&wf, &fleet) - 1e-6);
    }
}
