//! Execution/queue-time history — the observables behind the ReASSIgN
//! reward function (paper §III-B).
//!
//! For each VM `j` the paper defines the average performance index
//!
//! ```text
//! P̄i_j = t̄e · μ + (1-μ) · t̄f        (Eq. 4, over activations run on vm_j)
//! P̄w   = t̄e · μ + (1-μ) · t̄f        (Eq. 5, over all activations)
//! ```
//!
//! and rewards a schedule on `vm_j` unless `P̄i_j > P̄w + stdv` where
//! `stdv` is the standard deviation of the per-VM indices (Eq. 6).
//! Lower indices are better (less time spent per activation).

use serde::{Deserialize, Serialize};
use wfcommon::ids::Idx;
use wfcommon::{RunningStats, VmId};

/// Per-VM and global execution/queue-time statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecHistory {
    per_vm_exec: Vec<RunningStats>,
    per_vm_queue: Vec<RunningStats>,
    global_exec: RunningStats,
    global_queue: RunningStats,
}

impl ExecHistory {
    /// Empty history for `vm_count` VMs.
    pub fn new(vm_count: usize) -> Self {
        Self {
            per_vm_exec: vec![RunningStats::new(); vm_count],
            per_vm_queue: vec![RunningStats::new(); vm_count],
            global_exec: RunningStats::new(),
            global_queue: RunningStats::new(),
        }
    }

    /// Number of VMs tracked.
    pub fn vm_count(&self) -> usize {
        self.per_vm_exec.len()
    }

    /// Record one completed attempt on `vm` with execution time `te`
    /// and queue time `tf` (seconds).
    pub fn record(&mut self, vm: VmId, te: f64, tf: f64) {
        let i = vm.index();
        assert!(i < self.per_vm_exec.len(), "unknown VM {vm}");
        self.per_vm_exec[i].push(te);
        self.per_vm_queue[i].push(tf);
        self.global_exec.push(te);
        self.global_queue.push(tf);
    }

    /// Number of attempts recorded on `vm`.
    pub fn vm_samples(&self, vm: VmId) -> u64 {
        self.per_vm_exec[vm.index()].count()
    }

    /// Total attempts recorded.
    pub fn total_samples(&self) -> u64 {
        self.global_exec.count()
    }

    /// Mean execution time on `vm`.
    pub fn vm_mean_exec(&self, vm: VmId) -> f64 {
        self.per_vm_exec[vm.index()].mean()
    }

    /// Mean queue time on `vm`.
    pub fn vm_mean_queue(&self, vm: VmId) -> f64 {
        self.per_vm_queue[vm.index()].mean()
    }

    /// Eq. 4: the average performance index of `vm` under weight `mu`.
    /// Returns `None` when the VM has no history yet.
    pub fn vm_pi(&self, vm: VmId, mu: f64) -> Option<f64> {
        let i = vm.index();
        if self.per_vm_exec[i].count() == 0 {
            return None;
        }
        Some(self.per_vm_exec[i].mean() * mu + (1.0 - mu) * self.per_vm_queue[i].mean())
    }

    /// Eq. 5: the global workflow performance index under weight `mu`.
    pub fn global_pw(&self, mu: f64) -> f64 {
        self.global_exec.mean() * mu + (1.0 - mu) * self.global_queue.mean()
    }

    /// Standard deviation of the per-VM performance indices (over VMs
    /// with at least one sample). Zero when fewer than two VMs have
    /// history.
    pub fn stdv_pi(&self, mu: f64) -> f64 {
        let pis: Vec<f64> =
            (0..self.vm_count()).filter_map(|i| self.vm_pi(VmId::from_index(i), mu)).collect();
        wfcommon::stats::stddev(&pis)
    }

    /// Merge another history into this one (e.g. carry statistics from
    /// a previous episode, paper §III-C "all information associated
    /// with the previous episodes is loaded").
    pub fn merge(&mut self, other: &ExecHistory) {
        assert_eq!(self.vm_count(), other.vm_count(), "fleet size mismatch");
        for i in 0..self.per_vm_exec.len() {
            self.per_vm_exec[i].merge(&other.per_vm_exec[i]);
            self.per_vm_queue[i].merge(&other.per_vm_queue[i]);
        }
        self.global_exec.merge(&other.global_exec);
        self.global_queue.merge(&other.global_queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_has_no_pi() {
        let h = ExecHistory::new(3);
        assert_eq!(h.vm_pi(VmId::new(0), 0.5), None);
        assert_eq!(h.global_pw(0.5), 0.0);
        assert_eq!(h.stdv_pi(0.5), 0.0);
    }

    #[test]
    fn pi_blends_exec_and_queue() {
        let mut h = ExecHistory::new(2);
        h.record(VmId::new(0), 10.0, 2.0);
        h.record(VmId::new(0), 20.0, 4.0);
        // mean te = 15, mean tf = 3.
        assert!((h.vm_pi(VmId::new(0), 1.0).unwrap() - 15.0).abs() < 1e-12);
        assert!((h.vm_pi(VmId::new(0), 0.0).unwrap() - 3.0).abs() < 1e-12);
        assert!((h.vm_pi(VmId::new(0), 0.5).unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn global_pw_covers_all_vms() {
        let mut h = ExecHistory::new(2);
        h.record(VmId::new(0), 10.0, 0.0);
        h.record(VmId::new(1), 30.0, 0.0);
        assert!((h.global_pw(1.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn stdv_over_vms_with_history_only() {
        let mut h = ExecHistory::new(3);
        h.record(VmId::new(0), 10.0, 0.0);
        h.record(VmId::new(1), 20.0, 0.0);
        // VM 2 has no samples; stdv over {10, 20} = 5.
        assert!((h.stdv_pi(1.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = ExecHistory::new(2);
        a.record(VmId::new(0), 10.0, 1.0);
        let mut b = ExecHistory::new(2);
        b.record(VmId::new(0), 20.0, 3.0);
        b.record(VmId::new(1), 5.0, 0.5);
        a.merge(&b);
        assert_eq!(a.vm_samples(VmId::new(0)), 2);
        assert_eq!(a.vm_samples(VmId::new(1)), 1);
        assert_eq!(a.total_samples(), 3);
        assert!((a.vm_mean_exec(VmId::new(0)) - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fleet size mismatch")]
    fn merge_rejects_different_fleets() {
        let mut a = ExecHistory::new(2);
        a.merge(&ExecHistory::new(3));
    }

    #[test]
    fn serde_round_trip() {
        let mut h = ExecHistory::new(2);
        h.record(VmId::new(1), 7.0, 0.7);
        let json = serde_json_string(&h);
        let back: ExecHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    fn serde_json_string<T: serde::Serialize>(v: &T) -> String {
        serde_json::to_string(v).unwrap()
    }
}
