//! Reusable per-simulation scratch buffers.
//!
//! A learning run executes the same workflow thousands of times; most
//! of the engine's working memory (event queue, per-activation state,
//! per-VM counters, the ready/idle sets rebuilt every scheduling pass)
//! has the same shape every episode. A [`SimArena`] owns those buffers
//! so repeated [`crate::engine::simulate_cached`] calls reset them in
//! place instead of reallocating. Arenas are cheap to create and are
//! *not* shared between threads — in a parallel learner each worker
//! keeps its own.

use crate::engine::{AcState, Ev};
use simkit::Simulation;
use wfcommon::{ActivationId, VmId};

/// Scratch space for one simulation at a time (see module docs).
///
/// Every field is fully reinitialized by the engine before use, so a
/// reused arena produces bitwise-identical results to a fresh one.
#[derive(Default)]
pub struct SimArena {
    /// Simulation clock + event queue.
    pub(crate) sim: Simulation<Ev>,
    /// Per-activation lifecycle state.
    pub(crate) states: Vec<AcState>,
    /// Per-activation retry counters.
    pub(crate) retries: Vec<u32>,
    /// Which VM ran each finished activation (transfer locality).
    pub(crate) placed_on: Vec<Option<VmId>>,
    /// Which VM each *running* attempt occupies (fault orphaning and
    /// stale-completion detection).
    pub(crate) running_on: Vec<Option<VmId>>,
    /// Per-VM crash/timeout fault counters (blacklist threshold).
    pub(crate) vm_faults: Vec<u32>,
    /// Per-VM permanent-blacklist flags.
    pub(crate) blacklisted: Vec<bool>,
    /// Per-VM free processing elements.
    pub(crate) free_pes: Vec<u32>,
    /// Per-VM cumulative busy seconds.
    pub(crate) vm_busy_secs: Vec<f64>,
    /// Ready-set buffer rebuilt each scheduling pass.
    pub(crate) ready: Vec<ActivationId>,
    /// Idle-slot buffer rebuilt each scheduling pass.
    pub(crate) idle: Vec<(VmId, u32)>,
}

impl SimArena {
    /// An empty arena; buffers grow on first use and stick around.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every buffer, keeping allocations. The engine repopulates
    /// them to match the workflow/fleet it is asked to run.
    pub(crate) fn reset(&mut self) {
        self.sim.reset();
        self.states.clear();
        self.retries.clear();
        self.placed_on.clear();
        self.running_on.clear();
        self.vm_faults.clear();
        self.blacklisted.clear();
        self.free_pes.clear();
        self.vm_busy_secs.clear();
        self.ready.clear();
        self.idle.clear();
    }
}
