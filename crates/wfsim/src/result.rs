//! Simulation outputs.

use crate::history::ExecHistory;
use crate::plan::Plan;
use serde::{Deserialize, Serialize};
use wfcommon::{ActivationId, SimTime, VmId};

/// Timing record of one activation's *successful* attempt.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActivationRecord {
    /// The activation.
    pub activation: ActivationId,
    /// VM it ran on.
    pub vm: VmId,
    /// When all its dependencies were satisfied.
    pub ready_at: SimTime,
    /// When it started executing (= when it was assigned; assignments
    /// target idle elements, so there is no separate VM queue).
    pub started_at: SimTime,
    /// When it finished.
    pub finished_at: SimTime,
    /// Failed attempts before this successful one.
    pub retries: u32,
}

impl ActivationRecord {
    /// Queue time `tf` (paper §III-B).
    pub fn queue_secs(&self) -> f64 {
        (self.started_at - self.ready_at).as_secs().max(0.0)
    }

    /// Execution time `te` (paper §III-B).
    pub fn exec_secs(&self) -> f64 {
        (self.finished_at - self.started_at).as_secs().max(0.0)
    }

    /// Total time `tt = te + tf`.
    pub fn total_secs(&self) -> f64 {
        self.queue_secs() + self.exec_secs()
    }
}

/// Aggregate fault/recovery counters for one simulated execution.
/// All zero when the fault subsystem is inert (the default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// VM crash events that fired.
    pub crashes: u64,
    /// Attempts lost mid-flight to crashes.
    pub orphaned: u64,
    /// Attempts killed by the per-attempt timeout.
    pub timeouts: u64,
    /// Attempts slowed by a straggler draw.
    pub stragglers: u64,
    /// Failed attempts that re-entered the ready queue (`retry`).
    pub retries: u64,
    /// Orphaned/timed-out attempts re-queued for another VM
    /// (`reschedule`).
    pub reschedules: u64,
    /// Crashed VMs that completed repair (`recover`).
    pub recoveries: u64,
    /// VMs permanently blacklisted after repeated faults.
    pub blacklisted: u64,
}

/// Aggregate speculative-replication counters for one simulated
/// execution. All zero when replication is off (the default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplStats {
    /// Replica attempts launched alongside primaries (`replicate`).
    pub launched: u64,
    /// Live attempts cancelled after a sibling won (`cancel`).
    pub cancelled: u64,
    /// Replication groups whose winner was a replica, not the primary.
    pub replica_wins: u64,
    /// PE-seconds billed to attempts that were later cancelled —
    /// the price paid for hedging.
    pub waste_secs: f64,
}

/// One replication decision and its measured outcome — the training
/// signal for the learned replication head. Recorded only while a
/// replication policy is active.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplDecision {
    /// The activation the decision was made for.
    pub activation: u32,
    /// Feature bucket ([`cloud::ReplFeatures::bucket`]) at dispatch.
    pub bucket: u8,
    /// Extra replicas the policy requested.
    pub requested: u8,
    /// Extra replicas actually launched (capacity may bind).
    pub launched: u8,
    /// The primary attempt's scheduled run time, seconds.
    pub primary_secs: f64,
    /// Dispatch → group resolution (win or exhaustion), seconds.
    pub group_secs: f64,
    /// PE-seconds billed to cancelled attempts of this group.
    pub waste_secs: f64,
    /// True when a replica (not the primary) won the race.
    pub replica_won: bool,
    /// True when every attempt of the group failed (retry followed).
    pub group_failed: bool,
}

/// Result of one simulated workflow execution (one RL episode).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Completion time of the last activation (simulated seconds).
    pub makespan: SimTime,
    /// True when every activation finished successfully (paper terminal
    /// state *successfully finished*), false for *finished with failure*.
    pub success: bool,
    /// One record per successfully finished activation, in completion
    /// order.
    pub records: Vec<ActivationRecord>,
    /// The activation → VM mapping actually used (Table V shape).
    pub plan: Plan,
    /// Accumulated execution/queue statistics.
    pub history: ExecHistory,
    /// Busy seconds per VM (indexed by VM id).
    pub vm_busy_secs: Vec<f64>,
    /// Events processed by the kernel.
    pub events_processed: u64,
    /// Fault/recovery counters (all zero when faults are disabled).
    pub fault_stats: FaultStats,
    /// Speculative-replication counters (all zero when replication is
    /// off).
    #[serde(default)]
    pub repl_stats: ReplStats,
    /// Per-group replication decisions with outcomes, in resolution
    /// order (empty when replication is off).
    #[serde(default)]
    pub repl_decisions: Vec<ReplDecision>,
}

impl SimResult {
    /// Mean VM utilization over the makespan: busy-time ÷ (elements ×
    /// makespan), in `[0, 1]`.
    pub fn utilization(&self, fleet: &cloud::Fleet) -> f64 {
        let span = self.makespan.as_secs();
        if span <= 0.0 {
            return 0.0;
        }
        let capacity: f64 = fleet
            .iter()
            .map(|(id, vm)| {
                let _ = id;
                vm.vm_type.pes as f64 * span
            })
            .sum();
        let busy: f64 = self.vm_busy_secs.iter().sum();
        (busy / capacity).clamp(0.0, 1.0)
    }

    /// Record for a specific activation, if it completed.
    pub fn record_for(&self, ac: ActivationId) -> Option<&ActivationRecord> {
        self.records.iter().find(|r| r.activation == ac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_times_are_consistent() {
        let r = ActivationRecord {
            activation: ActivationId::new(0),
            vm: VmId::new(1),
            ready_at: SimTime(5.0),
            started_at: SimTime(8.0),
            finished_at: SimTime(20.0),
            retries: 0,
        };
        assert_eq!(r.queue_secs(), 3.0);
        assert_eq!(r.exec_secs(), 12.0);
        assert_eq!(r.total_secs(), 15.0);
    }

    #[test]
    fn utilization_bounds() {
        let fleet = cloud::Fleet::paper_16_vcpus(); // 16 elements
        let res = SimResult {
            makespan: SimTime(100.0),
            success: true,
            records: vec![],
            plan: Plan::empty(0),
            history: ExecHistory::new(fleet.len()),
            vm_busy_secs: vec![100.0; fleet.len()],
            events_processed: 0,
            fault_stats: FaultStats::default(),
            repl_stats: ReplStats::default(),
            repl_decisions: vec![],
        };
        // 9 VMs × 100 s busy vs 16 elements × 100 s capacity.
        let u = res.utilization(&fleet);
        assert!((u - 9.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan_utilization_is_zero() {
        let fleet = cloud::Fleet::paper_16_vcpus();
        let res = SimResult {
            makespan: SimTime::ZERO,
            success: true,
            records: vec![],
            plan: Plan::empty(0),
            history: ExecHistory::new(fleet.len()),
            vm_busy_secs: vec![0.0; fleet.len()],
            events_processed: 0,
            fault_stats: FaultStats::default(),
            repl_stats: ReplStats::default(),
            repl_decisions: vec![],
        };
        assert_eq!(res.utilization(&fleet), 0.0);
    }
}
