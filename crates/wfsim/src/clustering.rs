//! Task clustering (WorkflowSim's *Clustering Engine*).
//!
//! Fine-grained workflows pay per-activation scheduling and queueing
//! overhead; WorkflowSim groups activations into *clustered jobs* that
//! execute sequentially on one VM. Two classical strategies are
//! provided:
//!
//! * **horizontal** clustering merges same-level, same-activity
//!   activations into at most `k` balanced clusters per (level,
//!   activity) pair;
//! * **vertical** clustering merges single-in/single-out chains
//!   (pipelines) into one job, eliminating intermediate transfers.
//!
//! [`apply`] materializes a [`ClusteringPlan`] as a new, smaller
//! [`Workflow`] whose dependency structure is the quotient of the
//! original — with a validity check that clusters are *convex* (no
//! dependency path exits and re-enters a cluster, which would deadlock
//! the sequential execution).

use std::collections::HashMap;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Error, Result};
use workflow::{Workflow, WorkflowBuilder};

/// A partition of a workflow's activations into clusters. Singleton
/// clusters are allowed (and are the common case for join nodes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusteringPlan {
    groups: Vec<Vec<ActivationId>>,
}

impl ClusteringPlan {
    /// Build from an explicit partition, verifying it covers every
    /// activation exactly once.
    pub fn new(groups: Vec<Vec<ActivationId>>, n_activations: usize) -> Result<Self> {
        let mut seen = vec![false; n_activations];
        for g in &groups {
            if g.is_empty() {
                return Err(Error::Config("empty cluster".into()));
            }
            for &ac in g {
                let i = ac.index();
                if i >= n_activations {
                    return Err(Error::Config(format!("unknown activation {ac}")));
                }
                if seen[i] {
                    return Err(Error::Config(format!("{ac} appears in two clusters")));
                }
                seen[i] = true;
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(Error::Config("partition does not cover all activations".into()));
        }
        Ok(Self { groups })
    }

    /// The clusters.
    pub fn groups(&self) -> &[Vec<ActivationId>] {
        &self.groups
    }

    /// Number of clustered jobs this plan produces.
    pub fn job_count(&self) -> usize {
        self.groups.len()
    }
}

/// Horizontal clustering: split each (level, activity) cohort into at
/// most `clusters_per_level` balanced groups (longest-processing-time
/// first, greedy bin assignment).
pub fn horizontal(workflow: &Workflow, clusters_per_level: usize) -> Result<ClusteringPlan> {
    if clusters_per_level == 0 {
        return Err(Error::Config("clusters_per_level must be ≥ 1".into()));
    }
    let levels = dag::levels(&workflow.dag).map_err(|e| Error::InvalidWorkflow(e.to_string()))?;
    // Cohorts keyed by (level, activity).
    let mut cohorts: HashMap<(usize, u32), Vec<ActivationId>> = HashMap::new();
    for (id, ac) in workflow.activations.iter() {
        cohorts.entry((levels[id.index()], ac.activity.raw())).or_default().push(id);
    }
    let mut keys: Vec<_> = cohorts.keys().copied().collect();
    keys.sort_unstable(); // deterministic output order
    let mut groups = Vec::new();
    for key in keys {
        let mut members = cohorts.remove(&key).unwrap();
        // LPT: longest first, then greedily to the lightest bin.
        members.sort_by(|a, b| {
            workflow.activations[*b]
                .length_mi
                .total_cmp(&workflow.activations[*a].length_mi)
                .then(a.cmp(b))
        });
        let bins = clusters_per_level.min(members.len());
        let mut bin_loads = vec![0.0f64; bins];
        let mut bin_members: Vec<Vec<ActivationId>> = vec![Vec::new(); bins];
        for ac in members {
            let (lightest, _) = bin_loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .unwrap();
            bin_loads[lightest] += workflow.activations[ac].length_mi;
            bin_members[lightest].push(ac);
        }
        groups.extend(bin_members.into_iter().filter(|g| !g.is_empty()));
    }
    ClusteringPlan::new(groups, workflow.len())
}

/// Vertical clustering: merge maximal chains where each link is a
/// sole-parent/sole-child edge.
pub fn vertical(workflow: &Workflow) -> Result<ClusteringPlan> {
    let n = workflow.len();
    let dag = &workflow.dag;
    let mut assigned = vec![false; n];
    let mut groups: Vec<Vec<ActivationId>> = Vec::new();
    for start in 0..n {
        if assigned[start] {
            continue;
        }
        // Is `start` the head of a chain? Its sole parent (if any) must
        // not chain into it.
        let chains_from_parent =
            dag.in_degree(start) == 1 && dag.out_degree(dag.preds(start)[0]) == 1;
        if chains_from_parent {
            continue; // a chain predecessor will pick this node up
        }
        let mut chain = vec![ActivationId::from_index(start)];
        assigned[start] = true;
        let mut cur = start;
        while dag.out_degree(cur) == 1 {
            let next = dag.succs(cur)[0];
            if dag.in_degree(next) != 1 || assigned[next] {
                break;
            }
            chain.push(ActivationId::from_index(next));
            assigned[next] = true;
            cur = next;
        }
        groups.push(chain);
    }
    ClusteringPlan::new(groups, n)
}

/// Materialize a clustering: returns the clustered workflow plus, for
/// each original activation, the clustered-job id it belongs to.
///
/// Fails if any cluster is non-convex (the quotient graph would be
/// cyclic — e.g. grouping a producer with a consumer of one of its
/// consumers).
pub fn apply(workflow: &Workflow, plan: &ClusteringPlan) -> Result<(Workflow, Vec<ActivationId>)> {
    let n = workflow.len();
    let mut member_of = vec![usize::MAX; n];
    for (g, group) in plan.groups().iter().enumerate() {
        for &ac in group {
            member_of[ac.index()] = g;
        }
    }

    let mut b = WorkflowBuilder::new(format!("{}_clustered", workflow.name));
    // Activities: keep originals plus a synthetic activity for mixed
    // clusters.
    for (gi, group) in plan.groups().iter().enumerate() {
        let first_activity = workflow.activations[group[0]].activity;
        let uniform = group.iter().all(|&ac| workflow.activations[ac].activity == first_activity);
        let activity = if uniform {
            let act = &workflow.activities[first_activity];
            b.activity(&act.name, &act.namespace)
        } else {
            b.activity("clustered_job", "wfsim")
        };

        let total_mi: f64 = group.iter().map(|&ac| workflow.activations[ac].length_mi).sum();
        // External inputs: consumed by the group, not produced inside it.
        let produced: std::collections::HashSet<_> =
            group.iter().flat_map(|&ac| workflow.activations[ac].outputs.iter().copied()).collect();
        let mut inputs = Vec::new();
        for &ac in group {
            for &f in &workflow.activations[ac].inputs {
                if !produced.contains(&f) {
                    let file = &workflow.files[f];
                    let id = b.file(&file.name, file.size_bytes);
                    if !inputs.contains(&id) {
                        inputs.push(id);
                    }
                }
            }
        }
        let mut outputs = Vec::new();
        for &f in produced.iter() {
            let file = &workflow.files[f];
            let id = b.file(&file.name, file.size_bytes);
            outputs.push(id);
        }
        outputs.sort_unstable();
        b.activation(activity, &format!("job{gi:04}"), total_mi, inputs, outputs);
    }
    let clustered =
        b.build().map_err(|e| Error::InvalidWorkflow(format!("non-convex clustering: {e}")))?;

    let mapping = member_of.iter().map(|&g| ActivationId::from_index(g)).collect();
    Ok((clustered, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workflow::montage50::montage50;

    #[test]
    fn horizontal_reduces_job_count() {
        let wf = montage50();
        let plan = horizontal(&wf, 3).unwrap();
        assert!(plan.job_count() < wf.len(), "{} jobs", plan.job_count());
        let (clustered, mapping) = apply(&wf, &plan).unwrap();
        assert_eq!(clustered.len(), plan.job_count());
        assert_eq!(mapping.len(), wf.len());
        clustered.validate().unwrap();
        // Work is conserved.
        assert!((clustered.total_work_mi() - wf.total_work_mi()).abs() < 1e-6);
    }

    #[test]
    fn horizontal_single_cluster_per_cohort() {
        let wf = montage50();
        let plan = horizontal(&wf, 1).unwrap();
        // One job per (level, activity) — Montage has 9 stages but
        // mDiffFit spans one level, mProjectPP one, etc.
        let (clustered, _) = apply(&wf, &plan).unwrap();
        assert_eq!(clustered.len(), plan.job_count());
        assert!(clustered.len() <= 10);
    }

    #[test]
    fn vertical_merges_the_tail_pipeline() {
        // Montage ends with mAdd → mShrink → mJPEG, a pure chain; the
        // chain head (mAdd) has fan-in, so the merged chain is
        // mAdd..mJPEG (3 nodes) or mShrink..mJPEG depending on degrees.
        let wf = montage50();
        let plan = vertical(&wf).unwrap();
        assert!(plan.job_count() < wf.len());
        let (clustered, _) = apply(&wf, &plan).unwrap();
        clustered.validate().unwrap();
        let biggest = plan.groups().iter().map(Vec::len).max().unwrap();
        assert!(biggest >= 2, "some chain must have merged");
    }

    #[test]
    fn clustered_workflow_simulates_end_to_end() {
        let wf = montage50();
        let plan = horizontal(&wf, 4).unwrap();
        let (clustered, _) = apply(&wf, &plan).unwrap();
        let fleet = cloud::Fleet::paper_16_vcpus();
        struct Fifo;
        impl crate::scheduler::Scheduler for Fifo {
            fn name(&self) -> &str {
                "fifo"
            }
            fn decide(
                &mut self,
                ctx: &crate::scheduler::SchedulerContext<'_>,
            ) -> crate::scheduler::Decision {
                match (ctx.ready.first(), ctx.idle_slots.first()) {
                    (Some(&ac), Some(&(vm, _))) => {
                        crate::scheduler::Decision::Assign { activation: ac, vm }
                    }
                    _ => crate::scheduler::Decision::DoNothing,
                }
            }
        }
        let res = crate::engine::simulate(
            &clustered,
            &fleet,
            &mut Fifo,
            &crate::config::SimConfig::deterministic(),
            wfcommon::SeedDerivation::new(1),
            None,
        )
        .unwrap();
        assert!(res.success);
        assert_eq!(res.records.len(), clustered.len());
    }

    #[test]
    fn partition_validation() {
        let wf = montage50();
        // Missing coverage.
        assert!(ClusteringPlan::new(vec![vec![ActivationId::new(0)]], wf.len()).is_err());
        // Double membership.
        let groups: Vec<Vec<ActivationId>> = (0..wf.len())
            .map(|i| vec![ActivationId::from_index(i)])
            .chain([vec![ActivationId::new(0)]])
            .collect();
        assert!(ClusteringPlan::new(groups, wf.len()).is_err());
        // Exact singleton partition is fine.
        let singleton: Vec<Vec<ActivationId>> =
            (0..wf.len()).map(|i| vec![ActivationId::from_index(i)]).collect();
        let plan = ClusteringPlan::new(singleton, wf.len()).unwrap();
        assert_eq!(plan.job_count(), wf.len());
        let (clustered, _) = apply(&wf, &plan).unwrap();
        assert_eq!(clustered.len(), wf.len());
    }

    #[test]
    fn zero_clusters_rejected() {
        let wf = montage50();
        assert!(horizontal(&wf, 0).is_err());
    }

    #[test]
    fn clustering_preserves_reachability() {
        // The quotient respects the original precedence: if a ≺ b in
        // the original and they land in different clusters, then
        // cluster(a) ≺ cluster(b) in the clustered DAG.
        let wf = montage50();
        let plan = horizontal(&wf, 2).unwrap();
        let (clustered, mapping) = apply(&wf, &plan).unwrap();
        for (u, v) in wf.dag.edges() {
            let cu = mapping[u];
            let cv = mapping[v];
            if cu != cv {
                let reach = clustered.dag.descendants(cu.index());
                assert!(
                    reach.contains(&cv.index()),
                    "edge {u}->{v}: cluster {cu} must precede {cv}"
                );
            }
        }
    }
}
