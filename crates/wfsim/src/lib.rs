//! WorkflowSim substitute: a discrete-event workflow execution
//! simulator over the `cloud` resource model and the `simkit` kernel.
//!
//! The paper extends WorkflowSim with the ReASSIgN scheduler (§III-D);
//! this crate rebuilds the parts of WorkflowSim that extension touches:
//!
//! * a **workflow engine** that tracks each activation through the
//!   paper's state machine (*locked → ready → running → successfully
//!   finished / finished with failure*, §III-A) and releases dependents
//!   as producers finish;
//! * a **scheduler interface** ([`Scheduler`]) invoked exactly when the
//!   workflow is in the *available* state (≥ 1 ready activation and
//!   ≥ 1 idle processing element), choosing either a `schedule(ac, vm)`
//!   action or *do nothing*;
//! * a **queueing and timing model** that reports, per activation, the
//!   queue time `tf` (ready → start) and execution time `te`
//!   (start → finish, including stage-in transfers, performance
//!   fluctuation and migration stalls) — the two observables the
//!   ReASSIgN reward function consumes (§III-B);
//! * **plan capture and replay** ([`plan::Plan`]): every simulation
//!   yields the activation → VM mapping (Table V), which can be
//!   re-executed by the SciCumulus-substitute engine in `scirun`.

pub mod arena;
pub mod clustering;
pub mod config;
pub mod engine;
pub mod history;
pub mod metrics;
pub mod plan;
pub mod provisioning;
pub mod result;
pub mod scheduler;
pub mod timeshared;
pub mod trace;

pub use arena::SimArena;
pub use clustering::ClusteringPlan;
pub use config::{FluctuationKind, MigrationKind, SimConfig};
pub use engine::{simulate, simulate_cached, simulate_cached_traced, simulate_traced};
pub use history::ExecHistory;
pub use metrics::Metrics;
pub use plan::{FixedPlanScheduler, Plan};
pub use result::{ActivationRecord, FaultStats, ReplDecision, ReplStats, SimResult};
pub use scheduler::{CompletionInfo, Decision, Scheduler, SchedulerContext};
