//! Execution-trace export: text Gantt charts and CSV timelines.
//!
//! Useful for eyeballing schedules (the Gantt makes Table V's
//! "ReASSIgN concentrates work on the 2xlarge" directly visible) and
//! for feeding external analysis tooling.

use crate::result::SimResult;
use cloud::Fleet;
use wfcommon::ids::Idx;

/// Render a fixed-width text Gantt chart: one row per VM, time flowing
/// left to right over `width` character cells.
pub fn gantt(result: &SimResult, fleet: &Fleet, width: usize) -> String {
    let span = result.makespan.as_secs();
    if span <= 0.0 || width == 0 {
        return String::from("(empty schedule)\n");
    }
    let scale = width as f64 / span;
    let mut out = String::new();
    out.push_str(&format!(
        "time: 0 .. {:.1}s  ({} cells, {:.2}s/cell)\n",
        span,
        width,
        span / width as f64
    ));
    for (vm_id, vm) in fleet.iter() {
        // Multiple elements per VM can overlap; count concurrency per cell.
        let mut load = vec![0u32; width];
        for rec in result.records.iter().filter(|r| r.vm == vm_id) {
            let a = ((rec.started_at.as_secs() * scale) as usize).min(width - 1);
            let b = ((rec.finished_at.as_secs() * scale).ceil() as usize).clamp(a + 1, width);
            for cell in &mut load[a..b] {
                *cell += 1;
            }
        }
        let row: String = load
            .iter()
            .map(|&c| match c {
                0 => '·',
                1 => '▪',
                2..=3 => '▓',
                _ => '█',
            })
            .collect();
        out.push_str(&format!("{:>14} |{}|\n", vm.name, row));
    }
    out
}

/// Export per-activation timings as CSV (header + one row per record).
pub fn to_csv(result: &SimResult) -> String {
    let mut out = String::from(
        "activation,vm,ready_secs,start_secs,finish_secs,queue_secs,exec_secs,retries\n",
    );
    for r in &result.records {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
            r.activation.index(),
            r.vm.index(),
            r.ready_at.as_secs(),
            r.started_at.as_secs(),
            r.finished_at.as_secs(),
            r.queue_secs(),
            r.exec_secs(),
            r.retries
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::simulate;
    use crate::scheduler::{Decision, Scheduler, SchedulerContext};
    use wfcommon::SeedDerivation;

    struct Fifo;
    impl Scheduler for Fifo {
        fn name(&self) -> &str {
            "fifo"
        }
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
            match (ctx.ready.first(), ctx.idle_slots.first()) {
                (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
                _ => Decision::DoNothing,
            }
        }
    }

    fn run() -> (SimResult, Fleet) {
        let wf = workflow::montage50::montage50();
        let fleet = Fleet::paper_16_vcpus();
        let res = simulate(
            &wf,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(1),
            None,
        )
        .unwrap();
        (res, fleet)
    }

    #[test]
    fn gantt_has_one_row_per_vm() {
        let (res, fleet) = run();
        let chart = gantt(&res, &fleet, 60);
        // Header + 9 VM rows.
        assert_eq!(chart.lines().count(), 1 + fleet.len());
        assert!(chart.contains("t2.2xlarge-8"));
        // At least one busy cell somewhere.
        assert!(chart.contains('▪') || chart.contains('▓') || chart.contains('█'));
    }

    #[test]
    fn gantt_degenerate_inputs() {
        let (res, fleet) = run();
        assert_eq!(gantt(&res, &fleet, 0), "(empty schedule)\n");
        let empty = SimResult { makespan: wfcommon::SimTime::ZERO, ..res };
        assert_eq!(gantt(&empty, &fleet, 40), "(empty schedule)\n");
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let (res, _) = run();
        let csv = to_csv(&res);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + res.records.len());
        assert!(lines[0].starts_with("activation,vm,"));
        // Every data row has 8 comma-separated fields.
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 8, "bad row: {line}");
        }
    }
}
