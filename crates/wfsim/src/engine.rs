//! The workflow-execution discrete-event engine.
//!
//! Implements the paper's workflow state machine (§III-A) over the
//! `simkit` kernel:
//!
//! * an activation is **locked** until all its producers finish,
//!   **ready** afterwards, **running** once a scheduler assigns it to
//!   an idle processing element, and terminally **successfully
//!   finished** or **finished with failure**;
//! * the workflow is **available** when ≥1 activation is ready and ≥1
//!   element is idle — only then is the scheduler consulted — and
//!   **unavailable** otherwise (the *do-nothing* action is implicit:
//!   the engine simply waits for the next completion event);
//! * queue time `tf` is the ready→start wait, execution time `te` is
//!   the start→finish span including data stage-in, performance
//!   fluctuation and migration stalls.

use crate::arena::SimArena;
use crate::config::{FluctuationKind, MigrationKind, SimConfig};
use crate::history::ExecHistory;
use crate::plan::Plan;
use crate::result::{ActivationRecord, FaultStats, SimResult};
use crate::scheduler::{CompletionInfo, Decision, Scheduler, SchedulerContext};
use cloud::failure::{Attempt, FailureModel};
use cloud::fluctuation::{FluctuationModel, NoFluctuation, PerfFluctuation};
use cloud::{FaultModel, Fleet, MigrationModel};
use obs::{TraceEvent, Tracer};
use simkit::{Simulation, StepOutcome};
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Error, Result, SeedDerivation, SimTime, VmId};
use workflow::{Workflow, WorkflowCache};

/// Engine events; scheduling happens synchronously after each event.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// An activation attempt completed.
    Finished {
        ac: ActivationId,
        vm: VmId,
        started_at: SimTime,
        ready_at: SimTime,
        attempt: u32,
        failed: bool,
    },
    /// A VM finished booting; its processing elements come online.
    VmReady { vm: VmId, pes: u32 },
    /// A pre-sampled VM crash fires. `idx` is the position in the VM's
    /// crash schedule so the next one can be chained lazily (keeping
    /// the event heap small instead of loading the whole horizon).
    Crash { vm: VmId, idx: usize },
    /// A crashed VM completed repair; `pes` elements return.
    Repair { vm: VmId, pes: u32 },
    /// A per-attempt timeout fires; the attempt is killed if it is
    /// still the live one.
    TimedOut { ac: ActivationId, vm: VmId, started_at: SimTime, ready_at: SimTime, attempt: u32 },
    /// A backed-off retry re-enters the ready queue.
    Wake { ac: ActivationId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcState {
    Locked {
        remaining_parents: u32,
    },
    Ready {
        since: SimTime,
    },
    Running,
    /// A retry sitting out its exponential backoff; the matching
    /// [`Ev::Wake`] moves it back to `Ready`.
    Waiting,
    Done,
    Failed,
}

/// Run one simulated execution of `workflow` on `fleet` under
/// `scheduler`. `seeds` drives all stochastic models; `history_seed`
/// lets callers pre-load execution history from earlier episodes
/// (paper §III-C: previous-episode information is carried forward).
///
/// Convenience wrapper over [`simulate_cached`] that derives the
/// structural cache and scratch arena on the spot. Loops that run many
/// episodes should build a [`WorkflowCache`] once and reuse a
/// [`SimArena`] instead; the results are bitwise identical.
pub fn simulate(
    workflow: &Workflow,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    seeds: SeedDerivation,
    history_seed: Option<&ExecHistory>,
) -> Result<SimResult> {
    simulate_traced(
        workflow,
        fleet,
        scheduler,
        config,
        seeds,
        history_seed,
        &mut Tracer::disabled(),
    )
}

/// [`simulate`] with a structured-event tracer attached (see
/// [`obs::TraceEvent`] for the schema). A disabled tracer makes this
/// identical to [`simulate`] at one branch per event of cost.
pub fn simulate_traced(
    workflow: &Workflow,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    seeds: SeedDerivation,
    history_seed: Option<&ExecHistory>,
    tracer: &mut Tracer<'_>,
) -> Result<SimResult> {
    let cache = WorkflowCache::new(workflow)?;
    let mut arena = SimArena::new();
    simulate_cached_traced(
        workflow,
        &cache,
        fleet,
        scheduler,
        config,
        seeds,
        history_seed,
        &mut arena,
        tracer,
    )
}

/// [`simulate`] with the allocation-heavy parts hoisted out: `cache`
/// holds the workflow's precomputed structure (build once per
/// workflow), `arena` the reusable scratch buffers (one per worker,
/// reset in place each call).
#[allow(clippy::too_many_arguments)]
pub fn simulate_cached(
    workflow: &Workflow,
    cache: &WorkflowCache,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    seeds: SeedDerivation,
    history_seed: Option<&ExecHistory>,
    arena: &mut SimArena,
) -> Result<SimResult> {
    simulate_cached_traced(
        workflow,
        cache,
        fleet,
        scheduler,
        config,
        seeds,
        history_seed,
        arena,
        &mut Tracer::disabled(),
    )
}

/// [`simulate_cached`] with a structured-event tracer attached.
#[allow(clippy::too_many_arguments)]
pub fn simulate_cached_traced(
    workflow: &Workflow,
    cache: &WorkflowCache,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    seeds: SeedDerivation,
    history_seed: Option<&ExecHistory>,
    arena: &mut SimArena,
    tracer: &mut Tracer<'_>,
) -> Result<SimResult> {
    config.validate()?;
    if fleet.is_empty() {
        return Err(Error::Simulation("fleet has no VMs".into()));
    }
    if workflow.is_empty() {
        return Err(Error::InvalidWorkflow("workflow has no activations".into()));
    }
    if cache.len() != workflow.len() {
        return Err(Error::Simulation("workflow cache built for a different workflow".into()));
    }

    let n = workflow.len();
    let mut fluct: Box<dyn FluctuationModel> = match config.fluctuation {
        FluctuationKind::None => Box::new(NoFluctuation),
        FluctuationKind::Mild => Box::new(PerfFluctuation::mild(fleet.len(), seeds)),
        FluctuationKind::Heavy => Box::new(PerfFluctuation::heavy(fleet.len(), seeds)),
        FluctuationKind::Custom { sigma, theta } => {
            Box::new(PerfFluctuation::new(fleet.len(), sigma, theta, seeds))
        }
    };
    let failures = FailureModel::new(config.failure_prob, config.max_retries, seeds);
    // Crash schedules are pre-sampled over the same horizon as
    // migrations; straggler/lost-ack draws inside are pure counter-RNG.
    let faults =
        FaultModel::new(config.faults, fleet.len(), SimTime(config.migration_horizon_secs), seeds);
    let faults_active = !config.faults.is_inert();
    let migrations = match config.migration {
        MigrationKind::None => MigrationModel::none(),
        MigrationKind::Poisson { rate_per_hour, min_downtime_secs, max_downtime_secs } => {
            MigrationModel::poisson(
                fleet.len(),
                rate_per_hour,
                SimTime(config.migration_horizon_secs),
                SimTime(min_downtime_secs),
                SimTime(max_downtime_secs),
                seeds,
            )
        }
    };

    arena.reset();
    let SimArena {
        sim,
        states,
        retries,
        placed_on,
        running_on,
        vm_faults,
        blacklisted,
        free_pes,
        vm_busy_secs,
        ready,
        idle,
    } = arena;

    tracer.emit_with(|| TraceEvent::SimStart { activations: n as u32, vms: fleet.len() as u32 });
    // Wall-clock phase timers (opt-in via `Tracer::with_timing`; both
    // are `None`/0 and cost nothing otherwise). `sim.total` spans the
    // whole simulation; `sim.sched` accumulates the scheduler-facing
    // share of it across every scheduling pass.
    let sim_t0 = tracer.phase_start();
    let mut sched_wall_secs = 0.0f64;

    // Per-activation state.
    states.extend((0..n).map(|i| {
        let parents = cache.in_degree(i);
        if parents == 0 {
            AcState::Ready { since: SimTime::ZERO }
        } else {
            AcState::Locked { remaining_parents: parents }
        }
    }));
    retries.resize(n, 0);
    placed_on.resize(n, None);
    running_on.resize(n, None);
    vm_faults.resize(fleet.len(), 0);
    blacklisted.resize(fleet.len(), false);

    // Per-VM free elements. With a provisioning delay, elements come
    // online only when the VM's boot completes (staggered ±50 % per VM
    // like real EC2 launch-time spread).
    let booting = config.vm_boot_secs > 0.0;
    if booting {
        free_pes.resize(fleet.len(), 0);
    } else {
        free_pes.extend(fleet.iter().map(|(_, vm)| vm.vm_type.pes));
    }
    vm_busy_secs.resize(fleet.len(), 0.0);

    let mut history = history_seed.cloned().unwrap_or_else(|| ExecHistory::new(fleet.len()));
    if history.vm_count() != fleet.len() {
        return Err(Error::Simulation("seed history sized for a different fleet".into()));
    }

    let mut plan = Plan::empty(n);
    let mut records: Vec<ActivationRecord> = Vec::with_capacity(n);
    let mut remaining = n; // activations not yet Done
    let mut workflow_failed = false;
    let mut running: usize = 0; // attempts currently occupying a PE
    let mut stats = FaultStats::default();

    if booting {
        use rand::Rng as _;
        let mut boot_rng = seeds.rng_for("vm-boot", 0);
        for (vm_id, vm) in fleet.iter() {
            let jitter: f64 = boot_rng.gen_range(0.5..1.5);
            sim.schedule(
                SimTime(config.vm_boot_secs * jitter),
                Ev::VmReady { vm: vm_id, pes: vm.vm_type.pes },
            )?;
        }
    }

    // Seed each VM's first crash; the rest of its schedule is chained
    // lazily as crashes fire (empty schedules when crashes are off).
    for (vm_id, _) in fleet.iter() {
        if let Some(&t0) = faults.crashes(vm_id).first() {
            sim.schedule(t0, Ev::Crash { vm: vm_id, idx: 0 })?;
        }
    }

    // Initial scheduling pass at t = 0.
    let pass_t0 = tracer.phase_start();
    scheduling_pass(
        sim,
        cache,
        fleet,
        scheduler,
        config,
        states,
        free_pes,
        &mut plan,
        &history,
        placed_on,
        fluct.as_mut(),
        &failures,
        &faults,
        &migrations,
        retries,
        vm_busy_secs,
        workflow_failed,
        ready,
        idle,
        running_on,
        &mut running,
        blacklisted,
        &mut stats,
        workflow,
        tracer,
    )?;
    if let Some(t0) = pass_t0 {
        sched_wall_secs += t0.elapsed().as_secs_f64();
    }

    let mut processed: u64 = 0;
    loop {
        if processed >= config.max_events {
            return Err(Error::Simulation(format!(
                "exceeded {} events; runaway simulation?",
                config.max_events
            )));
        }
        let ev = match sim.step() {
            StepOutcome::Idle => break,
            StepOutcome::Event(ev) => ev,
        };
        processed += 1;
        let now = sim.now();
        match ev {
            Ev::VmReady { vm, pes } => {
                free_pes[vm.index()] += pes;
                tracer.emit_with(|| TraceEvent::VmReady {
                    t: now.as_secs(),
                    vm: vm.index() as u32,
                    pes,
                });
            }
            Ev::Finished { ac, vm, started_at, ready_at, attempt, failed } => {
                let i = ac.index();
                // A completion is live only while this attempt is
                // still the one the engine believes is running: crash
                // orphaning bumps `retries`, so completions from a
                // dead VM arrive stale and are dropped wholly (no PE,
                // busy-time or history bookkeeping).
                let live = states[i] == AcState::Running
                    && attempt == retries[i]
                    && running_on[i] == Some(vm);
                if live {
                    running_on[i] = None;
                    running -= 1;
                    let te = (now - started_at).as_secs();
                    let tf = (started_at - ready_at).as_secs().max(0.0);
                    tracer.emit_with(|| TraceEvent::Finish {
                        t: now.as_secs(),
                        ac: i as u32,
                        vm: vm.index() as u32,
                        attempt,
                        exec_secs: te,
                        queue_secs: tf,
                        failed,
                    });
                    free_pes[vm.index()] += 1;
                    vm_busy_secs[vm.index()] += te;
                    history.record(vm, te, tf);
                    scheduler.on_completion(
                        &CompletionInfo {
                            activation: ac,
                            vm,
                            queue_secs: tf,
                            exec_secs: te,
                            finished_at: now,
                            attempt,
                            failed,
                        },
                        &history,
                    );

                    if failed {
                        if retries[i] < config.max_retries && !workflow_failed {
                            // Retry: the activation re-enters the
                            // ready queue, after backoff if enabled.
                            retries[i] += 1;
                            stats.retries += 1;
                            tracer.emit_with(|| TraceEvent::Retry {
                                t: now.as_secs(),
                                ac: i as u32,
                                next_attempt: retries[i],
                            });
                            let backoff = config.faults.backoff_secs(retries[i]);
                            if backoff > 0.0 {
                                states[i] = AcState::Waiting;
                                sim.schedule_in(SimTime(backoff), Ev::Wake { ac })?;
                            } else {
                                states[i] = AcState::Ready { since: now };
                            }
                        } else {
                            states[i] = AcState::Failed;
                            workflow_failed = true;
                        }
                    } else {
                        states[i] = AcState::Done;
                        placed_on[i] = Some(vm);
                        remaining -= 1;
                        records.push(ActivationRecord {
                            activation: ac,
                            vm,
                            ready_at,
                            started_at,
                            finished_at: now,
                            retries: retries[i],
                        });
                        // Unlock children.
                        for child in workflow.children(ac) {
                            if let AcState::Locked { remaining_parents } =
                                &mut states[child.index()]
                            {
                                *remaining_parents -= 1;
                                if *remaining_parents == 0 {
                                    states[child.index()] = AcState::Ready { since: now };
                                }
                            }
                        }
                    }
                }
            }
            Ev::Crash { vm, idx } => {
                let v = vm.index();
                if !blacklisted[v] {
                    tracer.emit_with(|| TraceEvent::Fault {
                        t: now.as_secs(),
                        kind: "crash",
                        ac: -1,
                        vm: v as u32,
                    });
                    stats.crashes += 1;
                    // Everything on the VM — free elements and the
                    // elements held by in-flight attempts — comes back
                    // at repair time; the attempts themselves are lost.
                    let mut restore = free_pes[v];
                    free_pes[v] = 0;
                    for i in 0..n {
                        if states[i] == AcState::Running && running_on[i] == Some(vm) {
                            restore += 1;
                            running -= 1;
                            running_on[i] = None;
                            stats.orphaned += 1;
                            tracer.emit_with(|| TraceEvent::Fault {
                                t: now.as_secs(),
                                kind: "crash",
                                ac: i as i64,
                                vm: v as u32,
                            });
                            if retries[i] < config.max_retries && !workflow_failed {
                                retries[i] += 1;
                                stats.reschedules += 1;
                                tracer.emit_with(|| TraceEvent::Reschedule {
                                    t: now.as_secs(),
                                    ac: i as u32,
                                    vm: v as u32,
                                    next_attempt: retries[i],
                                });
                                let backoff = config.faults.backoff_secs(retries[i]);
                                if backoff > 0.0 {
                                    states[i] = AcState::Waiting;
                                    sim.schedule_in(
                                        SimTime(backoff),
                                        Ev::Wake { ac: ActivationId::from_index(i) },
                                    )?;
                                } else {
                                    states[i] = AcState::Ready { since: now };
                                }
                            } else {
                                states[i] = AcState::Failed;
                                workflow_failed = true;
                            }
                        }
                    }
                    vm_faults[v] += 1;
                    if config.faults.blacklist_after > 0
                        && vm_faults[v] >= config.faults.blacklist_after
                    {
                        blacklisted[v] = true;
                        stats.blacklisted += 1;
                        tracer.emit_with(|| TraceEvent::Blacklist {
                            t: now.as_secs(),
                            vm: v as u32,
                            faults: vm_faults[v],
                        });
                    } else {
                        sim.schedule_in(
                            SimTime(config.faults.repair_secs),
                            Ev::Repair { vm, pes: restore },
                        )?;
                        if let Some(&t_next) = faults.crashes(vm).get(idx + 1) {
                            sim.schedule(t_next, Ev::Crash { vm, idx: idx + 1 })?;
                        }
                    }
                }
            }
            Ev::Repair { vm, pes } => {
                let v = vm.index();
                if !blacklisted[v] {
                    free_pes[v] += pes;
                    stats.recoveries += 1;
                    tracer.emit_with(|| TraceEvent::Recover {
                        t: now.as_secs(),
                        vm: v as u32,
                        pes,
                    });
                }
            }
            Ev::TimedOut { ac, vm, started_at, ready_at, attempt } => {
                let i = ac.index();
                let live = states[i] == AcState::Running
                    && attempt == retries[i]
                    && running_on[i] == Some(vm);
                if live {
                    let v = vm.index();
                    // The attempt consumed the VM for the whole
                    // timeout window, so busy time, history and the
                    // scheduler all observe it as a failed attempt —
                    // the RL penalty hook fires through the normal
                    // completion path.
                    let te = (now - started_at).as_secs();
                    let tf = (started_at - ready_at).as_secs().max(0.0);
                    tracer.emit_with(|| TraceEvent::Fault {
                        t: now.as_secs(),
                        kind: "timeout",
                        ac: i as i64,
                        vm: v as u32,
                    });
                    stats.timeouts += 1;
                    free_pes[v] += 1;
                    vm_busy_secs[v] += te;
                    running_on[i] = None;
                    running -= 1;
                    history.record(vm, te, tf);
                    scheduler.on_completion(
                        &CompletionInfo {
                            activation: ac,
                            vm,
                            queue_secs: tf,
                            exec_secs: te,
                            finished_at: now,
                            attempt,
                            failed: true,
                        },
                        &history,
                    );
                    vm_faults[v] += 1;
                    if config.faults.blacklist_after > 0
                        && vm_faults[v] >= config.faults.blacklist_after
                        && !blacklisted[v]
                    {
                        blacklisted[v] = true;
                        stats.blacklisted += 1;
                        tracer.emit_with(|| TraceEvent::Blacklist {
                            t: now.as_secs(),
                            vm: v as u32,
                            faults: vm_faults[v],
                        });
                    }
                    if retries[i] < config.max_retries && !workflow_failed {
                        retries[i] += 1;
                        stats.reschedules += 1;
                        tracer.emit_with(|| TraceEvent::Reschedule {
                            t: now.as_secs(),
                            ac: i as u32,
                            vm: v as u32,
                            next_attempt: retries[i],
                        });
                        let backoff = config.faults.backoff_secs(retries[i]);
                        if backoff > 0.0 {
                            states[i] = AcState::Waiting;
                            sim.schedule_in(SimTime(backoff), Ev::Wake { ac })?;
                        } else {
                            states[i] = AcState::Ready { since: now };
                        }
                    } else {
                        states[i] = AcState::Failed;
                        workflow_failed = true;
                    }
                }
            }
            Ev::Wake { ac } => {
                let i = ac.index();
                if states[i] == AcState::Waiting {
                    states[i] = AcState::Ready { since: now };
                }
            }
        }

        // With faults active the heap can hold crash/repair events far
        // beyond the workflow's lifetime; stop as soon as the outcome
        // is decided (success, or failure with all attempts drained).
        // Gated so fault-free runs keep their historical drain
        // semantics byte-for-byte.
        if faults_active && (remaining == 0 || (workflow_failed && running == 0)) {
            break;
        }

        let pass_t0 = tracer.phase_start();
        scheduling_pass(
            sim,
            cache,
            fleet,
            scheduler,
            config,
            states,
            free_pes,
            &mut plan,
            &history,
            placed_on,
            fluct.as_mut(),
            &failures,
            &faults,
            &migrations,
            retries,
            vm_busy_secs,
            workflow_failed,
            ready,
            idle,
            running_on,
            &mut running,
            blacklisted,
            &mut stats,
            workflow,
            tracer,
        )?;
        if let Some(t0) = pass_t0 {
            sched_wall_secs += t0.elapsed().as_secs_f64();
        }
    }

    let success = remaining == 0 && !workflow_failed;
    let makespan = sim.now();
    if tracer.timing_enabled() {
        tracer.emit_phase_secs("sim.sched", sched_wall_secs);
        tracer.emit_phase("sim.total", sim_t0);
    }
    tracer.emit_with(|| TraceEvent::SimEnd {
        t: makespan.as_secs(),
        success,
        events: processed,
        queue_pushes: sim.pushes(),
        max_queue_depth: sim.max_pending() as u64,
    });
    let result = SimResult {
        makespan,
        success,
        records,
        plan,
        history,
        vm_busy_secs: vm_busy_secs.clone(),
        events_processed: processed,
        fault_stats: stats,
    };
    scheduler.on_episode_end(&result);
    Ok(result)
}

/// While the workflow is *available*, consult the scheduler and apply
/// assignments. When `halted` (a terminal failure occurred), no new
/// work is started — running activations just drain.
#[allow(clippy::too_many_arguments)]
fn scheduling_pass(
    sim: &mut Simulation<Ev>,
    cache: &WorkflowCache,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    states: &mut [AcState],
    free_pes: &mut [u32],
    plan: &mut Plan,
    history: &ExecHistory,
    placed_on: &[Option<VmId>],
    fluct: &mut dyn FluctuationModel,
    failures: &FailureModel,
    faults: &FaultModel,
    migrations: &MigrationModel,
    retries: &[u32],
    vm_busy_secs: &[f64],
    halted: bool,
    ready: &mut Vec<ActivationId>,
    idle: &mut Vec<(VmId, u32)>,
    running_on: &mut [Option<VmId>],
    running: &mut usize,
    blacklisted: &[bool],
    stats: &mut FaultStats,
    workflow: &Workflow,
    tracer: &mut Tracer<'_>,
) -> Result<()> {
    if halted {
        return Ok(());
    }
    let mut first_consultation = true;
    loop {
        ready.clear();
        ready.extend(
            states
                .iter()
                .enumerate()
                .filter(|&(_i, s)| matches!(s, AcState::Ready { .. }))
                .map(|(i, _s)| ActivationId::from_index(i)),
        );
        idle.clear();
        idle.extend(
            free_pes
                .iter()
                .enumerate()
                .filter(|&(i, &f)| f > 0 && !blacklisted[i])
                .map(|(i, &f)| (VmId::from_index(i), f)),
        );
        if ready.is_empty() || idle.is_empty() {
            return Ok(()); // workflow is *unavailable*: implicit do-nothing
        }
        if first_consultation {
            first_consultation = false;
            tracer.emit_with(|| TraceEvent::Sched {
                t: sim.now().as_secs(),
                ready: ready.len() as u32,
                idle_pes: idle.iter().map(|&(_, f)| f).sum(),
            });
        }
        let ctx =
            SchedulerContext { now: sim.now(), workflow, fleet, ready, idle_slots: idle, history };
        match scheduler.decide(&ctx) {
            Decision::DoNothing => return Ok(()),
            Decision::Assign { activation, vm } => {
                let i = activation.index();
                let since = match states.get(i) {
                    Some(AcState::Ready { since }) => *since,
                    _ => {
                        return Err(Error::InvalidPlan(format!(
                            "scheduler assigned non-ready activation {activation}"
                        )))
                    }
                };
                let v = vm.index();
                if v >= free_pes.len() || free_pes[v] == 0 {
                    return Err(Error::InvalidPlan(format!(
                        "scheduler assigned {activation} to busy/unknown {vm}"
                    )));
                }
                free_pes[v] -= 1;
                states[i] = AcState::Running;
                plan.assign(activation, vm);

                let now = sim.now();
                tracer.emit_with(|| TraceEvent::Start {
                    t: now.as_secs(),
                    ac: i as u32,
                    vm: v as u32,
                    attempt: retries[i],
                    ready_since: since.as_secs(),
                });
                let mut duration = execution_secs(
                    cache,
                    workflow,
                    fleet,
                    config,
                    placed_on,
                    fluct,
                    migrations,
                    activation,
                    vm,
                    now,
                    vm_busy_secs[v],
                );
                let slowdown = faults.slowdown(activation, vm, retries[i]);
                if slowdown > 1.0 {
                    duration *= slowdown;
                    stats.stragglers += 1;
                    tracer.emit_with(|| TraceEvent::Fault {
                        t: now.as_secs(),
                        kind: "straggler",
                        ac: i as i64,
                        vm: v as u32,
                    });
                }
                running_on[i] = Some(vm);
                *running += 1;
                let timeout = config.faults.timeout_secs;
                if timeout > 0.0 && duration > timeout {
                    // The attempt is doomed upfront (both its length
                    // and the bound are known now), so the kill event
                    // replaces the completion event entirely.
                    sim.schedule_in(
                        SimTime(timeout),
                        Ev::TimedOut {
                            ac: activation,
                            vm,
                            started_at: now,
                            ready_at: since,
                            attempt: retries[i],
                        },
                    )?;
                } else {
                    let failed = config.failure_prob > 0.0
                        && failures.draw(activation, vm, retries[i]) == Attempt::Fails;
                    sim.schedule_in(
                        SimTime(duration),
                        Ev::Finished {
                            ac: activation,
                            vm,
                            started_at: now,
                            ready_at: since,
                            attempt: retries[i],
                            failed,
                        },
                    )?;
                }
            }
        }
    }
}

/// Wall-clock seconds one attempt takes: stage-in transfers + compute
/// (scaled by the fluctuation factor) + migration stalls.
#[allow(clippy::too_many_arguments)]
fn execution_secs(
    cache: &WorkflowCache,
    workflow: &Workflow,
    fleet: &Fleet,
    config: &SimConfig,
    placed_on: &[Option<VmId>],
    fluct: &mut dyn FluctuationModel,
    migrations: &MigrationModel,
    ac: ActivationId,
    vm: VmId,
    now: SimTime,
    vm_busy_so_far_secs: f64,
) -> f64 {
    // Transfers: parent outputs materialized on other VMs must cross
    // the network; co-located files are free. Per-edge byte counts and
    // the producer-less stage-in volume are precomputed in the cache.
    let i = ac.index();
    let mut transfer_bytes: u64 = 0;
    for &(parent, bytes) in cache.parents(i) {
        if placed_on[parent as usize] != Some(vm) {
            transfer_bytes += bytes;
        }
    }
    if config.stage_in_inputs {
        // Workflow-input files (no producer) come from shared storage.
        transfer_bytes += cache.external_input_bytes(i);
    }
    let transfer_secs = transfer_bytes as f64 / config.bandwidth_bytes_per_sec;

    let vm_type = &fleet.vm(vm).vm_type;
    let base = vm_type.exec_secs(workflow.activations[ac].length_mi);
    let factor = fluct.factor(vm, now.as_secs());
    let mut compute_secs = base * factor;
    if config.burst_throttling && vm_type.baseline_fraction < 1.0 {
        let credits =
            vm_type.burst_credit_secs_per_pe * vm_type.pes as f64 * config.burst_credit_scale;
        if vm_busy_so_far_secs >= credits {
            // Credits exhausted: the whole execution runs at baseline.
            compute_secs /= vm_type.baseline_fraction;
        } else if vm_busy_so_far_secs + compute_secs > credits {
            // Burst covers only the head of the execution.
            let full_speed = credits - vm_busy_so_far_secs;
            let remainder = compute_secs - full_speed;
            compute_secs = full_speed + remainder / vm_type.baseline_fraction;
        }
    }

    let pre_stall = transfer_secs + compute_secs;
    let stall = migrations.stall_secs(vm, now, now + SimTime(pre_stall));
    pre_stall + stall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    /// Greedy FIFO: first ready activation onto the first idle VM.
    struct Fifo;
    impl Scheduler for Fifo {
        fn name(&self) -> &str {
            "fifo"
        }
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
            match (ctx.ready.first(), ctx.idle_slots.first()) {
                (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
                _ => Decision::DoNothing,
            }
        }
    }

    fn montage() -> Workflow {
        workflow::montage50::montage50()
    }

    #[test]
    fn fifo_completes_montage() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut s = Fifo;
        let res = simulate(
            &wf,
            &fleet,
            &mut s,
            &SimConfig::deterministic(),
            SeedDerivation::new(1),
            None,
        )
        .unwrap();
        assert!(res.success);
        assert_eq!(res.records.len(), 50);
        assert!(res.plan.is_complete());
        assert!(res.makespan.as_secs() > 0.0);
    }

    #[test]
    fn makespan_at_least_critical_path_over_fastest_vm() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut s = Fifo;
        let res = simulate(
            &wf,
            &fleet,
            &mut s,
            &SimConfig::deterministic(),
            SeedDerivation::new(2),
            None,
        )
        .unwrap();
        // Fastest element is 1250 MIPS ⇒ lower bound = CP(ref secs) × 1000/1250.
        let bound = wf.reference_critical_path_secs() * (1000.0 / 1250.0);
        assert!(
            res.makespan.as_secs() >= bound - 1e-6,
            "makespan {} below bound {bound}",
            res.makespan
        );
    }

    #[test]
    fn dependencies_respected_in_records() {
        let wf = montage();
        let fleet = Fleet::paper_32_vcpus();
        let mut s = Fifo;
        let res = simulate(
            &wf,
            &fleet,
            &mut s,
            &SimConfig::deterministic(),
            SeedDerivation::new(3),
            None,
        )
        .unwrap();
        for rec in &res.records {
            for parent in wf.parents(rec.activation) {
                let p = res.record_for(parent).expect("parent must have completed");
                assert!(
                    p.finished_at <= rec.started_at + SimTime(1e-9),
                    "{} started before parent {} finished",
                    rec.activation,
                    parent
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::default(); // includes mild fluctuation
        let r1 = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(7), None).unwrap();
        let r2 = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(7), None).unwrap();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.plan, r2.plan);
        let r3 = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(8), None).unwrap();
        assert_ne!(r1.makespan, r3.makespan, "different seed should perturb");
    }

    #[test]
    fn certain_failure_marks_workflow_failed() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.failure_prob = 1.0;
        cfg.max_retries = 1;
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(4), None).unwrap();
        assert!(!res.success);
        assert!(res.records.len() < 50);
    }

    #[test]
    fn retries_allow_recovery_from_rare_failures() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.failure_prob = 0.05;
        cfg.max_retries = 10;
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(5), None).unwrap();
        assert!(res.success, "with generous retries the workflow completes");
        assert!(res.records.iter().any(|r| r.retries > 0) || res.events_processed == 50);
    }

    #[test]
    fn plan_replay_reproduces_assignments() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::deterministic();
        let first = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(6), None).unwrap();
        let mut replay = crate::plan::FixedPlanScheduler::new(first.plan.clone());
        let second =
            simulate(&wf, &fleet, &mut replay, &cfg, SeedDerivation::new(6), None).unwrap();
        assert!(second.success);
        assert_eq!(first.plan, second.plan, "replay must follow the plan exactly");
    }

    #[test]
    fn empty_fleet_rejected() {
        let wf = montage();
        let fleet = Fleet::new();
        let err = simulate(
            &wf,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no VMs"));
    }

    #[test]
    fn history_seed_carries_over() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::deterministic();
        let first = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(9), None).unwrap();
        let res =
            simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(9), Some(&first.history))
                .unwrap();
        assert_eq!(res.history.total_samples(), 2 * first.history.total_samples());
    }

    #[test]
    fn migration_stalls_lengthen_makespan() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let base = SimConfig::deterministic();
        let quiet = simulate(&wf, &fleet, &mut Fifo, &base, SeedDerivation::new(10), None).unwrap();
        let mut noisy_cfg = SimConfig::deterministic();
        noisy_cfg.migration = MigrationKind::Poisson {
            rate_per_hour: 60.0,
            min_downtime_secs: 5.0,
            max_downtime_secs: 15.0,
        };
        let noisy =
            simulate(&wf, &fleet, &mut Fifo, &noisy_cfg, SeedDerivation::new(10), None).unwrap();
        assert!(noisy.makespan > quiet.makespan);
    }

    #[test]
    fn boot_delay_pushes_start_times_and_makespan() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        let base = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(20), None).unwrap();
        cfg.vm_boot_secs = 60.0;
        let delayed =
            simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(20), None).unwrap();
        assert!(delayed.success);
        // Nothing starts before the earliest possible boot (30 s with
        // the ±50 % stagger).
        for rec in &delayed.records {
            assert!(rec.started_at.as_secs() >= 30.0 - 1e-9);
        }
        assert!(delayed.makespan > base.makespan);
    }

    #[test]
    fn reused_arena_and_cache_match_fresh_simulate_bitwise() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cache = WorkflowCache::new(&wf).unwrap();
        let mut arena = SimArena::new();
        // Mixed configs exercise boot events, fluctuation and failures
        // so the arena is left dirty in different ways between runs.
        let noisy = SimConfig {
            vm_boot_secs: 30.0,
            failure_prob: 0.05,
            max_retries: 10,
            ..SimConfig::default()
        };
        let configs = [SimConfig::deterministic(), noisy, SimConfig::default()];
        for round in 0..2 {
            for (c, cfg) in configs.iter().enumerate() {
                let seeds = SeedDerivation::new(40 + (round * 3 + c) as u64);
                let fresh = simulate(&wf, &fleet, &mut Fifo, cfg, seeds, None).unwrap();
                let reused =
                    simulate_cached(&wf, &cache, &fleet, &mut Fifo, cfg, seeds, None, &mut arena)
                        .unwrap();
                assert_eq!(fresh.makespan, reused.makespan);
                assert_eq!(fresh.plan, reused.plan);
                assert_eq!(fresh.records, reused.records);
                assert_eq!(fresh.vm_busy_secs, reused.vm_busy_secs);
                assert_eq!(fresh.events_processed, reused.events_processed);
            }
        }
    }

    #[test]
    fn mismatched_cache_is_rejected() {
        let wf = montage();
        let other = workflow::generators::layered::generate(
            &workflow::generators::layered::LayeredParams::default(),
        )
        .unwrap();
        let fleet = Fleet::paper_16_vcpus();
        let cache = WorkflowCache::new(&other).unwrap();
        if cache.len() == wf.len() {
            return; // degenerate: same size, check not applicable
        }
        let mut arena = SimArena::new();
        let err = simulate_cached(
            &wf,
            &cache,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(1),
            None,
            &mut arena,
        )
        .unwrap_err();
        assert!(err.to_string().contains("different workflow"));
    }

    #[test]
    fn phase_timers_are_opt_in_and_skipped_by_event_diff() {
        use obs::{EventDiff, MemSink, Tracer};
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::deterministic();
        let seeds = SeedDerivation::new(12);
        let mut plain = MemSink::new();
        simulate_traced(&wf, &fleet, &mut Fifo, &cfg, seeds, None, &mut Tracer::new(&mut plain))
            .unwrap();
        assert!(
            !plain.as_str().contains("\"ev\":\"phase\""),
            "default traces must stay wall-clock-free (byte reproducibility)"
        );
        let mut timed = MemSink::new();
        simulate_traced(
            &wf,
            &fleet,
            &mut Fifo,
            &cfg,
            seeds,
            None,
            &mut Tracer::new(&mut timed).with_timing(true),
        )
        .unwrap();
        let trace = timed.as_str();
        assert!(trace.contains("\"name\":\"sim.sched\""), "{trace}");
        assert!(trace.contains("\"name\":\"sim.total\""), "{trace}");
        // The event-level diff treats the timed trace as identical to
        // the plain one — phase lines are the only difference.
        assert!(matches!(
            obs::trace_diff_events(plain.as_str(), trace),
            EventDiff::Identical { .. }
        ));
    }

    #[test]
    fn crashes_orphan_reschedule_and_recover() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.max_retries = 20;
        cfg.faults = cloud::FaultConfig {
            vm_mtbf_hours: 0.02, // ~one crash per VM per 72 s
            repair_secs: 10.0,
            ..cloud::FaultConfig::none()
        };
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(31), None).unwrap();
        assert!(res.fault_stats.crashes > 0, "{:?}", res.fault_stats);
        assert!(res.fault_stats.recoveries > 0, "{:?}", res.fault_stats);
        assert!(res.fault_stats.orphaned > 0, "{:?}", res.fault_stats);
        assert_eq!(res.fault_stats.orphaned, res.fault_stats.reschedules);
        assert!(res.success, "generous retries must survive crashes");
        assert_eq!(res.records.len(), 50);
        // Work conservation: every activation completed exactly once.
        let mut seen = std::collections::HashSet::new();
        for r in &res.records {
            assert!(seen.insert(r.activation), "{} finished twice", r.activation);
        }
    }

    #[test]
    fn blacklist_after_repeated_crashes() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.max_retries = 50;
        cfg.faults = cloud::FaultConfig {
            vm_mtbf_hours: 0.01,
            repair_secs: 5.0,
            blacklist_after: 2,
            ..cloud::FaultConfig::none()
        };
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(32), None).unwrap();
        assert!(res.fault_stats.blacklisted > 0, "{:?}", res.fault_stats);
        assert!(res.fault_stats.blacklisted <= fleet.len() as u64);
    }

    #[test]
    fn tight_timeout_kills_attempts_and_fails_workflow() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.faults = cloud::FaultConfig { timeout_secs: 0.5, ..cloud::FaultConfig::none() };
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(33), None).unwrap();
        assert!(res.fault_stats.timeouts > 0, "{:?}", res.fault_stats);
        assert!(!res.success, "a 0.5 s timeout must exhaust someone's retries");
        // Timed-out attempts still bill the VM for the timeout window.
        assert!(res.vm_busy_secs.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn stragglers_slow_the_run_down() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let base = SimConfig::deterministic();
        let clean = simulate(&wf, &fleet, &mut Fifo, &base, SeedDerivation::new(34), None).unwrap();
        let mut cfg = SimConfig::deterministic();
        cfg.faults = cloud::FaultConfig {
            straggler_prob: 0.3,
            straggler_factor: 4.0,
            ..cloud::FaultConfig::none()
        };
        let slow = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(34), None).unwrap();
        assert!(slow.fault_stats.stragglers > 0, "{:?}", slow.fault_stats);
        assert!(slow.makespan > clean.makespan);
        assert!(slow.success);
    }

    #[test]
    fn backoff_delays_retries_but_preserves_success() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.failure_prob = 0.2;
        cfg.max_retries = 30;
        let immediate =
            simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(35), None).unwrap();
        cfg.faults = cloud::FaultConfig { backoff_base_secs: 10.0, ..cloud::FaultConfig::none() };
        let delayed =
            simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(35), None).unwrap();
        assert!(immediate.success && delayed.success);
        assert!(delayed.fault_stats.retries > 0);
        // Same pure failure draws, so the same retry pressure — but
        // each retry now sits out its backoff first.
        assert!(delayed.makespan > immediate.makespan);
    }

    #[test]
    fn fault_runs_are_seed_deterministic() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::default();
        cfg.failure_prob = 0.1;
        cfg.max_retries = 25;
        cfg.faults = cloud::FaultConfig {
            vm_mtbf_hours: 0.05,
            repair_secs: 20.0,
            straggler_prob: 0.1,
            straggler_factor: 2.0,
            timeout_secs: 2000.0,
            backoff_base_secs: 1.0,
            blacklist_after: 4,
            ..cloud::FaultConfig::none()
        };
        let a = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(36), None).unwrap();
        let b = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(36), None).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.records, b.records);
        assert_eq!(a.fault_stats, b.fault_stats);
        let c = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(37), None).unwrap();
        assert_ne!(a.makespan, c.makespan, "different seed should perturb fault runs");
    }

    #[test]
    fn reused_arena_matches_fresh_under_faults() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cache = WorkflowCache::new(&wf).unwrap();
        let mut arena = SimArena::new();
        let mut cfg = SimConfig::default();
        cfg.max_retries = 20;
        cfg.faults = cloud::FaultConfig {
            vm_mtbf_hours: 0.05,
            repair_secs: 15.0,
            straggler_prob: 0.1,
            straggler_factor: 3.0,
            backoff_base_secs: 0.5,
            blacklist_after: 3,
            ..cloud::FaultConfig::none()
        };
        for round in 0..3 {
            let seeds = SeedDerivation::new(60 + round);
            let fresh = simulate(&wf, &fleet, &mut Fifo, &cfg, seeds, None).unwrap();
            let reused =
                simulate_cached(&wf, &cache, &fleet, &mut Fifo, &cfg, seeds, None, &mut arena)
                    .unwrap();
            assert_eq!(fresh.makespan, reused.makespan);
            assert_eq!(fresh.records, reused.records);
            assert_eq!(fresh.fault_stats, reused.fault_stats);
            assert_eq!(fresh.events_processed, reused.events_processed);
        }
    }

    #[test]
    fn busy_secs_match_record_exec_times() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let res = simulate(
            &wf,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(11),
            None,
        )
        .unwrap();
        let from_records: f64 = res.records.iter().map(|r| r.exec_secs()).sum();
        let from_vms: f64 = res.vm_busy_secs.iter().sum();
        assert!((from_records - from_vms).abs() < 1e-6);
    }
}
