//! The workflow-execution discrete-event engine.
//!
//! Implements the paper's workflow state machine (§III-A) over the
//! `simkit` kernel:
//!
//! * an activation is **locked** until all its producers finish,
//!   **ready** afterwards, **running** once a scheduler assigns it to
//!   an idle processing element, and terminally **successfully
//!   finished** or **finished with failure**;
//! * the workflow is **available** when ≥1 activation is ready and ≥1
//!   element is idle — only then is the scheduler consulted — and
//!   **unavailable** otherwise (the *do-nothing* action is implicit:
//!   the engine simply waits for the next completion event);
//! * queue time `tf` is the ready→start wait, execution time `te` is
//!   the start→finish span including data stage-in, performance
//!   fluctuation and migration stalls.

use crate::arena::SimArena;
use crate::config::{FluctuationKind, MigrationKind, SimConfig};
use crate::history::ExecHistory;
use crate::plan::Plan;
use crate::result::{ActivationRecord, FaultStats, ReplDecision, ReplStats, SimResult};
use crate::scheduler::{CompletionInfo, Decision, Scheduler, SchedulerContext};
use cloud::failure::{Attempt, FailureModel};
use cloud::fluctuation::{FluctuationModel, NoFluctuation, PerfFluctuation};
use cloud::{FaultModel, Fleet, MigrationModel, ReplFeatures};
use obs::{TraceEvent, Tracer, REPLICA_ATTEMPT_BASE};
use simkit::{Simulation, StepOutcome};
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Error, Result, SeedDerivation, SimTime, VmId};
use workflow::{Workflow, WorkflowCache};

/// Engine events; scheduling happens synchronously after each event.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// An activation attempt completed.
    Finished {
        ac: ActivationId,
        vm: VmId,
        started_at: SimTime,
        ready_at: SimTime,
        attempt: u32,
        failed: bool,
    },
    /// A VM finished booting; its processing elements come online.
    VmReady { vm: VmId, pes: u32 },
    /// A pre-sampled VM crash fires. `idx` is the position in the VM's
    /// crash schedule so the next one can be chained lazily (keeping
    /// the event heap small instead of loading the whole horizon).
    Crash { vm: VmId, idx: usize },
    /// A crashed VM completed repair; `pes` elements return.
    Repair { vm: VmId, pes: u32 },
    /// A per-attempt timeout fires; the attempt is killed if it is
    /// still the live one.
    TimedOut { ac: ActivationId, vm: VmId, started_at: SimTime, ready_at: SimTime, attempt: u32 },
    /// A backed-off retry re-enters the ready queue.
    Wake { ac: ActivationId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcState {
    Locked {
        remaining_parents: u32,
    },
    Ready {
        since: SimTime,
    },
    Running,
    /// A retry sitting out its exponential backoff; the matching
    /// [`Ev::Wake`] moves it back to `Ready`.
    Waiting,
    Done,
    Failed,
}

/// One live attempt of a speculative-replication group.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RepAttempt {
    attempt: u32,
    vm: VmId,
    started_at: SimTime,
}

/// A replication decision whose outcome has not resolved yet.
#[derive(Debug, Clone, Copy)]
struct PendingDecision {
    bucket: u8,
    requested: u8,
    launched: u8,
    primary_secs: f64,
    start_t: SimTime,
    waste_secs: f64,
}

/// All engine-side replication state, carried alongside the legacy
/// per-activation arrays. Inert (`active == false`, empty vectors)
/// when the policy is [`cloud::ReplicationPolicy::Off`], in which case
/// every event handler takes the exact legacy code path.
struct ReplState {
    active: bool,
    /// Live attempts per activation (primary first, in launch order).
    groups: Vec<Vec<RepAttempt>>,
    /// Per-activation replica launch ordinal — replica attempt ids are
    /// `REPLICA_ATTEMPT_BASE + ordinal`, disjoint from retry counts
    /// and never reused across a task's dispatches.
    rep_seq: Vec<u32>,
    /// Decision awaiting resolution, per activation.
    pending: Vec<Option<PendingDecision>>,
    /// Workflow-wide critical path (top of the downward-rank order),
    /// the denominator of the slack feature.
    cp_total: f64,
    stats: ReplStats,
    decisions: Vec<ReplDecision>,
}

impl ReplState {
    fn new(n: usize, active: bool, cache: &WorkflowCache) -> Self {
        let (groups, rep_seq, pending, cp_total) = if active {
            let cp = (0..n).map(|i| cache.rank(i)).fold(0.0f64, f64::max);
            (vec![Vec::new(); n], vec![0; n], vec![None; n], cp)
        } else {
            (Vec::new(), Vec::new(), Vec::new(), 0.0)
        };
        Self {
            active,
            groups,
            rep_seq,
            pending,
            cp_total,
            stats: ReplStats::default(),
            decisions: Vec::new(),
        }
    }

    /// Bill cancelled-attempt seconds as hedging waste.
    fn add_waste(&mut self, i: usize, secs: f64) {
        self.stats.waste_secs += secs;
        if let Some(d) = self.pending[i].as_mut() {
            d.waste_secs += secs;
        }
    }

    /// Close the pending decision for activation `i` with its outcome.
    fn resolve(&mut self, i: usize, now: SimTime, replica_won: bool, group_failed: bool) {
        if let Some(d) = self.pending[i].take() {
            self.decisions.push(ReplDecision {
                activation: i as u32,
                bucket: d.bucket,
                requested: d.requested,
                launched: d.launched,
                primary_secs: d.primary_secs,
                group_secs: (now - d.start_t).as_secs(),
                waste_secs: d.waste_secs,
                replica_won,
                group_failed,
            });
        }
    }
}

/// Run one simulated execution of `workflow` on `fleet` under
/// `scheduler`. `seeds` drives all stochastic models; `history_seed`
/// lets callers pre-load execution history from earlier episodes
/// (paper §III-C: previous-episode information is carried forward).
///
/// Convenience wrapper over [`simulate_cached`] that derives the
/// structural cache and scratch arena on the spot. Loops that run many
/// episodes should build a [`WorkflowCache`] once and reuse a
/// [`SimArena`] instead; the results are bitwise identical.
pub fn simulate(
    workflow: &Workflow,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    seeds: SeedDerivation,
    history_seed: Option<&ExecHistory>,
) -> Result<SimResult> {
    simulate_traced(
        workflow,
        fleet,
        scheduler,
        config,
        seeds,
        history_seed,
        &mut Tracer::disabled(),
    )
}

/// [`simulate`] with a structured-event tracer attached (see
/// [`obs::TraceEvent`] for the schema). A disabled tracer makes this
/// identical to [`simulate`] at one branch per event of cost.
pub fn simulate_traced(
    workflow: &Workflow,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    seeds: SeedDerivation,
    history_seed: Option<&ExecHistory>,
    tracer: &mut Tracer<'_>,
) -> Result<SimResult> {
    let cache = WorkflowCache::new(workflow)?;
    let mut arena = SimArena::new();
    simulate_cached_traced(
        workflow,
        &cache,
        fleet,
        scheduler,
        config,
        seeds,
        history_seed,
        &mut arena,
        tracer,
    )
}

/// [`simulate`] with the allocation-heavy parts hoisted out: `cache`
/// holds the workflow's precomputed structure (build once per
/// workflow), `arena` the reusable scratch buffers (one per worker,
/// reset in place each call).
#[allow(clippy::too_many_arguments)]
pub fn simulate_cached(
    workflow: &Workflow,
    cache: &WorkflowCache,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    seeds: SeedDerivation,
    history_seed: Option<&ExecHistory>,
    arena: &mut SimArena,
) -> Result<SimResult> {
    simulate_cached_traced(
        workflow,
        cache,
        fleet,
        scheduler,
        config,
        seeds,
        history_seed,
        arena,
        &mut Tracer::disabled(),
    )
}

/// [`simulate_cached`] with a structured-event tracer attached.
#[allow(clippy::too_many_arguments)]
pub fn simulate_cached_traced(
    workflow: &Workflow,
    cache: &WorkflowCache,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    seeds: SeedDerivation,
    history_seed: Option<&ExecHistory>,
    arena: &mut SimArena,
    tracer: &mut Tracer<'_>,
) -> Result<SimResult> {
    config.validate()?;
    if fleet.is_empty() {
        return Err(Error::Simulation("fleet has no VMs".into()));
    }
    if workflow.is_empty() {
        return Err(Error::InvalidWorkflow("workflow has no activations".into()));
    }
    if cache.len() != workflow.len() {
        return Err(Error::Simulation("workflow cache built for a different workflow".into()));
    }

    let n = workflow.len();
    let mut fluct: Box<dyn FluctuationModel> = match config.fluctuation {
        FluctuationKind::None => Box::new(NoFluctuation),
        FluctuationKind::Mild => Box::new(PerfFluctuation::mild(fleet.len(), seeds)),
        FluctuationKind::Heavy => Box::new(PerfFluctuation::heavy(fleet.len(), seeds)),
        FluctuationKind::Custom { sigma, theta } => {
            Box::new(PerfFluctuation::new(fleet.len(), sigma, theta, seeds))
        }
    };
    let failures = FailureModel::new(config.failure_prob, config.max_retries, seeds);
    // Crash schedules are pre-sampled over the same horizon as
    // migrations; straggler/lost-ack draws inside are pure counter-RNG.
    let faults =
        FaultModel::new(config.faults, fleet.len(), SimTime(config.migration_horizon_secs), seeds);
    let faults_active = !config.faults.is_inert();
    let migrations = match config.migration {
        MigrationKind::None => MigrationModel::none(),
        MigrationKind::Poisson { rate_per_hour, min_downtime_secs, max_downtime_secs } => {
            MigrationModel::poisson(
                fleet.len(),
                rate_per_hour,
                SimTime(config.migration_horizon_secs),
                SimTime(min_downtime_secs),
                SimTime(max_downtime_secs),
                seeds,
            )
        }
    };

    arena.reset();
    let SimArena {
        sim,
        states,
        retries,
        placed_on,
        running_on,
        vm_faults,
        blacklisted,
        free_pes,
        vm_busy_secs,
        ready,
        idle,
    } = arena;

    tracer.emit_with(|| TraceEvent::SimStart { activations: n as u32, vms: fleet.len() as u32 });
    // Wall-clock phase timers (opt-in via `Tracer::with_timing`; both
    // are `None`/0 and cost nothing otherwise). `sim.total` spans the
    // whole simulation; `sim.sched` accumulates the scheduler-facing
    // share of it across every scheduling pass.
    let sim_t0 = tracer.phase_start();
    let mut sched_wall_secs = 0.0f64;

    // Per-activation state.
    states.extend((0..n).map(|i| {
        let parents = cache.in_degree(i);
        if parents == 0 {
            AcState::Ready { since: SimTime::ZERO }
        } else {
            AcState::Locked { remaining_parents: parents }
        }
    }));
    retries.resize(n, 0);
    placed_on.resize(n, None);
    running_on.resize(n, None);
    vm_faults.resize(fleet.len(), 0);
    blacklisted.resize(fleet.len(), false);

    // Per-VM free elements. With a provisioning delay, elements come
    // online only when the VM's boot completes (staggered ±50 % per VM
    // like real EC2 launch-time spread).
    let booting = config.vm_boot_secs > 0.0;
    if booting {
        free_pes.resize(fleet.len(), 0);
    } else {
        free_pes.extend(fleet.iter().map(|(_, vm)| vm.vm_type.pes));
    }
    vm_busy_secs.resize(fleet.len(), 0.0);

    let mut history = history_seed.cloned().unwrap_or_else(|| ExecHistory::new(fleet.len()));
    if history.vm_count() != fleet.len() {
        return Err(Error::Simulation("seed history sized for a different fleet".into()));
    }

    let mut plan = Plan::empty(n);
    let mut records: Vec<ActivationRecord> = Vec::with_capacity(n);
    let mut remaining = n; // activations not yet Done
    let mut workflow_failed = false;
    let mut running: usize = 0; // attempts currently occupying a PE
    let mut stats = FaultStats::default();
    let mut repl = ReplState::new(n, config.replication.is_active(), cache);

    if booting {
        use rand::Rng as _;
        let mut boot_rng = seeds.rng_for("vm-boot", 0);
        for (vm_id, vm) in fleet.iter() {
            let jitter: f64 = boot_rng.gen_range(0.5..1.5);
            sim.schedule(
                SimTime(config.vm_boot_secs * jitter),
                Ev::VmReady { vm: vm_id, pes: vm.vm_type.pes },
            )?;
        }
    }

    // Seed each VM's first crash; the rest of its schedule is chained
    // lazily as crashes fire (empty schedules when crashes are off).
    for (vm_id, _) in fleet.iter() {
        if let Some(&t0) = faults.crashes(vm_id).first() {
            sim.schedule(t0, Ev::Crash { vm: vm_id, idx: 0 })?;
        }
    }

    // Initial scheduling pass at t = 0.
    let pass_t0 = tracer.phase_start();
    scheduling_pass(
        sim,
        cache,
        fleet,
        scheduler,
        config,
        states,
        free_pes,
        &mut plan,
        &history,
        placed_on,
        fluct.as_mut(),
        &failures,
        &faults,
        &migrations,
        retries,
        vm_busy_secs,
        workflow_failed,
        ready,
        idle,
        running_on,
        &mut running,
        blacklisted,
        &mut stats,
        &mut repl,
        workflow,
        tracer,
    )?;
    if let Some(t0) = pass_t0 {
        sched_wall_secs += t0.elapsed().as_secs_f64();
    }

    let mut processed: u64 = 0;
    loop {
        if processed >= config.max_events {
            return Err(Error::Simulation(format!(
                "exceeded {} events; runaway simulation?",
                config.max_events
            )));
        }
        let ev = match sim.step() {
            StepOutcome::Idle => break,
            StepOutcome::Event(ev) => ev,
        };
        processed += 1;
        let now = sim.now();
        match ev {
            Ev::VmReady { vm, pes } => {
                free_pes[vm.index()] += pes;
                tracer.emit_with(|| TraceEvent::VmReady {
                    t: now.as_secs(),
                    vm: vm.index() as u32,
                    pes,
                });
            }
            Ev::Finished { ac, vm, started_at, ready_at, attempt, failed } if repl.active => {
                // Replication-aware completion: an attempt is live
                // while its `(attempt, vm)` pair is still in the
                // activation's group. The first *successful* finisher
                // wins the race and cancels every surviving sibling;
                // failed attempts just leave the group, and only the
                // last one out triggers the retry machinery.
                let i = ac.index();
                let live = states[i] == AcState::Running
                    && repl.groups[i].iter().any(|a| a.attempt == attempt && a.vm == vm);
                if live {
                    let v = vm.index();
                    let te = (now - started_at).as_secs();
                    let tf = (started_at - ready_at).as_secs().max(0.0);
                    tracer.emit_with(|| TraceEvent::Finish {
                        t: now.as_secs(),
                        ac: i as u32,
                        vm: v as u32,
                        attempt,
                        exec_secs: te,
                        queue_secs: tf,
                        failed,
                    });
                    free_pes[v] += 1;
                    vm_busy_secs[v] += te;
                    running -= 1;
                    repl.groups[i].retain(|a| !(a.attempt == attempt && a.vm == vm));
                    history.record(vm, te, tf);
                    scheduler.on_completion(
                        &CompletionInfo {
                            activation: ac,
                            vm,
                            queue_secs: tf,
                            exec_secs: te,
                            finished_at: now,
                            attempt,
                            failed,
                        },
                        &history,
                    );

                    if failed {
                        if repl.groups[i].is_empty() {
                            // The whole group failed: normal retry.
                            running_on[i] = None;
                            repl.resolve(i, now, false, true);
                            if retries[i] < config.max_retries && !workflow_failed {
                                retries[i] += 1;
                                stats.retries += 1;
                                tracer.emit_with(|| TraceEvent::Retry {
                                    t: now.as_secs(),
                                    ac: i as u32,
                                    next_attempt: retries[i],
                                });
                                let backoff = config.faults.backoff_secs(retries[i]);
                                if backoff > 0.0 {
                                    states[i] = AcState::Waiting;
                                    sim.schedule_in(SimTime(backoff), Ev::Wake { ac })?;
                                } else {
                                    states[i] = AcState::Ready { since: now };
                                }
                            } else {
                                states[i] = AcState::Failed;
                                workflow_failed = true;
                            }
                        }
                        // else: siblings still racing — no retry yet.
                    } else {
                        // Winner. Cancel every surviving sibling,
                        // billing its occupied PE-seconds as waste.
                        for a in repl.groups[i].clone() {
                            let cv = a.vm.index();
                            let billed = (now - a.started_at).as_secs();
                            tracer.emit_with(|| TraceEvent::Cancel {
                                t: now.as_secs(),
                                ac: i as u32,
                                vm: cv as u32,
                                attempt: a.attempt,
                            });
                            free_pes[cv] += 1;
                            vm_busy_secs[cv] += billed;
                            running -= 1;
                            repl.stats.cancelled += 1;
                            repl.add_waste(i, billed);
                        }
                        repl.groups[i].clear();
                        running_on[i] = None;
                        if attempt >= REPLICA_ATTEMPT_BASE {
                            repl.stats.replica_wins += 1;
                        }
                        repl.resolve(i, now, attempt >= REPLICA_ATTEMPT_BASE, false);
                        states[i] = AcState::Done;
                        placed_on[i] = Some(vm);
                        remaining -= 1;
                        records.push(ActivationRecord {
                            activation: ac,
                            vm,
                            ready_at,
                            started_at,
                            finished_at: now,
                            retries: retries[i],
                        });
                        for child in workflow.children(ac) {
                            if let AcState::Locked { remaining_parents } =
                                &mut states[child.index()]
                            {
                                *remaining_parents -= 1;
                                if *remaining_parents == 0 {
                                    states[child.index()] = AcState::Ready { since: now };
                                }
                            }
                        }
                    }
                }
            }
            Ev::Finished { ac, vm, started_at, ready_at, attempt, failed } => {
                let i = ac.index();
                // A completion is live only while this attempt is
                // still the one the engine believes is running: crash
                // orphaning bumps `retries`, so completions from a
                // dead VM arrive stale and are dropped wholly (no PE,
                // busy-time or history bookkeeping).
                let live = states[i] == AcState::Running
                    && attempt == retries[i]
                    && running_on[i] == Some(vm);
                if live {
                    running_on[i] = None;
                    running -= 1;
                    let te = (now - started_at).as_secs();
                    let tf = (started_at - ready_at).as_secs().max(0.0);
                    tracer.emit_with(|| TraceEvent::Finish {
                        t: now.as_secs(),
                        ac: i as u32,
                        vm: vm.index() as u32,
                        attempt,
                        exec_secs: te,
                        queue_secs: tf,
                        failed,
                    });
                    free_pes[vm.index()] += 1;
                    vm_busy_secs[vm.index()] += te;
                    history.record(vm, te, tf);
                    scheduler.on_completion(
                        &CompletionInfo {
                            activation: ac,
                            vm,
                            queue_secs: tf,
                            exec_secs: te,
                            finished_at: now,
                            attempt,
                            failed,
                        },
                        &history,
                    );

                    if failed {
                        if retries[i] < config.max_retries && !workflow_failed {
                            // Retry: the activation re-enters the
                            // ready queue, after backoff if enabled.
                            retries[i] += 1;
                            stats.retries += 1;
                            tracer.emit_with(|| TraceEvent::Retry {
                                t: now.as_secs(),
                                ac: i as u32,
                                next_attempt: retries[i],
                            });
                            let backoff = config.faults.backoff_secs(retries[i]);
                            if backoff > 0.0 {
                                states[i] = AcState::Waiting;
                                sim.schedule_in(SimTime(backoff), Ev::Wake { ac })?;
                            } else {
                                states[i] = AcState::Ready { since: now };
                            }
                        } else {
                            states[i] = AcState::Failed;
                            workflow_failed = true;
                        }
                    } else {
                        states[i] = AcState::Done;
                        placed_on[i] = Some(vm);
                        remaining -= 1;
                        records.push(ActivationRecord {
                            activation: ac,
                            vm,
                            ready_at,
                            started_at,
                            finished_at: now,
                            retries: retries[i],
                        });
                        // Unlock children.
                        for child in workflow.children(ac) {
                            if let AcState::Locked { remaining_parents } =
                                &mut states[child.index()]
                            {
                                *remaining_parents -= 1;
                                if *remaining_parents == 0 {
                                    states[child.index()] = AcState::Ready { since: now };
                                }
                            }
                        }
                    }
                }
            }
            Ev::Crash { vm, idx } => {
                let v = vm.index();
                if !blacklisted[v] {
                    tracer.emit_with(|| TraceEvent::Fault {
                        t: now.as_secs(),
                        kind: "crash",
                        ac: -1,
                        vm: v as u32,
                    });
                    stats.crashes += 1;
                    // Everything on the VM — free elements and the
                    // elements held by in-flight attempts — comes back
                    // at repair time; the attempts themselves are lost.
                    let mut restore = free_pes[v];
                    free_pes[v] = 0;
                    if repl.active {
                        // Group-aware orphaning: only the attempts on
                        // the crashed VM are lost; surviving siblings
                        // keep racing and no retry fires unless the
                        // crash drained the whole group.
                        for i in 0..n {
                            if states[i] != AcState::Running {
                                continue;
                            }
                            // At most one attempt per VM per group by
                            // construction (replica placement skips
                            // VMs already hosting the group).
                            let Some(pos) = repl.groups[i].iter().position(|a| a.vm == vm) else {
                                continue;
                            };
                            repl.groups[i].remove(pos);
                            restore += 1;
                            running -= 1;
                            stats.orphaned += 1;
                            tracer.emit_with(|| TraceEvent::Fault {
                                t: now.as_secs(),
                                kind: "crash",
                                ac: i as i64,
                                vm: v as u32,
                            });
                            if repl.groups[i].is_empty() {
                                running_on[i] = None;
                                repl.resolve(i, now, false, true);
                                if retries[i] < config.max_retries && !workflow_failed {
                                    retries[i] += 1;
                                    stats.reschedules += 1;
                                    tracer.emit_with(|| TraceEvent::Reschedule {
                                        t: now.as_secs(),
                                        ac: i as u32,
                                        vm: v as u32,
                                        next_attempt: retries[i],
                                    });
                                    let backoff = config.faults.backoff_secs(retries[i]);
                                    if backoff > 0.0 {
                                        states[i] = AcState::Waiting;
                                        sim.schedule_in(
                                            SimTime(backoff),
                                            Ev::Wake { ac: ActivationId::from_index(i) },
                                        )?;
                                    } else {
                                        states[i] = AcState::Ready { since: now };
                                    }
                                } else {
                                    states[i] = AcState::Failed;
                                    workflow_failed = true;
                                }
                            }
                        }
                    }
                    for i in 0..n {
                        if repl.active {
                            // Handled by the group-aware loop above.
                            break;
                        }
                        if states[i] == AcState::Running && running_on[i] == Some(vm) {
                            restore += 1;
                            running -= 1;
                            running_on[i] = None;
                            stats.orphaned += 1;
                            tracer.emit_with(|| TraceEvent::Fault {
                                t: now.as_secs(),
                                kind: "crash",
                                ac: i as i64,
                                vm: v as u32,
                            });
                            if retries[i] < config.max_retries && !workflow_failed {
                                retries[i] += 1;
                                stats.reschedules += 1;
                                tracer.emit_with(|| TraceEvent::Reschedule {
                                    t: now.as_secs(),
                                    ac: i as u32,
                                    vm: v as u32,
                                    next_attempt: retries[i],
                                });
                                let backoff = config.faults.backoff_secs(retries[i]);
                                if backoff > 0.0 {
                                    states[i] = AcState::Waiting;
                                    sim.schedule_in(
                                        SimTime(backoff),
                                        Ev::Wake { ac: ActivationId::from_index(i) },
                                    )?;
                                } else {
                                    states[i] = AcState::Ready { since: now };
                                }
                            } else {
                                states[i] = AcState::Failed;
                                workflow_failed = true;
                            }
                        }
                    }
                    vm_faults[v] += 1;
                    if config.faults.blacklist_after > 0
                        && vm_faults[v] >= config.faults.blacklist_after
                    {
                        blacklisted[v] = true;
                        stats.blacklisted += 1;
                        tracer.emit_with(|| TraceEvent::Blacklist {
                            t: now.as_secs(),
                            vm: v as u32,
                            faults: vm_faults[v],
                        });
                    } else {
                        sim.schedule_in(
                            SimTime(config.faults.repair_secs),
                            Ev::Repair { vm, pes: restore },
                        )?;
                        if let Some(&t_next) = faults.crashes(vm).get(idx + 1) {
                            sim.schedule(t_next, Ev::Crash { vm, idx: idx + 1 })?;
                        }
                    }
                }
            }
            Ev::Repair { vm, pes } => {
                let v = vm.index();
                if !blacklisted[v] {
                    free_pes[v] += pes;
                    stats.recoveries += 1;
                    tracer.emit_with(|| TraceEvent::Recover {
                        t: now.as_secs(),
                        vm: v as u32,
                        pes,
                    });
                }
            }
            Ev::TimedOut { ac, vm, started_at, ready_at, attempt } if repl.active => {
                // Group-aware timeout: the timed-out attempt dies and
                // is billed like a failed completion, but surviving
                // siblings keep racing; the reschedule machinery only
                // fires when the group drains.
                let i = ac.index();
                let live = states[i] == AcState::Running
                    && repl.groups[i].iter().any(|a| a.attempt == attempt && a.vm == vm);
                if live {
                    let v = vm.index();
                    let te = (now - started_at).as_secs();
                    let tf = (started_at - ready_at).as_secs().max(0.0);
                    tracer.emit_with(|| TraceEvent::Fault {
                        t: now.as_secs(),
                        kind: "timeout",
                        ac: i as i64,
                        vm: v as u32,
                    });
                    stats.timeouts += 1;
                    free_pes[v] += 1;
                    vm_busy_secs[v] += te;
                    running -= 1;
                    repl.groups[i].retain(|a| !(a.attempt == attempt && a.vm == vm));
                    history.record(vm, te, tf);
                    scheduler.on_completion(
                        &CompletionInfo {
                            activation: ac,
                            vm,
                            queue_secs: tf,
                            exec_secs: te,
                            finished_at: now,
                            attempt,
                            failed: true,
                        },
                        &history,
                    );
                    vm_faults[v] += 1;
                    if config.faults.blacklist_after > 0
                        && vm_faults[v] >= config.faults.blacklist_after
                        && !blacklisted[v]
                    {
                        blacklisted[v] = true;
                        stats.blacklisted += 1;
                        tracer.emit_with(|| TraceEvent::Blacklist {
                            t: now.as_secs(),
                            vm: v as u32,
                            faults: vm_faults[v],
                        });
                    }
                    if repl.groups[i].is_empty() {
                        running_on[i] = None;
                        repl.resolve(i, now, false, true);
                        if retries[i] < config.max_retries && !workflow_failed {
                            retries[i] += 1;
                            stats.reschedules += 1;
                            tracer.emit_with(|| TraceEvent::Reschedule {
                                t: now.as_secs(),
                                ac: i as u32,
                                vm: v as u32,
                                next_attempt: retries[i],
                            });
                            let backoff = config.faults.backoff_secs(retries[i]);
                            if backoff > 0.0 {
                                states[i] = AcState::Waiting;
                                sim.schedule_in(SimTime(backoff), Ev::Wake { ac })?;
                            } else {
                                states[i] = AcState::Ready { since: now };
                            }
                        } else {
                            states[i] = AcState::Failed;
                            workflow_failed = true;
                        }
                    }
                }
            }
            Ev::TimedOut { ac, vm, started_at, ready_at, attempt } => {
                let i = ac.index();
                let live = states[i] == AcState::Running
                    && attempt == retries[i]
                    && running_on[i] == Some(vm);
                if live {
                    let v = vm.index();
                    // The attempt consumed the VM for the whole
                    // timeout window, so busy time, history and the
                    // scheduler all observe it as a failed attempt —
                    // the RL penalty hook fires through the normal
                    // completion path.
                    let te = (now - started_at).as_secs();
                    let tf = (started_at - ready_at).as_secs().max(0.0);
                    tracer.emit_with(|| TraceEvent::Fault {
                        t: now.as_secs(),
                        kind: "timeout",
                        ac: i as i64,
                        vm: v as u32,
                    });
                    stats.timeouts += 1;
                    free_pes[v] += 1;
                    vm_busy_secs[v] += te;
                    running_on[i] = None;
                    running -= 1;
                    history.record(vm, te, tf);
                    scheduler.on_completion(
                        &CompletionInfo {
                            activation: ac,
                            vm,
                            queue_secs: tf,
                            exec_secs: te,
                            finished_at: now,
                            attempt,
                            failed: true,
                        },
                        &history,
                    );
                    vm_faults[v] += 1;
                    if config.faults.blacklist_after > 0
                        && vm_faults[v] >= config.faults.blacklist_after
                        && !blacklisted[v]
                    {
                        blacklisted[v] = true;
                        stats.blacklisted += 1;
                        tracer.emit_with(|| TraceEvent::Blacklist {
                            t: now.as_secs(),
                            vm: v as u32,
                            faults: vm_faults[v],
                        });
                    }
                    if retries[i] < config.max_retries && !workflow_failed {
                        retries[i] += 1;
                        stats.reschedules += 1;
                        tracer.emit_with(|| TraceEvent::Reschedule {
                            t: now.as_secs(),
                            ac: i as u32,
                            vm: v as u32,
                            next_attempt: retries[i],
                        });
                        let backoff = config.faults.backoff_secs(retries[i]);
                        if backoff > 0.0 {
                            states[i] = AcState::Waiting;
                            sim.schedule_in(SimTime(backoff), Ev::Wake { ac })?;
                        } else {
                            states[i] = AcState::Ready { since: now };
                        }
                    } else {
                        states[i] = AcState::Failed;
                        workflow_failed = true;
                    }
                }
            }
            Ev::Wake { ac } => {
                let i = ac.index();
                if states[i] == AcState::Waiting {
                    states[i] = AcState::Ready { since: now };
                }
            }
        }

        // With faults active the heap can hold crash/repair events far
        // beyond the workflow's lifetime; stop as soon as the outcome
        // is decided (success, or failure with all attempts drained).
        // Gated so fault-free runs keep their historical drain
        // semantics byte-for-byte.
        if faults_active && (remaining == 0 || (workflow_failed && running == 0)) {
            break;
        }

        let pass_t0 = tracer.phase_start();
        scheduling_pass(
            sim,
            cache,
            fleet,
            scheduler,
            config,
            states,
            free_pes,
            &mut plan,
            &history,
            placed_on,
            fluct.as_mut(),
            &failures,
            &faults,
            &migrations,
            retries,
            vm_busy_secs,
            workflow_failed,
            ready,
            idle,
            running_on,
            &mut running,
            blacklisted,
            &mut stats,
            &mut repl,
            workflow,
            tracer,
        )?;
        if let Some(t0) = pass_t0 {
            sched_wall_secs += t0.elapsed().as_secs_f64();
        }
    }

    let success = remaining == 0 && !workflow_failed;
    let makespan = sim.now();
    if tracer.timing_enabled() {
        tracer.emit_phase_secs("sim.sched", sched_wall_secs);
        tracer.emit_phase("sim.total", sim_t0);
    }
    tracer.emit_with(|| TraceEvent::SimEnd {
        t: makespan.as_secs(),
        success,
        events: processed,
        queue_pushes: sim.pushes(),
        max_queue_depth: sim.max_pending() as u64,
    });
    let result = SimResult {
        makespan,
        success,
        records,
        plan,
        history,
        vm_busy_secs: vm_busy_secs.clone(),
        events_processed: processed,
        fault_stats: stats,
        repl_stats: repl.stats,
        repl_decisions: repl.decisions,
    };
    scheduler.on_episode_end(&result);
    Ok(result)
}

/// While the workflow is *available*, consult the scheduler and apply
/// assignments. When `halted` (a terminal failure occurred), no new
/// work is started — running activations just drain.
#[allow(clippy::too_many_arguments)]
fn scheduling_pass(
    sim: &mut Simulation<Ev>,
    cache: &WorkflowCache,
    fleet: &Fleet,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    states: &mut [AcState],
    free_pes: &mut [u32],
    plan: &mut Plan,
    history: &ExecHistory,
    placed_on: &[Option<VmId>],
    fluct: &mut dyn FluctuationModel,
    failures: &FailureModel,
    faults: &FaultModel,
    migrations: &MigrationModel,
    retries: &[u32],
    vm_busy_secs: &[f64],
    halted: bool,
    ready: &mut Vec<ActivationId>,
    idle: &mut Vec<(VmId, u32)>,
    running_on: &mut [Option<VmId>],
    running: &mut usize,
    blacklisted: &[bool],
    stats: &mut FaultStats,
    repl: &mut ReplState,
    workflow: &Workflow,
    tracer: &mut Tracer<'_>,
) -> Result<()> {
    if halted {
        return Ok(());
    }
    let mut first_consultation = true;
    loop {
        ready.clear();
        ready.extend(
            states
                .iter()
                .enumerate()
                .filter(|&(_i, s)| matches!(s, AcState::Ready { .. }))
                .map(|(i, _s)| ActivationId::from_index(i)),
        );
        idle.clear();
        idle.extend(
            free_pes
                .iter()
                .enumerate()
                .filter(|&(i, &f)| f > 0 && !blacklisted[i])
                .map(|(i, &f)| (VmId::from_index(i), f)),
        );
        if ready.is_empty() || idle.is_empty() {
            return Ok(()); // workflow is *unavailable*: implicit do-nothing
        }
        if first_consultation {
            first_consultation = false;
            tracer.emit_with(|| TraceEvent::Sched {
                t: sim.now().as_secs(),
                ready: ready.len() as u32,
                idle_pes: idle.iter().map(|&(_, f)| f).sum(),
            });
        }
        let ctx =
            SchedulerContext { now: sim.now(), workflow, fleet, ready, idle_slots: idle, history };
        match scheduler.decide(&ctx) {
            Decision::DoNothing => return Ok(()),
            Decision::Assign { activation, vm } => {
                let i = activation.index();
                let since = match states.get(i) {
                    Some(AcState::Ready { since }) => *since,
                    _ => {
                        return Err(Error::InvalidPlan(format!(
                            "scheduler assigned non-ready activation {activation}"
                        )))
                    }
                };
                let v = vm.index();
                if v >= free_pes.len() || free_pes[v] == 0 {
                    return Err(Error::InvalidPlan(format!(
                        "scheduler assigned {activation} to busy/unknown {vm}"
                    )));
                }
                free_pes[v] -= 1;
                states[i] = AcState::Running;
                plan.assign(activation, vm);

                let now = sim.now();
                tracer.emit_with(|| TraceEvent::Start {
                    t: now.as_secs(),
                    ac: i as u32,
                    vm: v as u32,
                    attempt: retries[i],
                    ready_since: since.as_secs(),
                });
                let mut duration = execution_secs(
                    cache,
                    workflow,
                    fleet,
                    config,
                    placed_on,
                    fluct,
                    migrations,
                    activation,
                    vm,
                    now,
                    vm_busy_secs[v],
                );
                let slowdown = faults.slowdown(activation, vm, retries[i]);
                if slowdown > 1.0 {
                    duration *= slowdown;
                    stats.stragglers += 1;
                    tracer.emit_with(|| TraceEvent::Fault {
                        t: now.as_secs(),
                        kind: "straggler",
                        ac: i as i64,
                        vm: v as u32,
                    });
                }
                running_on[i] = Some(vm);
                *running += 1;
                let timeout = config.faults.timeout_secs;
                if timeout > 0.0 && duration > timeout {
                    // The attempt is doomed upfront (both its length
                    // and the bound are known now), so the kill event
                    // replaces the completion event entirely.
                    sim.schedule_in(
                        SimTime(timeout),
                        Ev::TimedOut {
                            ac: activation,
                            vm,
                            started_at: now,
                            ready_at: since,
                            attempt: retries[i],
                        },
                    )?;
                } else {
                    let failed = config.failure_prob > 0.0
                        && failures.draw(activation, vm, retries[i]) == Attempt::Fails;
                    sim.schedule_in(
                        SimTime(duration),
                        Ev::Finished {
                            ac: activation,
                            vm,
                            started_at: now,
                            ready_at: since,
                            attempt: retries[i],
                            failed,
                        },
                    )?;
                }

                if repl.active {
                    // The primary's completion event is queued first,
                    // so exact finish-time ties resolve in its favor
                    // (the kernel pops same-time events FIFO).
                    repl.groups[i].clear();
                    repl.groups[i].push(RepAttempt { attempt: retries[i], vm, started_at: now });
                    let pressure = blacklisted.iter().filter(|&&b| b).count();
                    let features = ReplFeatures {
                        attempt: retries[i],
                        blacklist_frac: pressure as f64 / fleet.len() as f64,
                        slack_frac: if repl.cp_total > 0.0 {
                            (cache.rank(i) / repl.cp_total).clamp(0.0, 1.0)
                        } else {
                            0.0
                        },
                    };
                    let bucket = features.bucket();
                    let requested = config.replication.extra_replicas(&features);
                    let mut launched = 0u32;
                    // Replica placement: round-robin scan outward from
                    // the primary's VM, one replica per distinct VM
                    // (co-located replicas share the fault domain and
                    // hedge nothing).
                    let nv = fleet.len();
                    let mut offset = 1;
                    while launched < requested && offset < nv {
                        let cv = (v + offset) % nv;
                        offset += 1;
                        if blacklisted[cv]
                            || free_pes[cv] == 0
                            || repl.groups[i].iter().any(|a| a.vm.index() == cv)
                        {
                            continue;
                        }
                        let cvm = VmId::from_index(cv);
                        let attempt_id = REPLICA_ATTEMPT_BASE + repl.rep_seq[i];
                        repl.rep_seq[i] += 1;
                        free_pes[cv] -= 1;
                        *running += 1;
                        tracer.emit_with(|| TraceEvent::Replicate {
                            t: now.as_secs(),
                            ac: i as u32,
                            vm: cv as u32,
                            attempt: attempt_id,
                            ready_since: since.as_secs(),
                        });
                        let mut rdur = execution_secs(
                            cache,
                            workflow,
                            fleet,
                            config,
                            placed_on,
                            fluct,
                            migrations,
                            activation,
                            cvm,
                            now,
                            vm_busy_secs[cv],
                        );
                        let rslow = faults.slowdown(activation, cvm, attempt_id);
                        if rslow > 1.0 {
                            rdur *= rslow;
                            stats.stragglers += 1;
                            tracer.emit_with(|| TraceEvent::Fault {
                                t: now.as_secs(),
                                kind: "straggler",
                                ac: i as i64,
                                vm: cv as u32,
                            });
                        }
                        repl.groups[i].push(RepAttempt {
                            attempt: attempt_id,
                            vm: cvm,
                            started_at: now,
                        });
                        if timeout > 0.0 && rdur > timeout {
                            sim.schedule_in(
                                SimTime(timeout),
                                Ev::TimedOut {
                                    ac: activation,
                                    vm: cvm,
                                    started_at: now,
                                    ready_at: since,
                                    attempt: attempt_id,
                                },
                            )?;
                        } else {
                            let rfailed = config.failure_prob > 0.0
                                && failures.draw(activation, cvm, attempt_id) == Attempt::Fails;
                            sim.schedule_in(
                                SimTime(rdur),
                                Ev::Finished {
                                    ac: activation,
                                    vm: cvm,
                                    started_at: now,
                                    ready_at: since,
                                    attempt: attempt_id,
                                    failed: rfailed,
                                },
                            )?;
                        }
                        repl.stats.launched += 1;
                        launched += 1;
                    }
                    repl.pending[i] = Some(PendingDecision {
                        bucket: bucket as u8,
                        requested: requested as u8,
                        launched: launched as u8,
                        primary_secs: duration,
                        start_t: now,
                        waste_secs: 0.0,
                    });
                }
            }
        }
    }
}

/// Wall-clock seconds one attempt takes: stage-in transfers + compute
/// (scaled by the fluctuation factor) + migration stalls.
#[allow(clippy::too_many_arguments)]
fn execution_secs(
    cache: &WorkflowCache,
    workflow: &Workflow,
    fleet: &Fleet,
    config: &SimConfig,
    placed_on: &[Option<VmId>],
    fluct: &mut dyn FluctuationModel,
    migrations: &MigrationModel,
    ac: ActivationId,
    vm: VmId,
    now: SimTime,
    vm_busy_so_far_secs: f64,
) -> f64 {
    // Transfers: parent outputs materialized on other VMs must cross
    // the network; co-located files are free. Per-edge byte counts and
    // the producer-less stage-in volume are precomputed in the cache.
    let i = ac.index();
    let mut transfer_bytes: u64 = 0;
    for &(parent, bytes) in cache.parents(i) {
        if placed_on[parent as usize] != Some(vm) {
            transfer_bytes += bytes;
        }
    }
    if config.stage_in_inputs {
        // Workflow-input files (no producer) come from shared storage.
        transfer_bytes += cache.external_input_bytes(i);
    }
    let transfer_secs = transfer_bytes as f64 / config.bandwidth_bytes_per_sec;

    let vm_type = &fleet.vm(vm).vm_type;
    let base = vm_type.exec_secs(workflow.activations[ac].length_mi);
    let factor = fluct.factor(vm, now.as_secs());
    let mut compute_secs = base * factor;
    if config.burst_throttling && vm_type.baseline_fraction < 1.0 {
        let credits =
            vm_type.burst_credit_secs_per_pe * vm_type.pes as f64 * config.burst_credit_scale;
        if vm_busy_so_far_secs >= credits {
            // Credits exhausted: the whole execution runs at baseline.
            compute_secs /= vm_type.baseline_fraction;
        } else if vm_busy_so_far_secs + compute_secs > credits {
            // Burst covers only the head of the execution.
            let full_speed = credits - vm_busy_so_far_secs;
            let remainder = compute_secs - full_speed;
            compute_secs = full_speed + remainder / vm_type.baseline_fraction;
        }
    }

    let pre_stall = transfer_secs + compute_secs;
    let stall = migrations.stall_secs(vm, now, now + SimTime(pre_stall));
    pre_stall + stall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    /// Greedy FIFO: first ready activation onto the first idle VM.
    struct Fifo;
    impl Scheduler for Fifo {
        fn name(&self) -> &str {
            "fifo"
        }
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
            match (ctx.ready.first(), ctx.idle_slots.first()) {
                (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
                _ => Decision::DoNothing,
            }
        }
    }

    fn montage() -> Workflow {
        workflow::montage50::montage50()
    }

    #[test]
    fn fifo_completes_montage() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut s = Fifo;
        let res = simulate(
            &wf,
            &fleet,
            &mut s,
            &SimConfig::deterministic(),
            SeedDerivation::new(1),
            None,
        )
        .unwrap();
        assert!(res.success);
        assert_eq!(res.records.len(), 50);
        assert!(res.plan.is_complete());
        assert!(res.makespan.as_secs() > 0.0);
    }

    #[test]
    fn makespan_at_least_critical_path_over_fastest_vm() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut s = Fifo;
        let res = simulate(
            &wf,
            &fleet,
            &mut s,
            &SimConfig::deterministic(),
            SeedDerivation::new(2),
            None,
        )
        .unwrap();
        // Fastest element is 1250 MIPS ⇒ lower bound = CP(ref secs) × 1000/1250.
        let bound = wf.reference_critical_path_secs() * (1000.0 / 1250.0);
        assert!(
            res.makespan.as_secs() >= bound - 1e-6,
            "makespan {} below bound {bound}",
            res.makespan
        );
    }

    #[test]
    fn dependencies_respected_in_records() {
        let wf = montage();
        let fleet = Fleet::paper_32_vcpus();
        let mut s = Fifo;
        let res = simulate(
            &wf,
            &fleet,
            &mut s,
            &SimConfig::deterministic(),
            SeedDerivation::new(3),
            None,
        )
        .unwrap();
        for rec in &res.records {
            for parent in wf.parents(rec.activation) {
                let p = res.record_for(parent).expect("parent must have completed");
                assert!(
                    p.finished_at <= rec.started_at + SimTime(1e-9),
                    "{} started before parent {} finished",
                    rec.activation,
                    parent
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::default(); // includes mild fluctuation
        let r1 = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(7), None).unwrap();
        let r2 = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(7), None).unwrap();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.plan, r2.plan);
        let r3 = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(8), None).unwrap();
        assert_ne!(r1.makespan, r3.makespan, "different seed should perturb");
    }

    #[test]
    fn certain_failure_marks_workflow_failed() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.failure_prob = 1.0;
        cfg.max_retries = 1;
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(4), None).unwrap();
        assert!(!res.success);
        assert!(res.records.len() < 50);
    }

    #[test]
    fn retries_allow_recovery_from_rare_failures() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.failure_prob = 0.05;
        cfg.max_retries = 10;
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(5), None).unwrap();
        assert!(res.success, "with generous retries the workflow completes");
        assert!(res.records.iter().any(|r| r.retries > 0) || res.events_processed == 50);
    }

    #[test]
    fn plan_replay_reproduces_assignments() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::deterministic();
        let first = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(6), None).unwrap();
        let mut replay = crate::plan::FixedPlanScheduler::new(first.plan.clone());
        let second =
            simulate(&wf, &fleet, &mut replay, &cfg, SeedDerivation::new(6), None).unwrap();
        assert!(second.success);
        assert_eq!(first.plan, second.plan, "replay must follow the plan exactly");
    }

    #[test]
    fn empty_fleet_rejected() {
        let wf = montage();
        let fleet = Fleet::new();
        let err = simulate(
            &wf,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no VMs"));
    }

    #[test]
    fn history_seed_carries_over() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::deterministic();
        let first = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(9), None).unwrap();
        let res =
            simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(9), Some(&first.history))
                .unwrap();
        assert_eq!(res.history.total_samples(), 2 * first.history.total_samples());
    }

    #[test]
    fn migration_stalls_lengthen_makespan() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let base = SimConfig::deterministic();
        let quiet = simulate(&wf, &fleet, &mut Fifo, &base, SeedDerivation::new(10), None).unwrap();
        let mut noisy_cfg = SimConfig::deterministic();
        noisy_cfg.migration = MigrationKind::Poisson {
            rate_per_hour: 60.0,
            min_downtime_secs: 5.0,
            max_downtime_secs: 15.0,
        };
        let noisy =
            simulate(&wf, &fleet, &mut Fifo, &noisy_cfg, SeedDerivation::new(10), None).unwrap();
        assert!(noisy.makespan > quiet.makespan);
    }

    #[test]
    fn boot_delay_pushes_start_times_and_makespan() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        let base = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(20), None).unwrap();
        cfg.vm_boot_secs = 60.0;
        let delayed =
            simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(20), None).unwrap();
        assert!(delayed.success);
        // Nothing starts before the earliest possible boot (30 s with
        // the ±50 % stagger).
        for rec in &delayed.records {
            assert!(rec.started_at.as_secs() >= 30.0 - 1e-9);
        }
        assert!(delayed.makespan > base.makespan);
    }

    #[test]
    fn reused_arena_and_cache_match_fresh_simulate_bitwise() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cache = WorkflowCache::new(&wf).unwrap();
        let mut arena = SimArena::new();
        // Mixed configs exercise boot events, fluctuation and failures
        // so the arena is left dirty in different ways between runs.
        let noisy = SimConfig {
            vm_boot_secs: 30.0,
            failure_prob: 0.05,
            max_retries: 10,
            ..SimConfig::default()
        };
        let configs = [SimConfig::deterministic(), noisy, SimConfig::default()];
        for round in 0..2 {
            for (c, cfg) in configs.iter().enumerate() {
                let seeds = SeedDerivation::new(40 + (round * 3 + c) as u64);
                let fresh = simulate(&wf, &fleet, &mut Fifo, cfg, seeds, None).unwrap();
                let reused =
                    simulate_cached(&wf, &cache, &fleet, &mut Fifo, cfg, seeds, None, &mut arena)
                        .unwrap();
                assert_eq!(fresh.makespan, reused.makespan);
                assert_eq!(fresh.plan, reused.plan);
                assert_eq!(fresh.records, reused.records);
                assert_eq!(fresh.vm_busy_secs, reused.vm_busy_secs);
                assert_eq!(fresh.events_processed, reused.events_processed);
            }
        }
    }

    #[test]
    fn mismatched_cache_is_rejected() {
        let wf = montage();
        let other = workflow::generators::layered::generate(
            &workflow::generators::layered::LayeredParams::default(),
        )
        .unwrap();
        let fleet = Fleet::paper_16_vcpus();
        let cache = WorkflowCache::new(&other).unwrap();
        if cache.len() == wf.len() {
            return; // degenerate: same size, check not applicable
        }
        let mut arena = SimArena::new();
        let err = simulate_cached(
            &wf,
            &cache,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(1),
            None,
            &mut arena,
        )
        .unwrap_err();
        assert!(err.to_string().contains("different workflow"));
    }

    #[test]
    fn phase_timers_are_opt_in_and_skipped_by_event_diff() {
        use obs::{EventDiff, MemSink, Tracer};
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig::deterministic();
        let seeds = SeedDerivation::new(12);
        let mut plain = MemSink::new();
        simulate_traced(&wf, &fleet, &mut Fifo, &cfg, seeds, None, &mut Tracer::new(&mut plain))
            .unwrap();
        assert!(
            !plain.as_str().contains("\"ev\":\"phase\""),
            "default traces must stay wall-clock-free (byte reproducibility)"
        );
        let mut timed = MemSink::new();
        simulate_traced(
            &wf,
            &fleet,
            &mut Fifo,
            &cfg,
            seeds,
            None,
            &mut Tracer::new(&mut timed).with_timing(true),
        )
        .unwrap();
        let trace = timed.as_str();
        assert!(trace.contains("\"name\":\"sim.sched\""), "{trace}");
        assert!(trace.contains("\"name\":\"sim.total\""), "{trace}");
        // The event-level diff treats the timed trace as identical to
        // the plain one — phase lines are the only difference.
        assert!(matches!(
            obs::trace_diff_events(plain.as_str(), trace),
            EventDiff::Identical { .. }
        ));
    }

    #[test]
    fn crashes_orphan_reschedule_and_recover() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.max_retries = 20;
        cfg.faults = cloud::FaultConfig {
            vm_mtbf_hours: 0.02, // ~one crash per VM per 72 s
            repair_secs: 10.0,
            ..cloud::FaultConfig::none()
        };
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(31), None).unwrap();
        assert!(res.fault_stats.crashes > 0, "{:?}", res.fault_stats);
        assert!(res.fault_stats.recoveries > 0, "{:?}", res.fault_stats);
        assert!(res.fault_stats.orphaned > 0, "{:?}", res.fault_stats);
        assert_eq!(res.fault_stats.orphaned, res.fault_stats.reschedules);
        assert!(res.success, "generous retries must survive crashes");
        assert_eq!(res.records.len(), 50);
        // Work conservation: every activation completed exactly once.
        let mut seen = std::collections::HashSet::new();
        for r in &res.records {
            assert!(seen.insert(r.activation), "{} finished twice", r.activation);
        }
    }

    #[test]
    fn blacklist_after_repeated_crashes() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.max_retries = 50;
        cfg.faults = cloud::FaultConfig {
            vm_mtbf_hours: 0.01,
            repair_secs: 5.0,
            blacklist_after: 2,
            ..cloud::FaultConfig::none()
        };
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(32), None).unwrap();
        assert!(res.fault_stats.blacklisted > 0, "{:?}", res.fault_stats);
        assert!(res.fault_stats.blacklisted <= fleet.len() as u64);
    }

    #[test]
    fn tight_timeout_kills_attempts_and_fails_workflow() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.faults = cloud::FaultConfig { timeout_secs: 0.5, ..cloud::FaultConfig::none() };
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(33), None).unwrap();
        assert!(res.fault_stats.timeouts > 0, "{:?}", res.fault_stats);
        assert!(!res.success, "a 0.5 s timeout must exhaust someone's retries");
        // Timed-out attempts still bill the VM for the timeout window.
        assert!(res.vm_busy_secs.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn stragglers_slow_the_run_down() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let base = SimConfig::deterministic();
        let clean = simulate(&wf, &fleet, &mut Fifo, &base, SeedDerivation::new(34), None).unwrap();
        let mut cfg = SimConfig::deterministic();
        cfg.faults = cloud::FaultConfig {
            straggler_prob: 0.3,
            straggler_factor: 4.0,
            ..cloud::FaultConfig::none()
        };
        let slow = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(34), None).unwrap();
        assert!(slow.fault_stats.stragglers > 0, "{:?}", slow.fault_stats);
        assert!(slow.makespan > clean.makespan);
        assert!(slow.success);
    }

    #[test]
    fn backoff_delays_retries_but_preserves_success() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = SimConfig::deterministic();
        cfg.failure_prob = 0.2;
        cfg.max_retries = 30;
        let immediate =
            simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(35), None).unwrap();
        cfg.faults = cloud::FaultConfig { backoff_base_secs: 10.0, ..cloud::FaultConfig::none() };
        let delayed =
            simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(35), None).unwrap();
        assert!(immediate.success && delayed.success);
        assert!(delayed.fault_stats.retries > 0);
        // Same pure failure draws, so the same retry pressure — but
        // each retry now sits out its backoff first.
        assert!(delayed.makespan > immediate.makespan);
    }

    #[test]
    fn fault_runs_are_seed_deterministic() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig {
            failure_prob: 0.1,
            max_retries: 25,
            faults: cloud::FaultConfig {
                vm_mtbf_hours: 0.05,
                repair_secs: 20.0,
                straggler_prob: 0.1,
                straggler_factor: 2.0,
                timeout_secs: 2000.0,
                backoff_base_secs: 1.0,
                blacklist_after: 4,
                ..cloud::FaultConfig::none()
            },
            ..SimConfig::default()
        };
        let a = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(36), None).unwrap();
        let b = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(36), None).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.records, b.records);
        assert_eq!(a.fault_stats, b.fault_stats);
        let c = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(37), None).unwrap();
        assert_ne!(a.makespan, c.makespan, "different seed should perturb fault runs");
    }

    #[test]
    fn reused_arena_matches_fresh_under_faults() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let cache = WorkflowCache::new(&wf).unwrap();
        let mut arena = SimArena::new();
        let cfg = SimConfig {
            max_retries: 20,
            faults: cloud::FaultConfig {
                vm_mtbf_hours: 0.05,
                repair_secs: 15.0,
                straggler_prob: 0.1,
                straggler_factor: 3.0,
                backoff_base_secs: 0.5,
                blacklist_after: 3,
                ..cloud::FaultConfig::none()
            },
            ..SimConfig::default()
        };
        for round in 0..3 {
            let seeds = SeedDerivation::new(60 + round);
            let fresh = simulate(&wf, &fleet, &mut Fifo, &cfg, seeds, None).unwrap();
            let reused =
                simulate_cached(&wf, &cache, &fleet, &mut Fifo, &cfg, seeds, None, &mut arena)
                    .unwrap();
            assert_eq!(fresh.makespan, reused.makespan);
            assert_eq!(fresh.records, reused.records);
            assert_eq!(fresh.fault_stats, reused.fault_stats);
            assert_eq!(fresh.events_processed, reused.events_processed);
        }
    }

    fn heavy_faults() -> SimConfig {
        let mut cfg = SimConfig::deterministic();
        cfg.max_retries = 20;
        cfg.faults = cloud::FaultConfig {
            straggler_prob: 0.25,
            straggler_factor: 6.0,
            vm_mtbf_hours: 0.05,
            repair_secs: 20.0,
            ..cloud::FaultConfig::none()
        };
        cfg
    }

    #[test]
    fn replication_runs_are_byte_deterministic() {
        use obs::{MemSink, Tracer};
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = heavy_faults();
        cfg.replication = cloud::ReplicationPolicy::Static { k: 2 };
        let run = || {
            let mut sink = MemSink::new();
            let res = simulate_traced(
                &wf,
                &fleet,
                &mut Fifo,
                &cfg,
                SeedDerivation::new(2019),
                None,
                &mut Tracer::new(&mut sink),
            )
            .unwrap();
            (res, sink.as_str().to_string())
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(ta, tb, "replicated traces must be byte-identical");
        assert_eq!(a.repl_stats, b.repl_stats);
        assert_eq!(a.repl_decisions, b.repl_decisions);
        assert!(a.repl_stats.launched > 0, "{:?}", a.repl_stats);
        assert!(ta.contains("\"ev\":\"replicate\""));
    }

    #[test]
    fn static_replication_hedges_stragglers() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let off = heavy_faults();
        let mut rep = heavy_faults();
        rep.replication = cloud::ReplicationPolicy::Static { k: 2 };
        let seeds = SeedDerivation::new(2019);
        let base = simulate(&wf, &fleet, &mut Fifo, &off, seeds, None).unwrap();
        let hedged = simulate(&wf, &fleet, &mut Fifo, &rep, seeds, None).unwrap();
        assert!(base.success && hedged.success);
        assert_eq!(base.repl_stats, crate::result::ReplStats::default());
        assert!(base.repl_decisions.is_empty());
        assert!(hedged.repl_stats.launched > 0);
        assert!(hedged.repl_stats.replica_wins > 0, "{:?}", hedged.repl_stats);
        assert!(hedged.repl_stats.waste_secs > 0.0);
        assert!(
            hedged.makespan < base.makespan,
            "replication must beat {} (got {})",
            base.makespan,
            hedged.makespan
        );
        // Work conservation: every activation still completes once.
        let mut seen = std::collections::HashSet::new();
        for r in &hedged.records {
            assert!(seen.insert(r.activation), "{} finished twice", r.activation);
        }
        assert_eq!(hedged.records.len(), 50);
    }

    #[test]
    fn learned_head_is_cheaper_than_static() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut st = heavy_faults();
        st.replication = cloud::ReplicationPolicy::Static { k: 2 };
        let mut ln = heavy_faults();
        ln.replication = cloud::ReplicationPolicy::learned_heuristic();
        let seeds = SeedDerivation::new(2019);
        let s = simulate(&wf, &fleet, &mut Fifo, &st, seeds, None).unwrap();
        let l = simulate(&wf, &fleet, &mut Fifo, &ln, seeds, None).unwrap();
        assert!(s.success && l.success);
        assert!(
            l.repl_stats.launched < s.repl_stats.launched,
            "learned ({}) must launch fewer replicas than static-2 ({})",
            l.repl_stats.launched,
            s.repl_stats.launched
        );
    }

    #[test]
    fn cancelled_attempts_never_finish_in_trace() {
        use obs::{MemSink, Tracer};
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = heavy_faults();
        cfg.replication = cloud::ReplicationPolicy::Static { k: 3 };
        let mut sink = MemSink::new();
        let res = simulate_traced(
            &wf,
            &fleet,
            &mut Fifo,
            &cfg,
            SeedDerivation::new(7),
            None,
            &mut Tracer::new(&mut sink),
        )
        .unwrap();
        let trace = sink.as_str();
        let key_of = |line: &str| {
            let field = |k: &str| {
                let pat = format!("\"{k}\":");
                let rest = &line[line.find(&pat).unwrap() + pat.len()..];
                rest[..rest.find([',', '}']).unwrap()].to_string()
            };
            (field("ac"), field("attempt"), field("vm"))
        };
        let mut cancelled = std::collections::HashSet::new();
        let mut launched = 0u64;
        for line in trace.lines() {
            if line.contains("\"ev\":\"cancel\"") {
                cancelled.insert(key_of(line));
            } else if line.contains("\"ev\":\"replicate\"") {
                launched += 1;
            }
        }
        assert_eq!(launched, res.repl_stats.launched);
        assert_eq!(cancelled.len() as u64, res.repl_stats.cancelled);
        for line in trace.lines() {
            if line.contains("\"ev\":\"finish\"") {
                assert!(
                    !cancelled.contains(&key_of(line)),
                    "cancelled attempt finished anyway: {line}"
                );
            }
        }
    }

    #[test]
    fn replication_decisions_are_consistent() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let mut cfg = heavy_faults();
        cfg.replication = cloud::ReplicationPolicy::Static { k: 2 };
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(11), None).unwrap();
        assert!(!res.repl_decisions.is_empty());
        let mut launched = 0u64;
        for d in &res.repl_decisions {
            assert!(d.launched <= d.requested);
            assert!((d.bucket as usize) < cloud::REPL_STATES);
            assert!(d.group_secs >= 0.0 && d.waste_secs >= 0.0);
            assert!(!(d.replica_won && d.group_failed));
            launched += u64::from(d.launched);
        }
        // Every launch belongs to a resolved or still-pending group.
        assert!(launched <= res.repl_stats.launched);
    }

    #[test]
    fn busy_secs_match_record_exec_times() {
        let wf = montage();
        let fleet = Fleet::paper_16_vcpus();
        let res = simulate(
            &wf,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(11),
            None,
        )
        .unwrap();
        let from_records: f64 = res.records.iter().map(|r| r.exec_secs()).sum();
        let from_vms: f64 = res.vm_busy_secs.iter().sum();
        assert!((from_records - from_vms).abs() < 1e-6);
    }
}
