//! Schedule-quality metrics beyond raw makespan.
//!
//! The workflow-scheduling literature the paper builds on reports a
//! standard battery: *speedup* (serial time ÷ makespan), *efficiency*
//! (speedup ÷ processor count), *schedule length ratio* (makespan ÷
//! critical-path lower bound), mean queue time, utilization and the
//! monetary cost of the fleet for the schedule's duration.

use crate::result::SimResult;
use cloud::{BillingGranularity, Fleet};
use serde::{Deserialize, Serialize};
use workflow::Workflow;

/// The metric battery for one executed schedule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Workflow makespan in seconds.
    pub makespan_secs: f64,
    /// Serial reference time ÷ makespan.
    pub speedup: f64,
    /// Speedup ÷ total processing elements.
    pub efficiency: f64,
    /// Makespan ÷ critical-path-on-fastest-element lower bound (≥ 1
    /// for noise-free runs; can dip below 1 only if fluctuation speeds
    /// VMs up, which our models do not).
    pub slr: f64,
    /// Mean queue time across activations, seconds.
    pub mean_queue_secs: f64,
    /// Mean execution time across activations, seconds.
    pub mean_exec_secs: f64,
    /// Busy-time utilization of the fleet in `[0, 1]`.
    pub utilization: f64,
    /// Whole-fleet on-demand cost for the makespan (per-second billing
    /// with a 60 s floor), USD.
    pub cost_usd: f64,
}

impl Metrics {
    /// Compute the battery from one simulation result.
    pub fn compute(workflow: &Workflow, fleet: &Fleet, result: &SimResult) -> Self {
        let makespan = result.makespan.as_secs();
        let serial = workflow.total_work_mi() / workflow::model::REFERENCE_MIPS;
        let fastest = fleet.iter().map(|(_, v)| v.vm_type.mips_per_pe).fold(f64::EPSILON, f64::max);
        let cp_bound =
            workflow.reference_critical_path_secs() * workflow::model::REFERENCE_MIPS / fastest;
        let n = result.records.len().max(1) as f64;
        let mean_queue = result.records.iter().map(|r| r.queue_secs()).sum::<f64>() / n;
        let mean_exec = result.records.iter().map(|r| r.exec_secs()).sum::<f64>() / n;
        let speedup = if makespan > 0.0 { serial / makespan } else { 0.0 };
        Self {
            makespan_secs: makespan,
            speedup,
            efficiency: speedup / fleet.total_vcpus().max(1) as f64,
            slr: if cp_bound > 0.0 { makespan / cp_bound } else { 0.0 },
            mean_queue_secs: mean_queue,
            mean_exec_secs: mean_exec,
            utilization: result.utilization(fleet),
            cost_usd: cloud::pricing::whole_fleet_cost_usd(
                fleet,
                result.makespan,
                BillingGranularity::PerSecondMin60,
            ),
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "makespan {:.1}s | speedup {:.2} | eff {:.3} | SLR {:.2} | \
             queue {:.2}s | util {:.0}% | ${:.4}",
            self.makespan_secs,
            self.speedup,
            self.efficiency,
            self.slr,
            self.mean_queue_secs,
            self.utilization * 100.0,
            self.cost_usd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::simulate;
    use crate::scheduler::{Decision, Scheduler, SchedulerContext};
    use wfcommon::SeedDerivation;

    struct Fifo;
    impl Scheduler for Fifo {
        fn name(&self) -> &str {
            "fifo"
        }
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
            match (ctx.ready.first(), ctx.idle_slots.first()) {
                (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
                _ => Decision::DoNothing,
            }
        }
    }

    #[test]
    fn metrics_satisfy_basic_inequalities() {
        let wf = workflow::montage50::montage50();
        let fleet = Fleet::paper_16_vcpus();
        let res = simulate(
            &wf,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(1),
            None,
        )
        .unwrap();
        let m = Metrics::compute(&wf, &fleet, &res);
        assert!(m.makespan_secs > 0.0);
        assert!(m.speedup >= 1.0, "parallel run must beat serial: {}", m.speedup);
        assert!(m.efficiency > 0.0 && m.efficiency <= 1.0);
        assert!(m.slr >= 1.0, "SLR below the critical-path bound: {}", m.slr);
        assert!((0.0..=1.0).contains(&m.utilization));
        assert!(m.cost_usd > 0.0);
        assert!(m.mean_exec_secs > 0.0);
        assert!(m.mean_queue_secs >= 0.0);
    }

    #[test]
    fn bigger_fleet_costs_more_per_second_but_may_finish_sooner() {
        let wf = workflow::montage50::montage50();
        let cfg = SimConfig::deterministic();
        let small = Fleet::paper_16_vcpus();
        let large = Fleet::paper_64_vcpus();
        let rs = simulate(&wf, &small, &mut Fifo, &cfg, SeedDerivation::new(2), None).unwrap();
        let rl = simulate(&wf, &large, &mut Fifo, &cfg, SeedDerivation::new(2), None).unwrap();
        let ms = Metrics::compute(&wf, &small, &rs);
        let ml = Metrics::compute(&wf, &large, &rl);
        assert!(ml.makespan_secs <= ms.makespan_secs * 1.1);
        // Efficiency drops with scale on a 50-task workflow.
        assert!(ml.efficiency < ms.efficiency);
    }

    #[test]
    fn display_is_single_line() {
        let wf = workflow::montage50::montage50();
        let fleet = Fleet::paper_16_vcpus();
        let res = simulate(
            &wf,
            &fleet,
            &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(3),
            None,
        )
        .unwrap();
        let m = Metrics::compute(&wf, &fleet, &res);
        let s = m.to_string();
        assert!(!s.contains('\n'));
        assert!(s.contains("SLR"));
    }
}
