//! Simulation configuration.
//!
//! All stochastic behaviour is described by *value-typed* knobs here;
//! the engine instantiates the actual models from the config plus a
//! seed derivation, keeping every run reproducible from
//! `(workflow, fleet, scheduler, config, seed)`.

use cloud::{FaultConfig, ReplicationPolicy};
use serde::{Deserialize, Serialize};

/// Which performance-fluctuation model to apply (see
/// [`cloud::fluctuation`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FluctuationKind {
    /// Nominal speeds always.
    None,
    /// Mild jitter (default; a lightly loaded cloud).
    Mild,
    /// Heavy contention.
    Heavy,
    /// Custom AR(1) parameters.
    Custom {
        /// Per-step noise amplitude.
        sigma: f64,
        /// Mean-reversion rate in (0, 1].
        theta: f64,
    },
}

/// Which live-migration model to apply (see [`cloud::migration`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MigrationKind {
    /// No migrations.
    None,
    /// Poisson migrations at `rate_per_hour`, each stalling the VM for
    /// a uniform downtime in `[min_downtime_secs, max_downtime_secs]`.
    Poisson {
        /// Migration events per VM-hour.
        rate_per_hour: f64,
        /// Minimum stall, seconds.
        min_downtime_secs: f64,
        /// Maximum stall, seconds.
        max_downtime_secs: f64,
    },
}

/// Full simulator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Network bandwidth for inter-VM file transfers, bytes/second
    /// (default 125 MB/s ≈ 1 Gbps).
    pub bandwidth_bytes_per_sec: f64,
    /// When true, workflow *input* files (those no activation produces)
    /// are staged in from shared storage at the same bandwidth.
    pub stage_in_inputs: bool,
    /// Per-attempt failure probability (0 disables failure injection).
    pub failure_prob: f64,
    /// Retries allowed per activation before the workflow fails.
    pub max_retries: u32,
    /// Performance-fluctuation model.
    pub fluctuation: FluctuationKind,
    /// Live-migration model.
    pub migration: MigrationKind,
    /// Horizon (seconds) over which migration events are pre-sampled.
    /// Must comfortably exceed the expected makespan.
    pub migration_horizon_secs: f64,
    /// Safety bound on processed events (runaway guard).
    pub max_events: u64,
    /// VM provisioning (boot) delay in seconds: processing elements
    /// become available only after their VM has booted. EC2 instances
    /// take tens of seconds to enter `running`; 0 disables the effect.
    pub vm_boot_secs: f64,
    /// Model t2 burst-credit exhaustion: once a VM has consumed its
    /// `burst_credit_secs_per_pe × pes × burst_credit_scale` of
    /// full-speed core time, further executions run at the type's
    /// `baseline_fraction` speed.
    pub burst_throttling: bool,
    /// Scales each VM's initial credit balance: 1.0 = freshly started
    /// instance, 0.0 = a drained instance that throttles immediately
    /// (a long experimental campaign on the same fleet).
    pub burst_credit_scale: f64,
    /// Fault taxonomy + recovery policy (crashes, stragglers,
    /// timeouts, backoff, blacklisting). The default is inert — see
    /// [`cloud::FaultConfig::none`] — so fault-free traces stay
    /// byte-identical to pre-fault builds.
    pub faults: FaultConfig,
    /// Speculative-replication policy (schema v1.6). The default is
    /// [`ReplicationPolicy::Off`], under which the engine takes the
    /// exact legacy code paths — traces stay byte-identical to
    /// pre-replication builds. `serde(default)` keeps configs
    /// serialized before this field existed loadable.
    #[serde(default)]
    pub replication: ReplicationPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            bandwidth_bytes_per_sec: 125.0e6,
            stage_in_inputs: true,
            failure_prob: 0.0,
            max_retries: 2,
            fluctuation: FluctuationKind::Mild,
            migration: MigrationKind::None,
            migration_horizon_secs: 24.0 * 3600.0,
            max_events: 10_000_000,
            vm_boot_secs: 0.0,
            burst_throttling: false,
            burst_credit_scale: 1.0,
            faults: FaultConfig::none(),
            replication: ReplicationPolicy::Off,
        }
    }
}

impl SimConfig {
    /// A fully deterministic configuration (no noise, failures or
    /// migrations) — useful for tests and for HEFT's idealized world.
    pub fn deterministic() -> Self {
        Self {
            fluctuation: FluctuationKind::None,
            failure_prob: 0.0,
            migration: MigrationKind::None,
            ..Self::default()
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> wfcommon::Result<()> {
        use wfcommon::Error;
        if self.bandwidth_bytes_per_sec <= 0.0 {
            return Err(Error::Config("bandwidth must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.failure_prob) {
            return Err(Error::Config(format!("failure_prob {} out of [0,1]", self.failure_prob)));
        }
        if let FluctuationKind::Custom { sigma, theta } = self.fluctuation {
            if sigma < 0.0 || theta <= 0.0 || theta > 1.0 {
                return Err(Error::Config("invalid fluctuation parameters".into()));
            }
        }
        if let MigrationKind::Poisson { rate_per_hour, min_downtime_secs, max_downtime_secs } =
            self.migration
        {
            if rate_per_hour < 0.0
                || min_downtime_secs < 0.0
                || max_downtime_secs < min_downtime_secs
            {
                return Err(Error::Config("invalid migration parameters".into()));
            }
        }
        if self.max_events == 0 {
            return Err(Error::Config("max_events must be positive".into()));
        }
        if self.vm_boot_secs < 0.0 {
            return Err(Error::Config("vm_boot_secs must be non-negative".into()));
        }
        if self.burst_credit_scale < 0.0 {
            return Err(Error::Config("burst_credit_scale must be non-negative".into()));
        }
        self.faults.validate().map_err(Error::Config)?;
        self.replication.validate().map_err(Error::Config)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimConfig::default().validate().unwrap();
        SimConfig::deterministic().validate().unwrap();
    }

    #[test]
    fn bad_configs_rejected() {
        let c = SimConfig { failure_prob: 2.0, ..SimConfig::default() };
        assert!(c.validate().is_err());

        let c = SimConfig { bandwidth_bytes_per_sec: 0.0, ..SimConfig::default() };
        assert!(c.validate().is_err());

        let c = SimConfig {
            fluctuation: FluctuationKind::Custom { sigma: -1.0, theta: 0.5 },
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            migration: MigrationKind::Poisson {
                rate_per_hour: 1.0,
                min_downtime_secs: 5.0,
                max_downtime_secs: 1.0,
            },
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig { vm_boot_secs: -1.0, ..SimConfig::default() };
        assert!(c.validate().is_err());

        let c = SimConfig {
            faults: FaultConfig { straggler_prob: 2.0, ..FaultConfig::none() },
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = SimConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
