//! The scheduler interface: what a scheduling policy sees and may do.

use crate::history::ExecHistory;
use crate::result::SimResult;
use cloud::Fleet;
use wfcommon::{ActivationId, SimTime, VmId};
use workflow::Workflow;

/// Everything a scheduler may observe at a decision point. The
/// workflow is in the paper's *available* state exactly when both
/// `ready` and `idle_slots` are non-empty.
pub struct SchedulerContext<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The workflow being executed.
    pub workflow: &'a Workflow,
    /// The VM fleet.
    pub fleet: &'a Fleet,
    /// Ready, not-yet-scheduled activations (sorted by id).
    pub ready: &'a [ActivationId],
    /// `(vm, free_processing_elements)` for VMs with ≥1 idle element
    /// (sorted by vm id).
    pub idle_slots: &'a [(VmId, u32)],
    /// Execution/queue-time history accumulated so far in this episode
    /// (plus anything pre-seeded from earlier episodes).
    pub history: &'a ExecHistory,
}

/// A scheduling action (paper §III-A: "either we schedule an activation
/// `ac_x` to a VM `vm_j` or we do nothing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Start `activation` on `vm` now (the VM must have an idle element).
    Assign {
        /// The ready activation to start.
        activation: ActivationId,
        /// The idle VM to start it on.
        vm: VmId,
    },
    /// Leave the ready queue untouched until the environment changes.
    DoNothing,
}

/// Completion notification delivered to the scheduler after every
/// activation attempt finishes — the learning signal for RL policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionInfo {
    /// The activation that finished.
    pub activation: ActivationId,
    /// The VM it executed on.
    pub vm: VmId,
    /// Queue time `tf`: seconds between becoming ready and starting.
    pub queue_secs: f64,
    /// Execution time `te`: seconds between start and finish (includes
    /// data stage-in, fluctuation and migration stalls).
    pub exec_secs: f64,
    /// Completion timestamp.
    pub finished_at: SimTime,
    /// Which attempt this was (0 = first execution).
    pub attempt: u32,
    /// True when the attempt failed (the activation may be retried).
    pub failed: bool,
}

/// A workflow-activation scheduling policy.
///
/// The engine calls [`Scheduler::decide`] repeatedly while the workflow
/// is *available*; each `Assign` is applied immediately (the activation
/// starts, the element becomes busy) and `decide` is called again with
/// the updated context, until `DoNothing` or the state leaves
/// *available*.
pub trait Scheduler {
    /// Human-readable policy name (used in experiment tables).
    fn name(&self) -> &str;

    /// Choose an action for the current *available* state.
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision;

    /// Observe a completed attempt together with the engine-maintained
    /// execution history (which already includes this attempt) —
    /// default: ignore.
    fn on_completion(&mut self, _info: &CompletionInfo, _history: &ExecHistory) {}

    /// Observe the end of the episode (default: ignore).
    fn on_episode_end(&mut self, _result: &SimResult) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fifo;
    impl Scheduler for Fifo {
        fn name(&self) -> &str {
            "fifo"
        }
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
            match (ctx.ready.first(), ctx.idle_slots.first()) {
                (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
                _ => Decision::DoNothing,
            }
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut s: Box<dyn Scheduler> = Box::new(Fifo);
        assert_eq!(s.name(), "fifo");
        // A context with empty ready queue yields DoNothing.
        let wf = workflow::montage50::montage50();
        let fleet = cloud::Fleet::paper_16_vcpus();
        let hist = ExecHistory::new(fleet.len());
        let ctx = SchedulerContext {
            now: SimTime::ZERO,
            workflow: &wf,
            fleet: &fleet,
            ready: &[],
            idle_slots: &[(VmId::new(0), 1)],
            history: &hist,
        };
        assert_eq!(s.decide(&ctx), Decision::DoNothing);
    }
}
