//! Fleet provisioning: which VMs should SCStarter rent?
//!
//! The paper fixes three fleets (Table I) and asks which scheduler wins
//! on each; the operational question underneath — *which fleet should
//! you rent for a deadline at least cost?* — is answered here by
//! simulating candidate fleets and picking the cheapest one whose
//! makespan meets the deadline (elasticity, §I, made concrete).

use crate::config::SimConfig;
use crate::engine::simulate;
use crate::scheduler::Scheduler;
use cloud::{BillingGranularity, Fleet, VmType};
use wfcommon::{Error, Result, SeedDerivation, SimTime};
use workflow::Workflow;

/// Evaluation of one candidate fleet.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvisioningOutcome {
    /// Human-readable fleet description (e.g. `4xmicro+2x2xlarge`).
    pub label: String,
    /// Micro / 2xlarge counts behind the label.
    pub micros: usize,
    /// 2xlarge count.
    pub larges: usize,
    /// Simulated makespan.
    pub makespan: SimTime,
    /// Whole-fleet cost for the makespan, USD.
    pub cost_usd: f64,
    /// True when `makespan ≤ deadline`.
    pub meets_deadline: bool,
}

/// All micro/2xlarge mixes with `1..=max_micro` micros and
/// `0..=max_large` 2xlarges (the all-zero fleet is excluded).
pub fn enumerate_mixes(max_micro: usize, max_large: usize) -> Vec<(usize, usize, Fleet)> {
    let mut out = Vec::new();
    for micros in 0..=max_micro {
        for larges in 0..=max_large {
            if micros + larges == 0 {
                continue;
            }
            let mut fleet = Fleet::new();
            fleet.add(&VmType::t2_micro(), micros);
            fleet.add(&VmType::t2_2xlarge(), larges);
            out.push((micros, larges, fleet));
        }
    }
    out
}

/// Simulate every candidate and return outcomes sorted by cost; the
/// first entry with `meets_deadline` is the recommendation.
///
/// `mk_scheduler` builds a fresh scheduler per candidate (schedulers
/// are stateful).
pub fn provision(
    workflow: &Workflow,
    candidates: &[(usize, usize, Fleet)],
    deadline: SimTime,
    billing: BillingGranularity,
    mut mk_scheduler: impl FnMut() -> Box<dyn Scheduler>,
    config: &SimConfig,
    seeds: SeedDerivation,
) -> Result<Vec<ProvisioningOutcome>> {
    if candidates.is_empty() {
        return Err(Error::Config("no candidate fleets".into()));
    }
    let mut outcomes = Vec::with_capacity(candidates.len());
    for (micros, larges, fleet) in candidates {
        let mut scheduler = mk_scheduler();
        let res = simulate(workflow, fleet, scheduler.as_mut(), config, seeds, None)?;
        let cost = cloud::pricing::whole_fleet_cost_usd(fleet, res.makespan, billing);
        outcomes.push(ProvisioningOutcome {
            label: format!("{micros}xmicro+{larges}x2xlarge"),
            micros: *micros,
            larges: *larges,
            makespan: res.makespan,
            cost_usd: cost,
            meets_deadline: res.success && res.makespan <= deadline,
        });
    }
    outcomes.sort_by(|a, b| a.cost_usd.total_cmp(&b.cost_usd));
    Ok(outcomes)
}

/// The cheapest outcome meeting the deadline, if any.
pub fn recommend(outcomes: &[ProvisioningOutcome]) -> Option<&ProvisioningOutcome> {
    outcomes.iter().find(|o| o.meets_deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Decision, SchedulerContext};
    use workflow::montage50::montage50;

    struct Fifo;
    impl Scheduler for Fifo {
        fn name(&self) -> &str {
            "fifo"
        }
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
            match (ctx.ready.first(), ctx.idle_slots.first()) {
                (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
                _ => Decision::DoNothing,
            }
        }
    }

    #[test]
    fn enumerate_excludes_empty_fleet() {
        let mixes = enumerate_mixes(2, 2);
        assert_eq!(mixes.len(), 9 - 1);
        assert!(mixes.iter().all(|(m, l, f)| f.len() == m + l && *m + *l > 0));
    }

    #[test]
    fn tight_deadline_needs_bigger_fleet() {
        let wf = montage50();
        let candidates = enumerate_mixes(4, 2);
        let cfg = SimConfig::deterministic();
        let run = |deadline: f64| {
            let outcomes = provision(
                &wf,
                &candidates,
                SimTime(deadline),
                BillingGranularity::PerSecondMin60,
                || Box::new(Fifo),
                &cfg,
                SeedDerivation::new(1),
            )
            .unwrap();
            recommend(&outcomes).cloned()
        };
        let loose = run(3600.0).expect("an hour is plenty");
        let tight = run(300.0).expect("some mix meets 300s");
        // Tight deadlines cost at least as much as loose ones.
        assert!(tight.cost_usd >= loose.cost_usd - 1e-12);
        // And the tight recommendation actually meets its deadline.
        assert!(tight.makespan.as_secs() <= 300.0);
        // Impossible deadline → no recommendation.
        let outcomes = provision(
            &wf,
            &candidates,
            SimTime(1.0),
            BillingGranularity::PerSecondMin60,
            || Box::new(Fifo),
            &cfg,
            SeedDerivation::new(1),
        )
        .unwrap();
        assert!(recommend(&outcomes).is_none());
    }

    #[test]
    fn outcomes_sorted_by_cost() {
        let wf = montage50();
        let candidates = enumerate_mixes(3, 1);
        let outcomes = provision(
            &wf,
            &candidates,
            SimTime(1e9),
            BillingGranularity::PerHour,
            || Box::new(Fifo),
            &SimConfig::deterministic(),
            SeedDerivation::new(2),
        )
        .unwrap();
        for pair in outcomes.windows(2) {
            assert!(pair[0].cost_usd <= pair[1].cost_usd);
        }
    }

    #[test]
    fn empty_candidates_rejected() {
        let wf = montage50();
        assert!(provision(
            &wf,
            &[],
            SimTime(100.0),
            BillingGranularity::PerHour,
            || Box::new(Fifo),
            &SimConfig::deterministic(),
            SeedDerivation::new(0),
        )
        .is_err());
    }
}
