//! Time-shared (processor-sharing) plan execution.
//!
//! CloudSim/WorkflowSim support two cloudlet schedulers: *space-shared*
//! (each task owns one processing element; the main engine's model) and
//! *time-shared* (all tasks on a VM share its capacity). This module
//! implements the time-shared discipline for plan replay: a ready
//! activation starts on its planned VM immediately (no queue), and each
//! of the `n` activations running on a VM receives
//! `min(mips_per_pe, total_mips / n)` of service — the classical
//! egalitarian processor-sharing rate with a per-task cap.
//!
//! The simulation is event-driven over completion times: at every
//! completion the rates change, so remaining work is integrated
//! piecewise between events. Deterministic (no noise models) — this
//! mode exists for schedule-robustness comparisons, not for learning.

use crate::plan::Plan;
use cloud::Fleet;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Error, Result, SimTime, VmId};
use workflow::Workflow;

/// One activation's timing under time sharing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TsRecord {
    /// The activation.
    pub activation: ActivationId,
    /// The VM it ran on.
    pub vm: VmId,
    /// Start (moment it became ready; time sharing never queues).
    pub started_at: SimTime,
    /// Completion.
    pub finished_at: SimTime,
}

/// Result of a time-shared replay.
#[derive(Clone, Debug, PartialEq)]
pub struct TsResult {
    /// Completion of the last activation.
    pub makespan: SimTime,
    /// Per-activation records in completion order.
    pub records: Vec<TsRecord>,
}

struct Running {
    ac: usize,
    vm: usize,
    remaining_mi: f64,
    started_at: f64,
}

/// Replay `plan` under processor sharing.
pub fn replay_time_shared(workflow: &Workflow, fleet: &Fleet, plan: &Plan) -> Result<TsResult> {
    plan.validate(workflow, fleet)?;
    let n = workflow.len();
    let vm_caps: Vec<(f64, f64)> =
        fleet.iter().map(|(_, vm)| (vm.vm_type.mips_per_pe, vm.vm_type.total_mips())).collect();

    let mut remaining_parents: Vec<usize> = (0..n).map(|i| workflow.dag.in_degree(i)).collect();
    let mut running: Vec<Running> = Vec::new();
    let mut records: Vec<TsRecord> = Vec::with_capacity(n);
    let mut started = vec![false; n];
    let mut now = 0.0f64;

    let start_ready = |now: f64,
                       remaining_parents: &[usize],
                       started: &mut Vec<bool>,
                       running: &mut Vec<Running>| {
        for i in 0..n {
            if !started[i] && remaining_parents[i] == 0 {
                started[i] = true;
                let ac = ActivationId::from_index(i);
                let vm = plan.vm_for(ac).expect("validated plan");
                running.push(Running {
                    ac: i,
                    vm: vm.index(),
                    remaining_mi: workflow.activations[ac].length_mi.max(1e-9),
                    started_at: now,
                });
            }
        }
    };
    start_ready(now, &remaining_parents, &mut started, &mut running);

    let mut guard = 0usize;
    while !running.is_empty() {
        guard += 1;
        if guard > 4 * n + 16 {
            return Err(Error::Simulation("time-shared replay did not converge".into()));
        }
        // Per-VM load → per-job service rate.
        let mut load = vec![0usize; fleet.len()];
        for r in &running {
            load[r.vm] += 1;
        }
        let rate = |vm: usize| -> f64 {
            let (per_pe, total) = vm_caps[vm];
            per_pe.min(total / load[vm] as f64)
        };
        // Time until the first completion under current rates.
        let dt = running.iter().map(|r| r.remaining_mi / rate(r.vm)).fold(f64::INFINITY, f64::min);
        now += dt;
        // Integrate and collect completions.
        let mut still = Vec::with_capacity(running.len());
        let mut finished_any = false;
        for mut r in running.into_iter() {
            r.remaining_mi -= rate(r.vm) * dt;
            if r.remaining_mi <= 1e-6 {
                finished_any = true;
                records.push(TsRecord {
                    activation: ActivationId::from_index(r.ac),
                    vm: VmId::from_index(r.vm),
                    started_at: SimTime(r.started_at),
                    finished_at: SimTime(now),
                });
                for &child in workflow.dag.succs(r.ac) {
                    remaining_parents[child] -= 1;
                }
            } else {
                still.push(r);
            }
        }
        debug_assert!(finished_any, "dt chosen as min completion time");
        running = still;
        start_ready(now, &remaining_parents, &mut started, &mut running);
    }

    Ok(TsResult { makespan: SimTime(now), records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloud::VmType;
    use workflow::montage50::montage50;
    use workflow::WorkflowBuilder;

    fn one_micro() -> Fleet {
        let mut f = Fleet::new();
        f.add(&VmType::t2_micro(), 1);
        f
    }

    /// `k` independent 10-second tasks.
    fn independent(k: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("indep");
        let act = b.activity("p", "n");
        for i in 0..k {
            let s = b.file(&format!("s{i}"), 1);
            b.activation(act, &format!("a{i}"), 10_000.0, vec![s], vec![]);
        }
        b.build().unwrap()
    }

    #[test]
    fn processor_sharing_finishes_equal_jobs_together() {
        // 4 equal jobs on one 1-PE VM: each gets 1/4 speed, all finish
        // at 40 s (space-shared would stagger them at 10/20/30/40).
        let wf = independent(4);
        let fleet = one_micro();
        let plan = Plan::from_assignments(vec![VmId::new(0); 4]);
        let res = replay_time_shared(&wf, &fleet, &plan).unwrap();
        assert_eq!(res.records.len(), 4);
        for r in &res.records {
            assert!((r.finished_at.as_secs() - 40.0).abs() < 1e-6, "{r:?}");
        }
        assert!((res.makespan.as_secs() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn rate_capped_at_one_pe() {
        // A single job on an 8-PE VM runs at one element's speed, not 8×.
        let wf = independent(1);
        let mut fleet = Fleet::new();
        fleet.add(&VmType::t2_2xlarge(), 1);
        let plan = Plan::from_assignments(vec![VmId::new(0)]);
        let res = replay_time_shared(&wf, &fleet, &plan).unwrap();
        assert!((res.makespan.as_secs() - 10_000.0 / 1250.0).abs() < 1e-6);
    }

    #[test]
    fn chain_matches_space_shared() {
        // A pure chain never shares, so both disciplines agree.
        let mut b = WorkflowBuilder::new("chain");
        let act = b.activity("p", "n");
        let mut prev = b.file("f0", 1);
        b.activation(act, "a0", 5_000.0, vec![], vec![prev]);
        for i in 1..4 {
            let next = b.file(&format!("f{i}"), 1);
            b.activation(act, &format!("a{i}"), 5_000.0, vec![prev], vec![next]);
            prev = next;
        }
        let wf = b.build().unwrap();
        let fleet = one_micro();
        let plan = Plan::from_assignments(vec![VmId::new(0); 4]);
        let res = replay_time_shared(&wf, &fleet, &plan).unwrap();
        assert!((res.makespan.as_secs() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn makespan_equals_work_over_capacity_when_saturated() {
        // 16 equal jobs on the 8-PE 2xlarge: total work 16×10 000 MI
        // over 10 000 MIPS = 16 s.
        let wf = independent(16);
        let mut fleet = Fleet::new();
        fleet.add(&VmType::t2_2xlarge(), 1);
        let plan = Plan::from_assignments(vec![VmId::new(0); 16]);
        let res = replay_time_shared(&wf, &fleet, &plan).unwrap();
        assert!((res.makespan.as_secs() - 16.0).abs() < 1e-6, "{}", res.makespan);
    }

    #[test]
    fn montage_replays_and_respects_dependencies() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let plan = {
            // Spread by id for a simple deterministic plan.
            let assignments = (0..wf.len()).map(|i| VmId::new((i % fleet.len()) as u32)).collect();
            Plan::from_assignments(assignments)
        };
        let res = replay_time_shared(&wf, &fleet, &plan).unwrap();
        assert_eq!(res.records.len(), 50);
        for rec in &res.records {
            for parent in wf.parents(rec.activation) {
                let p = res.records.iter().find(|r| r.activation == parent).unwrap();
                assert!(p.finished_at.as_secs() <= rec.started_at.as_secs() + 1e-9);
            }
        }
        // Lower bound still holds: critical path at the fastest element.
        let bound = wf.reference_critical_path_secs() * 1000.0 / 1250.0;
        assert!(res.makespan.as_secs() >= bound - 1e-6);
    }

    #[test]
    fn invalid_plan_rejected() {
        let wf = independent(2);
        let fleet = one_micro();
        assert!(replay_time_shared(&wf, &fleet, &Plan::empty(2)).is_err());
    }
}
