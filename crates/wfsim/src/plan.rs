//! Scheduling plans: the activation → VM mapping a simulation produces
//! (Table V) and a scheduler that replays a fixed plan.

use crate::scheduler::{Decision, Scheduler, SchedulerContext};
use cloud::Fleet;
use serde::{Deserialize, Serialize};
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Error, Result, VmId};
use workflow::Workflow;

/// An activation → VM mapping. `None` marks activations the plan does
/// not cover (e.g. a simulation that failed part-way).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    assignments: Vec<Option<VmId>>,
}

impl Plan {
    /// An empty plan for `n` activations.
    pub fn empty(n: usize) -> Self {
        Self { assignments: vec![None; n] }
    }

    /// Build from a complete assignment vector.
    pub fn from_assignments(assignments: Vec<VmId>) -> Self {
        Self { assignments: assignments.into_iter().map(Some).collect() }
    }

    /// Number of activations the plan is sized for.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when sized for zero activations.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Record (or overwrite) the VM for `ac`.
    pub fn assign(&mut self, ac: ActivationId, vm: VmId) {
        self.assignments[ac.index()] = Some(vm);
    }

    /// The VM planned for `ac`, if any.
    pub fn vm_for(&self, ac: ActivationId) -> Option<VmId> {
        self.assignments.get(ac.index()).copied().flatten()
    }

    /// True when every activation has an assignment.
    pub fn is_complete(&self) -> bool {
        self.assignments.iter().all(|a| a.is_some())
    }

    /// Iterate `(activation, vm)` pairs for assigned activations.
    pub fn iter(&self) -> impl Iterator<Item = (ActivationId, VmId)> + '_ {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|vm| (ActivationId::from_index(i), vm)))
    }

    /// Count of activations assigned to each VM (indexed by VM id).
    pub fn load_histogram(&self, fleet_size: usize) -> Vec<usize> {
        let mut h = vec![0usize; fleet_size];
        for (_, vm) in self.iter() {
            if vm.index() < fleet_size {
                h[vm.index()] += 1;
            }
        }
        h
    }

    /// Validate against a workflow and fleet: complete, and every VM
    /// exists.
    pub fn validate(&self, workflow: &Workflow, fleet: &Fleet) -> Result<()> {
        if self.assignments.len() != workflow.len() {
            return Err(Error::InvalidPlan(format!(
                "plan covers {} activations, workflow has {}",
                self.assignments.len(),
                workflow.len()
            )));
        }
        for (i, a) in self.assignments.iter().enumerate() {
            match a {
                None => return Err(Error::InvalidPlan(format!("activation ac{i} is unassigned"))),
                Some(vm) if vm.index() >= fleet.len() => {
                    return Err(Error::InvalidPlan(format!(
                        "activation ac{i} assigned to unknown {vm}"
                    )))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// Replays a fixed plan: each ready activation may start only on its
/// planned VM, and only when that VM has an idle element. This is the
/// simulator-side mirror of what SciCumulus does with the plan in the
/// real cloud (paper §III-D).
pub struct FixedPlanScheduler {
    plan: Plan,
}

impl FixedPlanScheduler {
    /// Wrap a (validated) plan.
    pub fn new(plan: Plan) -> Self {
        Self { plan }
    }

    /// Borrow the plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }
}

impl Scheduler for FixedPlanScheduler {
    fn name(&self) -> &str {
        "fixed-plan"
    }

    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        for &ac in ctx.ready {
            if let Some(vm) = self.plan.vm_for(ac) {
                if ctx.idle_slots.iter().any(|&(v, free)| v == vm && free > 0) {
                    return Decision::Assign { activation: ac, vm };
                }
            }
        }
        Decision::DoNothing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_round_trip() {
        let mut p = Plan::empty(3);
        assert!(!p.is_complete());
        p.assign(ActivationId::new(0), VmId::new(2));
        p.assign(ActivationId::new(1), VmId::new(0));
        p.assign(ActivationId::new(2), VmId::new(2));
        assert!(p.is_complete());
        assert_eq!(p.vm_for(ActivationId::new(0)), Some(VmId::new(2)));
        assert_eq!(p.load_histogram(3), vec![1, 0, 2]);
    }

    #[test]
    fn validate_catches_gaps_and_bad_vms() {
        let wf = workflow::montage50::montage50();
        let fleet = Fleet::paper_16_vcpus();
        let mut p = Plan::empty(wf.len());
        assert!(p.validate(&wf, &fleet).is_err());
        for i in 0..wf.len() {
            p.assign(ActivationId::from_index(i), VmId::new(0));
        }
        p.validate(&wf, &fleet).unwrap();
        p.assign(ActivationId::new(0), VmId::new(99));
        assert!(p.validate(&wf, &fleet).is_err());

        let small = Plan::empty(3);
        assert!(small.validate(&wf, &fleet).is_err());
    }

    #[test]
    fn fixed_plan_scheduler_waits_for_its_vm() {
        let wf = workflow::montage50::montage50();
        let fleet = Fleet::paper_16_vcpus();
        let hist = crate::history::ExecHistory::new(fleet.len());
        let mut plan = Plan::empty(wf.len());
        for i in 0..wf.len() {
            plan.assign(ActivationId::from_index(i), VmId::new(3));
        }
        let mut s = FixedPlanScheduler::new(plan);
        let ready = [ActivationId::new(0)];
        // Planned VM busy → DoNothing even though another VM is idle.
        let idle = [(VmId::new(5), 1u32)];
        let ctx = SchedulerContext {
            now: wfcommon::SimTime::ZERO,
            workflow: &wf,
            fleet: &fleet,
            ready: &ready,
            idle_slots: &idle,
            history: &hist,
        };
        assert_eq!(s.decide(&ctx), Decision::DoNothing);
        // Planned VM idle → assign.
        let idle = [(VmId::new(3), 1u32)];
        let ctx = SchedulerContext { idle_slots: &idle, ..ctx };
        assert_eq!(
            s.decide(&ctx),
            Decision::Assign { activation: ActivationId::new(0), vm: VmId::new(3) }
        );
    }

    #[test]
    fn serde_round_trip() {
        let p = Plan::from_assignments(vec![VmId::new(0), VmId::new(8)]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Plan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
