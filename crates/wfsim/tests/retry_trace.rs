//! Failure/retry path coverage through the trace layer: retried
//! activations must show up in the structured trace with incremented
//! attempt numbers, and the whole trace must be a pure function of the
//! seed (the failure model is counter-based, so no platform-dependent
//! RNG stream is involved).

use cloud::Fleet;
use obs::{trace_diff, MemSink, TraceDiff, Tracer};
use wfcommon::SeedDerivation;
use wfsim::scheduler::{Decision, Scheduler, SchedulerContext};
use wfsim::{simulate_traced, SimConfig};
use workflow::montage50::montage50;

struct Fifo;
impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        match (ctx.ready.first(), ctx.idle_slots.first()) {
            (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
            _ => Decision::DoNothing,
        }
    }
}

fn flaky_config() -> SimConfig {
    let mut cfg = SimConfig::deterministic();
    cfg.failure_prob = 0.3;
    cfg.max_retries = 20;
    cfg
}

fn run_trace(seed: u64) -> (bool, String) {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let mut sink = MemSink::new();
    let mut tracer = Tracer::new(&mut sink);
    let res = simulate_traced(
        &wf,
        &fleet,
        &mut Fifo,
        &flaky_config(),
        SeedDerivation::new(seed),
        None,
        &mut tracer,
    )
    .unwrap();
    (res.success, sink.take())
}

/// Pull `"key":value` out of a JSONL event line (numeric fields only).
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn retries_appear_in_trace_with_incremented_attempts() {
    let (success, trace) = run_trace(5);
    assert!(success, "20 retries should absorb a 30% failure rate");

    let retry_lines: Vec<&str> = trace.lines().filter(|l| l.contains("\"ev\":\"retry\"")).collect();
    assert!(
        !retry_lines.is_empty(),
        "p=0.3 over 50 activations makes at least one retry overwhelmingly likely"
    );
    for line in &retry_lines {
        let next = field(line, "next_attempt").unwrap();
        assert!(next >= 1.0, "retry must announce attempt >= 1: {line}");
    }

    // Every retried activation eventually reappears as a `start` (and,
    // on success, a non-failed `finish`) at a later attempt number.
    for line in &retry_lines {
        let ac = field(line, "ac").unwrap();
        let next = field(line, "next_attempt").unwrap();
        let restarted = trace.lines().any(|l| {
            l.contains("\"ev\":\"start\"")
                && field(l, "ac") == Some(ac)
                && field(l, "attempt") == Some(next)
        });
        assert!(restarted, "activation {ac} never restarted at attempt {next}");
    }
    let retried_finish = trace.lines().any(|l| {
        l.contains("\"ev\":\"finish\"")
            && field(l, "attempt").map(|a| a > 0.0).unwrap_or(false)
            && l.contains("\"failed\":false")
    });
    assert!(retried_finish, "some retried activation must finish cleanly");

    // Failed attempts are visible too: finish events carry the flag.
    assert!(trace
        .lines()
        .any(|l| l.contains("\"ev\":\"finish\"") && l.contains("\"failed\":true")));
}

#[test]
fn failure_draws_are_seed_deterministic() {
    let (_, a) = run_trace(5);
    let (_, b) = run_trace(5);
    match trace_diff(&a, &b) {
        TraceDiff::Identical { lines } => assert!(lines > 100, "trace suspiciously short"),
        d @ TraceDiff::Diverged { .. } => panic!("same seed diverged: {d}"),
    }
    let (_, c) = run_trace(6);
    assert!(
        matches!(trace_diff(&a, &c), TraceDiff::Diverged { .. }),
        "different seeds must draw different failures"
    );
}

#[test]
fn max_retries_exhaustion_is_traced_as_failed_run() {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let mut cfg = SimConfig::deterministic();
    cfg.failure_prob = 1.0;
    cfg.max_retries = 2;
    let mut sink = MemSink::new();
    let mut tracer = Tracer::new(&mut sink);
    let res =
        simulate_traced(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(1), None, &mut tracer)
            .unwrap();
    assert!(!res.success);
    let trace = sink.take();
    // Retries stop at the cap: announced attempts never exceed it.
    let max_announced = trace
        .lines()
        .filter(|l| l.contains("\"ev\":\"retry\""))
        .filter_map(|l| field(l, "next_attempt"))
        .fold(0.0f64, f64::max);
    assert_eq!(max_announced, 2.0);
    let end = trace.lines().find(|l| l.contains("\"ev\":\"sim_end\"")).unwrap();
    assert!(end.contains("\"success\":false"));
}
