//! Property tests of the simulation engine under all noise sources.

use cloud::Fleet;
use proptest::prelude::*;
use wfcommon::ids::Idx;
use wfcommon::SeedDerivation;
use wfsim::{
    simulate, Decision, FluctuationKind, MigrationKind, Scheduler, SchedulerContext, SimConfig,
};
use workflow::generators::montage::{generate, MontageParams};

struct Fifo;
impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Decision {
        match (ctx.ready.first(), ctx.idle_slots.first()) {
            (Some(&ac), Some(&(vm, _))) => Decision::Assign { activation: ac, vm },
            _ => Decision::DoNothing,
        }
    }
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        0usize..4,       // fluctuation kind
        0.0f64..0.08,    // failure probability (small, retries absorb)
        prop::bool::ANY, // migrations on/off
        0.0f64..90.0,    // boot delay
    )
        .prop_map(|(fk, fp, mig, boot)| SimConfig {
            fluctuation: match fk {
                0 => FluctuationKind::None,
                1 => FluctuationKind::Mild,
                2 => FluctuationKind::Heavy,
                _ => FluctuationKind::Custom { sigma: 0.1, theta: 0.5 },
            },
            failure_prob: fp,
            max_retries: 8,
            migration: if mig {
                MigrationKind::Poisson {
                    rate_per_hour: 10.0,
                    min_downtime_secs: 1.0,
                    max_downtime_secs: 5.0,
                }
            } else {
                MigrationKind::None
            },
            vm_boot_secs: boot,
            ..SimConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Under any noise combination, the simulation terminates, obeys
    /// causality, and its aggregates are self-consistent.
    #[test]
    fn noisy_simulations_stay_consistent(
        cfg in arb_config(),
        n in 17usize..80,
        wf_seed in 0u64..100,
        sim_seed in 0u64..1000,
    ) {
        let wf = generate(&MontageParams::with_total_activations(n, wf_seed)
            .unwrap()).unwrap();
        let fleet = Fleet::paper_16_vcpus();
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(sim_seed), None)
            .unwrap();

        // With generous retries, tiny failure probabilities finish.
        if cfg.failure_prob == 0.0 {
            prop_assert!(res.success);
        }
        if res.success {
            prop_assert_eq!(res.records.len(), wf.len());
        }
        // Timestamps are causally ordered per record.
        for r in &res.records {
            prop_assert!(r.ready_at <= r.started_at);
            prop_assert!(r.started_at < r.finished_at);
            prop_assert!(r.finished_at <= res.makespan);
            if cfg.vm_boot_secs > 0.0 {
                prop_assert!(r.started_at.as_secs() >= cfg.vm_boot_secs * 0.5 - 1e-9);
            }
        }
        // Utilization bounded.
        let u = res.utilization(&fleet);
        prop_assert!((0.0..=1.0).contains(&u));
        // History totals match successful records + failed attempts;
        // at least the successful ones are present.
        prop_assert!(res.history.total_samples() >= res.records.len() as u64);
    }

    /// Retry accounting: with certain failure, retries are exhausted
    /// and the workflow ends in the failure state.
    #[test]
    fn certain_failure_exhausts_retries(max_retries in 0u32..4, seed in 0u64..50) {
        let wf = generate(&MontageParams::with_total_activations(20, 1).unwrap()).unwrap();
        let fleet = Fleet::paper_16_vcpus();
        let cfg = SimConfig {
            failure_prob: 1.0,
            max_retries,
            fluctuation: FluctuationKind::None,
            ..SimConfig::default()
        };
        let res = simulate(&wf, &fleet, &mut Fifo, &cfg, SeedDerivation::new(seed), None)
            .unwrap();
        prop_assert!(!res.success);
        prop_assert!(res.records.is_empty(), "nothing can succeed");
        // The failing activation was attempted exactly 1 + max_retries times.
        prop_assert!(res.history.total_samples() >= (1 + max_retries) as u64);
    }

    /// The plan produced always maps each completed activation to the
    /// VM its record names.
    #[test]
    fn plan_agrees_with_records(n in 17usize..60, seed in 0u64..100) {
        let wf = generate(&MontageParams::with_total_activations(n, seed)
            .unwrap()).unwrap();
        let fleet = Fleet::paper_32_vcpus();
        let res = simulate(
            &wf, &fleet, &mut Fifo,
            &SimConfig::deterministic(),
            SeedDerivation::new(seed), None,
        ).unwrap();
        for r in &res.records {
            prop_assert_eq!(res.plan.vm_for(r.activation), Some(r.vm));
        }
        let _ = r#use(&res);
    }
}

/// Keep `Idx` import used across proptest expansions.
fn r#use(res: &wfsim::SimResult) -> usize {
    res.records.first().map(|r| r.activation.index()).unwrap_or(0)
}
