//! Trace-level invariant checking.
//!
//! The checker consumes a v1.2 JSONL trace line by line (via
//! `obs-analyze`'s dependency-free parser) and verifies the fault
//! subsystem's safety contract. It deliberately knows nothing about the
//! engine internals — only the published event schema — so it holds for
//! any producer of conforming traces.
//!
//! Invariants:
//!
//! 1. **Monotone clock** — timestamps never decrease, and no event
//!    follows `sim_end`.
//! 2. **Work conservation** — every attempt opened by `start` or
//!    `replicate` is closed by exactly one of `finish`, a `crash`
//!    fault naming the activation, a `timeout` fault, or `cancel`; at
//!    most one *successful* `finish` per activation, and on a
//!    successful run exactly one for every activation.
//! 3. **No orphaned VM reservations** — per-VM in-flight counts never
//!    go negative and drain to zero by `sim_end`.
//! 4. **Bounded retries** — no attempt number (in `start`, `retry` or
//!    `reschedule`) exceeds the policy's `max_retries`. Replica
//!    attempt ids (≥ [`obs::REPLICA_ATTEMPT_BASE`]) live in their own
//!    namespace and are exempt.
//! 5. **Blacklist is terminal** — after a `blacklist` event a VM
//!    receives no new `start`, `replicate` or `recover`, and is not
//!    blacklisted twice. (Attempts already in flight on a sibling
//!    element may still finish; only new dispatch is forbidden.)
//! 6. **Replication discipline** (schema v1.6) — concurrent attempts
//!    of one activation exist only via `replicate` (a second `start`
//!    while anything is in flight is a violation); a `replicate`
//!    requires a running primary, never targets a finished activation,
//!    and carries a replica-namespace attempt id; a cancelled attempt
//!    never finishes afterwards.

use obs::REPLICA_ATTEMPT_BASE;
use obs_analyze::{parse_line, ParsedEvent};
use std::collections::HashSet;

/// The recovery-policy bounds a trace is checked against.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPolicy {
    /// Maximum retry attempts per activation (`SimConfig::max_retries`).
    pub max_retries: u32,
}

/// Aggregate facts about a verified trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total parsed events.
    pub events: usize,
    /// Activation count from `sim_start`.
    pub activations: u32,
    /// VM count from `sim_start`.
    pub vms: u32,
    /// `sim_end` success flag.
    pub success: bool,
    /// `start` events.
    pub starts: u64,
    /// `fault` events (all kinds).
    pub faults: u64,
    /// `retry` + `reschedule` events.
    pub retries: u64,
    /// `blacklist` events.
    pub blacklists: u64,
    /// `replicate` events (schema v1.6).
    pub replicates: u64,
    /// `cancel` events (schema v1.6).
    pub cancels: u64,
}

/// Verify every invariant over `trace`. Returns the summary on success
/// or the full list of violations (each tagged with its line number).
pub fn verify_trace(trace: &str, policy: &ChaosPolicy) -> Result<TraceSummary, Vec<String>> {
    let mut violations: Vec<String> = Vec::new();
    let mut summary = TraceSummary::default();
    // Per-activation bookkeeping, sized on sim_start. Each open entry
    // is an in-flight `(attempt, vm)` pair — a primary opened by
    // `start` or a speculative sibling opened by `replicate`.
    let mut open: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut done: Vec<u32> = Vec::new(); // successful finishes
    let mut inflight: Vec<i64> = Vec::new(); // per-VM attempts in flight
    let mut blacklisted: Vec<bool> = Vec::new();
    let mut cancelled: HashSet<(usize, u32)> = HashSet::new(); // (ac, attempt)
    let mut last_t = f64::NEG_INFINITY;
    let mut ended = false;

    // Close one in-flight attempt of `ac`, selected by `key`, from any
    // of the closing events (finish / crash / timeout / cancel).
    let close = |open: &mut Vec<Vec<(u32, u32)>>,
                 inflight: &mut Vec<i64>,
                 violations: &mut Vec<String>,
                 line: usize,
                 what: &str,
                 ac: usize,
                 vm: usize,
                 attempt: Option<u32>| {
        let hit = open.get_mut(ac).and_then(|slots| {
            // Fault events carry no attempt number; match on VM alone.
            let pos = slots
                .iter()
                .position(|&(a, v)| v == vm as u32 && attempt.is_none_or(|want| a == want))?;
            Some(slots.remove(pos))
        });
        if hit.is_none() {
            violations.push(format!("line {line}: {what} for ac{ac} without an open start"));
        }
        match inflight.get_mut(vm) {
            Some(r) => {
                *r -= 1;
                if *r < 0 {
                    violations.push(format!("line {line}: vm{vm} reservation count went negative"));
                }
            }
            None => violations.push(format!("line {line}: {what} names unknown vm{vm}")),
        }
    };

    for (idx, line) in trace.lines().enumerate() {
        let lineno = idx + 1;
        let ev = match parse_line(line) {
            Ok(ev) => ev,
            Err(e) => {
                violations.push(format!("line {lineno}: unparseable event: {e}"));
                continue;
            }
        };
        summary.events += 1;
        if ended && !matches!(ev, ParsedEvent::Phase { .. }) {
            violations.push(format!("line {lineno}: event after sim_end"));
        }
        // Monotone clock over every timestamped event.
        let t = match &ev {
            ParsedEvent::VmReady { t, .. }
            | ParsedEvent::Sched { t, .. }
            | ParsedEvent::Start { t, .. }
            | ParsedEvent::Finish { t, .. }
            | ParsedEvent::Retry { t, .. }
            | ParsedEvent::SimEnd { t, .. }
            | ParsedEvent::Fault { t, .. }
            | ParsedEvent::Recover { t, .. }
            | ParsedEvent::Blacklist { t, .. }
            | ParsedEvent::Reschedule { t, .. }
            | ParsedEvent::Replicate { t, .. }
            | ParsedEvent::Cancel { t, .. } => Some(*t),
            _ => None,
        };
        if let Some(t) = t {
            if t < last_t {
                violations
                    .push(format!("line {lineno}: clock went backwards ({t} after {last_t})"));
            }
            last_t = last_t.max(t);
        }
        match ev {
            ParsedEvent::SimStart { activations, vms } => {
                summary.activations = activations;
                summary.vms = vms;
                open = vec![Vec::new(); activations as usize];
                done = vec![0; activations as usize];
                inflight = vec![0; vms as usize];
                blacklisted = vec![false; vms as usize];
            }
            ParsedEvent::Start { ac, vm, attempt, .. } => {
                summary.starts += 1;
                let (ac, vm) = (ac as usize, vm as usize);
                if attempt > policy.max_retries && attempt < REPLICA_ATTEMPT_BASE {
                    violations.push(format!(
                        "line {lineno}: ac{ac} attempt {attempt} exceeds max_retries {}",
                        policy.max_retries
                    ));
                }
                if blacklisted.get(vm).copied().unwrap_or(false) {
                    violations.push(format!("line {lineno}: start on blacklisted vm{vm}"));
                }
                match open.get_mut(ac) {
                    Some(slots) => {
                        // Concurrency is the privilege of `replicate`
                        // alone: a primary start always finds the
                        // activation idle.
                        slots.push((attempt, vm as u32));
                        if slots.len() > 1 {
                            violations.push(format!(
                                "line {lineno}: ac{ac} has {} concurrent attempts",
                                slots.len()
                            ));
                        }
                    }
                    None => violations.push(format!("line {lineno}: start of unknown ac{ac}")),
                }
                if done.get(ac).copied().unwrap_or(0) > 0 {
                    violations.push(format!("line {lineno}: ac{ac} restarted after succeeding"));
                }
                if let Some(r) = inflight.get_mut(vm) {
                    *r += 1;
                }
            }
            ParsedEvent::Replicate { ac, vm, attempt, .. } => {
                summary.replicates += 1;
                let (ac, vm) = (ac as usize, vm as usize);
                if attempt < REPLICA_ATTEMPT_BASE {
                    violations.push(format!(
                        "line {lineno}: replicate of ac{ac} with primary-namespace attempt \
                         {attempt}"
                    ));
                }
                if blacklisted.get(vm).copied().unwrap_or(false) {
                    violations.push(format!("line {lineno}: replicate on blacklisted vm{vm}"));
                }
                if done.get(ac).copied().unwrap_or(0) > 0 {
                    violations.push(format!("line {lineno}: ac{ac} replicated after succeeding"));
                }
                match open.get_mut(ac) {
                    Some(slots) if slots.is_empty() => violations.push(format!(
                        "line {lineno}: replicate of ac{ac} without a running primary"
                    )),
                    Some(slots) => slots.push((attempt, vm as u32)),
                    None => violations.push(format!("line {lineno}: replicate of unknown ac{ac}")),
                }
                if let Some(r) = inflight.get_mut(vm) {
                    *r += 1;
                }
            }
            ParsedEvent::Cancel { ac, vm, attempt, .. } => {
                summary.cancels += 1;
                let (ac, vm) = (ac as usize, vm as usize);
                cancelled.insert((ac, attempt));
                close(
                    &mut open,
                    &mut inflight,
                    &mut violations,
                    lineno,
                    "cancel",
                    ac,
                    vm,
                    Some(attempt),
                );
            }
            ParsedEvent::Finish { ac, vm, attempt, failed, .. } => {
                let (ac, vm) = (ac as usize, vm as usize);
                if cancelled.contains(&(ac, attempt)) {
                    violations.push(format!(
                        "line {lineno}: cancelled attempt {attempt} of ac{ac} finished"
                    ));
                }
                close(
                    &mut open,
                    &mut inflight,
                    &mut violations,
                    lineno,
                    "finish",
                    ac,
                    vm,
                    Some(attempt),
                );
                if !failed {
                    match done.get_mut(ac) {
                        Some(d) => {
                            *d += 1;
                            if *d > 1 {
                                violations.push(format!(
                                    "line {lineno}: ac{ac} finished successfully {d} times"
                                ));
                            }
                        }
                        None => violations.push(format!("line {lineno}: finish of unknown ac{ac}")),
                    }
                }
            }
            ParsedEvent::Fault { ref kind, ac, vm, .. } => {
                summary.faults += 1;
                // VM-level crashes (ac = -1) and stragglers do not
                // close attempts; activation-level crash/timeout do.
                if ac >= 0 && (kind == "crash" || kind == "timeout") {
                    close(
                        &mut open,
                        &mut inflight,
                        &mut violations,
                        lineno,
                        kind,
                        ac as usize,
                        vm as usize,
                        None,
                    );
                }
            }
            ParsedEvent::Retry { ac, next_attempt, .. } => {
                summary.retries += 1;
                if next_attempt > policy.max_retries {
                    violations.push(format!(
                        "line {lineno}: ac{ac} retry to attempt {next_attempt} exceeds \
                         max_retries {}",
                        policy.max_retries
                    ));
                }
            }
            ParsedEvent::Reschedule { ac, next_attempt, .. } => {
                summary.retries += 1;
                if next_attempt > policy.max_retries {
                    violations.push(format!(
                        "line {lineno}: ac{ac} reschedule to attempt {next_attempt} exceeds \
                         max_retries {}",
                        policy.max_retries
                    ));
                }
            }
            ParsedEvent::Blacklist { vm, .. } => {
                summary.blacklists += 1;
                match blacklisted.get_mut(vm as usize) {
                    Some(b) if !*b => *b = true,
                    Some(_) => violations.push(format!("line {lineno}: vm{vm} blacklisted twice")),
                    None => violations.push(format!("line {lineno}: blacklist of unknown vm{vm}")),
                }
            }
            ParsedEvent::Recover { vm, .. }
                if blacklisted.get(vm as usize).copied().unwrap_or(false) =>
            {
                violations.push(format!("line {lineno}: vm{vm} recovered after blacklist"));
            }
            ParsedEvent::SimEnd { success, .. } => {
                ended = true;
                summary.success = success;
            }
            _ => {}
        }
    }

    if !ended {
        violations.push("trace truncated: no sim_end event".into());
    }
    for (ac, slots) in open.iter().enumerate() {
        if !slots.is_empty() {
            violations.push(format!("ac{ac}: {} attempt(s) never closed", slots.len()));
        }
    }
    for (vm, &r) in inflight.iter().enumerate() {
        if r != 0 {
            violations.push(format!("vm{vm}: {r} orphaned reservation(s) at sim_end"));
        }
    }
    if summary.success {
        for (ac, &d) in done.iter().enumerate() {
            if d != 1 {
                violations
                    .push(format!("successful run, but ac{ac} has {d} successful completions"));
            }
        }
    }
    if violations.is_empty() {
        Ok(summary)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: ChaosPolicy = ChaosPolicy { max_retries: 2 };

    fn assert_violation(trace: &str, needle: &str) {
        let errs = verify_trace(trace, &POLICY).expect_err("must be rejected");
        assert!(
            errs.iter().any(|e| e.contains(needle)),
            "expected violation containing {needle:?}, got {errs:?}"
        );
    }

    #[test]
    fn clean_fault_free_trace_passes() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":2,\"vms\":1}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":1,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"start\",\"t\":1,\"ac\":1,\"vm\":0,\"attempt\":0,\"ready_since\":1}
{\"ev\":\"finish\",\"t\":2,\"ac\":1,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":2,\"success\":true,\"events\":4,\"queue_pushes\":2,\"max_queue_depth\":1}
";
        let s = verify_trace(trace, &POLICY).unwrap();
        assert_eq!((s.activations, s.starts, s.faults), (2, 2, 0));
        assert!(s.success);
    }

    #[test]
    fn crash_and_timeout_close_attempts() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"fault\",\"t\":1,\"kind\":\"crash\",\"ac\":-1,\"vm\":0}
{\"ev\":\"fault\",\"t\":1,\"kind\":\"crash\",\"ac\":0,\"vm\":0}
{\"ev\":\"reschedule\",\"t\":1,\"ac\":0,\"vm\":0,\"next_attempt\":1}
{\"ev\":\"start\",\"t\":1,\"ac\":0,\"vm\":1,\"attempt\":1,\"ready_since\":1}
{\"ev\":\"fault\",\"t\":3,\"kind\":\"timeout\",\"ac\":0,\"vm\":1}
{\"ev\":\"reschedule\",\"t\":3,\"ac\":0,\"vm\":1,\"next_attempt\":2}
{\"ev\":\"recover\",\"t\":4,\"vm\":0,\"pes\":1}
{\"ev\":\"start\",\"t\":4,\"ac\":0,\"vm\":0,\"attempt\":2,\"ready_since\":3}
{\"ev\":\"finish\",\"t\":5,\"ac\":0,\"vm\":0,\"attempt\":2,\"exec_secs\":1,\"queue_secs\":1,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":5,\"success\":true,\"events\":9,\"queue_pushes\":3,\"max_queue_depth\":1}
";
        let s = verify_trace(trace, &POLICY).unwrap();
        assert_eq!((s.faults, s.retries, s.starts), (3, 2, 3));
    }

    #[test]
    fn backwards_clock_is_caught() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":1}
{\"ev\":\"start\",\"t\":5,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":4,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":5,\"success\":true,\"events\":2,\"queue_pushes\":1,\"max_queue_depth\":1}
";
        assert_violation(trace, "clock went backwards");
    }

    #[test]
    fn orphaned_attempt_is_caught() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":1}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"sim_end\",\"t\":1,\"success\":false,\"events\":1,\"queue_pushes\":1,\"max_queue_depth\":1}
";
        assert_violation(trace, "never closed");
        assert_violation(trace, "orphaned reservation");
    }

    #[test]
    fn start_on_blacklisted_vm_is_caught() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":1}
{\"ev\":\"blacklist\",\"t\":1,\"vm\":0,\"faults\":2}
{\"ev\":\"start\",\"t\":2,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":3,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":3,\"success\":true,\"events\":3,\"queue_pushes\":1,\"max_queue_depth\":1}
";
        assert_violation(trace, "start on blacklisted vm0");
    }

    #[test]
    fn retry_beyond_bound_is_caught() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":1}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":1,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":true}
{\"ev\":\"retry\",\"t\":1,\"ac\":0,\"next_attempt\":3}
{\"ev\":\"start\",\"t\":1,\"ac\":0,\"vm\":0,\"attempt\":3,\"ready_since\":1}
{\"ev\":\"finish\",\"t\":2,\"ac\":0,\"vm\":0,\"attempt\":3,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":2,\"success\":true,\"events\":4,\"queue_pushes\":2,\"max_queue_depth\":1}
";
        assert_violation(trace, "exceeds max_retries");
    }

    #[test]
    fn double_success_and_truncation_are_caught() {
        let double = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":1}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":1,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"start\",\"t\":1,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":1}
{\"ev\":\"finish\",\"t\":2,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":2,\"success\":true,\"events\":4,\"queue_pushes\":2,\"max_queue_depth\":1}
";
        assert_violation(double, "restarted after succeeding");
        assert_violation(double, "finished successfully 2 times");
        assert_violation("{\"ev\":\"sim_start\",\"activations\":0,\"vms\":0}\n", "no sim_end");
    }

    #[test]
    fn replicated_race_trace_passes() {
        // A speculative group: primary on vm0, replica on vm1; the
        // replica wins, the primary is cancelled. Work conservation
        // must balance through the cancel, and the replica's attempt
        // id (≥ base) must be exempt from the retry bound.
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":2,\"vms\":2}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"replicate\",\"t\":0,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":5,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"exec_secs\":5,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"cancel\",\"t\":5,\"ac\":0,\"vm\":0,\"attempt\":0}
{\"ev\":\"start\",\"t\":5,\"ac\":1,\"vm\":0,\"attempt\":0,\"ready_since\":5}
{\"ev\":\"finish\",\"t\":6,\"ac\":1,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":6,\"success\":true,\"events\":6,\"queue_pushes\":2,\"max_queue_depth\":1}
";
        let s = verify_trace(trace, &POLICY).unwrap();
        assert_eq!((s.replicates, s.cancels, s.starts), (1, 1, 2));
        assert!(s.success);
    }

    #[test]
    fn cancelled_attempt_must_never_finish() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"replicate\",\"t\":0,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"ready_since\":0}
{\"ev\":\"cancel\",\"t\":1,\"ac\":0,\"vm\":1,\"attempt\":1000000}
{\"ev\":\"finish\",\"t\":2,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"exec_secs\":2,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":2,\"success\":true,\"events\":4,\"queue_pushes\":1,\"max_queue_depth\":1}
";
        assert_violation(trace, "cancelled attempt 1000000 of ac0 finished");
    }

    #[test]
    fn replicate_requires_a_running_primary() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2}
{\"ev\":\"replicate\",\"t\":0,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":1,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"sim_end\",\"t\":1,\"success\":true,\"events\":2,\"queue_pushes\":1,\"max_queue_depth\":1}
";
        assert_violation(trace, "without a running primary");
    }

    #[test]
    fn replica_of_finished_activation_is_caught() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":1,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"replicate\",\"t\":2,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":3,\"ac\":0,\"vm\":1,\"attempt\":1000000,\"exec_secs\":1,\"queue_secs\":0,\"failed\":true}
{\"ev\":\"sim_end\",\"t\":3,\"success\":true,\"events\":4,\"queue_pushes\":1,\"max_queue_depth\":1}
";
        assert_violation(trace, "ac0 replicated after succeeding");
    }

    #[test]
    fn replica_attempt_ids_must_use_the_replica_namespace() {
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"replicate\",\"t\":0,\"ac\":0,\"vm\":1,\"attempt\":1,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":1,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"cancel\",\"t\":1,\"ac\":0,\"vm\":1,\"attempt\":1}
{\"ev\":\"sim_end\",\"t\":1,\"success\":true,\"events\":4,\"queue_pushes\":1,\"max_queue_depth\":1}
";
        assert_violation(trace, "primary-namespace attempt");
    }

    #[test]
    fn concurrent_primary_starts_are_still_caught() {
        // Replication legalises concurrency only via `replicate`; two
        // bare starts of one activation remain a violation.
        let trace = "\
{\"ev\":\"sim_start\",\"activations\":1,\"vms\":2}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":0,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"start\",\"t\":0,\"ac\":0,\"vm\":1,\"attempt\":0,\"ready_since\":0}
{\"ev\":\"finish\",\"t\":1,\"ac\":0,\"vm\":0,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":false}
{\"ev\":\"finish\",\"t\":1,\"ac\":0,\"vm\":1,\"attempt\":0,\"exec_secs\":1,\"queue_secs\":0,\"failed\":true}
{\"ev\":\"sim_end\",\"t\":1,\"success\":true,\"events\":4,\"queue_pushes\":2,\"max_queue_depth\":1}
";
        assert_violation(trace, "concurrent attempts");
    }
}
