//! Seed-matrix chaos runner.
//!
//! Each case fixes a fault profile, a retry policy and a seed, then
//! simulates the workflow **twice**: the traces must be byte-identical
//! (the fault subsystem's bit-determinism contract) and each must pass
//! every [`crate::invariants`] check. A dynamic scheduler (MCT) is used
//! so blacklisting degrades gracefully — work re-routes to surviving
//! VMs instead of waiting on a pinned placement.

use crate::invariants::{verify_trace, ChaosPolicy, TraceSummary};
use cloud::{FaultConfig, Fleet, ReplicationPolicy};
use obs::{MemSink, TraceEvent, Tracer};
use wfcommon::ids::Idx;
use wfcommon::SeedDerivation;
use wfsim::{simulate_traced, FaultStats, ReplStats, SimConfig, SimResult};
use workflow::Workflow;

/// One cell of the chaos matrix.
#[derive(Clone, Debug)]
pub struct ChaosCase {
    /// Display name (profile label).
    pub name: String,
    /// Fault taxonomy configuration.
    pub faults: FaultConfig,
    /// Retry budget per activation.
    pub max_retries: u32,
    /// Master seed.
    pub seed: u64,
    /// Speculative-replication policy (schema v1.6 axis).
    pub replication: ReplicationPolicy,
}

/// Result of one chaos case (two runs + verification).
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Case name.
    pub name: String,
    /// Case seed.
    pub seed: u64,
    /// Whether the simulated workflow completed.
    pub success: bool,
    /// Trace facts from the invariant checker.
    pub summary: TraceSummary,
    /// Engine-side fault counters.
    pub fault_stats: FaultStats,
    /// Engine-side replication counters.
    pub repl_stats: ReplStats,
    /// Everything that went wrong: invariant violations plus a
    /// determinism failure if the two runs diverged. Empty = pass.
    pub violations: Vec<String>,
}

/// Simulate one case and return `(trace, result)`. Pure in
/// `(workflow, fleet, case)`: same inputs, same bytes out.
pub fn run_case(wf: &Workflow, fleet: &Fleet, case: &ChaosCase) -> (String, SimResult) {
    let cfg = SimConfig {
        faults: case.faults,
        max_retries: case.max_retries,
        replication: case.replication.clone(),
        ..SimConfig::default()
    };
    let mut sink = MemSink::new();
    let mut tracer = Tracer::new(&mut sink);
    tracer.emit_with(|| TraceEvent::Header { producer: "chaoskit" });
    let mut scheduler = sched::Mct;
    let res = simulate_traced(
        wf,
        fleet,
        &mut scheduler,
        &cfg,
        SeedDerivation::new(case.seed),
        None,
        &mut tracer,
    )
    .expect("chaos simulation must not error");
    (sink.take(), res)
}

/// Run every case twice, checking bit-determinism and all invariants.
pub fn run_matrix(wf: &Workflow, fleet: &Fleet, cases: &[ChaosCase]) -> Vec<CaseOutcome> {
    cases
        .iter()
        .map(|case| {
            let (trace_a, res) = run_case(wf, fleet, case);
            let (trace_b, _) = run_case(wf, fleet, case);
            let policy = ChaosPolicy { max_retries: case.max_retries };
            let (summary, mut violations) = match verify_trace(&trace_a, &policy) {
                Ok(s) => (s, Vec::new()),
                Err(v) => (TraceSummary::default(), v),
            };
            if violations.is_empty() {
                // The trace and the engine must agree on replication
                // accounting: every launch and cancel is witnessed.
                if summary.replicates != res.repl_stats.launched {
                    violations.push(format!(
                        "replicate events ({}) disagree with engine launches ({})",
                        summary.replicates, res.repl_stats.launched
                    ));
                }
                if summary.cancels != res.repl_stats.cancelled {
                    violations.push(format!(
                        "cancel events ({}) disagree with engine cancellations ({})",
                        summary.cancels, res.repl_stats.cancelled
                    ));
                }
            }
            if trace_a != trace_b {
                let line = trace_a
                    .lines()
                    .zip(trace_b.lines())
                    .position(|(a, b)| a != b)
                    .map_or(0, |i| i + 1);
                violations.push(format!(
                    "non-deterministic: reruns diverge at line {line} (seed {})",
                    case.seed
                ));
            }
            CaseOutcome {
                name: case.name.clone(),
                seed: case.seed,
                success: res.success,
                summary,
                fault_stats: res.fault_stats,
                repl_stats: res.repl_stats,
                violations,
            }
        })
        .collect()
}

/// The combined-taxonomy profile: crashes, stragglers, timeouts and
/// backoff all active at once (the acceptance scenario).
fn combined() -> FaultConfig {
    FaultConfig {
        vm_mtbf_hours: 0.03,
        repair_secs: 20.0,
        straggler_prob: 0.15,
        straggler_factor: 3.0,
        timeout_secs: 400.0,
        backoff_base_secs: 0.5,
        blacklist_after: 3,
        ..FaultConfig::none()
    }
}

fn profiles() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("none", FaultConfig::none()),
        ("mild", FaultConfig::mild()),
        ("heavy", FaultConfig::heavy()),
        ("combined", combined()),
    ]
}

/// The replication axis (schema v1.6): every fault profile is crossed
/// with hedging off, always-on static duplication, and the learned
/// head's heuristic seed table.
fn replication_modes() -> Vec<(&'static str, ReplicationPolicy)> {
    vec![
        ("", ReplicationPolicy::Off),
        ("+static2", ReplicationPolicy::Static { k: 2 }),
        ("+learned", ReplicationPolicy::learned_heuristic()),
    ]
}

fn matrix(seeds: &[u64]) -> Vec<ChaosCase> {
    profiles()
        .into_iter()
        .flat_map(|(name, faults)| {
            replication_modes().into_iter().flat_map(move |(suffix, replication)| {
                seeds
                    .iter()
                    .map(move |&seed| ChaosCase {
                        name: format!("{name}{suffix}"),
                        faults,
                        max_retries: 30,
                        seed,
                        replication: replication.clone(),
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect()
}

/// The small PR-CI matrix: every profile × replication mode × a few
/// seeds.
pub fn default_matrix() -> Vec<ChaosCase> {
    matrix(&[1, 2019, 77])
}

/// The nightly matrix (`CHAOS_FULL=1`): every profile × replication
/// mode × many seeds.
pub fn full_matrix() -> Vec<ChaosCase> {
    let seeds: Vec<u64> = (0..16).map(|i| 1000 + 37 * i).collect();
    matrix(&seeds)
}

/// Drive the threaded `scirun` engine under transient failures plus
/// lost acks (the worker-channel fault the simulator cannot model) and
/// check its conservation contract: every activation completes exactly
/// once, every failed attempt is retried, and lost acks are recovered
/// by re-dispatch. Returns violations (empty = pass).
pub fn run_scirun_case(
    wf: &Workflow,
    fleet: &Fleet,
    failure_prob: f64,
    lost_ack_prob: f64,
    seed: u64,
) -> Vec<String> {
    let plan = match sched::heft_plan(wf, fleet, 125.0e6) {
        Ok(h) => h.plan,
        Err(e) => return vec![format!("heft plan failed: {e}")],
    };
    let config = scirun::ExecConfig {
        time_compression: 20_000.0,
        jitter_cv: 0.02,
        seed,
        failure_prob,
        lost_ack_prob,
        max_retries: 30,
        redispatch_wall_ms: if lost_ack_prob > 0.0 { 150.0 } else { 0.0 },
        replication: cloud::ReplicationPolicy::Off,
    };
    let engine = match scirun::ExecutionEngine::new(fleet.clone(), config) {
        Ok(e) => e,
        Err(e) => return vec![format!("engine config rejected: {e}")],
    };
    let report = match engine.execute(wf, &plan) {
        Ok(r) => r,
        Err(e) => return vec![format!("execution errored: {e}")],
    };
    let mut violations = Vec::new();
    if !report.success {
        violations.push("workflow failed within a 30-retry budget".into());
    }
    if report.records.len() != wf.len() {
        violations.push(format!(
            "work not conserved: {} records for {} activations",
            report.records.len(),
            wf.len()
        ));
    }
    let mut seen = vec![0u32; wf.len()];
    for r in &report.records {
        seen[r.activation.index()] += 1;
    }
    if let Some((ac, &n)) = seen.iter().enumerate().find(|&(_, &n)| n != 1) {
        violations.push(format!("ac{ac} completed {n} times"));
    }
    let f = report.fault_stats;
    if f.retries != f.failed_attempts {
        violations.push(format!(
            "retry accounting broken: {} failed attempts, {} retries",
            f.failed_attempts, f.retries
        ));
    }
    if lost_ack_prob > 0.0 && f.lost_acks > 0 && f.redispatches == 0 {
        violations.push(format!("{} acks lost but nothing re-dispatched", f.lost_acks));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use workflow::montage50::montage50;

    #[test]
    fn fault_free_case_is_clean_and_deterministic() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let case = ChaosCase {
            name: "none".into(),
            faults: FaultConfig::none(),
            max_retries: 2,
            seed: 42,
            replication: ReplicationPolicy::Off,
        };
        let outcomes = run_matrix(&wf, &fleet, &[case]);
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.success);
        assert_eq!(o.summary.starts, 50);
        assert_eq!(o.fault_stats, FaultStats::default());
    }

    #[test]
    fn combined_profile_exercises_the_whole_taxonomy() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        // One seed is enough here; the matrix tests sweep more.
        let case = ChaosCase {
            name: "combined".into(),
            faults: combined(),
            max_retries: 30,
            seed: 2019,
            replication: ReplicationPolicy::Off,
        };
        let outcomes = run_matrix(&wf, &fleet, &[case]);
        let o = &outcomes[0];
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(
            o.summary.faults > 0,
            "combined profile must actually inject faults: {:?}",
            o.summary
        );
    }

    #[test]
    fn replicated_case_is_clean_and_actually_hedges() {
        let wf = montage50();
        let fleet = Fleet::paper_16_vcpus();
        let case = ChaosCase {
            name: "heavy+static2".into(),
            faults: FaultConfig::heavy(),
            max_retries: 30,
            seed: 2019,
            replication: ReplicationPolicy::Static { k: 2 },
        };
        let outcomes = run_matrix(&wf, &fleet, &[case]);
        let o = &outcomes[0];
        assert!(o.violations.is_empty(), "{:?}", o.violations);
        assert!(o.success);
        assert!(o.repl_stats.launched > 0, "static-2 must launch replicas: {:?}", o.repl_stats);
        assert_eq!(o.summary.replicates, o.repl_stats.launched);
        assert_eq!(o.summary.cancels, o.repl_stats.cancelled);
    }

    #[test]
    fn matrices_have_the_advertised_shape() {
        assert_eq!(default_matrix().len(), 4 * 3 * 3);
        assert_eq!(full_matrix().len(), 4 * 3 * 16);
    }
}
