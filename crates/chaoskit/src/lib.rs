//! Deterministic chaos-test harness for the fault-injection subsystem.
//!
//! Fault tolerance is the kind of code whose bugs hide in the corners a
//! single seeded test never visits: a crash racing a completion, a
//! blacklist landing while a sibling attempt is still in flight, a
//! backoff wake arriving after the workflow already failed. This crate
//! attacks that space the only way that stays debuggable — every run is
//! a *pure function of its seed*, so any violation it finds is an exact
//! reproduction recipe, not a flake.
//!
//! Two layers:
//!
//! * [`invariants`] — a trace-level checker. It replays a v1.2 JSONL
//!   event stream (the same one `--trace-out` writes) through a small
//!   state machine and verifies the safety properties the fault
//!   subsystem promises: work conservation (every started attempt is
//!   closed exactly once; at most one successful completion per
//!   activation), no orphaned VM reservations, a monotone simulation
//!   clock, retry counts within the configured bound, and no dispatch
//!   to a blacklisted VM.
//! * [`runner`] — a seed-matrix runner. Each [`ChaosCase`] (fault
//!   profile × retry policy × seed) is simulated **twice**; the two
//!   traces must be byte-identical (bit-determinism) and must pass the
//!   invariant checker. A companion entry point drives the threaded
//!   `scirun` engine under transient failures + lost acks and checks
//!   the analogous conservation properties from its report.
//!
//! The default matrix is small enough for PR CI; `CHAOS_FULL=1` widens
//! it for nightly runs (see `tests/chaos_matrix.rs`).

pub mod invariants;
pub mod runner;

pub use invariants::{verify_trace, ChaosPolicy, TraceSummary};
pub use runner::{
    default_matrix, full_matrix, run_case, run_matrix, run_scirun_case, CaseOutcome, ChaosCase,
};
