//! Property tests (satellite of the chaos harness): the invariant
//! suite must hold for *any* fault profile and seed, and the
//! counter-RNG fault draws must be pure — independent of query order
//! and of how often they are asked.

use chaoskit::{run_case, run_matrix, verify_trace, ChaosCase, ChaosPolicy};
use cloud::{FaultConfig, FaultModel, Fleet, ReplicationPolicy};
use proptest::prelude::*;
use wfcommon::{ActivationId, SeedDerivation, SimTime, VmId};

fn small_workflow() -> workflow::Workflow {
    workflow::generators::layered::generate(&workflow::generators::layered::LayeredParams {
        layers: 4,
        width: 5,
        seed: 7,
        ..workflow::generators::layered::LayeredParams::default()
    })
    .expect("layered workflow")
}

/// Any point of the fault-taxonomy configuration space (each axis can
/// be off or active).
fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (
        prop_oneof![Just(0.0), 0.01f64..0.1],
        5.0f64..60.0,
        0.0f64..0.4,
        1.5f64..4.0,
        prop_oneof![Just(0.0), 100.0f64..900.0],
        prop_oneof![Just(0.0), 0.1f64..5.0],
        0u32..4,
    )
        .prop_map(|(mtbf, repair, s_prob, s_factor, timeout, backoff, blacklist)| {
            FaultConfig {
                vm_mtbf_hours: mtbf,
                repair_secs: repair,
                straggler_prob: s_prob,
                straggler_factor: s_factor,
                timeout_secs: timeout,
                backoff_base_secs: backoff,
                blacklist_after: blacklist,
                ..FaultConfig::none()
            }
        })
}

proptest! {
    // Each case simulates twice (determinism check); keep the count
    // modest so the suite stays PR-speed.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_fault_profile_preserves_every_invariant(
        faults in arb_faults(),
        seed in 0u64..1_000_000,
        replication in prop_oneof![
            Just(ReplicationPolicy::Off),
            Just(ReplicationPolicy::Static { k: 2 }),
            Just(ReplicationPolicy::Static { k: 3 }),
            Just(ReplicationPolicy::learned_heuristic()),
        ],
    ) {
        let wf = small_workflow();
        let fleet = Fleet::paper_16_vcpus();
        let case = ChaosCase { name: "prop".into(), faults, max_retries: 25, seed, replication };
        let outcomes = run_matrix(&wf, &fleet, &[case]);
        prop_assert!(
            outcomes[0].violations.is_empty(),
            "seed {seed}: {:?}",
            outcomes[0].violations
        );
    }

    #[test]
    fn fault_draws_are_permutation_invariant(
        faults in arb_faults(),
        seed in any::<u64>(),
        triples in proptest::collection::vec((0u32..64, 0u32..9, 0u32..8), 1..40),
    ) {
        let a = FaultModel::new(faults, 9, SimTime(3600.0), SeedDerivation::new(seed));
        let b = a.clone();
        // Model `a` queried in generation order, `b` in reverse, both
        // twice: every draw is a pure function of (seed, ac, vm,
        // attempt), so order and repetition must not matter.
        let draw = |m: &FaultModel, &(ac, vm, at): &(u32, u32, u32)| {
            let (ac, vm) = (ActivationId::new(ac), VmId::new(vm));
            (m.straggles(ac, vm, at), m.ack_lost(ac, at), m.slowdown(ac, vm, at))
        };
        let forward: Vec<_> = triples.iter().map(|t| draw(&a, t)).collect();
        let mut backward: Vec<_> = triples.iter().rev().map(|t| draw(&b, t)).collect();
        backward.reverse();
        prop_assert_eq!(&forward, &backward);
        let again: Vec<_> = triples.iter().map(|t| draw(&a, t)).collect();
        prop_assert_eq!(&forward, &again);
    }

    #[test]
    fn crash_schedules_respect_repair_windows(
        faults in arb_faults(),
        seed in any::<u64>(),
    ) {
        let m = FaultModel::new(faults, 9, SimTime(7200.0), SeedDerivation::new(seed));
        for vm in 0..9u32 {
            let crashes = m.crashes(VmId::new(vm));
            prop_assert!(crashes.windows(2).all(|w| w[1].as_secs() - w[0].as_secs() >= faults.repair_secs),
                "vm{vm} crashed while under repair: {crashes:?}");
        }
    }
}

#[test]
fn blacklisting_fires_and_the_trace_stays_clean() {
    // Non-vacuousness for the "no start after blacklist" property: a
    // profile aggressive enough that VMs actually get blacklisted.
    let wf = workflow::montage50::montage50();
    let fleet = Fleet::paper_16_vcpus();
    let case = ChaosCase {
        name: "blacklist".into(),
        faults: FaultConfig {
            vm_mtbf_hours: 0.01,
            repair_secs: 10.0,
            blacklist_after: 1,
            ..FaultConfig::none()
        },
        max_retries: 40,
        seed: 5,
        replication: ReplicationPolicy::Off,
    };
    let (trace, res) = run_case(&wf, &fleet, &case);
    let summary = verify_trace(&trace, &ChaosPolicy { max_retries: 40 }).unwrap();
    assert!(summary.blacklists > 0, "profile must blacklist at least one VM: {summary:?}");
    assert_eq!(summary.blacklists, res.fault_stats.blacklisted);
}

#[test]
fn replicated_profile_matrix_is_clean_and_work_conserving() {
    // Non-vacuousness for the replication invariants: every canned
    // fault profile crossed with static-2 hedging over two seeds must
    // pass the checker, actually launch replicas somewhere, and keep
    // the trace-side launch/cancel ledger equal to the engine's.
    let wf = workflow::montage50::montage50();
    let fleet = Fleet::paper_16_vcpus();
    let profiles: [(&str, FaultConfig); 4] = [
        ("none", FaultConfig::none()),
        ("mild", FaultConfig::mild()),
        ("heavy", FaultConfig::heavy()),
        (
            "combined",
            FaultConfig { vm_mtbf_hours: 0.03, repair_secs: 20.0, ..FaultConfig::heavy() },
        ),
    ];
    let cases: Vec<ChaosCase> = profiles
        .into_iter()
        .flat_map(|(name, faults)| {
            [7u64, 2019].into_iter().map(move |seed| ChaosCase {
                name: format!("{name}+static2"),
                faults,
                max_retries: 30,
                seed,
                replication: ReplicationPolicy::Static { k: 2 },
            })
        })
        .collect();
    let outcomes = run_matrix(&wf, &fleet, &cases);
    let mut launched = 0u64;
    for o in &outcomes {
        assert!(o.violations.is_empty(), "{} seed {}: {:?}", o.name, o.seed, o.violations);
        assert_eq!(o.summary.replicates, o.repl_stats.launched, "{} seed {}", o.name, o.seed);
        assert_eq!(o.summary.cancels, o.repl_stats.cancelled, "{} seed {}", o.name, o.seed);
        launched += o.repl_stats.launched;
    }
    assert!(launched > 0, "static-2 across the matrix must launch replicas");
}
