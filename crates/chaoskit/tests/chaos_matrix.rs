//! The chaos acceptance suite: the full fault taxonomy, across a seed
//! matrix, bit-deterministic and invariant-clean.
//!
//! The default matrix (4 profiles × 3 seeds) runs on every PR;
//! `CHAOS_FULL=1` switches to the nightly matrix (4 × 16 seeds).

use chaoskit::{default_matrix, full_matrix, run_matrix, run_scirun_case};
use cloud::Fleet;
use workflow::montage50::montage50;

#[test]
fn chaos_matrix_is_deterministic_and_invariant_clean() {
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let cases = if std::env::var("CHAOS_FULL").is_ok() { full_matrix() } else { default_matrix() };
    let outcomes = run_matrix(&wf, &fleet, &cases);
    let mut report = String::new();
    let mut injected = 0u64;
    for o in &outcomes {
        injected += o.summary.faults;
        for v in &o.violations {
            report.push_str(&format!("{} seed {}: {v}\n", o.name, o.seed));
        }
    }
    assert!(report.is_empty(), "chaos violations:\n{report}");
    assert!(injected > 0, "the matrix must actually inject faults");
    // The faulty profiles must also *recover*: at least one case in the
    // matrix retried or rescheduled work and still completed.
    assert!(
        outcomes.iter().any(|o| o.success && o.summary.retries > 0),
        "no case recovered from a fault"
    );
}

#[test]
fn scirun_survives_failures_and_lost_acks() {
    // The worker-channel fault the simulator cannot model: transient
    // activation failures plus completion acks vanishing in flight.
    // Together with the simulator matrix above this covers crash +
    // straggler + lost-ack simultaneously across the two engines.
    let wf = montage50();
    let fleet = Fleet::paper_16_vcpus();
    let seeds: &[u64] = if std::env::var("CHAOS_FULL").is_ok() { &[3, 5, 7, 11, 13] } else { &[3] };
    for &seed in seeds {
        let violations = run_scirun_case(&wf, &fleet, 0.1, 0.1, seed);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}
