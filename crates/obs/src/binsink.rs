//! Binary trace sinks: the frame-encoding counterparts of
//! [`MemSink`](crate::MemSink) and [`JsonlSink`](crate::JsonlSink).
//!
//! Both sinks implement [`TraceSink`] by overriding
//! [`TraceSink::emit_event`], so structured events skip JSON
//! formatting entirely and go straight to frames — the fast path that
//! makes megasubmission service traces affordable. `emit_line` (used
//! by [`Tracer::append_raw`](crate::Tracer::append_raw) replays and by
//! converters for lines they cannot re-encode) becomes a verbatim
//! raw-line frame, so nothing is ever lost in transit.

use crate::event::TraceEvent;
use crate::frame;
use crate::sink::TraceSink;
use std::io::Write;

/// In-memory binary sink: accumulates frames in a byte buffer, with
/// no file prelude — fragments from several sinks are concatenated
/// and then topped with one prelude at assembly time
/// ([`frame::write_prelude`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BinMemSink {
    buf: Vec<u8>,
    events: u64,
}

impl BinMemSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated frame bytes (no prelude).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Take the accumulated frames, leaving the sink empty.
    pub fn take(&mut self) -> Vec<u8> {
        self.events = 0;
        std::mem::take(&mut self.buf)
    }

    /// Discard accumulated frames, keeping the buffer's capacity.
    pub fn clear(&mut self) {
        self.events = 0;
        self.buf.clear();
    }

    /// Frames captured so far (events + raw lines).
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl TraceSink for BinMemSink {
    fn emit_line(&mut self, line: &str) {
        frame::encode_raw_line(line, &mut self.buf);
        self.events += 1;
    }

    fn emit_event(&mut self, ev: &TraceEvent<'_>) {
        frame::encode_event(ev, &mut self.buf);
        self.events += 1;
    }
}

/// Streaming binary sink over any [`Write`] — frames go out as they
/// are produced; nothing is buffered beyond one frame (plus whatever
/// buffering the writer itself does). Error handling mirrors
/// [`JsonlSink`](crate::JsonlSink): the first I/O error latches, stops
/// further writes, and surfaces from [`BinSink::finish`]; dropping the
/// sink without `finish` still flushes, so an abnormal exit truncates
/// the trace at a frame boundary.
pub struct BinSink<W: Write> {
    /// `None` only after `finish` consumed the writer.
    w: Option<W>,
    error: Option<std::io::Error>,
    scratch: Vec<u8>,
    events: u64,
}

impl BinSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and stream a full binary trace there:
    /// the prelude is written immediately.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> BinSink<W> {
    /// Wrap a writer and emit the file prelude.
    pub fn new(w: W) -> Self {
        let mut sink = Self { w: Some(w), error: None, scratch: Vec::new(), events: 0 };
        let mut prelude = Vec::with_capacity(8);
        frame::write_prelude(&mut prelude);
        sink.write(&prelude);
        sink
    }

    /// Frames written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn write(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.w.as_mut() {
            if let Err(e) = w.write_all(bytes) {
                self.error = Some(e);
            }
        }
    }

    fn flush_scratch(&mut self) {
        let scratch = std::mem::take(&mut self.scratch);
        self.write(&scratch);
        self.scratch = scratch;
        self.scratch.clear();
        self.events += 1;
    }

    /// Flush and surface the first I/O error, if any.
    pub fn finish(mut self) -> std::io::Result<()> {
        let flushed = match self.w.take() {
            Some(mut w) => w.flush(),
            None => Ok(()),
        };
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        flushed
    }
}

impl<W: Write> TraceSink for BinSink<W> {
    fn emit_line(&mut self, line: &str) {
        frame::encode_raw_line(line, &mut self.scratch);
        self.flush_scratch();
    }

    fn emit_event(&mut self, ev: &TraceEvent<'_>) {
        frame::encode_event(ev, &mut self.scratch);
        self.flush_scratch();
    }
}

impl<W: Write> Drop for BinSink<W> {
    fn drop(&mut self) {
        if let Some(mut w) = self.w.take() {
            if let Err(e) = w.flush() {
                eprintln!("obs: binary trace sink dropped with unflushed data: {e}");
            }
        }
        if let Some(e) = self.error.take() {
            eprintln!("obs: binary trace sink dropped with unreported I/O error: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frames_to_jsonl;
    use crate::sink::{MemSink, Tracer};

    #[test]
    fn bin_mem_sink_matches_jsonl_sink_content() {
        let mut jsonl = MemSink::new();
        let mut bin = BinMemSink::new();
        for sink in [&mut jsonl as &mut dyn TraceSink, &mut bin as &mut dyn TraceSink] {
            let mut t = Tracer::new(sink);
            t.emit(&TraceEvent::Header { producer: "binsink" });
            t.emit(&TraceEvent::Submit {
                seq: 0,
                tenant: "t0",
                family: "montage",
                size: 20,
                shard: 1,
            });
            t.emit_with(|| TraceEvent::Admit { seq: 0, shard: 1 });
        }
        let mut full = Vec::new();
        frame::write_prelude(&mut full);
        full.extend_from_slice(bin.as_bytes());
        assert_eq!(frames_to_jsonl(&full).unwrap(), jsonl.as_str());
        assert_eq!(bin.events(), 3);
    }

    #[test]
    fn raw_replay_into_binary_is_lossless() {
        let mut jsonl = MemSink::new();
        Tracer::new(&mut jsonl).emit(&TraceEvent::Sched { t: 0.5, ready: 1, idle_pes: 2 });
        let mut bin = BinMemSink::new();
        Tracer::new(&mut bin).append_raw(jsonl.as_str());
        let mut full = Vec::new();
        frame::write_prelude(&mut full);
        full.extend_from_slice(bin.as_bytes());
        assert_eq!(frames_to_jsonl(&full).unwrap(), jsonl.as_str());
    }

    #[test]
    fn bin_file_sink_streams_a_readable_trace() {
        let dir = std::env::temp_dir().join(format!("obs-binsink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.trace.bin");
        {
            let mut sink = BinSink::create(path.to_str().unwrap()).unwrap();
            let mut t = Tracer::new(&mut sink);
            t.emit(&TraceEvent::Header { producer: "binfile" });
            for ep in 0..10 {
                t.emit(&TraceEvent::EpisodeStart { episode: ep, epsilon: 0.5 });
            }
            assert_eq!(sink.events(), 11);
            sink.finish().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        assert!(frame::is_binary(&bytes));
        let jsonl = frames_to_jsonl(&bytes).unwrap();
        assert_eq!(jsonl.lines().count(), 11);
        assert!(jsonl.starts_with("{\"ev\":\"header\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_bin_sink_flushes_at_a_frame_boundary() {
        let dir = std::env::temp_dir().join(format!("obs-binsink-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dropped.trace.bin");
        {
            let mut sink = BinSink::create(path.to_str().unwrap()).unwrap();
            let mut t = Tracer::new(&mut sink);
            for ep in 0..25 {
                t.emit(&TraceEvent::EpisodeStart { episode: ep, epsilon: 0.1 });
            }
            // No finish(): Drop must flush complete frames.
        }
        let bytes = std::fs::read(&path).unwrap();
        let jsonl = frames_to_jsonl(&bytes).unwrap();
        assert_eq!(jsonl.lines().count(), 25);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_errors_latch_and_surface() {
        struct Failing {
            ok_bytes: usize,
        }
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.ok_bytes == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                let n = buf.len().min(self.ok_bytes);
                self.ok_bytes -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = BinSink::new(Failing { ok_bytes: 12 });
        let mut t = Tracer::new(&mut sink);
        t.emit(&TraceEvent::Header { producer: "err" });
        t.emit(&TraceEvent::Admit { seq: 0, shard: 0 });
        let err = sink.finish().expect_err("write error must surface");
        assert!(err.to_string().contains("disk full"), "{err}");
    }
}
