//! SLO rule engine over the live metrics plane.
//!
//! Rules are loaded from a tiny line-oriented config and evaluated
//! against a stream of [`SnapshotView`]s — the same thirteen fields the
//! schema-1.5 `snapshot` event carries. That single input shape is the
//! point: the *live* evaluator inside the service and the *offline*
//! `analyze slo` pass in `obs-analyze` run the identical engine over
//! the identical views, so a breach found after the fact is provably
//! the breach that fired (or would have fired) in production.
//!
//! # Rule grammar
//!
//! One rule per line; `#` comments and blank lines are skipped. Three
//! kinds, recognized by shape:
//!
//! ```text
//! <name> <metric> <op> <value>              # threshold (instantaneous)
//! <name> p<Q> <metric> <op> <value>         # percentile of the metric
//!                                           #   across observed snapshots
//! <name> burn <metric> <op> <value> over <N># per-tick rate over the
//!                                           #   trailing N snapshots
//! ```
//!
//! `<op>` is one of `>`, `>=`, `<`, `<=`. Metrics are snapshot field
//! names (`queued`, `vt`, `backpressure`, `max_depth`, `admitted`,
//! `shed`, `plans`, `hit_rate`, `plans_per_sec`, `p50_sojourn_ms`,
//! `p99_sojourn_ms`). Examples:
//!
//! ```text
//! queue-depth   queued > 8
//! tail-latency  p95 queued >= 6
//! shed-burn     burn shed > 0.5 over 5
//! ```
//!
//! Breaches are *edge-triggered*: a rule fires when it transitions from
//! holding to violated, and re-arms once it holds again — so a sustained
//! violation produces one breach, not one per snapshot. Determinism
//! note: rules over the admission-plane fields (`queued`, `vt`,
//! `backpressure`, `max_depth`, `admitted`, `shed`) are fully
//! deterministic for a seeded run; the worker-side fields (`plans`,
//! `hit_rate`, `plans_per_sec`, sojourn percentiles) are racy and only
//! suitable for live alerting.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Retained history depth for percentile/burn rules. Bounds engine
/// memory on long-lived services; offline evaluation uses the same cap
/// so live and offline verdicts match even past the horizon.
pub const HISTORY_CAP: usize = 4096;

/// Comparison operator in a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl Op {
    fn parse(s: &str) -> Option<Op> {
        match s {
            ">" => Some(Op::Gt),
            ">=" => Some(Op::Ge),
            "<" => Some(Op::Lt),
            "<=" => Some(Op::Le),
            _ => None,
        }
    }

    /// Does `value op threshold` hold (i.e. is the rule *violated*)?
    fn violated(self, value: f64, threshold: f64) -> bool {
        match self {
            Op::Gt => value > threshold,
            Op::Ge => value >= threshold,
            Op::Lt => value < threshold,
            Op::Le => value <= threshold,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Le => "<=",
        }
    }
}

/// What a rule computes from the snapshot stream before comparing.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleKind {
    /// The metric's instantaneous value.
    Threshold,
    /// The `q`-quantile (`0..=1`) of the metric across observed
    /// snapshots (up to [`HISTORY_CAP`]).
    Percentile(f64),
    /// Per-tick rate of the metric over the trailing `window`
    /// snapshots: `(v_now − v_oldest) / (tick_now − tick_oldest)`.
    Burn { window: usize },
}

/// One parsed SLO rule.
#[derive(Clone, Debug, PartialEq)]
pub struct SloRule {
    /// Rule name (the `rule` field of emitted breaches).
    pub name: String,
    /// Snapshot field the rule watches.
    pub metric: String,
    /// Aggregation applied before comparison.
    pub kind: RuleKind,
    /// Comparison operator (`value op threshold` ⇒ breach).
    pub op: Op,
    /// Breach threshold.
    pub threshold: f64,
}

impl SloRule {
    /// Human rendering of the rule condition, e.g. `p95(queued) >= 6`.
    pub fn condition(&self) -> String {
        let lhs = match self.kind {
            RuleKind::Threshold => self.metric.clone(),
            RuleKind::Percentile(q) => format!("p{}({})", q * 100.0, self.metric),
            RuleKind::Burn { window } => format!("burn({}, {window})", self.metric),
        };
        format!("{lhs} {} {}", self.op.as_str(), self.threshold)
    }
}

/// The thirteen snapshot fields, as an owned view the engine can fold.
///
/// Field meanings match the schema-1.5 `snapshot` event exactly; see
/// [`TraceEvent::Snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SnapshotView {
    /// Snapshot ordinal (1-based).
    pub tick: u64,
    /// Submissions accepted so far (deterministic clock).
    pub seq: u64,
    /// WFQ queue depth.
    pub queued: u64,
    /// WFQ virtual time.
    pub vt: u64,
    /// Backpressure offers so far.
    pub backpressure: u64,
    /// High-water queue depth.
    pub max_depth: u32,
    /// Admissions so far.
    pub admitted: u64,
    /// Sheds so far.
    pub shed: u64,
    /// Plans completed (racy).
    pub plans: u64,
    /// Cache hit rate (racy).
    pub hit_rate: f64,
    /// Plans per wall second (racy).
    pub plans_per_sec: f64,
    /// Sojourn p50, milliseconds (racy).
    pub p50_sojourn_ms: f64,
    /// Sojourn p99, milliseconds (racy).
    pub p99_sojourn_ms: f64,
}

impl SnapshotView {
    /// Look up a snapshot field by its wire name; `None` for unknown
    /// metrics (callers surface that as a config error).
    pub fn metric(&self, name: &str) -> Option<f64> {
        Some(match name {
            "tick" => self.tick as f64,
            "seq" => self.seq as f64,
            "queued" => self.queued as f64,
            "vt" => self.vt as f64,
            "backpressure" => self.backpressure as f64,
            "max_depth" => self.max_depth as f64,
            "admitted" => self.admitted as f64,
            "shed" => self.shed as f64,
            "plans" => self.plans as f64,
            "hit_rate" => self.hit_rate,
            "plans_per_sec" => self.plans_per_sec,
            "p50_sojourn_ms" => self.p50_sojourn_ms,
            "p99_sojourn_ms" => self.p99_sojourn_ms,
            _ => return None,
        })
    }
}

/// A fired rule: the comparison inputs plus the snapshot tick it fired
/// on. Convert to the wire event with [`Breach::event`].
#[derive(Clone, Debug, PartialEq)]
pub struct Breach {
    /// Name of the rule that fired.
    pub rule: String,
    /// Metric the rule watches.
    pub metric: String,
    /// Aggregated value that violated the rule.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Snapshot tick at which the violation began.
    pub tick: u64,
}

impl Breach {
    /// The schema-1.5 `slo_breach` event for this breach.
    pub fn event(&self) -> TraceEvent<'_> {
        TraceEvent::SloBreach {
            rule: &self.rule,
            metric: &self.metric,
            value: self.value,
            threshold: self.threshold,
            tick: self.tick,
        }
    }
}

/// Parse an SLO config (see module docs for the grammar).
pub fn parse_rules(text: &str) -> Result<Vec<SloRule>, String> {
    let mut rules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        let toks: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: String| Err(format!("slo config line {n}: {msg}"));
        let num = |s: &str, what: &str| -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|_| format!("slo config line {n}: {what} '{s}' is not a number"))
        };
        let rule = match toks.as_slice() {
            [name, metric, op, value] => {
                let op = match Op::parse(op) {
                    Some(op) => op,
                    None => return err(format!("unknown operator '{op}'")),
                };
                SloRule {
                    name: name.to_string(),
                    metric: metric.to_string(),
                    kind: RuleKind::Threshold,
                    op,
                    threshold: num(value, "threshold")?,
                }
            }
            [name, pct, metric, op, value] if pct.starts_with('p') => {
                let q = num(&pct[1..], "percentile")? / 100.0;
                if !(0.0..=1.0).contains(&q) {
                    return err(format!("percentile '{pct}' out of range"));
                }
                let op = match Op::parse(op) {
                    Some(op) => op,
                    None => return err(format!("unknown operator '{op}'")),
                };
                SloRule {
                    name: name.to_string(),
                    metric: metric.to_string(),
                    kind: RuleKind::Percentile(q),
                    op,
                    threshold: num(value, "threshold")?,
                }
            }
            [name, "burn", metric, op, value, "over", window] => {
                let op = match Op::parse(op) {
                    Some(op) => op,
                    None => return err(format!("unknown operator '{op}'")),
                };
                let window: usize = match window.parse() {
                    Ok(w) if w >= 2 => w,
                    _ => return err(format!("burn window '{window}' must be an integer >= 2")),
                };
                SloRule {
                    name: name.to_string(),
                    metric: metric.to_string(),
                    kind: RuleKind::Burn { window },
                    op,
                    threshold: num(value, "threshold")?,
                }
            }
            _ => return err(format!("unrecognized rule shape '{line}'")),
        };
        rules.push(rule);
    }
    Ok(rules)
}

/// Stateful evaluator: feed snapshots in order, collect breaches.
pub struct SloEngine {
    rules: Vec<SloRule>,
    /// Per-rule latch: `true` while the rule is in violation (so a
    /// sustained violation emits one breach at its leading edge).
    breaching: Vec<bool>,
    /// Trailing snapshot history, bounded by [`HISTORY_CAP`].
    history: VecDeque<SnapshotView>,
}

impl SloEngine {
    /// An engine over `rules` with empty history.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let breaching = vec![false; rules.len()];
        Self { rules, breaching, history: VecDeque::new() }
    }

    /// The rules this engine evaluates.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Fold one snapshot; returns breaches that *begin* at this tick.
    pub fn observe(&mut self, view: SnapshotView) -> Vec<Breach> {
        if self.history.len() == HISTORY_CAP {
            self.history.pop_front();
        }
        self.history.push_back(view);
        let mut fired = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let value = match eval_rule(rule, &self.history) {
                Some(v) => v,
                None => continue, // unknown metric or not enough history
            };
            let violated = rule.op.violated(value, rule.threshold);
            if violated && !self.breaching[i] {
                fired.push(Breach {
                    rule: rule.name.clone(),
                    metric: rule.metric.clone(),
                    value,
                    threshold: rule.threshold,
                    tick: view.tick,
                });
            }
            self.breaching[i] = violated;
        }
        fired
    }
}

/// The aggregated value a rule compares, or `None` when it cannot be
/// computed yet (unknown metric, or a burn window with < 2 points).
fn eval_rule(rule: &SloRule, history: &VecDeque<SnapshotView>) -> Option<f64> {
    let current = history.back()?;
    match rule.kind {
        RuleKind::Threshold => current.metric(&rule.metric),
        RuleKind::Percentile(q) => {
            let mut values: Vec<f64> = Vec::with_capacity(history.len());
            for v in history {
                values.push(v.metric(&rule.metric)?);
            }
            values.sort_by(|a, b| a.total_cmp(b));
            // Same rank-and-interpolate law as `Histogram::quantile`.
            let rank = q * (values.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            Some(values[lo] + frac * (values[hi] - values[lo]))
        }
        RuleKind::Burn { window } => {
            if history.len() < 2 {
                return None;
            }
            let start = history.len().saturating_sub(window);
            let oldest = &history[start];
            let dv = current.metric(&rule.metric)? - oldest.metric(&rule.metric)?;
            let dt = current.tick.saturating_sub(oldest.tick);
            if dt == 0 {
                return None;
            }
            Some(dv / dt as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(tick: u64, queued: u64, shed: u64) -> SnapshotView {
        SnapshotView { tick, seq: tick * 10, queued, shed, ..SnapshotView::default() }
    }

    #[test]
    fn parses_all_three_kinds_and_skips_noise() {
        let text = "\n# alerting rules\nqueue-depth queued > 8\ntail p95 queued >= 6 # inline comment\nshed-burn burn shed > 0.5 over 5\n";
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].kind, RuleKind::Threshold);
        assert_eq!(rules[0].condition(), "queued > 8");
        assert_eq!(rules[1].kind, RuleKind::Percentile(0.95));
        assert_eq!(rules[2].kind, RuleKind::Burn { window: 5 });
        assert_eq!(rules[2].condition(), "burn(shed, 5) > 0.5");
    }

    #[test]
    fn parse_errors_name_the_line() {
        for bad in [
            "only-two-tokens queued",
            "bad-op queued ~ 8",
            "bad-pct p101 queued > 1",
            "bad-window burn shed > 0.5 over 1",
            "bad-num queued > eight",
        ] {
            let err = parse_rules(bad).unwrap_err();
            assert!(err.contains("line 1"), "{err}");
        }
    }

    #[test]
    fn threshold_breach_is_edge_triggered() {
        let rules = parse_rules("depth queued > 8").unwrap();
        let mut engine = SloEngine::new(rules);
        assert!(engine.observe(snap(1, 3, 0)).is_empty());
        let fired = engine.observe(snap(2, 9, 0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "depth");
        assert_eq!(fired[0].value, 9.0);
        assert_eq!(fired[0].tick, 2);
        assert!(engine.observe(snap(3, 10, 0)).is_empty(), "still breaching: latched");
        assert!(engine.observe(snap(4, 2, 0)).is_empty(), "recovered");
        assert_eq!(engine.observe(snap(5, 9, 0)).len(), 1, "re-armed");
    }

    #[test]
    fn percentile_rule_tracks_history_quantile() {
        let rules = parse_rules("tail p50 queued >= 5").unwrap();
        let mut engine = SloEngine::new(rules);
        assert!(engine.observe(snap(1, 1, 0)).is_empty());
        assert!(engine.observe(snap(2, 2, 0)).is_empty());
        // History [1, 2, 8]: p50 = 2 — still fine. Then [1,2,8,9]: p50 = 5.
        assert!(engine.observe(snap(3, 8, 0)).is_empty());
        let fired = engine.observe(snap(4, 9, 0));
        assert_eq!(fired.len(), 1, "median crossed 5");
        assert_eq!(fired[0].value, 5.0);
    }

    #[test]
    fn burn_rule_measures_rate_over_window() {
        let rules = parse_rules("shed-burn burn shed > 1.5 over 3").unwrap();
        let mut engine = SloEngine::new(rules);
        assert!(engine.observe(snap(1, 0, 0)).is_empty(), "single point: no rate");
        assert!(engine.observe(snap(2, 0, 1)).is_empty(), "rate 1.0/tick");
        let fired = engine.observe(snap(3, 0, 4));
        assert_eq!(fired.len(), 1, "rate (4-0)/2 = 2.0/tick");
        assert_eq!(fired[0].value, 2.0);
    }

    #[test]
    fn unknown_metric_never_fires() {
        let rules = parse_rules("ghost no_such_metric > 0").unwrap();
        let mut engine = SloEngine::new(rules);
        assert!(engine.observe(snap(1, 99, 99)).is_empty());
    }

    #[test]
    fn breach_event_round_trips_through_the_schema() {
        let b = Breach {
            rule: "depth".into(),
            metric: "queued".into(),
            value: 9.0,
            threshold: 8.0,
            tick: 2,
        };
        let line = b.event().to_json_line();
        assert_eq!(
            line,
            "{\"ev\":\"slo_breach\",\"rule\":\"depth\",\"metric\":\"queued\",\"value\":9,\"threshold\":8,\"tick\":2}"
        );
    }
}
