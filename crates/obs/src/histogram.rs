//! Power-of-two latency/duration histogram with *exact* merge.
//!
//! Design constraints, in order:
//!
//! 1. **Merge must be exactly associative and commutative** — the
//!    parallel learner folds per-rollout telemetry into a shared
//!    aggregate, and the property tests demand that fold order is
//!    irrelevant *bitwise*. Floating-point addition is not associative,
//!    so the sum is kept in fixed point (nanoseconds, `u128`), bucket
//!    counts are integers, and min/max are folds (which *are* exact).
//! 2. **Recording must be cheap** — bucket selection reads the IEEE-754
//!    exponent straight from the bit pattern (no `log2`, no libm, no
//!    platform variance).
//! 3. **No allocation** — fixed 42-bucket array covering `[2^-20 s,
//!    2^20 s)` ≈ 1 µs … 12 days, with under/overflow buckets at the
//!    ends.

/// Number of buckets (`[0, 2^-20)`, 40 octaves, `[2^20, ∞)`).
pub const BUCKETS: usize = 42;

/// A duration histogram over non-negative seconds (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    /// Sum in integer nanoseconds; fixed point keeps merge exact.
    sum_nanos: u128,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Largest per-value contribution to `sum_nanos` (≈ 2.5 million years);
/// values beyond it saturate rather than overflow the `u128` sum.
const NANOS_CAP: u128 = 1 << 96;

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum_nanos: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Rebuild a histogram from raw state captured elsewhere (the
    /// atomic registry keeps the same buckets/count/sum in relaxed
    /// atomics and converts here at snapshot time). `min`/`max` are the
    /// recorded extremes, or `+∞`/`-∞` respectively when `count == 0`
    /// (the empty-histogram sentinel [`Histogram::new`] uses).
    pub fn from_parts(
        buckets: [u64; BUCKETS],
        count: u64,
        sum_nanos: u128,
        min: f64,
        max: f64,
    ) -> Self {
        Self { buckets, count, sum_nanos, min, max }
    }

    /// Bucket index for a value: the IEEE-754 exponent, shifted so that
    /// `[2^-20, 2^-19)` lands in bucket 1. Everything below 2^-20
    /// (including zero and subnormals) falls into bucket 0, everything
    /// at or above 2^20 into the last bucket.
    pub(crate) fn index(secs: f64) -> usize {
        if secs <= 0.0 {
            return 0;
        }
        let exp = ((secs.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        (exp + 21).clamp(0, BUCKETS as i32 - 1) as usize
    }

    /// Lower bound (inclusive) of bucket `i`, seconds.
    pub fn bucket_lo(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            (i as f64 - 21.0).exp2()
        }
    }

    /// Upper bound (exclusive) of bucket `i`, seconds.
    pub fn bucket_hi(i: usize) -> f64 {
        if i >= BUCKETS - 1 {
            f64::INFINITY
        } else {
            (i as f64 - 20.0).exp2()
        }
    }

    /// Record one non-negative duration. Non-finite or negative values
    /// are ignored (they indicate a caller bug, not a measurement).
    pub fn record(&mut self, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        self.buckets[Self::index(secs)] += 1;
        self.count += 1;
        let nanos = (secs * 1e9).round();
        self.sum_nanos = self.sum_nanos.saturating_add(if nanos >= NANOS_CAP as f64 {
            NANOS_CAP
        } else {
            nanos as u128
        });
        self.min = self.min.min(secs);
        self.max = self.max.max(secs);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values, seconds (nanosecond-rounded at record
    /// time, so independent of recording order).
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// Mean of recorded values, seconds; `None` when empty.
    pub fn mean_secs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_secs() / self.count as f64)
    }

    /// Smallest recorded value; `None` when empty.
    pub fn min_secs(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value; `None` when empty.
    pub fn max_secs(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the log buckets.
    ///
    /// The rank `q·(count−1)` is located in the cumulative bucket
    /// counts and interpolated linearly *within* the bucket, then
    /// clamped to the exactly-tracked `[min, max]` — so p0/p100 are
    /// exact, interior quantiles are correct to within one octave, and
    /// the estimate is a pure function of the (exactly mergeable)
    /// bucket state. `None` when empty or `q` is out of range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if q == 1.0 {
            // The top rank interpolates to strictly inside its bucket,
            // which can undershoot a max the clamp cannot restore —
            // answer with the exactly-tracked extreme instead.
            return Some(self.max);
        }
        // Target rank in [0, count-1]; find its bucket cumulatively.
        let rank = q * (self.count - 1) as f64;
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upper = below + c;
            if rank < upper as f64 {
                // The open-ended top bucket has no finite lower span
                // to interpolate over; fall back to the exact max.
                if i >= BUCKETS - 1 {
                    return Some(self.max);
                }
                // Position within this bucket's occupants, in [0, 1).
                let frac = (rank - below as f64) / c as f64;
                let lo = Self::bucket_lo(i);
                let est = lo + frac * (Self::bucket_hi(i) - lo);
                return Some(est.clamp(self.min, self.max));
            }
            below = upper;
        }
        Some(self.max)
    }

    /// Hand-rolled one-line JSON summary: count/sum/min/max/mean plus
    /// p50/p95/p99 quantile estimates — the human-facing rendering
    /// (telemetry reports), in contrast to [`Histogram::to_json`]'s
    /// raw-bucket form (the lossless one).
    pub fn summary_json(&self) -> String {
        let f = crate::event::json_f64;
        let opt = |v: Option<f64>| v.map_or("null".into(), f);
        format!(
            "{{\"count\":{},\"sum_secs\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.count,
            f(self.sum_secs()),
            opt(self.min_secs()),
            opt(self.max_secs()),
            opt(self.mean_secs()),
            opt(self.quantile(0.50)),
            opt(self.quantile(0.95)),
            opt(self.quantile(0.99)),
        )
    }

    /// Fold `other` into `self`. Integer adds plus min/max folds: the
    /// result is bitwise independent of merge order and grouping.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Hand-rolled one-line JSON rendering (sparse bucket list).
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                if !buckets.is_empty() {
                    buckets.push(',');
                }
                buckets.push_str(&format!("[{i},{c}]"));
            }
        }
        format!(
            "{{\"count\":{},\"sum_secs\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            self.count,
            crate::event::json_f64(self.sum_secs()),
            self.min_secs().map_or("null".into(), crate::event::json_f64),
            self.max_secs().map_or("null".into(), crate::event::json_f64),
            buckets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0.5, 1.5, 2.5, 0.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum_secs() - 4.5).abs() < 1e-9);
        assert_eq!(h.min_secs(), Some(0.0));
        assert_eq!(h.max_secs(), Some(2.5));
        assert!((h.mean_secs().unwrap() - 1.125).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_secs(), None);
        assert_eq!(h.max_secs(), None);
        assert_eq!(h.mean_secs(), None);
    }

    #[test]
    fn bucket_boundaries_are_octaves() {
        // 1.0 s has exponent 0 → bucket 21, covering [1, 2).
        assert_eq!(Histogram::index(1.0), 21);
        assert_eq!(Histogram::index(1.999), 21);
        assert_eq!(Histogram::index(2.0), 22);
        assert_eq!(Histogram::bucket_lo(21), 1.0);
        assert_eq!(Histogram::bucket_hi(21), 2.0);
        // Extremes clamp to the end buckets.
        assert_eq!(Histogram::index(0.0), 0);
        assert_eq!(Histogram::index(1e-12), 0);
        assert_eq!(Histogram::index(1e18), BUCKETS - 1);
        assert_eq!(Histogram::bucket_lo(0), 0.0);
        assert!(Histogram::bucket_hi(BUCKETS - 1).is_infinite());
    }

    #[test]
    fn non_finite_and_negative_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_equals_serial_accumulation() {
        let xs = [0.001, 0.5, 3.0, 700.0, 0.0, 42.0];
        let mut serial = Histogram::new();
        for &x in &xs {
            serial.record(x);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                left.record(x)
            } else {
                right.record(x)
            }
        }
        let mut merged = right.clone();
        merged.merge(&left);
        assert_eq!(merged, serial);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        // 100 values 1..=100 seconds: p50 ≈ 50, p95 ≈ 95, p99 ≈ 99,
        // with log buckets the estimate must stay within one octave.
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.0), Some(1.0), "p0 is the exact min");
        assert_eq!(h.quantile(1.0), Some(100.0), "p100 is the exact max");
        let p50 = h.quantile(0.5).unwrap();
        assert!((25.0..=100.0).contains(&p50), "p50 estimate {p50}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((64.0..=100.0).contains(&p95), "p95 estimate {p95}");
        assert!(h.quantile(0.95) <= h.quantile(0.99), "quantiles are monotone");
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(Histogram::new().quantile(0.5), None, "empty has no quantiles");
        let mut h = Histogram::new();
        h.record(3.5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3.5), "single value is every quantile");
        }
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        // Values in the open-ended overflow bucket fall back to max.
        let mut big = Histogram::new();
        big.record(1e18);
        big.record(2e18);
        assert_eq!(big.quantile(0.9), Some(2e18));
    }

    #[test]
    fn summary_json_has_quantiles_not_buckets() {
        let mut h = Histogram::new();
        for v in [0.5, 1.5, 2.5] {
            h.record(v);
        }
        let j = h.summary_json();
        assert!(j.contains("\"p50\":"), "{j}");
        assert!(j.contains("\"p95\":"), "{j}");
        assert!(j.contains("\"mean\":"), "{j}");
        assert!(!j.contains("buckets"), "{j}");
        let empty = Histogram::new().summary_json();
        assert!(empty.contains("\"p50\":null"), "{empty}");
    }

    #[test]
    fn json_is_one_line_and_sparse() {
        let mut h = Histogram::new();
        h.record(1.5);
        h.record(1.6);
        let j = h.to_json();
        assert!(!j.contains('\n'));
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("[21,2]"), "{j}");
        let empty = Histogram::new().to_json();
        assert!(empty.contains("\"min\":null"), "{empty}");
    }
}
