//! The versioned trace-event schema.
//!
//! Every event serializes to exactly one JSON line with a fixed field
//! order, so a trace file is byte-comparable across runs: two runs of
//! the same seeded configuration must produce identical files, and the
//! first differing line (see [`crate::diff`]) pinpoints where two
//! executions diverged.
//!
//! # Stability guarantees
//!
//! * The `v` field of the `header` event is [`SCHEMA_VERSION`]; it is
//!   bumped whenever an existing event kind changes shape or meaning.
//! * New event kinds may be *added* without a version bump (consumers
//!   must skip unknown `ev` values).
//! * Field order within a line, float formatting (Rust's shortest
//!   round-trip `Display`) and the one-line-per-event framing are part
//!   of the format: byte comparison is the supported diff mode.

/// Trace schema version (`header.v`).
pub const SCHEMA_VERSION: u32 = 1;

/// Additive schema minor. Bumped when a new event kind is *added*
/// without changing any existing kind — the wire format still carries
/// only the major in `header.v` (consumers skip unknown `ev` values),
/// so a minor bump never invalidates existing traces or fixtures.
/// Minor 1 added the `phase` wall-time event. Minor 2 added the
/// fault-subsystem events (`fault`, `recover`, `blacklist`,
/// `reschedule`). Minor 3 added the scheduling-service events
/// (`submit`, `admit`, `shed`, `cache_hit`, `cache_miss`,
/// `plan_done`). Minor 4 added the weighted-fair-queueing admission
/// events (`enqueue`, `dequeue`, `backpressure`). Minor 5 added the
/// live-metrics-plane events (`snapshot`, `slo_breach`), which are
/// emitted only onto sidecar sinks — never into a canonical trace.
/// Minor 6 added the speculative-replication events (`replicate`,
/// `cancel`).
pub const SCHEMA_MINOR: u32 = 6;

/// Attempt-id space reserved for speculative replicas.
///
/// Primary attempts of an activation use the retry counter (`0, 1,
/// 2, …`); each speculative replica launched alongside a primary gets
/// `REPLICA_ATTEMPT_BASE + n` where `n` is the activation's replica
/// launch ordinal. The split keeps replica attempts disjoint from the
/// retry budget — consumers (invariant checkers, analyzers) classify
/// an attempt as a replica with `attempt >= REPLICA_ATTEMPT_BASE` and
/// never count it against `max_retries`.
pub const REPLICA_ATTEMPT_BASE: u32 = 1_000_000;

/// One structured trace event. Times are simulated seconds unless a
/// field name says otherwise.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent<'a> {
    /// First line of a trace: schema version + producing component.
    Header { producer: &'a str },
    /// A simulation began (workflow/fleet shape).
    SimStart { activations: u32, vms: u32 },
    /// A VM finished booting; its processing elements came online.
    VmReady { t: f64, vm: u32, pes: u32 },
    /// A scheduling pass ran: queue depth (ready activations) and idle
    /// capacity (free processing elements) at that instant.
    Sched { t: f64, ready: u32, idle_pes: u32 },
    /// An activation attempt started on a VM.
    Start { t: f64, ac: u32, vm: u32, attempt: u32, ready_since: f64 },
    /// An activation attempt finished (`exec`/`queue` are the paper's
    /// `te`/`tf`).
    Finish { t: f64, ac: u32, vm: u32, attempt: u32, exec_secs: f64, queue_secs: f64, failed: bool },
    /// A failed activation re-entered the ready queue.
    Retry { t: f64, ac: u32, next_attempt: u32 },
    /// The simulation drained (kernel statistics included).
    SimEnd { t: f64, success: bool, events: u64, queue_pushes: u64, max_queue_depth: u64 },
    /// A learning episode began (the ε in force after scheduling).
    EpisodeStart { episode: u32, epsilon: f64 },
    /// A learning episode ended. `q_delta` is the L1 change of the
    /// behaviour Q-table over the episode; `td_updates` counts TD
    /// steps.
    EpisodeEnd {
        episode: u32,
        makespan_secs: f64,
        success: bool,
        reward: f64,
        td_updates: u64,
        q_delta: f64,
    },
    /// A parallel-learning round merged its rollouts into the shared
    /// agent.
    RoundMerge { round: u32, episodes: u32, transitions: u64, samples: u64 },
    /// Learning finished (deterministic replay makespans; wall-clock is
    /// deliberately excluded — traces must be reproducible).
    LearnEnd { episodes: u32, greedy_makespan_secs: f64, best_makespan_secs: f64 },
    /// A fault fired (schema minor 2). `kind` names the taxonomy entry
    /// (`crash`, `straggler`, `timeout`, `lost_ack`, `attempt`); `ac`
    /// is `-1` for VM-level faults with no single victim activation.
    Fault { t: f64, kind: &'a str, ac: i64, vm: u32 },
    /// A crashed VM finished repair; its PEs came back (schema
    /// minor 2).
    Recover { t: f64, vm: u32, pes: u32 },
    /// A VM was permanently blacklisted after repeated faults (schema
    /// minor 2).
    Blacklist { t: f64, vm: u32, faults: u32 },
    /// An orphaned/timed-out activation was queued for re-scheduling
    /// away from its failed attempt (schema minor 2). `vm` is the VM
    /// the lost attempt ran on.
    Reschedule { t: f64, ac: u32, vm: u32, next_attempt: u32 },
    /// A speculative replica of a running activation was dispatched
    /// (schema minor 6). This is the replica's start marker — the
    /// primary attempt keeps the sole `start` event of the group.
    /// `attempt` is always `>=` [`REPLICA_ATTEMPT_BASE`].
    Replicate { t: f64, ac: u32, vm: u32, attempt: u32, ready_since: f64 },
    /// A losing attempt of a replicated group was cancelled because a
    /// sibling finished first (schema minor 6). Cancelled attempts
    /// never produce a `finish`; `attempt` may be a primary retry
    /// counter (the primary lost to one of its replicas) or a replica
    /// id `>=` [`REPLICA_ATTEMPT_BASE`].
    Cancel { t: f64, ac: u32, vm: u32, attempt: u32 },
    /// A workflow submission arrived at the scheduling service (schema
    /// minor 3). `seq` is the service-global submission sequence
    /// number; `shard` is the shard it hashed to.
    Submit { seq: u64, tenant: &'a str, family: &'a str, size: u32, shard: u32 },
    /// A submission passed admission control and was queued on its
    /// shard (schema minor 3).
    Admit { seq: u64, shard: u32 },
    /// A submission was shed by admission control — the shard's
    /// bounded queue was full (schema minor 3).
    Shed { seq: u64, tenant: &'a str, shard: u32 },
    /// A shard found a warm-start Q-table for the submission's
    /// family/size in its cache (schema minor 3).
    CacheHit { seq: u64, shard: u32, family: &'a str, size: u32 },
    /// No cached Q-table — the shard runs full learning (schema
    /// minor 3).
    CacheMiss { seq: u64, shard: u32, family: &'a str, size: u32 },
    /// A submission's plan was learned and simulated to completion
    /// (schema minor 3). `episodes` is the number of learning episodes
    /// actually spent (reduced on a cache hit).
    PlanDone {
        seq: u64,
        tenant: &'a str,
        shard: u32,
        makespan_secs: f64,
        episodes: u32,
        cache_hit: bool,
    },
    /// A submission was appended to its tenant's fair queue (schema
    /// minor 4). `depth` is the tenant queue depth *after* the append.
    Enqueue { seq: u64, tenant: &'a str, shard: u32, depth: u32 },
    /// The deficit-round-robin dispatcher handed a queued submission to
    /// its shard (schema minor 4). `vt` is the dispatcher's virtual
    /// time — the DRR round counter at dispatch.
    Dequeue { seq: u64, tenant: &'a str, shard: u32, vt: u64 },
    /// A tenant queue was full at arrival; the submission is about to
    /// be shed (schema minor 4). `depth` is the queue's capacity (its
    /// depth at the moment of rejection).
    Backpressure { seq: u64, tenant: &'a str, depth: u32 },
    /// Periodic live-metrics snapshot (schema minor 5). Emitted by the
    /// service's submitter thread every `snapshot_every` submissions
    /// onto a **sidecar** sink — never into the canonical trace, so
    /// canonical bytes stay identical across worker counts. `tick` is
    /// the snapshot ordinal, `seq` the submissions seen so far; the
    /// admission-plane fields (`queued`, `vt`, `backpressure`,
    /// `max_depth`, `admitted`, `shed`) are pure functions of the
    /// submission sequence and therefore deterministic. The worker-side
    /// fields (`plans`, `hit_rate`, `plans_per_sec`, sojourn
    /// percentiles) are sampled from the live registry and carry
    /// wall-clock race; offline SLO evaluation keys off the
    /// deterministic fields only.
    Snapshot {
        tick: u64,
        seq: u64,
        queued: u64,
        vt: u64,
        backpressure: u64,
        max_depth: u32,
        admitted: u64,
        shed: u64,
        plans: u64,
        hit_rate: f64,
        plans_per_sec: f64,
        p50_sojourn_ms: f64,
        p99_sojourn_ms: f64,
    },
    /// An SLO rule fired (schema minor 5). `rule` names the configured
    /// rule, `metric` the snapshot/registry field it watched, `value`
    /// the observed quantity and `threshold` the configured bound;
    /// `tick` is the snapshot ordinal the breach was evaluated at.
    /// Sidecar-only, like `snapshot`.
    SloBreach { rule: &'a str, metric: &'a str, value: f64, threshold: f64, tick: u64 },
    /// Wall-clock spent in a named engine phase (schema minor 1).
    ///
    /// The one deliberately *non-deterministic* event kind: it carries
    /// host wall time, so it is emitted only when phase timing is
    /// explicitly enabled ([`crate::Tracer::with_timing`]) and is
    /// skipped by event-level trace comparison
    /// ([`crate::diff::trace_diff_events`]). Byte-level golden
    /// comparison therefore still sees fully reproducible traces by
    /// default.
    Phase { name: &'a str, wall_ms: f64 },
}

/// Render a float as a JSON value: shortest round-trip for finite
/// numbers, `null` otherwise (JSON has no NaN/∞).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `Display` is shortest-round-trip; it can use an exponent for
        // very small/large values (e.g. `1e-7`) — still valid JSON.
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Escape a string for embedding in a JSON line.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TraceEvent<'_> {
    /// The `ev` tag this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Header { .. } => "header",
            TraceEvent::SimStart { .. } => "sim_start",
            TraceEvent::VmReady { .. } => "vm_ready",
            TraceEvent::Sched { .. } => "sched",
            TraceEvent::Start { .. } => "start",
            TraceEvent::Finish { .. } => "finish",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::SimEnd { .. } => "sim_end",
            TraceEvent::EpisodeStart { .. } => "episode_start",
            TraceEvent::EpisodeEnd { .. } => "episode_end",
            TraceEvent::RoundMerge { .. } => "round_merge",
            TraceEvent::LearnEnd { .. } => "learn_end",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Recover { .. } => "recover",
            TraceEvent::Blacklist { .. } => "blacklist",
            TraceEvent::Reschedule { .. } => "reschedule",
            TraceEvent::Replicate { .. } => "replicate",
            TraceEvent::Cancel { .. } => "cancel",
            TraceEvent::Submit { .. } => "submit",
            TraceEvent::Admit { .. } => "admit",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::PlanDone { .. } => "plan_done",
            TraceEvent::Enqueue { .. } => "enqueue",
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::Backpressure { .. } => "backpressure",
            TraceEvent::Snapshot { .. } => "snapshot",
            TraceEvent::SloBreach { .. } => "slo_breach",
            TraceEvent::Phase { .. } => "phase",
        }
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let f = json_f64;
        match *self {
            TraceEvent::Header { producer } => format!(
                "{{\"ev\":\"header\",\"v\":{SCHEMA_VERSION},\"producer\":{}}}",
                json_str(producer)
            ),
            TraceEvent::SimStart { activations, vms } => {
                format!("{{\"ev\":\"sim_start\",\"activations\":{activations},\"vms\":{vms}}}")
            }
            TraceEvent::VmReady { t, vm, pes } => {
                format!("{{\"ev\":\"vm_ready\",\"t\":{},\"vm\":{vm},\"pes\":{pes}}}", f(t))
            }
            TraceEvent::Sched { t, ready, idle_pes } => format!(
                "{{\"ev\":\"sched\",\"t\":{},\"ready\":{ready},\"idle_pes\":{idle_pes}}}",
                f(t)
            ),
            TraceEvent::Start { t, ac, vm, attempt, ready_since } => format!(
                "{{\"ev\":\"start\",\"t\":{},\"ac\":{ac},\"vm\":{vm},\"attempt\":{attempt},\
                 \"ready_since\":{}}}",
                f(t),
                f(ready_since)
            ),
            TraceEvent::Finish { t, ac, vm, attempt, exec_secs, queue_secs, failed } => format!(
                "{{\"ev\":\"finish\",\"t\":{},\"ac\":{ac},\"vm\":{vm},\"attempt\":{attempt},\
                 \"exec_secs\":{},\"queue_secs\":{},\"failed\":{failed}}}",
                f(t),
                f(exec_secs),
                f(queue_secs)
            ),
            TraceEvent::Retry { t, ac, next_attempt } => format!(
                "{{\"ev\":\"retry\",\"t\":{},\"ac\":{ac},\"next_attempt\":{next_attempt}}}",
                f(t)
            ),
            TraceEvent::SimEnd { t, success, events, queue_pushes, max_queue_depth } => format!(
                "{{\"ev\":\"sim_end\",\"t\":{},\"success\":{success},\"events\":{events},\
                 \"queue_pushes\":{queue_pushes},\"max_queue_depth\":{max_queue_depth}}}",
                f(t)
            ),
            TraceEvent::EpisodeStart { episode, epsilon } => format!(
                "{{\"ev\":\"episode_start\",\"episode\":{episode},\"epsilon\":{}}}",
                f(epsilon)
            ),
            TraceEvent::EpisodeEnd {
                episode,
                makespan_secs,
                success,
                reward,
                td_updates,
                q_delta,
            } => {
                format!(
                    "{{\"ev\":\"episode_end\",\"episode\":{episode},\"makespan_secs\":{},\
                     \"success\":{success},\"reward\":{},\"td_updates\":{td_updates},\
                     \"q_delta\":{}}}",
                    f(makespan_secs),
                    f(reward),
                    f(q_delta)
                )
            }
            TraceEvent::RoundMerge { round, episodes, transitions, samples } => format!(
                "{{\"ev\":\"round_merge\",\"round\":{round},\"episodes\":{episodes},\
                 \"transitions\":{transitions},\"samples\":{samples}}}"
            ),
            TraceEvent::LearnEnd { episodes, greedy_makespan_secs, best_makespan_secs } => format!(
                "{{\"ev\":\"learn_end\",\"episodes\":{episodes},\"greedy_makespan_secs\":{},\
                 \"best_makespan_secs\":{}}}",
                f(greedy_makespan_secs),
                f(best_makespan_secs)
            ),
            TraceEvent::Fault { t, kind, ac, vm } => format!(
                "{{\"ev\":\"fault\",\"t\":{},\"kind\":{},\"ac\":{ac},\"vm\":{vm}}}",
                f(t),
                json_str(kind)
            ),
            TraceEvent::Recover { t, vm, pes } => {
                format!("{{\"ev\":\"recover\",\"t\":{},\"vm\":{vm},\"pes\":{pes}}}", f(t))
            }
            TraceEvent::Blacklist { t, vm, faults } => {
                format!("{{\"ev\":\"blacklist\",\"t\":{},\"vm\":{vm},\"faults\":{faults}}}", f(t))
            }
            TraceEvent::Reschedule { t, ac, vm, next_attempt } => format!(
                "{{\"ev\":\"reschedule\",\"t\":{},\"ac\":{ac},\"vm\":{vm},\
                 \"next_attempt\":{next_attempt}}}",
                f(t)
            ),
            TraceEvent::Replicate { t, ac, vm, attempt, ready_since } => format!(
                "{{\"ev\":\"replicate\",\"t\":{},\"ac\":{ac},\"vm\":{vm},\"attempt\":{attempt},\
                 \"ready_since\":{}}}",
                f(t),
                f(ready_since)
            ),
            TraceEvent::Cancel { t, ac, vm, attempt } => format!(
                "{{\"ev\":\"cancel\",\"t\":{},\"ac\":{ac},\"vm\":{vm},\"attempt\":{attempt}}}",
                f(t)
            ),
            TraceEvent::Submit { seq, tenant, family, size, shard } => format!(
                "{{\"ev\":\"submit\",\"seq\":{seq},\"tenant\":{},\"family\":{},\"size\":{size},\
                 \"shard\":{shard}}}",
                json_str(tenant),
                json_str(family)
            ),
            TraceEvent::Admit { seq, shard } => {
                format!("{{\"ev\":\"admit\",\"seq\":{seq},\"shard\":{shard}}}")
            }
            TraceEvent::Shed { seq, tenant, shard } => format!(
                "{{\"ev\":\"shed\",\"seq\":{seq},\"tenant\":{},\"shard\":{shard}}}",
                json_str(tenant)
            ),
            TraceEvent::CacheHit { seq, shard, family, size } => format!(
                "{{\"ev\":\"cache_hit\",\"seq\":{seq},\"shard\":{shard},\"family\":{},\
                 \"size\":{size}}}",
                json_str(family)
            ),
            TraceEvent::CacheMiss { seq, shard, family, size } => format!(
                "{{\"ev\":\"cache_miss\",\"seq\":{seq},\"shard\":{shard},\"family\":{},\
                 \"size\":{size}}}",
                json_str(family)
            ),
            TraceEvent::PlanDone { seq, tenant, shard, makespan_secs, episodes, cache_hit } => {
                format!(
                    "{{\"ev\":\"plan_done\",\"seq\":{seq},\"tenant\":{},\"shard\":{shard},\
                     \"makespan_secs\":{},\"episodes\":{episodes},\"cache_hit\":{cache_hit}}}",
                    json_str(tenant),
                    f(makespan_secs)
                )
            }
            TraceEvent::Enqueue { seq, tenant, shard, depth } => format!(
                "{{\"ev\":\"enqueue\",\"seq\":{seq},\"tenant\":{},\"shard\":{shard},\
                 \"depth\":{depth}}}",
                json_str(tenant)
            ),
            TraceEvent::Dequeue { seq, tenant, shard, vt } => format!(
                "{{\"ev\":\"dequeue\",\"seq\":{seq},\"tenant\":{},\"shard\":{shard},\"vt\":{vt}}}",
                json_str(tenant)
            ),
            TraceEvent::Backpressure { seq, tenant, depth } => format!(
                "{{\"ev\":\"backpressure\",\"seq\":{seq},\"tenant\":{},\"depth\":{depth}}}",
                json_str(tenant)
            ),
            TraceEvent::Snapshot {
                tick,
                seq,
                queued,
                vt,
                backpressure,
                max_depth,
                admitted,
                shed,
                plans,
                hit_rate,
                plans_per_sec,
                p50_sojourn_ms,
                p99_sojourn_ms,
            } => format!(
                "{{\"ev\":\"snapshot\",\"tick\":{tick},\"seq\":{seq},\"queued\":{queued},\
                 \"vt\":{vt},\"backpressure\":{backpressure},\"max_depth\":{max_depth},\
                 \"admitted\":{admitted},\"shed\":{shed},\"plans\":{plans},\"hit_rate\":{},\
                 \"plans_per_sec\":{},\"p50_sojourn_ms\":{},\"p99_sojourn_ms\":{}}}",
                f(hit_rate),
                f(plans_per_sec),
                f(p50_sojourn_ms),
                f(p99_sojourn_ms)
            ),
            TraceEvent::SloBreach { rule, metric, value, threshold, tick } => format!(
                "{{\"ev\":\"slo_breach\",\"rule\":{},\"metric\":{},\"value\":{},\
                 \"threshold\":{},\"tick\":{tick}}}",
                json_str(rule),
                json_str(metric),
                f(value),
                f(threshold)
            ),
            TraceEvent::Phase { name, wall_ms } => format!(
                "{{\"ev\":\"phase\",\"name\":{},\"wall_ms\":{}}}",
                json_str(name),
                f(wall_ms)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_is_one_json_line_with_its_kind() {
        let events = [
            TraceEvent::Header { producer: "test" },
            TraceEvent::SimStart { activations: 50, vms: 9 },
            TraceEvent::VmReady { t: 1.5, vm: 2, pes: 4 },
            TraceEvent::Sched { t: 0.0, ready: 11, idle_pes: 16 },
            TraceEvent::Start { t: 0.0, ac: 3, vm: 8, attempt: 0, ready_since: 0.0 },
            TraceEvent::Finish {
                t: 2.5,
                ac: 3,
                vm: 8,
                attempt: 0,
                exec_secs: 2.5,
                queue_secs: 0.0,
                failed: false,
            },
            TraceEvent::Retry { t: 2.5, ac: 3, next_attempt: 1 },
            TraceEvent::SimEnd {
                t: 99.0,
                success: true,
                events: 50,
                queue_pushes: 50,
                max_queue_depth: 12,
            },
            TraceEvent::EpisodeStart { episode: 0, epsilon: 0.1 },
            TraceEvent::EpisodeEnd {
                episode: 0,
                makespan_secs: 99.0,
                success: true,
                reward: 0.5,
                td_updates: 50,
                q_delta: 1.25,
            },
            TraceEvent::RoundMerge { round: 0, episodes: 4, transitions: 200, samples: 200 },
            TraceEvent::LearnEnd {
                episodes: 10,
                greedy_makespan_secs: 90.0,
                best_makespan_secs: 88.5,
            },
            TraceEvent::Fault { t: 10.0, kind: "crash", ac: -1, vm: 3 },
            TraceEvent::Recover { t: 40.0, vm: 3, pes: 4 },
            TraceEvent::Blacklist { t: 55.0, vm: 3, faults: 3 },
            TraceEvent::Reschedule { t: 10.0, ac: 7, vm: 3, next_attempt: 1 },
            TraceEvent::Replicate { t: 10.0, ac: 7, vm: 4, attempt: 1_000_000, ready_since: 9.5 },
            TraceEvent::Cancel { t: 12.0, ac: 7, vm: 4, attempt: 1_000_000 },
            TraceEvent::Submit { seq: 0, tenant: "acme", family: "montage", size: 50, shard: 2 },
            TraceEvent::Admit { seq: 0, shard: 2 },
            TraceEvent::Shed { seq: 1, tenant: "acme", shard: 2 },
            TraceEvent::CacheHit { seq: 0, shard: 2, family: "montage", size: 50 },
            TraceEvent::CacheMiss { seq: 0, shard: 2, family: "montage", size: 50 },
            TraceEvent::PlanDone {
                seq: 0,
                tenant: "acme",
                shard: 2,
                makespan_secs: 123.5,
                episodes: 4,
                cache_hit: true,
            },
            TraceEvent::Enqueue { seq: 2, tenant: "acme", shard: 1, depth: 3 },
            TraceEvent::Dequeue { seq: 2, tenant: "acme", shard: 1, vt: 7 },
            TraceEvent::Backpressure { seq: 3, tenant: "acme", depth: 8 },
            TraceEvent::Snapshot {
                tick: 1,
                seq: 64,
                queued: 5,
                vt: 12,
                backpressure: 2,
                max_depth: 4,
                admitted: 62,
                shed: 2,
                plans: 57,
                hit_rate: 0.9,
                plans_per_sec: 812.5,
                p50_sojourn_ms: 60.5,
                p99_sojourn_ms: 120.25,
            },
            TraceEvent::SloBreach {
                rule: "queue-depth",
                metric: "queued",
                value: 9.0,
                threshold: 8.0,
                tick: 1,
            },
            TraceEvent::Phase { name: "sim.total", wall_ms: 12.5 },
        ];
        for ev in &events {
            let line = ev.to_json_line();
            assert!(!line.contains('\n'), "{line}");
            assert!(line.starts_with(&format!("{{\"ev\":\"{}\"", ev.kind())), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn header_carries_schema_version() {
        let line = TraceEvent::Header { producer: "wfsim" }.to_json_line();
        assert!(line.contains(&format!("\"v\":{SCHEMA_VERSION}")));
        assert!(line.contains("\"producer\":\"wfsim\""));
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(3.0), "3");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
