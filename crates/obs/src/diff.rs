//! First-divergence comparison of two traces.
//!
//! Traces are byte-comparable by construction (fixed field order,
//! deterministic float formatting), so "where did these two runs
//! diverge?" reduces to "first differing line" — which, because each
//! line is one event, names the exact event where determinism broke.

/// Outcome of comparing two traces line by line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceDiff {
    /// Every line matches.
    Identical {
        /// Number of (event) lines compared.
        lines: usize,
    },
    /// The traces differ, first at `line` (1-based).
    Diverged {
        /// 1-based line number of the first difference.
        line: usize,
        /// That line in the left trace (`None` = left ended early).
        left: Option<String>,
        /// That line in the right trace (`None` = right ended early).
        right: Option<String>,
    },
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDiff::Identical { lines } => write!(f, "identical ({lines} events)"),
            TraceDiff::Diverged { line, left, right } => {
                writeln!(f, "first divergence at line {line}:")?;
                writeln!(f, "  left:  {}", left.as_deref().unwrap_or("<end of trace>"))?;
                write!(f, "  right: {}", right.as_deref().unwrap_or("<end of trace>"))
            }
        }
    }
}

/// Compare two traces; report the first divergent event.
pub fn trace_diff(left: &str, right: &str) -> TraceDiff {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return TraceDiff::Identical { lines: line - 1 },
            (a, b) if a == b => {}
            (a, b) => {
                return TraceDiff::Diverged {
                    line,
                    left: a.map(String::from),
                    right: b.map(String::from),
                }
            }
        }
    }
}

/// Whether a trace line is a wall-clock `phase` event — the one event
/// kind that is *expected* to differ between otherwise identical runs.
pub fn is_phase_line(line: &str) -> bool {
    line.starts_with("{\"ev\":\"phase\"")
}

/// Outcome of the event-level comparison ([`trace_diff_events`]):
/// like [`TraceDiff`] but with the 1-based line number in *each* file
/// (they can differ once phase lines are skipped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventDiff {
    /// Every compared (non-phase) event matches.
    Identical {
        /// Number of events compared.
        events: usize,
    },
    /// The traces differ at compared-event `event` (1-based).
    Diverged {
        /// 1-based index among compared events.
        event: usize,
        /// 1-based line number of the divergent event in the left file
        /// (the line *after* the last match when the left ended early).
        left_line: usize,
        /// Same for the right file.
        right_line: usize,
        /// The divergent line in the left trace (`None` = ended early).
        left: Option<String>,
        /// The divergent line in the right trace.
        right: Option<String>,
    },
}

/// [`trace_diff`] at event granularity: wall-clock `phase` lines are
/// skipped on both sides, so two runs of the same seeded configuration
/// compare identical even with `--phase-timings` on. Reported line
/// numbers refer to the original files.
pub fn trace_diff_events(left: &str, right: &str) -> EventDiff {
    // Each iterator yields (1-based original line number, line).
    let mut l = left.lines().enumerate().filter(|(_, s)| !is_phase_line(s));
    let mut r = right.lines().enumerate().filter(|(_, s)| !is_phase_line(s));
    let mut event = 0usize;
    let (mut last_l, mut last_r) = (0usize, 0usize);
    loop {
        event += 1;
        match (l.next(), r.next()) {
            (None, None) => return EventDiff::Identical { events: event - 1 },
            (a, b) if a.map(|(_, s)| s) == b.map(|(_, s)| s) => {
                if let Some((i, _)) = a {
                    last_l = i + 1;
                }
                if let Some((i, _)) = b {
                    last_r = i + 1;
                }
            }
            (a, b) => {
                return EventDiff::Diverged {
                    event,
                    left_line: a.map_or(last_l + 1, |(i, _)| i + 1),
                    right_line: b.map_or(last_r + 1, |(i, _)| i + 1),
                    left: a.map(|(_, s)| s.to_string()),
                    right: b.map(|(_, s)| s.to_string()),
                }
            }
        }
    }
}

/// Render up to `context` lines on each side of 1-based `line` from a
/// trace, with line numbers and a `>` marker on the focal line.
pub fn render_context(trace: &str, line: usize, context: usize) -> String {
    let lines: Vec<&str> = trace.lines().collect();
    let lo = line.saturating_sub(context + 1); // 0-based inclusive
    let hi = (line + context).min(lines.len()); // 0-based exclusive
    let mut out = String::new();
    for (i, l) in lines.iter().enumerate().take(hi).skip(lo) {
        let marker = if i + 1 == line { '>' } else { ' ' };
        out.push_str(&format!("  {marker}{:>6} {l}\n", i + 1));
    }
    if line > lines.len() {
        out.push_str(&format!("  >{:>6} <end of trace>\n", line));
    }
    out
}

/// One-line per-file summary of event-type counts, e.g.
/// `header:1 sched:24 start:50 finish:50 sim_end:1 (126 events)`.
/// Event kinds appear in first-seen order; lines whose `ev` cannot be
/// extracted count under `?`.
pub fn event_type_summary(trace: &str) -> String {
    let mut order: Vec<(String, usize)> = Vec::new();
    let mut total = 0usize;
    for line in trace.lines() {
        total += 1;
        let kind =
            line.strip_prefix("{\"ev\":\"").and_then(|rest| rest.split('"').next()).unwrap_or("?");
        match order.iter_mut().find(|(k, _)| k == kind) {
            Some((_, n)) => *n += 1,
            None => order.push((kind.to_string(), 1)),
        }
    }
    let mut out = String::new();
    for (k, n) in &order {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!("{k}:{n}"));
    }
    out.push_str(&format!(" ({total} events)"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces() {
        let t = "{\"ev\":\"a\"}\n{\"ev\":\"b\"}\n";
        assert_eq!(trace_diff(t, t), TraceDiff::Identical { lines: 2 });
        assert_eq!(trace_diff("", ""), TraceDiff::Identical { lines: 0 });
    }

    #[test]
    fn divergence_reports_first_line() {
        let a = "x\ny\nz\n";
        let b = "x\nY\nz\n";
        match trace_diff(a, b) {
            TraceDiff::Diverged { line, left, right } => {
                assert_eq!(line, 2);
                assert_eq!(left.as_deref(), Some("y"));
                assert_eq!(right.as_deref(), Some("Y"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let a = "x\ny\n";
        let b = "x\n";
        match trace_diff(a, b) {
            TraceDiff::Diverged { line, left, right } => {
                assert_eq!(line, 2);
                assert_eq!(left.as_deref(), Some("y"));
                assert_eq!(right, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn event_diff_skips_phase_lines() {
        let a = "{\"ev\":\"header\",\"v\":1}\n\
                 {\"ev\":\"phase\",\"name\":\"sim\",\"wall_ms\":10}\n\
                 {\"ev\":\"sim_end\",\"t\":5}\n";
        let b = "{\"ev\":\"header\",\"v\":1}\n\
                 {\"ev\":\"phase\",\"name\":\"sim\",\"wall_ms\":99}\n\
                 {\"ev\":\"sim_end\",\"t\":5}\n";
        assert_eq!(trace_diff_events(a, b), EventDiff::Identical { events: 2 });
        // Byte-level diff still sees the phase difference.
        assert!(matches!(trace_diff(a, b), TraceDiff::Diverged { line: 2, .. }));
        // Phase lines present on only one side do not shift alignment.
        let c = "{\"ev\":\"header\",\"v\":1}\n{\"ev\":\"sim_end\",\"t\":5}\n";
        assert_eq!(trace_diff_events(a, c), EventDiff::Identical { events: 2 });
    }

    #[test]
    fn event_diff_reports_per_file_lines() {
        let a = "{\"ev\":\"header\",\"v\":1}\n\
                 {\"ev\":\"phase\",\"name\":\"p\",\"wall_ms\":1}\n\
                 {\"ev\":\"sim_end\",\"t\":5}\n";
        let b = "{\"ev\":\"header\",\"v\":1}\n{\"ev\":\"sim_end\",\"t\":6}\n";
        match trace_diff_events(a, b) {
            EventDiff::Diverged { event, left_line, right_line, left, right } => {
                assert_eq!(event, 2);
                assert_eq!(left_line, 3, "phase line shifts the left position");
                assert_eq!(right_line, 2);
                assert_eq!(left.as_deref(), Some("{\"ev\":\"sim_end\",\"t\":5}"));
                assert_eq!(right.as_deref(), Some("{\"ev\":\"sim_end\",\"t\":6}"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // One trace a strict prefix of the other.
        match trace_diff_events(b, "{\"ev\":\"header\",\"v\":1}\n") {
            EventDiff::Diverged { event, left_line, right_line, right, .. } => {
                assert_eq!(event, 2);
                assert_eq!(left_line, 2);
                assert_eq!(right_line, 2, "points just past the last match");
                assert_eq!(right, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn context_renders_window_with_marker() {
        let t = "a\nb\nc\nd\ne\n";
        let ctx = render_context(t, 3, 1);
        assert!(ctx.contains("      2 b"), "{ctx}");
        assert!(ctx.contains(">     3 c"), "{ctx}");
        assert!(ctx.contains("      4 d"), "{ctx}");
        assert!(!ctx.contains(" 1 a") && !ctx.contains(" 5 e"), "{ctx}");
        // Focal line past the end (early-terminated trace).
        let past = render_context("a\nb\n", 3, 1);
        assert!(past.contains("<end of trace>"), "{past}");
    }

    #[test]
    fn event_type_summary_counts_in_first_seen_order() {
        let t = "{\"ev\":\"header\",\"v\":1}\n\
                 {\"ev\":\"start\",\"t\":0}\n\
                 {\"ev\":\"start\",\"t\":1}\n\
                 {\"ev\":\"finish\",\"t\":2}\n";
        assert_eq!(event_type_summary(t), "header:1 start:2 finish:1 (4 events)");
        assert_eq!(event_type_summary(""), " (0 events)");
        assert_eq!(event_type_summary("not json\n"), "?:1 (1 events)");
    }

    #[test]
    fn display_is_actionable() {
        let msg = trace_diff("a\n", "b\n").to_string();
        assert!(msg.contains("line 1"));
        assert!(msg.contains("left:  a"));
        let ok = trace_diff("a\n", "a\n").to_string();
        assert!(ok.contains("identical (1 events)"));
    }
}
