//! First-divergence comparison of two traces.
//!
//! Traces are byte-comparable by construction (fixed field order,
//! deterministic float formatting), so "where did these two runs
//! diverge?" reduces to "first differing line" — which, because each
//! line is one event, names the exact event where determinism broke.

/// Outcome of comparing two traces line by line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceDiff {
    /// Every line matches.
    Identical {
        /// Number of (event) lines compared.
        lines: usize,
    },
    /// The traces differ, first at `line` (1-based).
    Diverged {
        /// 1-based line number of the first difference.
        line: usize,
        /// That line in the left trace (`None` = left ended early).
        left: Option<String>,
        /// That line in the right trace (`None` = right ended early).
        right: Option<String>,
    },
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDiff::Identical { lines } => write!(f, "identical ({lines} events)"),
            TraceDiff::Diverged { line, left, right } => {
                writeln!(f, "first divergence at line {line}:")?;
                writeln!(f, "  left:  {}", left.as_deref().unwrap_or("<end of trace>"))?;
                write!(f, "  right: {}", right.as_deref().unwrap_or("<end of trace>"))
            }
        }
    }
}

/// Compare two traces; report the first divergent event.
pub fn trace_diff(left: &str, right: &str) -> TraceDiff {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return TraceDiff::Identical { lines: line - 1 },
            (a, b) if a == b => {}
            (a, b) => {
                return TraceDiff::Diverged {
                    line,
                    left: a.map(String::from),
                    right: b.map(String::from),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces() {
        let t = "{\"ev\":\"a\"}\n{\"ev\":\"b\"}\n";
        assert_eq!(trace_diff(t, t), TraceDiff::Identical { lines: 2 });
        assert_eq!(trace_diff("", ""), TraceDiff::Identical { lines: 0 });
    }

    #[test]
    fn divergence_reports_first_line() {
        let a = "x\ny\nz\n";
        let b = "x\nY\nz\n";
        match trace_diff(a, b) {
            TraceDiff::Diverged { line, left, right } => {
                assert_eq!(line, 2);
                assert_eq!(left.as_deref(), Some("y"));
                assert_eq!(right.as_deref(), Some("Y"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let a = "x\ny\n";
        let b = "x\n";
        match trace_diff(a, b) {
            TraceDiff::Diverged { line, left, right } => {
                assert_eq!(line, 2);
                assert_eq!(left.as_deref(), Some("y"));
                assert_eq!(right, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_is_actionable() {
        let msg = trace_diff("a\n", "b\n").to_string();
        assert!(msg.contains("line 1"));
        assert!(msg.contains("left:  a"));
        let ok = trace_diff("a\n", "a\n").to_string();
        assert!(ok.contains("identical (1 events)"));
    }
}
