//! Length-prefixed binary trace frames — the fast path for the v1
//! JSONL schema.
//!
//! A binary trace is an 8-byte prelude ([`MAGIC`] + little-endian
//! [`SCHEMA_VERSION`](crate::SCHEMA_VERSION)) followed by frames:
//!
//! ```text
//! u32 LE payload length | u8 event tag | fixed-layout fields
//! ```
//!
//! Field encodings are fixed per tag: integers little-endian,
//! `f64` as raw IEEE-754 bits (lossless — JSONL uses shortest
//! round-trip `Display`, so bits → `Display` → parse → bits is the
//! identity for every value JSONL can carry), `bool` as one byte,
//! strings as `u32 LE` length + UTF-8 bytes.
//!
//! # Additive rule, binary edition
//!
//! The JSONL schema lets consumers skip unknown `ev` kinds; the frame
//! format preserves that property structurally: every frame is length
//! prefixed, so a reader skips an unknown tag without understanding
//! its payload ([`FrameRef::Unknown`]). The reserved [`TAG_RAW`] frame
//! carries one verbatim JSONL line, which is how a JSONL→binary
//! converter keeps lines it cannot (or must not) re-encode — unknown
//! `ev` kinds, non-canonical formatting — bit-for-bit intact.
//!
//! # Error posture
//!
//! Decoding never panics. Truncated input, corrupt lengths, invalid
//! UTF-8 and malformed payloads all surface as typed [`FrameError`]s,
//! so a reader fed garbage fails loudly at the first bad frame while
//! everything before it has already been yielded.

use crate::event::TraceEvent;
use std::io::Read;

/// First four bytes of every binary trace file.
pub const MAGIC: [u8; 4] = *b"RTB1";

/// Frame tag carrying one verbatim JSONL line (UTF-8 payload).
pub const TAG_RAW: u8 = 0xFF;

/// Upper bound on a single frame's payload. Real frames are tens of
/// bytes; anything larger is a corrupt length prefix, not data.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// Typed decode failure. Encoding is infallible.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying reader failed.
    Io(std::io::Error),
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The prelude names a schema major this reader does not speak.
    UnsupportedVersion(u32),
    /// Input ended inside a prelude, length prefix or payload.
    Truncated,
    /// A length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A payload does not match its tag's layout.
    Corrupt(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::BadMagic => write!(f, "not a binary trace (bad magic)"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported trace schema v{v}"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized(n) => write!(f, "oversized frame ({n} bytes)"),
            FrameError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            FrameError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

// Event tags. Stable: new kinds append, existing values never change.
const TAG_HEADER: u8 = 1;
const TAG_SIM_START: u8 = 2;
const TAG_VM_READY: u8 = 3;
const TAG_SCHED: u8 = 4;
const TAG_START: u8 = 5;
const TAG_FINISH: u8 = 6;
const TAG_RETRY: u8 = 7;
const TAG_SIM_END: u8 = 8;
const TAG_EPISODE_START: u8 = 9;
const TAG_EPISODE_END: u8 = 10;
const TAG_ROUND_MERGE: u8 = 11;
const TAG_LEARN_END: u8 = 12;
const TAG_FAULT: u8 = 13;
const TAG_RECOVER: u8 = 14;
const TAG_BLACKLIST: u8 = 15;
const TAG_RESCHEDULE: u8 = 16;
const TAG_SUBMIT: u8 = 17;
const TAG_ADMIT: u8 = 18;
const TAG_SHED: u8 = 19;
const TAG_CACHE_HIT: u8 = 20;
const TAG_CACHE_MISS: u8 = 21;
const TAG_PLAN_DONE: u8 = 22;
const TAG_PHASE: u8 = 23;
const TAG_ENQUEUE: u8 = 24;
const TAG_DEQUEUE: u8 = 25;
const TAG_BACKPRESSURE: u8 = 26;
const TAG_SNAPSHOT: u8 = 27;
const TAG_SLO_BREACH: u8 = 28;
const TAG_REPLICATE: u8 = 29;
const TAG_CANCEL: u8 = 30;

/// Append the 8-byte file prelude to `out`.
pub fn write_prelude(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&crate::event::SCHEMA_VERSION.to_le_bytes());
}

/// Does this byte prefix identify a binary trace?
pub fn is_binary(prefix: &[u8]) -> bool {
    prefix.len() >= MAGIC.len() && prefix[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}
fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Run `fill` to produce a payload, then frame it with its length
/// prefix — one pass, no scratch buffer.
fn with_frame(out: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) {
    let at = out.len();
    put_u32(out, 0); // placeholder
    fill(out);
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Append one event frame to `out`.
pub fn encode_event(ev: &TraceEvent<'_>, out: &mut Vec<u8>) {
    with_frame(out, |b| match *ev {
        TraceEvent::Header { producer } => {
            b.push(TAG_HEADER);
            put_str(b, producer);
        }
        TraceEvent::SimStart { activations, vms } => {
            b.push(TAG_SIM_START);
            put_u32(b, activations);
            put_u32(b, vms);
        }
        TraceEvent::VmReady { t, vm, pes } => {
            b.push(TAG_VM_READY);
            put_f64(b, t);
            put_u32(b, vm);
            put_u32(b, pes);
        }
        TraceEvent::Sched { t, ready, idle_pes } => {
            b.push(TAG_SCHED);
            put_f64(b, t);
            put_u32(b, ready);
            put_u32(b, idle_pes);
        }
        TraceEvent::Start { t, ac, vm, attempt, ready_since } => {
            b.push(TAG_START);
            put_f64(b, t);
            put_u32(b, ac);
            put_u32(b, vm);
            put_u32(b, attempt);
            put_f64(b, ready_since);
        }
        TraceEvent::Finish { t, ac, vm, attempt, exec_secs, queue_secs, failed } => {
            b.push(TAG_FINISH);
            put_f64(b, t);
            put_u32(b, ac);
            put_u32(b, vm);
            put_u32(b, attempt);
            put_f64(b, exec_secs);
            put_f64(b, queue_secs);
            put_bool(b, failed);
        }
        TraceEvent::Retry { t, ac, next_attempt } => {
            b.push(TAG_RETRY);
            put_f64(b, t);
            put_u32(b, ac);
            put_u32(b, next_attempt);
        }
        TraceEvent::SimEnd { t, success, events, queue_pushes, max_queue_depth } => {
            b.push(TAG_SIM_END);
            put_f64(b, t);
            put_bool(b, success);
            put_u64(b, events);
            put_u64(b, queue_pushes);
            put_u64(b, max_queue_depth);
        }
        TraceEvent::EpisodeStart { episode, epsilon } => {
            b.push(TAG_EPISODE_START);
            put_u32(b, episode);
            put_f64(b, epsilon);
        }
        TraceEvent::EpisodeEnd { episode, makespan_secs, success, reward, td_updates, q_delta } => {
            b.push(TAG_EPISODE_END);
            put_u32(b, episode);
            put_f64(b, makespan_secs);
            put_bool(b, success);
            put_f64(b, reward);
            put_u64(b, td_updates);
            put_f64(b, q_delta);
        }
        TraceEvent::RoundMerge { round, episodes, transitions, samples } => {
            b.push(TAG_ROUND_MERGE);
            put_u32(b, round);
            put_u32(b, episodes);
            put_u64(b, transitions);
            put_u64(b, samples);
        }
        TraceEvent::LearnEnd { episodes, greedy_makespan_secs, best_makespan_secs } => {
            b.push(TAG_LEARN_END);
            put_u32(b, episodes);
            put_f64(b, greedy_makespan_secs);
            put_f64(b, best_makespan_secs);
        }
        TraceEvent::Fault { t, kind, ac, vm } => {
            b.push(TAG_FAULT);
            put_f64(b, t);
            put_str(b, kind);
            put_i64(b, ac);
            put_u32(b, vm);
        }
        TraceEvent::Recover { t, vm, pes } => {
            b.push(TAG_RECOVER);
            put_f64(b, t);
            put_u32(b, vm);
            put_u32(b, pes);
        }
        TraceEvent::Blacklist { t, vm, faults } => {
            b.push(TAG_BLACKLIST);
            put_f64(b, t);
            put_u32(b, vm);
            put_u32(b, faults);
        }
        TraceEvent::Reschedule { t, ac, vm, next_attempt } => {
            b.push(TAG_RESCHEDULE);
            put_f64(b, t);
            put_u32(b, ac);
            put_u32(b, vm);
            put_u32(b, next_attempt);
        }
        TraceEvent::Submit { seq, tenant, family, size, shard } => {
            b.push(TAG_SUBMIT);
            put_u64(b, seq);
            put_str(b, tenant);
            put_str(b, family);
            put_u32(b, size);
            put_u32(b, shard);
        }
        TraceEvent::Admit { seq, shard } => {
            b.push(TAG_ADMIT);
            put_u64(b, seq);
            put_u32(b, shard);
        }
        TraceEvent::Shed { seq, tenant, shard } => {
            b.push(TAG_SHED);
            put_u64(b, seq);
            put_str(b, tenant);
            put_u32(b, shard);
        }
        TraceEvent::CacheHit { seq, shard, family, size } => {
            b.push(TAG_CACHE_HIT);
            put_u64(b, seq);
            put_u32(b, shard);
            put_str(b, family);
            put_u32(b, size);
        }
        TraceEvent::CacheMiss { seq, shard, family, size } => {
            b.push(TAG_CACHE_MISS);
            put_u64(b, seq);
            put_u32(b, shard);
            put_str(b, family);
            put_u32(b, size);
        }
        TraceEvent::PlanDone { seq, tenant, shard, makespan_secs, episodes, cache_hit } => {
            b.push(TAG_PLAN_DONE);
            put_u64(b, seq);
            put_str(b, tenant);
            put_u32(b, shard);
            put_f64(b, makespan_secs);
            put_u32(b, episodes);
            put_bool(b, cache_hit);
        }
        TraceEvent::Phase { name, wall_ms } => {
            b.push(TAG_PHASE);
            put_str(b, name);
            put_f64(b, wall_ms);
        }
        TraceEvent::Enqueue { seq, tenant, shard, depth } => {
            b.push(TAG_ENQUEUE);
            put_u64(b, seq);
            put_str(b, tenant);
            put_u32(b, shard);
            put_u32(b, depth);
        }
        TraceEvent::Dequeue { seq, tenant, shard, vt } => {
            b.push(TAG_DEQUEUE);
            put_u64(b, seq);
            put_str(b, tenant);
            put_u32(b, shard);
            put_u64(b, vt);
        }
        TraceEvent::Backpressure { seq, tenant, depth } => {
            b.push(TAG_BACKPRESSURE);
            put_u64(b, seq);
            put_str(b, tenant);
            put_u32(b, depth);
        }
        TraceEvent::Snapshot {
            tick,
            seq,
            queued,
            vt,
            backpressure,
            max_depth,
            admitted,
            shed,
            plans,
            hit_rate,
            plans_per_sec,
            p50_sojourn_ms,
            p99_sojourn_ms,
        } => {
            b.push(TAG_SNAPSHOT);
            put_u64(b, tick);
            put_u64(b, seq);
            put_u64(b, queued);
            put_u64(b, vt);
            put_u64(b, backpressure);
            put_u32(b, max_depth);
            put_u64(b, admitted);
            put_u64(b, shed);
            put_u64(b, plans);
            put_f64(b, hit_rate);
            put_f64(b, plans_per_sec);
            put_f64(b, p50_sojourn_ms);
            put_f64(b, p99_sojourn_ms);
        }
        TraceEvent::SloBreach { rule, metric, value, threshold, tick } => {
            b.push(TAG_SLO_BREACH);
            put_str(b, rule);
            put_str(b, metric);
            put_f64(b, value);
            put_f64(b, threshold);
            put_u64(b, tick);
        }
        TraceEvent::Replicate { t, ac, vm, attempt, ready_since } => {
            b.push(TAG_REPLICATE);
            put_f64(b, t);
            put_u32(b, ac);
            put_u32(b, vm);
            put_u32(b, attempt);
            put_f64(b, ready_since);
        }
        TraceEvent::Cancel { t, ac, vm, attempt } => {
            b.push(TAG_CANCEL);
            put_f64(b, t);
            put_u32(b, ac);
            put_u32(b, vm);
            put_u32(b, attempt);
        }
    });
}

/// Append one raw-line frame (verbatim JSONL, no trailing newline).
pub fn encode_raw_line(line: &str, out: &mut Vec<u8>) {
    with_frame(out, |b| {
        b.push(TAG_RAW);
        b.extend_from_slice(line.as_bytes());
    });
}

// ---------------------------------------------------------------- decode

/// One decoded frame, borrowing string data from the reader's buffer.
#[derive(Debug, PartialEq)]
pub enum FrameRef<'a> {
    /// A frame whose tag this reader knows.
    Event(TraceEvent<'a>),
    /// A verbatim JSONL line carried through the binary format.
    Raw(&'a str),
    /// A well-framed payload with an unrecognized tag — skipped, per
    /// the additive rule.
    Unknown { tag: u8 },
}

/// Bounds-checked payload cursor.
struct Cur<'a> {
    b: &'a [u8],
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.b.len() < n {
            return Err(FrameError::Corrupt("payload shorter than its tag's layout"));
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Ok(head)
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, FrameError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::Corrupt("bool byte not 0/1")),
        }
    }
    fn str(&mut self) -> Result<&'a str, FrameError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| FrameError::BadUtf8)
    }
    fn done(self) -> Result<(), FrameError> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(FrameError::Corrupt("trailing bytes after payload"))
        }
    }
}

/// Decode one payload (tag already stripped) into a [`FrameRef`].
fn decode_payload(tag: u8, payload: &[u8]) -> Result<FrameRef<'_>, FrameError> {
    if tag == TAG_RAW {
        let line = std::str::from_utf8(payload).map_err(|_| FrameError::BadUtf8)?;
        return Ok(FrameRef::Raw(line));
    }
    let mut c = Cur { b: payload };
    let ev = match tag {
        TAG_HEADER => TraceEvent::Header { producer: c.str()? },
        TAG_SIM_START => TraceEvent::SimStart { activations: c.u32()?, vms: c.u32()? },
        TAG_VM_READY => TraceEvent::VmReady { t: c.f64()?, vm: c.u32()?, pes: c.u32()? },
        TAG_SCHED => TraceEvent::Sched { t: c.f64()?, ready: c.u32()?, idle_pes: c.u32()? },
        TAG_START => TraceEvent::Start {
            t: c.f64()?,
            ac: c.u32()?,
            vm: c.u32()?,
            attempt: c.u32()?,
            ready_since: c.f64()?,
        },
        TAG_FINISH => TraceEvent::Finish {
            t: c.f64()?,
            ac: c.u32()?,
            vm: c.u32()?,
            attempt: c.u32()?,
            exec_secs: c.f64()?,
            queue_secs: c.f64()?,
            failed: c.bool()?,
        },
        TAG_RETRY => TraceEvent::Retry { t: c.f64()?, ac: c.u32()?, next_attempt: c.u32()? },
        TAG_SIM_END => TraceEvent::SimEnd {
            t: c.f64()?,
            success: c.bool()?,
            events: c.u64()?,
            queue_pushes: c.u64()?,
            max_queue_depth: c.u64()?,
        },
        TAG_EPISODE_START => TraceEvent::EpisodeStart { episode: c.u32()?, epsilon: c.f64()? },
        TAG_EPISODE_END => TraceEvent::EpisodeEnd {
            episode: c.u32()?,
            makespan_secs: c.f64()?,
            success: c.bool()?,
            reward: c.f64()?,
            td_updates: c.u64()?,
            q_delta: c.f64()?,
        },
        TAG_ROUND_MERGE => TraceEvent::RoundMerge {
            round: c.u32()?,
            episodes: c.u32()?,
            transitions: c.u64()?,
            samples: c.u64()?,
        },
        TAG_LEARN_END => TraceEvent::LearnEnd {
            episodes: c.u32()?,
            greedy_makespan_secs: c.f64()?,
            best_makespan_secs: c.f64()?,
        },
        TAG_FAULT => TraceEvent::Fault { t: c.f64()?, kind: c.str()?, ac: c.i64()?, vm: c.u32()? },
        TAG_RECOVER => TraceEvent::Recover { t: c.f64()?, vm: c.u32()?, pes: c.u32()? },
        TAG_BLACKLIST => TraceEvent::Blacklist { t: c.f64()?, vm: c.u32()?, faults: c.u32()? },
        TAG_RESCHEDULE => TraceEvent::Reschedule {
            t: c.f64()?,
            ac: c.u32()?,
            vm: c.u32()?,
            next_attempt: c.u32()?,
        },
        TAG_SUBMIT => TraceEvent::Submit {
            seq: c.u64()?,
            tenant: c.str()?,
            family: c.str()?,
            size: c.u32()?,
            shard: c.u32()?,
        },
        TAG_ADMIT => TraceEvent::Admit { seq: c.u64()?, shard: c.u32()? },
        TAG_SHED => TraceEvent::Shed { seq: c.u64()?, tenant: c.str()?, shard: c.u32()? },
        TAG_CACHE_HIT => TraceEvent::CacheHit {
            seq: c.u64()?,
            shard: c.u32()?,
            family: c.str()?,
            size: c.u32()?,
        },
        TAG_CACHE_MISS => TraceEvent::CacheMiss {
            seq: c.u64()?,
            shard: c.u32()?,
            family: c.str()?,
            size: c.u32()?,
        },
        TAG_PLAN_DONE => TraceEvent::PlanDone {
            seq: c.u64()?,
            tenant: c.str()?,
            shard: c.u32()?,
            makespan_secs: c.f64()?,
            episodes: c.u32()?,
            cache_hit: c.bool()?,
        },
        TAG_PHASE => TraceEvent::Phase { name: c.str()?, wall_ms: c.f64()? },
        TAG_ENQUEUE => TraceEvent::Enqueue {
            seq: c.u64()?,
            tenant: c.str()?,
            shard: c.u32()?,
            depth: c.u32()?,
        },
        TAG_DEQUEUE => {
            TraceEvent::Dequeue { seq: c.u64()?, tenant: c.str()?, shard: c.u32()?, vt: c.u64()? }
        }
        TAG_BACKPRESSURE => {
            TraceEvent::Backpressure { seq: c.u64()?, tenant: c.str()?, depth: c.u32()? }
        }
        TAG_SNAPSHOT => TraceEvent::Snapshot {
            tick: c.u64()?,
            seq: c.u64()?,
            queued: c.u64()?,
            vt: c.u64()?,
            backpressure: c.u64()?,
            max_depth: c.u32()?,
            admitted: c.u64()?,
            shed: c.u64()?,
            plans: c.u64()?,
            hit_rate: c.f64()?,
            plans_per_sec: c.f64()?,
            p50_sojourn_ms: c.f64()?,
            p99_sojourn_ms: c.f64()?,
        },
        TAG_SLO_BREACH => TraceEvent::SloBreach {
            rule: c.str()?,
            metric: c.str()?,
            value: c.f64()?,
            threshold: c.f64()?,
            tick: c.u64()?,
        },
        TAG_REPLICATE => TraceEvent::Replicate {
            t: c.f64()?,
            ac: c.u32()?,
            vm: c.u32()?,
            attempt: c.u32()?,
            ready_since: c.f64()?,
        },
        TAG_CANCEL => {
            TraceEvent::Cancel { t: c.f64()?, ac: c.u32()?, vm: c.u32()?, attempt: c.u32()? }
        }
        _ => return Ok(FrameRef::Unknown { tag }),
    };
    c.done()?;
    Ok(FrameRef::Event(ev))
}

/// Streaming frame reader over any [`Read`]. Memory is bounded by the
/// largest single frame, never by trace length — the payload buffer is
/// reused across frames.
pub struct FrameReader<R: Read> {
    r: R,
    payload: Vec<u8>,
    frames: u64,
}

impl<R: Read> FrameReader<R> {
    /// Open a full binary trace: read and validate the prelude.
    pub fn new(mut r: R) -> Result<Self, FrameError> {
        let mut magic = [0u8; 4];
        read_exact_or(&mut r, &mut magic, FrameError::BadMagic)?;
        if magic != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let mut v = [0u8; 4];
        read_exact_or(&mut r, &mut v, FrameError::Truncated)?;
        let version = u32::from_le_bytes(v);
        if version != crate::event::SCHEMA_VERSION {
            return Err(FrameError::UnsupportedVersion(version));
        }
        Ok(Self { r, payload: Vec::new(), frames: 0 })
    }

    /// Read a frame stream with no prelude (an in-flight fragment,
    /// e.g. one shard's buffer before assembly).
    pub fn without_prelude(r: R) -> Self {
        Self { r, payload: Vec::new(), frames: 0 }
    }

    /// Frames yielded so far (including unknown/raw).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Decode the next frame; `Ok(None)` at a clean end of input.
    /// Borrows from the reader's internal buffer, so process each
    /// frame before asking for the next.
    pub fn next_frame(&mut self) -> Result<Option<FrameRef<'_>>, FrameError> {
        let mut len4 = [0u8; 4];
        // A clean EOF is only legal at a frame boundary: zero bytes of
        // the length prefix read.
        match self.r.read(&mut len4)? {
            0 => return Ok(None),
            n => read_exact_or(&mut self.r, &mut len4[n..], FrameError::Truncated)?,
        }
        let len = u32::from_le_bytes(len4);
        if len == 0 {
            return Err(FrameError::Corrupt("zero-length frame"));
        }
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(len));
        }
        self.payload.clear();
        self.payload.resize(len as usize, 0);
        read_exact_or(&mut self.r, &mut self.payload, FrameError::Truncated)?;
        self.frames += 1;
        let (tag, rest) = (self.payload[0], &self.payload[1..]);
        decode_payload(tag, rest).map(Some)
    }
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], on_eof: FrameError) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            on_eof
        } else {
            FrameError::Io(e)
        }
    })
}

/// Render a complete binary trace (prelude + frames) as v1 JSONL.
/// Known frames re-serialize through
/// [`TraceEvent::to_json_line`]; raw frames pass through verbatim;
/// unknown tags are dropped (they have no JSONL spelling).
pub fn frames_to_jsonl(bytes: &[u8]) -> Result<String, FrameError> {
    let mut out = String::with_capacity(bytes.len() * 2);
    let mut rd = FrameReader::new(bytes)?;
    while let Some(frame) = rd.next_frame()? {
        match frame {
            FrameRef::Event(ev) => {
                out.push_str(&ev.to_json_line());
                out.push('\n');
            }
            FrameRef::Raw(line) => {
                out.push_str(line);
                out.push('\n');
            }
            FrameRef::Unknown { .. } => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent<'static>> {
        vec![
            TraceEvent::Header { producer: "frame-test" },
            TraceEvent::SimStart { activations: 50, vms: 9 },
            TraceEvent::VmReady { t: 1.5, vm: 2, pes: 4 },
            TraceEvent::Sched { t: 0.0, ready: 11, idle_pes: 16 },
            TraceEvent::Start { t: 0.25, ac: 3, vm: 8, attempt: 0, ready_since: 0.0 },
            TraceEvent::Finish {
                t: 2.5,
                ac: 3,
                vm: 8,
                attempt: 0,
                exec_secs: 2.25,
                queue_secs: 0.25,
                failed: false,
            },
            TraceEvent::Retry { t: 2.5, ac: 3, next_attempt: 1 },
            TraceEvent::SimEnd {
                t: 99.0,
                success: true,
                events: 50,
                queue_pushes: 50,
                max_queue_depth: 12,
            },
            TraceEvent::EpisodeStart { episode: 0, epsilon: 0.1 },
            TraceEvent::EpisodeEnd {
                episode: 0,
                makespan_secs: 99.0,
                success: true,
                reward: 0.5,
                td_updates: 50,
                q_delta: 1.25,
            },
            TraceEvent::RoundMerge { round: 0, episodes: 4, transitions: 200, samples: 200 },
            TraceEvent::LearnEnd {
                episodes: 10,
                greedy_makespan_secs: 90.0,
                best_makespan_secs: 88.5,
            },
            TraceEvent::Fault { t: 10.0, kind: "crash", ac: -1, vm: 3 },
            TraceEvent::Recover { t: 40.0, vm: 3, pes: 4 },
            TraceEvent::Blacklist { t: 55.0, vm: 3, faults: 3 },
            TraceEvent::Reschedule { t: 10.0, ac: 7, vm: 3, next_attempt: 1 },
            TraceEvent::Submit { seq: 0, tenant: "acme", family: "montage", size: 50, shard: 2 },
            TraceEvent::Admit { seq: 0, shard: 2 },
            TraceEvent::Shed { seq: 1, tenant: "acme", shard: 2 },
            TraceEvent::CacheHit { seq: 0, shard: 2, family: "montage", size: 50 },
            TraceEvent::CacheMiss { seq: 0, shard: 2, family: "montage", size: 50 },
            TraceEvent::PlanDone {
                seq: 0,
                tenant: "acme",
                shard: 2,
                makespan_secs: 123.5,
                episodes: 4,
                cache_hit: true,
            },
            TraceEvent::Phase { name: "sim.total", wall_ms: 12.5 },
            TraceEvent::Enqueue { seq: 2, tenant: "acme", shard: 1, depth: 3 },
            TraceEvent::Dequeue { seq: 2, tenant: "acme", shard: 1, vt: 7 },
            TraceEvent::Backpressure { seq: 3, tenant: "acme", depth: 8 },
            TraceEvent::Snapshot {
                tick: 1,
                seq: 64,
                queued: 5,
                vt: 12,
                backpressure: 2,
                max_depth: 4,
                admitted: 62,
                shed: 2,
                plans: 57,
                hit_rate: 0.9,
                plans_per_sec: 812.5,
                p50_sojourn_ms: 60.5,
                p99_sojourn_ms: 120.25,
            },
            TraceEvent::SloBreach {
                rule: "queue-depth",
                metric: "queued",
                value: 9.0,
                threshold: 8.0,
                tick: 1,
            },
            TraceEvent::Replicate { t: 11.0, ac: 7, vm: 5, attempt: 1_000_000, ready_since: 10.5 },
            TraceEvent::Cancel { t: 13.0, ac: 7, vm: 5, attempt: 1_000_000 },
        ]
    }

    fn encode_all(events: &[TraceEvent<'_>]) -> Vec<u8> {
        let mut out = Vec::new();
        write_prelude(&mut out);
        for ev in events {
            encode_event(ev, &mut out);
        }
        out
    }

    #[test]
    fn every_event_round_trips_through_frames() {
        let events = sample_events();
        let bytes = encode_all(&events);
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        let mut lines = Vec::new();
        while let Some(frame) = rd.next_frame().unwrap() {
            match frame {
                FrameRef::Event(ev) => lines.push(ev.to_json_line()),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        let expect: Vec<String> = events.iter().map(|e| e.to_json_line()).collect();
        assert_eq!(lines, expect);
        assert_eq!(rd.frames(), events.len() as u64);
    }

    #[test]
    fn encoding_is_deterministic() {
        let events = sample_events();
        assert_eq!(encode_all(&events), encode_all(&events));
    }

    #[test]
    fn raw_frames_pass_through_verbatim() {
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        let weird = "{\"ev\":\"from_the_future\",\"x\":1.50}";
        encode_raw_line(weird, &mut bytes);
        let jsonl = frames_to_jsonl(&bytes).unwrap();
        assert_eq!(jsonl, format!("{weird}\n"));
    }

    #[test]
    fn unknown_tags_are_skipped_not_rejected() {
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        encode_event(&TraceEvent::Admit { seq: 1, shard: 0 }, &mut bytes);
        // Hand-roll a frame with a tag from the future.
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.push(200);
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        encode_event(&TraceEvent::Admit { seq: 2, shard: 0 }, &mut bytes);
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(rd.next_frame().unwrap(), Some(FrameRef::Event(_))));
        assert!(matches!(rd.next_frame().unwrap(), Some(FrameRef::Unknown { tag: 200 })));
        assert!(matches!(rd.next_frame().unwrap(), Some(FrameRef::Event(_))));
        assert!(rd.next_frame().unwrap().is_none());
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_cut_point() {
        let events = sample_events();
        let bytes = encode_all(&events);
        // Cut the stream at every byte offset: decoding must either
        // succeed on a prefix of frames or fail with a typed error —
        // never panic.
        for cut in 0..bytes.len() {
            let mut rd = match FrameReader::new(&bytes[..cut]) {
                Ok(rd) => rd,
                Err(FrameError::BadMagic | FrameError::Truncated) => continue,
                Err(e) => panic!("cut {cut}: unexpected prelude error {e}"),
            };
            loop {
                match rd.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(FrameError::Truncated) => break,
                    Err(e) => panic!("cut {cut}: unexpected error {e}"),
                }
            }
        }
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        // Bool byte out of range.
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        let at = bytes.len();
        encode_event(
            &TraceEvent::SimEnd {
                t: 1.0,
                success: true,
                events: 1,
                queue_pushes: 1,
                max_queue_depth: 1,
            },
            &mut bytes,
        );
        bytes[at + 4 + 1 + 8] = 7; // the success byte
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(rd.next_frame(), Err(FrameError::Corrupt(_))));

        // Oversized length prefix.
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(rd.next_frame(), Err(FrameError::Oversized(_))));

        // Invalid UTF-8 in a string field.
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        bytes.extend_from_slice(&10u32.to_le_bytes());
        bytes.push(TAG_HEADER);
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE, 0xFD, 0xFC, 0xFB]);
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(rd.next_frame(), Err(FrameError::BadUtf8)));

        // Trailing bytes beyond a tag's layout.
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        bytes.extend_from_slice(&14u32.to_le_bytes());
        bytes.push(TAG_ADMIT);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(0xAA); // one extra byte
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(rd.next_frame(), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn truncated_length_prefix_mid_stream_is_truncated_not_silent_end() {
        // A stream that ends with 1–3 bytes of a length prefix is a
        // torn write, not a clean end: the reader must say Truncated,
        // never Ok(None).
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        encode_event(&TraceEvent::Admit { seq: 7, shard: 1 }, &mut bytes);
        let next_len = 14u32.to_le_bytes();
        for partial in 1..4 {
            let mut cut = bytes.clone();
            cut.extend_from_slice(&next_len[..partial]);
            let mut rd = FrameReader::new(cut.as_slice()).unwrap();
            assert!(matches!(rd.next_frame().unwrap(), Some(FrameRef::Event(_))));
            assert!(
                matches!(rd.next_frame(), Err(FrameError::Truncated)),
                "{partial}-byte length prefix must be Truncated"
            );
        }
        // The unbroken stream, for contrast, ends cleanly.
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(rd.next_frame().unwrap(), Some(FrameRef::Event(_))));
        assert!(rd.next_frame().unwrap().is_none());
    }

    #[test]
    fn zero_byte_payload_is_corrupt() {
        // A zero length prefix cannot even carry a tag byte.
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(rd.next_frame(), Err(FrameError::Corrupt("zero-length frame"))));
    }

    #[test]
    fn raw_frame_at_eof_boundaries() {
        // A raw frame as the very last frame decodes cleanly…
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        let line = "{\"ev\":\"mystery\",\"n\":1}";
        encode_raw_line(line, &mut bytes);
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(rd.next_frame().unwrap(), Some(FrameRef::Raw(l)) if l == line));
        assert!(rd.next_frame().unwrap().is_none());
        // …but cut anywhere inside its payload it is Truncated.
        for cut in (bytes.len() - line.len())..bytes.len() {
            let mut rd = FrameReader::new(&bytes[..cut]).unwrap();
            assert!(
                matches!(rd.next_frame(), Err(FrameError::Truncated)),
                "cut at {cut} must be Truncated"
            );
        }
    }

    #[test]
    fn not_a_binary_trace_is_bad_magic() {
        let err = match FrameReader::new(&b"{\"ev\":\"header\"}"[..]) {
            Err(e) => e,
            Ok(_) => panic!("JSONL input must be rejected"),
        };
        assert!(matches!(err, FrameError::BadMagic));
        assert!(!is_binary(b"{\"ev\":"));
        assert!(is_binary(b"RTB1\x01\x00\x00\x00"));
    }

    #[test]
    fn future_schema_major_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            FrameReader::new(bytes.as_slice()),
            Err(FrameError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn nonfinite_floats_survive_binary_but_render_null() {
        let mut bytes = Vec::new();
        write_prelude(&mut bytes);
        encode_event(&TraceEvent::VmReady { t: f64::NAN, vm: 0, pes: 1 }, &mut bytes);
        let jsonl = frames_to_jsonl(&bytes).unwrap();
        assert_eq!(jsonl, "{\"ev\":\"vm_ready\",\"t\":null,\"vm\":0,\"pes\":1}\n");
    }
}
