//! Monotone event counter with exact merge.

/// A saturating monotone counter.
///
/// `merge` is plain (saturating) addition, so folding per-worker
/// counters in any order yields the same total — the property the
/// parallel learner's telemetry relies on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(0)
    }

    /// Count one event.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Count `n` events at once.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Events counted so far.
    pub fn count(&self) -> u64 {
        self.0
    }

    /// Fold another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.0 = self.0.saturating_add(other.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_merges() {
        let mut a = Counter::new();
        a.inc();
        a.add(4);
        let mut b = Counter::new();
        b.add(7);
        a.merge(&b);
        assert_eq!(a.count(), 12);
        assert_eq!(b.count(), 7, "merge leaves the source untouched");
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut a = Counter::new();
        a.add(u64::MAX);
        a.inc();
        assert_eq!(a.count(), u64::MAX);
    }
}
