//! Trace sinks and the zero-cost [`Tracer`] handle.

use crate::event::TraceEvent;
use std::io::Write;

/// Something that accepts serialized trace lines.
pub trait TraceSink {
    /// Append one line (without trailing newline) to the trace.
    fn emit_line(&mut self, line: &str);

    /// Accept one structured event. The default serializes to a JSON
    /// line; binary sinks override it to encode a frame directly,
    /// skipping JSON formatting on the hot path.
    fn emit_event(&mut self, ev: &TraceEvent<'_>) {
        self.emit_line(&ev.to_json_line());
    }
}

/// In-memory sink: accumulates the trace as one newline-terminated
/// string. Used by tests (byte comparison) and by parallel rollouts,
/// whose buffered traces are replayed into the real sink in episode
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemSink {
    buf: String,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated trace (every line newline-terminated).
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Take the accumulated trace, leaving the sink empty.
    pub fn take(&mut self) -> String {
        std::mem::take(&mut self.buf)
    }

    /// Discard the accumulated trace, keeping the buffer's capacity —
    /// a sink reused across rollouts grows to its high-water mark once
    /// and then stops allocating.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Number of lines captured so far.
    pub fn lines(&self) -> usize {
        self.buf.lines().count()
    }
}

impl TraceSink for MemSink {
    fn emit_line(&mut self, line: &str) {
        self.buf.push_str(line);
        self.buf.push('\n');
    }
}

/// Sink writing JSONL to any [`Write`] (typically a buffered file).
/// I/O errors are latched: the first one stops further writes and is
/// reported by [`JsonlSink::finish`].
///
/// Dropping the sink without calling `finish` (a panic unwinding past
/// it, an early `?` return) still **flushes the buffered writer**, so
/// an abnormal exit truncates the trace at an event boundary instead
/// of mid-line — every line that made it to disk is valid JSON. A
/// latched error that was never surfaced is reported to stderr on
/// drop (drop cannot return it).
pub struct JsonlSink<W: Write> {
    /// `None` only after `finish` consumed the writer.
    w: Option<W>,
    error: Option<std::io::Error>,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and write the trace there, buffered.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> Self {
        Self { w: Some(w), error: None }
    }

    /// Flush and surface the first I/O error, if any (a latched write
    /// error takes precedence over a flush error — it happened first).
    pub fn finish(mut self) -> std::io::Result<()> {
        let flushed = match self.w.take() {
            Some(mut w) => w.flush(),
            None => Ok(()),
        };
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        flushed
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.w.as_mut() {
            if let Err(e) = writeln!(w, "{line}") {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(mut w) = self.w.take() {
            // Best-effort: keep whatever the buffer holds. Complete
            // lines survive; errors can only be reported, not returned.
            if let Err(e) = w.flush() {
                eprintln!("obs: trace sink dropped with unflushed data: {e}");
            }
        }
        if let Some(e) = self.error.take() {
            eprintln!("obs: trace sink dropped with unreported I/O error: {e}");
        }
    }
}

/// Borrowed handle the instrumented code emits through.
///
/// A disabled tracer costs one branch per emission site: events are
/// passed as closures ([`Tracer::emit_with`]), so nothing is
/// constructed, formatted or allocated unless a sink is attached —
/// the property that keeps `BENCH_learning.json` numbers flat with
/// tracing off.
pub struct Tracer<'a> {
    sink: Option<&'a mut dyn TraceSink>,
    /// Whether wall-clock `phase` events are captured. Off by default:
    /// phase timings are host-dependent, so they are opt-in even when
    /// a sink is attached — the default trace stays byte-reproducible.
    timing: bool,
}

impl<'a> Tracer<'a> {
    /// A tracer that drops everything (the hot-path default). Generic
    /// over `'a` so it unifies with a borrowing tracer in
    /// `if enabled { Tracer::new(&mut sink) } else { Tracer::disabled() }`
    /// without extending the borrow to `'static`.
    pub fn disabled() -> Self {
        Tracer { sink: None, timing: false }
    }

    /// A tracer writing into `sink` (phase timing off; see
    /// [`Tracer::with_timing`]).
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        Tracer { sink: Some(sink), timing: false }
    }

    /// Enable or disable wall-clock `phase` events on this tracer.
    pub fn with_timing(mut self, timing: bool) -> Self {
        self.timing = timing;
        self
    }

    /// Whether events are being captured.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Whether wall-clock phase events are being captured. Instrumented
    /// code gates its `Instant::now` calls on this, keeping phase
    /// timing zero-cost when off (the same contract as `emit_with`).
    pub fn timing_enabled(&self) -> bool {
        self.timing && self.sink.is_some()
    }

    /// Convenience: `Instant::now()` when phase timing is on, `None`
    /// otherwise — pair with [`Tracer::emit_phase`].
    pub fn phase_start(&self) -> Option<std::time::Instant> {
        self.timing_enabled().then(std::time::Instant::now)
    }

    /// Emit a `phase` event for work started at `t0` (a
    /// [`Tracer::phase_start`] result); no-op when `t0` is `None`.
    pub fn emit_phase(&mut self, name: &str, t0: Option<std::time::Instant>) {
        if let (Some(t0), true) = (t0, self.timing_enabled()) {
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            self.emit(&TraceEvent::Phase { name, wall_ms });
        }
    }

    /// Emit a `phase` event from an accumulated duration (phases made
    /// of many short sections, e.g. per-pass scheduling time).
    pub fn emit_phase_secs(&mut self, name: &str, secs: f64) {
        if self.timing_enabled() {
            self.emit(&TraceEvent::Phase { name, wall_ms: secs * 1e3 });
        }
    }

    /// Emit an already-built event.
    pub fn emit(&mut self, ev: &TraceEvent<'_>) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit_event(ev);
        }
    }

    /// Emit the event `build` produces — `build` runs only when a sink
    /// is attached.
    pub fn emit_with<'e>(&mut self, build: impl FnOnce() -> TraceEvent<'e>) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit_event(&build());
        }
    }

    /// Replay pre-serialized lines (e.g. a rollout's [`MemSink`]
    /// buffer) into the sink verbatim.
    pub fn append_raw(&mut self, jsonl: &str) {
        if let Some(sink) = self.sink.as_deref_mut() {
            for line in jsonl.lines() {
                if !line.is_empty() {
                    sink.emit_line(line);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_accumulates_lines() {
        let mut sink = MemSink::new();
        let mut tracer = Tracer::new(&mut sink);
        assert!(tracer.enabled());
        tracer.emit(&TraceEvent::Header { producer: "t" });
        tracer.emit_with(|| TraceEvent::SimStart { activations: 1, vms: 1 });
        assert_eq!(sink.lines(), 2);
        assert!(sink.as_str().ends_with("}\n"));
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        let mut built = false;
        tracer.emit_with(|| {
            built = true;
            TraceEvent::SimStart { activations: 0, vms: 0 }
        });
        assert!(!built, "closure must not run when disabled");
    }

    #[test]
    fn append_raw_replays_verbatim() {
        let mut a = MemSink::new();
        {
            let mut t = Tracer::new(&mut a);
            t.emit(&TraceEvent::SimStart { activations: 2, vms: 3 });
            t.emit(&TraceEvent::SimEnd {
                t: 1.0,
                success: true,
                events: 2,
                queue_pushes: 2,
                max_queue_depth: 1,
            });
        }
        let mut b = MemSink::new();
        Tracer::new(&mut b).append_raw(a.as_str());
        assert_eq!(a, b);
    }

    #[test]
    fn jsonl_sink_writes_and_finishes() {
        let mut bytes = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut bytes);
            Tracer::new(&mut sink).emit(&TraceEvent::Header { producer: "x" });
            sink.finish().unwrap();
        }
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("{\"ev\":\"header\""));
        assert!(text.ends_with('\n'));
    }

    /// Every line of `text` must be a complete, balanced JSON object —
    /// the property an abnormal exit must not break.
    fn assert_valid_jsonl(text: &str, expect_lines: usize) {
        assert!(text.is_empty() || text.ends_with('\n'), "truncated mid-line: {text:?}");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), expect_lines);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "partial line {line:?}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced line {line:?}"
            );
        }
    }

    #[test]
    fn dropped_sink_flushes_buffered_lines() {
        // Abnormal-exit path: the sink is dropped without `finish`
        // (early return, process teardown). The buffered writer must
        // still be flushed so the file is valid line-delimited JSON.
        let dir = std::env::temp_dir().join(format!("obs-sink-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dropped.jsonl");
        {
            let mut sink = JsonlSink::create(path.to_str().unwrap()).unwrap();
            let mut t = Tracer::new(&mut sink);
            t.emit(&TraceEvent::Header { producer: "drop-test" });
            for ep in 0..50 {
                t.emit(&TraceEvent::EpisodeStart { episode: ep, epsilon: 0.1 });
            }
            // No finish(): Drop must flush.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_valid_jsonl(&text, 51);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_killed_mid_trace_by_panic_leaves_valid_jsonl() {
        // A panic unwinding past the sink is the closest in-process
        // stand-in for a kill: destructors run, nothing else does.
        let dir = std::env::temp_dir().join(format!("obs-sink-panic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panicked.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let result = std::panic::catch_unwind(move || {
            let mut sink = JsonlSink::create(&path_str).unwrap();
            let mut t = Tracer::new(&mut sink);
            for ep in 0..20 {
                t.emit(&TraceEvent::EpisodeStart { episode: ep, epsilon: 0.5 });
            }
            panic!("simulated mid-trace death");
        });
        assert!(result.is_err(), "the traced section must have panicked");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_valid_jsonl(&text, 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_surfaces_write_errors() {
        /// Writer that fails after `ok_bytes` bytes.
        struct Failing {
            ok_bytes: usize,
        }
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.ok_bytes == 0 {
                    return Err(std::io::Error::other("disk full"));
                }
                let n = buf.len().min(self.ok_bytes);
                self.ok_bytes -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing { ok_bytes: 10 });
        let mut t = Tracer::new(&mut sink);
        t.emit(&TraceEvent::Header { producer: "err" });
        t.emit(&TraceEvent::SimStart { activations: 1, vms: 1 });
        let err = sink.finish().expect_err("write error must surface");
        assert!(err.to_string().contains("disk full"), "{err}");
    }

    #[test]
    fn phase_events_are_gated_on_timing() {
        let mut sink = MemSink::new();
        {
            let mut t = Tracer::new(&mut sink); // timing off by default
            assert!(!t.timing_enabled());
            assert!(t.phase_start().is_none());
            t.emit_phase("sim.total", None);
            t.emit_phase_secs("sim.sched", 0.5);
        }
        assert_eq!(sink.lines(), 0, "no phase lines with timing off");
        {
            let mut t = Tracer::new(&mut sink).with_timing(true);
            assert!(t.timing_enabled());
            let t0 = t.phase_start();
            assert!(t0.is_some());
            t.emit_phase("sim.total", t0);
            t.emit_phase_secs("sim.sched", 0.25);
        }
        let text = sink.as_str();
        assert_eq!(sink.lines(), 2, "{text}");
        assert!(text.contains("\"ev\":\"phase\",\"name\":\"sim.total\""), "{text}");
        assert!(text.contains("\"name\":\"sim.sched\",\"wall_ms\":250"), "{text}");
        // Disabled tracer: timing flag alone never emits.
        let t = Tracer::disabled().with_timing(true);
        assert!(!t.timing_enabled());
        assert!(t.phase_start().is_none());
    }
}
