//! Trace sinks and the zero-cost [`Tracer`] handle.

use crate::event::TraceEvent;
use std::io::Write;

/// Something that accepts serialized trace lines.
pub trait TraceSink {
    /// Append one line (without trailing newline) to the trace.
    fn emit_line(&mut self, line: &str);
}

/// In-memory sink: accumulates the trace as one newline-terminated
/// string. Used by tests (byte comparison) and by parallel rollouts,
/// whose buffered traces are replayed into the real sink in episode
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemSink {
    buf: String,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated trace (every line newline-terminated).
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Take the accumulated trace, leaving the sink empty.
    pub fn take(&mut self) -> String {
        std::mem::take(&mut self.buf)
    }

    /// Number of lines captured so far.
    pub fn lines(&self) -> usize {
        self.buf.lines().count()
    }
}

impl TraceSink for MemSink {
    fn emit_line(&mut self, line: &str) {
        self.buf.push_str(line);
        self.buf.push('\n');
    }
}

/// Sink writing JSONL to any [`Write`] (typically a buffered file).
/// I/O errors are latched: the first one stops further writes and is
/// reported by [`JsonlSink::finish`].
pub struct JsonlSink<W: Write> {
    w: W,
    error: Option<std::io::Error>,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and write the trace there, buffered.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> Self {
        Self { w, error: None }
    }

    /// Flush and surface the first I/O error, if any.
    pub fn finish(mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.flush()
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.w, "{line}") {
            self.error = Some(e);
        }
    }
}

/// Borrowed handle the instrumented code emits through.
///
/// A disabled tracer costs one branch per emission site: events are
/// passed as closures ([`Tracer::emit_with`]), so nothing is
/// constructed, formatted or allocated unless a sink is attached —
/// the property that keeps `BENCH_learning.json` numbers flat with
/// tracing off.
pub struct Tracer<'a> {
    sink: Option<&'a mut dyn TraceSink>,
}

impl<'a> Tracer<'a> {
    /// A tracer that drops everything (the hot-path default). Generic
    /// over `'a` so it unifies with a borrowing tracer in
    /// `if enabled { Tracer::new(&mut sink) } else { Tracer::disabled() }`
    /// without extending the borrow to `'static`.
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer writing into `sink`.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Whether events are being captured.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit an already-built event.
    pub fn emit(&mut self, ev: &TraceEvent<'_>) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit_line(&ev.to_json_line());
        }
    }

    /// Emit the event `build` produces — `build` runs only when a sink
    /// is attached.
    pub fn emit_with<'e>(&mut self, build: impl FnOnce() -> TraceEvent<'e>) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit_line(&build().to_json_line());
        }
    }

    /// Replay pre-serialized lines (e.g. a rollout's [`MemSink`]
    /// buffer) into the sink verbatim.
    pub fn append_raw(&mut self, jsonl: &str) {
        if let Some(sink) = self.sink.as_deref_mut() {
            for line in jsonl.lines() {
                if !line.is_empty() {
                    sink.emit_line(line);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_accumulates_lines() {
        let mut sink = MemSink::new();
        let mut tracer = Tracer::new(&mut sink);
        assert!(tracer.enabled());
        tracer.emit(&TraceEvent::Header { producer: "t" });
        tracer.emit_with(|| TraceEvent::SimStart { activations: 1, vms: 1 });
        assert_eq!(sink.lines(), 2);
        assert!(sink.as_str().ends_with("}\n"));
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let mut tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        let mut built = false;
        tracer.emit_with(|| {
            built = true;
            TraceEvent::SimStart { activations: 0, vms: 0 }
        });
        assert!(!built, "closure must not run when disabled");
    }

    #[test]
    fn append_raw_replays_verbatim() {
        let mut a = MemSink::new();
        {
            let mut t = Tracer::new(&mut a);
            t.emit(&TraceEvent::SimStart { activations: 2, vms: 3 });
            t.emit(&TraceEvent::SimEnd {
                t: 1.0,
                success: true,
                events: 2,
                queue_pushes: 2,
                max_queue_depth: 1,
            });
        }
        let mut b = MemSink::new();
        Tracer::new(&mut b).append_raw(a.as_str());
        assert_eq!(a, b);
    }

    #[test]
    fn jsonl_sink_writes_and_finishes() {
        let mut bytes = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut bytes);
            Tracer::new(&mut sink).emit(&TraceEvent::Header { producer: "x" });
            sink.finish().unwrap();
        }
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("{\"ev\":\"header\""));
        assert!(text.ends_with('\n'));
    }
}
