//! Structured observability for the ReASSIgN reproduction.
//!
//! Scheduling-RL debugging is impossible without per-event visibility
//! (DRAS-CQSim and VMAgent both ship trace layers for exactly this
//! reason), so this crate provides the three primitives the rest of the
//! workspace instruments itself with:
//!
//! * **[`Counter`] / [`Histogram`]** — cheap aggregate sinks whose
//!   `merge` is *exactly* associative and commutative (integer bucket
//!   counts, fixed-point sums, min/max folds), so per-worker telemetry
//!   folded in any order is bitwise identical to serial accumulation;
//! * **[`TraceEvent`] + [`TraceSink`]** — a stable, versioned JSONL
//!   event schema ([`SCHEMA_VERSION`]) with hand-rolled serialization
//!   (one line per event, fixed field order, shortest-round-trip float
//!   formatting) so traces are byte-comparable across runs;
//! * **[`trace_diff`]** — first-divergence comparison of two traces,
//!   turning the determinism contract into a *diagnosable* property
//!   instead of a pass/fail bit;
//! * **[`Registry`] + [`SloEngine`]** — the *live* plane: lock-free
//!   atomic counters/gauges/histograms updated on the hot path, and an
//!   SLO rule engine evaluated both live against registry snapshots and
//!   offline over schema-1.5 `snapshot` event streams.
//!
//! The [`Tracer`] handle is zero-cost when disabled: every emission
//! site passes a closure, and a disabled tracer is a single branch —
//! no event construction, no formatting, no allocation.

pub mod binsink;
pub mod counter;
pub mod diff;
pub mod event;
pub mod frame;
pub mod histogram;
pub mod registry;
pub mod sink;
pub mod slo;

pub use binsink::{BinMemSink, BinSink};
pub use counter::Counter;
pub use diff::{
    event_type_summary, is_phase_line, render_context, trace_diff, trace_diff_events, EventDiff,
    TraceDiff,
};
pub use event::{TraceEvent, REPLICA_ATTEMPT_BASE, SCHEMA_MINOR, SCHEMA_VERSION};
pub use frame::{FrameError, FrameReader, FrameRef};
pub use histogram::Histogram;
pub use registry::{AtomicHistogram, Gauge, Registry, ShardedCounter};
pub use sink::{JsonlSink, MemSink, TraceSink, Tracer};
pub use slo::{parse_rules, Breach, SloEngine, SloRule, SnapshotView};
