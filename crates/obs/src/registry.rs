//! Live metrics registry: lock-free counters, gauges, and log-bucket
//! histograms shared between the service hot path and observers.
//!
//! The offline plane ([`crate::event`] traces folded by `obs-analyze`)
//! answers "what happened"; this module answers "what is happening
//! *now*" without perturbing it. Three constraints shape the design:
//!
//! 1. **Hot-path cost ≈ one relaxed atomic op per event.** Counters are
//!    sharded into cache-line-padded lanes ([`ShardedCounter`]) so
//!    concurrent workers never bounce the same line; a reader sums the
//!    lanes. Gauges are single relaxed stores. Histogram recording is a
//!    handful of relaxed RMWs on independent words.
//! 2. **No locks, no allocation after construction, no dependencies.**
//!    Everything is `std::sync::atomic`; the registry is built once and
//!    shared via `Arc`.
//! 3. **Snapshots reuse the exact merge laws of [`Histogram`].** The
//!    atomic histogram keeps the *same* bucket layout, fixed-point
//!    nanosecond sum, and bit-ordered min/max as the single-threaded
//!    one, so [`AtomicHistogram::snapshot`] yields a real [`Histogram`]
//!    whose quantiles/summary are byte-identical to what a serial
//!    recorder would have produced from the same values.
//!
//! A registry snapshot is *racy by construction* (counters advance while
//! it is read); consumers that need determinism read the admission-plane
//! state from the submitter thread instead (see the `snapshot` event in
//! [`crate::event`]).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::histogram::{Histogram, BUCKETS};

/// One cache line; lanes are padded to this so per-worker counter
/// increments never share a line (the classic false-sharing fix).
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotone counter sharded into per-lane cells.
///
/// `add(lane, n)` touches only that lane's cache line; `get()` sums all
/// lanes (a racy but monotone read: every increment is eventually
/// visible, and no increment is ever counted twice).
pub struct ShardedCounter {
    lanes: Vec<PaddedU64>,
}

impl ShardedCounter {
    /// A counter with `lanes` independent cells (use one per worker;
    /// clamped to at least 1).
    pub fn new(lanes: usize) -> Self {
        Self { lanes: (0..lanes.max(1)).map(|_| PaddedU64::default()).collect() }
    }

    /// Add `n` on `lane` (wrapped modulo the lane count).
    pub fn add(&self, lane: usize, n: u64) {
        self.lanes[lane % self.lanes.len()].0.fetch_add(n, Relaxed);
    }

    /// Increment by one on `lane`.
    pub fn incr(&self, lane: usize) {
        self.add(lane, 1);
    }

    /// Sum across lanes. Monotone between calls.
    pub fn get(&self) -> u64 {
        self.lanes.iter().map(|l| l.0.load(Relaxed)).sum()
    }
}

/// Last-writer-wins gauge (queue depth, virtual time, …).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raise the gauge to `v` if larger (high-water marks).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Lock-free log-bucket histogram with the same bucket law, fixed-point
/// sum, and extremes as [`Histogram`] (see module docs).
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Nanosecond sum. `u64` here (not the serial histogram's `u128`)
    /// still covers ~584 years of recorded time before saturating —
    /// far beyond any service lifetime — and keeps recording one RMW.
    sum_nanos: AtomicU64,
    /// f64 bit patterns: for non-negative floats the unsigned bit order
    /// equals the numeric order, so `fetch_min`/`fetch_max` on the raw
    /// bits fold extremes without a CAS loop.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram (extremes at the same `+∞`/`-∞` sentinels as
    /// [`Histogram::new`]; `-∞` has the sign bit set so it cannot be
    /// bit-compared against non-negative values — `max_bits` therefore
    /// starts at 0.0's bits and the empty case is gated on `count`).
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0u64),
        }
    }

    /// Record one non-negative duration; mirrors [`Histogram::record`]
    /// (non-finite / negative values ignored).
    pub fn record(&self, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        self.buckets[Histogram::index(secs)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        let nanos = (secs * 1e9).round();
        let nanos = if nanos >= u64::MAX as f64 { u64::MAX } else { nanos as u64 };
        // Saturating add via fetch_update would need a loop; a plain
        // wrapping add is fine under the 584-year ceiling noted above.
        self.sum_nanos.fetch_add(nanos, Relaxed);
        let bits = secs.to_bits();
        self.min_bits.fetch_min(bits, Relaxed);
        self.max_bits.fetch_max(bits, Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Materialize a [`Histogram`] from the current atomic state. Racy
    /// across concurrent recorders (a value may be in the bucket but
    /// not yet the count, or vice versa) but each field is itself a
    /// consistent monotone read.
    pub fn snapshot(&self) -> Histogram {
        let buckets: [u64; BUCKETS] = std::array::from_fn(|i| self.buckets[i].load(Relaxed));
        let count = self.count.load(Relaxed);
        let (min, max) = if count == 0 {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            (
                f64::from_bits(self.min_bits.load(Relaxed)),
                f64::from_bits(self.max_bits.load(Relaxed)),
            )
        };
        Histogram::from_parts(buckets, count, self.sum_nanos.load(Relaxed) as u128, min, max)
    }
}

/// The service-wide live registry: every hot-path signal the metrics
/// plane exposes, updated lock-free by the submitter thread and the
/// shard workers, read by the snapshotter / exposition endpoint.
pub struct Registry {
    /// Submissions offered to the service.
    pub submissions: ShardedCounter,
    /// Submissions admitted past WFQ.
    pub admitted: ShardedCounter,
    /// Submissions shed at admission.
    pub shed: ShardedCounter,
    /// Backpressure offers (tenant queue full).
    pub backpressure: ShardedCounter,
    /// Plans completed by shard workers.
    pub plans: ShardedCounter,
    /// Provenance cache hits (workers).
    pub cache_hits: ShardedCounter,
    /// Provenance cache misses (workers).
    pub cache_misses: ShardedCounter,
    /// Snapshot events emitted onto the sidecar sink.
    pub snapshots: ShardedCounter,
    /// Current WFQ queue depth (all tenants).
    pub queued: Gauge,
    /// Current WFQ virtual time (exhausted quanta).
    pub vt: Gauge,
    /// High-water queue depth.
    pub max_depth: Gauge,
    /// End-to-end sojourn (submit → plan done), seconds.
    pub sojourn: AtomicHistogram,
}

impl Registry {
    /// A registry with `lanes` counter lanes (one per worker plus the
    /// submitter is a good choice; clamped to ≥ 1).
    pub fn new(lanes: usize) -> Self {
        let c = || ShardedCounter::new(lanes);
        Self {
            submissions: c(),
            admitted: c(),
            shed: c(),
            backpressure: c(),
            plans: c(),
            cache_hits: c(),
            cache_misses: c(),
            snapshots: c(),
            queued: Gauge::default(),
            vt: Gauge::default(),
            max_depth: Gauge::default(),
            sojourn: AtomicHistogram::new(),
        }
    }

    /// Cache hit rate in `[0, 1]`; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.cache_hits.get();
        let total = hits + self.cache_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Completed plans per wall second over `elapsed_secs` (caller
    /// supplies the clock so the registry itself stays time-free).
    pub fn plans_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs > 0.0 {
            self.plans.get() as f64 / elapsed_secs
        } else {
            0.0
        }
    }

    /// Prometheus-style text exposition (the `/metrics` payload): one
    /// `# TYPE` line per family, counters suffixed `_total`, histogram
    /// as cumulative `_bucket{le="…"}` + `_sum` + `_count`.
    pub fn prometheus_text(&self, elapsed_secs: f64) -> String {
        let f = crate::event::json_f64;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP svc_{name}_total {help}\n# TYPE svc_{name}_total counter\nsvc_{name}_total {v}\n"
            ));
        };
        counter("submissions", "Submissions offered to the service.", self.submissions.get());
        counter("admitted", "Submissions admitted past WFQ.", self.admitted.get());
        counter("shed", "Submissions shed at admission.", self.shed.get());
        counter(
            "backpressure",
            "Backpressure offers (tenant queue full).",
            self.backpressure.get(),
        );
        counter("plans", "Plans completed by shard workers.", self.plans.get());
        counter("cache_hits", "Provenance cache hits.", self.cache_hits.get());
        counter("cache_misses", "Provenance cache misses.", self.cache_misses.get());
        counter("snapshots", "Snapshot events emitted to the sidecar sink.", self.snapshots.get());
        let mut gauge = |name: &str, help: &str, v: String| {
            out.push_str(&format!(
                "# HELP svc_{name} {help}\n# TYPE svc_{name} gauge\nsvc_{name} {v}\n"
            ));
        };
        gauge("queue_depth", "Current WFQ queue depth.", self.queued.get().to_string());
        gauge("wfq_vt", "WFQ virtual time (exhausted quanta).", self.vt.get().to_string());
        gauge("queue_max_depth", "High-water WFQ queue depth.", self.max_depth.get().to_string());
        gauge("cache_hit_rate", "Provenance cache hit rate.", f(self.hit_rate()));
        gauge(
            "plans_per_sec",
            "Plans completed per wall second.",
            f(self.plans_per_sec(elapsed_secs)),
        );
        let h = self.sojourn.snapshot();
        out.push_str("# HELP svc_sojourn_seconds Submit-to-plan-done sojourn.\n");
        out.push_str("# TYPE svc_sojourn_seconds histogram\n");
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            let c = h.bucket_count(i);
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = Histogram::bucket_hi(i);
            let le = if le.is_infinite() { "+Inf".to_string() } else { f(le) };
            out.push_str(&format!("svc_sojourn_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        if cumulative > 0 && h.bucket_count(BUCKETS - 1) == 0 {
            out.push_str(&format!("svc_sojourn_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        }
        out.push_str(&format!("svc_sojourn_seconds_sum {}\n", f(h.sum_secs())));
        out.push_str(&format!("svc_sojourn_seconds_count {}\n", h.count()));
        out
    }

    /// One-line JSON health view (the `/health` payload and the
    /// `reassignd top` body).
    pub fn health_json(&self, elapsed_secs: f64) -> String {
        let f = crate::event::json_f64;
        let h = self.sojourn.snapshot();
        let pctl = |q: f64| h.quantile(q).map_or("null".into(), |v| f(v * 1e3));
        format!(
            "{{\"status\":\"ok\",\"submissions\":{},\"admitted\":{},\"shed\":{},\"plans\":{},\"queued\":{},\"vt\":{},\"max_depth\":{},\"backpressure\":{},\"hit_rate\":{},\"plans_per_sec\":{},\"p50_sojourn_ms\":{},\"p99_sojourn_ms\":{},\"snapshots\":{}}}",
            self.submissions.get(),
            self.admitted.get(),
            self.shed.get(),
            self.plans.get(),
            self.queued.get(),
            self.vt.get(),
            self.max_depth.get(),
            self.backpressure.get(),
            f(self.hit_rate()),
            f(self.plans_per_sec(elapsed_secs)),
            pctl(0.50),
            pctl(0.99),
            self.snapshots.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_counter_sums_lanes() {
        let c = ShardedCounter::new(4);
        c.incr(0);
        c.add(1, 10);
        c.add(7, 5); // wraps to lane 3
        assert_eq!(c.get(), 16);
        let one = ShardedCounter::new(0); // clamps to one lane
        one.incr(3);
        assert_eq!(one.get(), 1);
    }

    #[test]
    fn gauge_set_and_raise() {
        let g = Gauge::default();
        g.set(5);
        assert_eq!(g.get(), 5);
        g.raise(3);
        assert_eq!(g.get(), 5, "raise never lowers");
        g.raise(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_serial() {
        let xs = [0.001, 0.5, 3.0, 700.0, 0.0, 42.0];
        let atomic = AtomicHistogram::new();
        let mut serial = Histogram::new();
        for &x in &xs {
            atomic.record(x);
            serial.record(x);
        }
        assert_eq!(atomic.snapshot(), serial, "same bucket/sum/extreme laws");
        // Ignores garbage exactly like the serial histogram.
        atomic.record(f64::NAN);
        atomic.record(-1.0);
        assert_eq!(atomic.snapshot(), serial);
    }

    #[test]
    fn empty_atomic_histogram_snapshot_is_empty() {
        assert_eq!(AtomicHistogram::new().snapshot(), Histogram::new());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = std::sync::Arc::new(Registry::new(4));
        let handles: Vec<_> = (0..4)
            .map(|lane| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        reg.plans.incr(lane);
                        reg.sojourn.record((i % 10) as f64 * 0.01);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.plans.get(), 4000);
        assert_eq!(reg.sojourn.count(), 4000);
        assert_eq!(reg.sojourn.snapshot().count(), 4000);
    }

    #[test]
    fn hit_rate_and_rates() {
        let reg = Registry::new(1);
        assert_eq!(reg.hit_rate(), 0.0, "no lookups yet");
        reg.cache_hits.add(0, 3);
        reg.cache_misses.add(0, 1);
        assert!((reg.hit_rate() - 0.75).abs() < 1e-12);
        reg.plans.add(0, 100);
        assert_eq!(reg.plans_per_sec(0.0), 0.0, "zero elapsed guarded");
        assert!((reg.plans_per_sec(4.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let reg = Registry::new(2);
        reg.plans.add(0, 7);
        reg.queued.set(3);
        reg.sojourn.record(0.5);
        reg.sojourn.record(1.5);
        let text = reg.prometheus_text(2.0);
        assert!(text.contains("# TYPE svc_plans_total counter\nsvc_plans_total 7\n"), "{text}");
        assert!(text.contains("# TYPE svc_queue_depth gauge\nsvc_queue_depth 3\n"), "{text}");
        assert!(text.contains("svc_sojourn_seconds_count 2\n"), "{text}");
        assert!(text.contains("svc_sojourn_seconds_bucket{le=\"+Inf\"} 2\n"), "{text}");
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty() && !value.is_empty(), "{line}");
        }
    }

    #[test]
    fn health_json_is_one_line_flat_json() {
        let reg = Registry::new(1);
        reg.submissions.add(0, 2);
        reg.sojourn.record(0.25);
        let j = reg.health_json(1.0);
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"status\":\"ok\""), "{j}");
        assert!(j.contains("\"submissions\":2"), "{j}");
        assert!(j.contains("\"p50_sojourn_ms\":250"), "{j}");
        let empty = Registry::new(1).health_json(0.0);
        assert!(empty.contains("\"p99_sojourn_ms\":null"), "{empty}");
    }
}
