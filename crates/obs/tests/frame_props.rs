//! Property battery for the binary frame codec (PR 7 acceptance):
//!
//! * arbitrary `TraceEvent`s — every variant, hostile strings, the
//!   full float range — survive JSONL → binary → JSONL byte-identically;
//! * truncated and corrupted frame streams fail with a typed
//!   [`obs::FrameError`], never a panic;
//! * frames with unknown tags are skipped per the additive rule.

use obs::frame::{encode_event, frames_to_jsonl, write_prelude, FrameError, FrameRef};
use obs::{FrameReader, TraceEvent};
use obs_analyze::{convert_bin_to_jsonl, jsonl_to_frames};
use proptest::prelude::*;

/// Owned mirror of [`TraceEvent`] so strategies can generate the
/// borrowed event type (strings live here).
#[derive(Clone, Debug)]
enum Ev {
    Header(String),
    SimStart(u32, u32),
    VmReady(f64, u32, u32),
    Sched(f64, u32, u32),
    Start(f64, u32, u32, u32, f64),
    Finish(f64, u32, u32, u32, f64, f64, bool),
    Retry(f64, u32, u32),
    SimEnd(f64, bool, u64, u64, u64),
    EpisodeStart(u32, f64),
    EpisodeEnd(u32, f64, bool, f64, u64, f64),
    RoundMerge(u32, u32, u64, u64),
    LearnEnd(u32, f64, f64),
    Fault(f64, String, i64, u32),
    Recover(f64, u32, u32),
    Blacklist(f64, u32, u32),
    Reschedule(f64, u32, u32, u32),
    Submit(u64, String, String, u32, u32),
    Admit(u64, u32),
    Shed(u64, String, u32),
    CacheHit(u64, u32, String, u32),
    CacheMiss(u64, u32, String, u32),
    PlanDone(u64, String, u32, f64, u32, bool),
    Enqueue(u64, String, u32, u32),
    Dequeue(u64, String, u32, u64),
    Backpressure(u64, String, u32),
    Phase(String, f64),
}

impl Ev {
    fn as_event(&self) -> TraceEvent<'_> {
        match *self {
            Ev::Header(ref p) => TraceEvent::Header { producer: p },
            Ev::SimStart(a, v) => TraceEvent::SimStart { activations: a, vms: v },
            Ev::VmReady(t, vm, pes) => TraceEvent::VmReady { t, vm, pes },
            Ev::Sched(t, ready, idle_pes) => TraceEvent::Sched { t, ready, idle_pes },
            Ev::Start(t, ac, vm, attempt, ready_since) => {
                TraceEvent::Start { t, ac, vm, attempt, ready_since }
            }
            Ev::Finish(t, ac, vm, attempt, exec_secs, queue_secs, failed) => {
                TraceEvent::Finish { t, ac, vm, attempt, exec_secs, queue_secs, failed }
            }
            Ev::Retry(t, ac, next_attempt) => TraceEvent::Retry { t, ac, next_attempt },
            Ev::SimEnd(t, success, events, queue_pushes, max_queue_depth) => {
                TraceEvent::SimEnd { t, success, events, queue_pushes, max_queue_depth }
            }
            Ev::EpisodeStart(episode, epsilon) => TraceEvent::EpisodeStart { episode, epsilon },
            Ev::EpisodeEnd(episode, makespan_secs, success, reward, td_updates, q_delta) => {
                TraceEvent::EpisodeEnd {
                    episode,
                    makespan_secs,
                    success,
                    reward,
                    td_updates,
                    q_delta,
                }
            }
            Ev::RoundMerge(round, episodes, transitions, samples) => {
                TraceEvent::RoundMerge { round, episodes, transitions, samples }
            }
            Ev::LearnEnd(episodes, greedy, best) => TraceEvent::LearnEnd {
                episodes,
                greedy_makespan_secs: greedy,
                best_makespan_secs: best,
            },
            Ev::Fault(t, ref kind, ac, vm) => TraceEvent::Fault { t, kind, ac, vm },
            Ev::Recover(t, vm, pes) => TraceEvent::Recover { t, vm, pes },
            Ev::Blacklist(t, vm, faults) => TraceEvent::Blacklist { t, vm, faults },
            Ev::Reschedule(t, ac, vm, next_attempt) => {
                TraceEvent::Reschedule { t, ac, vm, next_attempt }
            }
            Ev::Submit(seq, ref tenant, ref family, size, shard) => {
                TraceEvent::Submit { seq, tenant, family, size, shard }
            }
            Ev::Admit(seq, shard) => TraceEvent::Admit { seq, shard },
            Ev::Shed(seq, ref tenant, shard) => TraceEvent::Shed { seq, tenant, shard },
            Ev::CacheHit(seq, shard, ref family, size) => {
                TraceEvent::CacheHit { seq, shard, family, size }
            }
            Ev::CacheMiss(seq, shard, ref family, size) => {
                TraceEvent::CacheMiss { seq, shard, family, size }
            }
            Ev::PlanDone(seq, ref tenant, shard, makespan_secs, episodes, cache_hit) => {
                TraceEvent::PlanDone { seq, tenant, shard, makespan_secs, episodes, cache_hit }
            }
            Ev::Enqueue(seq, ref tenant, shard, depth) => {
                TraceEvent::Enqueue { seq, tenant, shard, depth }
            }
            Ev::Dequeue(seq, ref tenant, shard, vt) => {
                TraceEvent::Dequeue { seq, tenant, shard, vt }
            }
            Ev::Backpressure(seq, ref tenant, depth) => {
                TraceEvent::Backpressure { seq, tenant, depth }
            }
            Ev::Phase(ref name, wall_ms) => TraceEvent::Phase { name, wall_ms },
        }
    }
}

/// Hostile string palette: every JSON escape class, multi-byte UTF-8,
/// a control character, spaces — everything `json_str` must survive.
const PALETTE: &[char] =
    &['a', 'Z', '0', '-', '_', '.', '"', '\\', '\n', '\r', '\t', '\u{1}', ' ', 'é', '→', '🦀'];

fn arb_str() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

/// Finite floats across magnitudes (JSONL has no NaN/∞ spelling, so
/// the byte-identity contract is over finite values; non-finite is
/// covered separately in the codec's unit tests).
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(1.5e300),
        Just(-4.9e-324),
        -1.0e9..1.0e9f64,
        (0.0f64..1.0).prop_map(|x| x * 1.0e-12),
    ]
}

fn arb_event() -> impl Strategy<Value = Ev> {
    let s = arb_str;
    let f = arb_f64;
    prop_oneof![
        s().prop_map(Ev::Header),
        (any::<u32>(), any::<u32>()).prop_map(|(a, v)| Ev::SimStart(a, v)),
        (f(), any::<u32>(), any::<u32>()).prop_map(|(t, a, b)| Ev::VmReady(t, a, b)),
        (f(), any::<u32>(), any::<u32>()).prop_map(|(t, a, b)| Ev::Sched(t, a, b)),
        (f(), any::<u32>(), any::<u32>(), any::<u32>(), f())
            .prop_map(|(t, ac, vm, at, rs)| Ev::Start(t, ac, vm, at, rs)),
        (f(), any::<u32>(), any::<u32>(), any::<u32>(), f(), f(), any::<bool>())
            .prop_map(|(t, ac, vm, at, ex, q, fl)| Ev::Finish(t, ac, vm, at, ex, q, fl)),
        (f(), any::<u32>(), any::<u32>()).prop_map(|(t, a, b)| Ev::Retry(t, a, b)),
        (f(), any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(t, s, e, q, m)| Ev::SimEnd(t, s, e, q, m)),
        (any::<u32>(), f()).prop_map(|(e, eps)| Ev::EpisodeStart(e, eps)),
        (any::<u32>(), f(), any::<bool>(), f(), any::<u64>(), f())
            .prop_map(|(e, m, s, r, td, qd)| Ev::EpisodeEnd(e, m, s, r, td, qd)),
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(r, e, t, s)| Ev::RoundMerge(r, e, t, s)),
        (any::<u32>(), f(), f()).prop_map(|(e, g, b)| Ev::LearnEnd(e, g, b)),
        (f(), s(), any::<i64>(), any::<u32>()).prop_map(|(t, k, ac, vm)| Ev::Fault(t, k, ac, vm)),
        (f(), any::<u32>(), any::<u32>()).prop_map(|(t, a, b)| Ev::Recover(t, a, b)),
        (f(), any::<u32>(), any::<u32>()).prop_map(|(t, a, b)| Ev::Blacklist(t, a, b)),
        (f(), any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(t, ac, vm, na)| Ev::Reschedule(t, ac, vm, na)),
        (any::<u64>(), s(), s(), any::<u32>(), any::<u32>())
            .prop_map(|(q, t, fam, sz, sh)| Ev::Submit(q, t, fam, sz, sh)),
        (any::<u64>(), any::<u32>()).prop_map(|(q, sh)| Ev::Admit(q, sh)),
        (any::<u64>(), s(), any::<u32>()).prop_map(|(q, t, sh)| Ev::Shed(q, t, sh)),
        (any::<u64>(), any::<u32>(), s(), any::<u32>())
            .prop_map(|(q, sh, fam, sz)| Ev::CacheHit(q, sh, fam, sz)),
        (any::<u64>(), any::<u32>(), s(), any::<u32>())
            .prop_map(|(q, sh, fam, sz)| Ev::CacheMiss(q, sh, fam, sz)),
        (any::<u64>(), s(), any::<u32>(), f(), any::<u32>(), any::<bool>())
            .prop_map(|(q, t, sh, m, e, c)| Ev::PlanDone(q, t, sh, m, e, c)),
        (any::<u64>(), s(), any::<u32>(), any::<u32>())
            .prop_map(|(q, t, sh, d)| Ev::Enqueue(q, t, sh, d)),
        (any::<u64>(), s(), any::<u32>(), any::<u64>())
            .prop_map(|(q, t, sh, vt)| Ev::Dequeue(q, t, sh, vt)),
        (any::<u64>(), s(), any::<u32>()).prop_map(|(q, t, d)| Ev::Backpressure(q, t, d)),
        (s(), f()).prop_map(|(n, w)| Ev::Phase(n, w)),
    ]
}

/// Clamp integer fields to the f64-exact range (|n| < 2^53). The JSONL
/// parser stores numbers as f64, so only these values re-render
/// byte-identically and qualify for structural re-encoding; larger
/// integers still round-trip losslessly, but as raw frames.
fn json_safe(mut ev: Ev) -> Ev {
    const M: u64 = (1 << 53) - 1;
    match &mut ev {
        Ev::SimEnd(_, _, a, b, c) => (*a, *b, *c) = (*a & M, *b & M, *c & M),
        Ev::EpisodeEnd(_, _, _, _, td, _) => *td &= M,
        Ev::RoundMerge(_, _, t, s) => (*t, *s) = (*t & M, *s & M),
        Ev::Fault(_, _, ac, _) => *ac %= 1 << 53,
        Ev::Submit(q, ..)
        | Ev::Admit(q, _)
        | Ev::Shed(q, ..)
        | Ev::CacheHit(q, ..)
        | Ev::CacheMiss(q, ..)
        | Ev::PlanDone(q, ..)
        | Ev::Enqueue(q, ..)
        | Ev::Backpressure(q, ..) => *q &= M,
        Ev::Dequeue(q, _, _, vt) => (*q, *vt) = (*q & M, *vt & M),
        _ => {}
    }
    ev
}

fn encode_all(events: &[Ev]) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_prelude(&mut bytes);
    for ev in events {
        encode_event(&ev.as_event(), &mut bytes);
    }
    bytes
}

fn jsonl_of(events: &[Ev]) -> String {
    let mut text = String::new();
    for ev in events {
        text.push_str(&ev.as_event().to_json_line());
        text.push('\n');
    }
    text
}

/// Byte offsets at which a cut leaves a decodable prefix (prelude and
/// every frame boundary).
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut at = 8; // prelude
    let mut bounds = vec![at];
    while at < bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4 + len;
        bounds.push(at);
    }
    bounds
}

/// Decode a full byte stream, counting frames, returning the first
/// error (if any). Must never panic, whatever the input.
fn decode_all(bytes: &[u8]) -> Result<u64, FrameError> {
    let mut rd = FrameReader::new(bytes)?;
    while rd.next_frame()?.is_some() {}
    Ok(rd.frames())
}

proptest! {
    #[test]
    fn events_round_trip_binary_exactly(events in prop::collection::vec(arb_event(), 0..40)) {
        let bytes = encode_all(&events);
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        let mut decoded = Vec::new();
        while let Some(frame) = rd.next_frame().unwrap() {
            match frame {
                FrameRef::Event(ev) => decoded.push(ev.to_json_line()),
                other => panic!("structural encode produced {other:?}"),
            }
        }
        let expect: Vec<String> = events.iter().map(|e| e.as_event().to_json_line()).collect();
        prop_assert_eq!(decoded, expect);

        // Encoding is a pure function of the events.
        prop_assert_eq!(encode_all(&events), bytes);
    }

    #[test]
    fn jsonl_to_binary_to_jsonl_is_byte_identity(
        events in prop::collection::vec(arb_event(), 0..40),
    ) {
        let text = jsonl_of(&events);
        let (bytes, stats) = jsonl_to_frames(&text);
        prop_assert_eq!(stats.total(), events.len() as u64);
        prop_assert_eq!(frames_to_jsonl(&bytes).unwrap(), text.clone());

        // The streaming converter agrees with the in-memory one.
        let mut streamed = Vec::new();
        convert_bin_to_jsonl(bytes.as_slice(), &mut streamed).unwrap();
        prop_assert_eq!(String::from_utf8(streamed).unwrap(), text);
    }

    #[test]
    fn canonical_lines_encode_structurally(
        events in prop::collection::vec(arb_event(), 1..40),
    ) {
        // Every canonical `to_json_line` rendering with f64-exact
        // integers is recognized and re-encoded as a structural frame —
        // raw fallback is reserved for lines the schema can't express.
        let events: Vec<Ev> = events.into_iter().map(json_safe).collect();
        let (_, stats) = jsonl_to_frames(&jsonl_of(&events));
        prop_assert_eq!(stats.raw, 0);
        prop_assert_eq!(stats.events, events.len() as u64);
    }

    #[test]
    fn arbitrary_lines_survive_via_raw_frames(
        lines in prop::collection::vec(
            prop::collection::vec(0usize..PALETTE.len(), 1..20).prop_map(|ix| {
                // Raw lines must be newline-free non-empty text.
                let s: String =
                    ix.into_iter().map(|i| PALETTE[i]).filter(|c| *c != '\n' && *c != '\r').collect();
                if s.is_empty() { "x".to_string() } else { s }
            }),
            1..20,
        ),
    ) {
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let (bytes, stats) = jsonl_to_frames(&text);
        prop_assert_eq!(stats.total(), lines.len() as u64);
        prop_assert_eq!(frames_to_jsonl(&bytes).unwrap(), text);
    }

    #[test]
    fn truncation_fails_typed_never_panics(
        events in prop::collection::vec(arb_event(), 1..20),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode_all(&events);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let bounds = frame_boundaries(&bytes);
        match decode_all(&bytes[..cut]) {
            Ok(frames) => {
                // A clean decode is only legal at a frame boundary,
                // and yields exactly the frames before the cut.
                prop_assert!(bounds.contains(&cut), "clean decode at non-boundary {cut}");
                let expect = bounds.iter().filter(|b| **b <= cut).count() as u64 - 1;
                prop_assert_eq!(frames, expect);
            }
            Err(FrameError::Truncated | FrameError::BadMagic) => {
                prop_assert!(!bounds.contains(&cut), "boundary cut {cut} must decode cleanly");
            }
            Err(e) => panic!("cut {cut}: unexpected error class {e}"),
        }
    }

    #[test]
    fn corruption_never_panics(
        events in prop::collection::vec(arb_event(), 1..16),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_all(&events);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        // Any outcome is acceptable except a panic: the flip may land
        // in string content (still decodes), a length prefix
        // (truncated/oversized), a tag (unknown → skipped), the
        // prelude (bad magic/version), or a payload (corrupt).
        let _ = frames_to_jsonl(&bytes);
    }

    #[test]
    fn unknown_tags_are_skipped_everywhere(
        before in prop::collection::vec(arb_event(), 0..8),
        after in prop::collection::vec(arb_event(), 0..8),
        tag_seed in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        // Tags 0 and 1..=26 are assigned; 0xFF is raw. Anything else
        // must be skipped per the additive rule.
        let tag = 27 + (tag_seed % (0xFF - 27));
        let mut bytes = encode_all(&before);
        bytes.extend_from_slice(&(payload.len() as u32 + 1).to_le_bytes());
        bytes.push(tag);
        bytes.extend_from_slice(&payload);
        for ev in &after {
            encode_event(&ev.as_event(), &mut bytes);
        }

        let mut without = encode_all(&before);
        for ev in &after {
            encode_event(&ev.as_event(), &mut without);
        }
        prop_assert_eq!(frames_to_jsonl(&bytes).unwrap(), frames_to_jsonl(&without).unwrap());

        // The reader still yields the unknown frame for counting.
        let mut rd = FrameReader::new(bytes.as_slice()).unwrap();
        let mut unknown = 0;
        while let Some(frame) = rd.next_frame().unwrap() {
            if let FrameRef::Unknown { tag: t } = frame {
                prop_assert_eq!(t, tag);
                unknown += 1;
            }
        }
        prop_assert_eq!(unknown, 1);
        prop_assert_eq!(rd.frames(), (before.len() + after.len()) as u64 + 1);
    }
}
