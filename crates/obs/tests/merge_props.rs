//! Property tests: histogram/counter merge is exactly associative and
//! commutative, and merging partitions reproduces serial accumulation
//! bitwise — the algebra the parallel learner's telemetry rests on.

use obs::{Counter, Histogram};
use proptest::prelude::*;

fn hist_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0.0f64..1.0e6, 0..64),
        b in prop::collection::vec(0.0f64..1.0e6, 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0.0f64..1.0e6, 0..48),
        b in prop::collection::vec(0.0f64..1.0e6, 0..48),
        c in prop::collection::vec(0.0f64..1.0e6, 0..48),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merged_partitions_equal_serial_accumulation(
        values in prop::collection::vec(0.0f64..1.0e6, 0..96),
        split in 0usize..96,
    ) {
        let cut = split.min(values.len());
        let serial = hist_of(&values);
        let mut merged = hist_of(&values[..cut]);
        merged.merge(&hist_of(&values[cut..]));
        prop_assert_eq!(merged, serial);
    }

    #[test]
    fn histogram_moments_survive_merge(
        a in prop::collection::vec(0.0f64..1.0e3, 1..32),
        b in prop::collection::vec(0.0f64..1.0e3, 1..32),
    ) {
        let mut m = hist_of(&a);
        m.merge(&hist_of(&b));
        prop_assert_eq!(m.count(), (a.len() + b.len()) as u64);
        let lo = a.iter().chain(b.iter()).fold(f64::INFINITY, |x, &y| x.min(y));
        let hi = a.iter().chain(b.iter()).fold(f64::NEG_INFINITY, |x, &y| x.max(y));
        prop_assert_eq!(m.min_secs(), Some(lo));
        prop_assert_eq!(m.max_secs(), Some(hi));
    }

    #[test]
    fn counter_merge_is_addition(
        xs in prop::collection::vec(0u64..1_000_000, 0..16),
        split in 0usize..16,
    ) {
        let cut = split.min(xs.len());
        let mut serial = Counter::new();
        for &x in &xs {
            serial.add(x);
        }
        let mut left = Counter::new();
        for &x in &xs[..cut] {
            left.add(x);
        }
        let mut right = Counter::new();
        for &x in &xs[cut..] {
            right.add(x);
        }
        // Commutative: fold right into left and left into right.
        let mut lr = left;
        lr.merge(&right);
        let mut rl = right;
        rl.merge(&left);
        prop_assert_eq!(lr.count(), serial.count());
        prop_assert_eq!(rl.count(), serial.count());
    }
}
