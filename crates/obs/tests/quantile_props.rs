//! Property tests for the quantile estimator the SLO percentile rules
//! stand on: `Histogram::quantile` must be monotone in `q`, bounded by
//! the exact extremes, and — because per-worker histograms are folded
//! in whatever order threads finish — p50/p95/p99 must be *bitwise*
//! invariant under any merge-order permutation of the same data.

use obs::registry::AtomicHistogram;
use obs::Histogram;
use proptest::prelude::*;

fn hist_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Deterministic Fisher–Yates over `items` driven by a cheap LCG, so a
/// single `u64` seed exercises arbitrary permutations without a rand
/// dependency.
fn shuffled<T>(mut items: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..items.len()).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        items.swap(i, (seed >> 33) as usize % (i + 1));
    }
    items
}

proptest! {
    #[test]
    fn quantile_is_monotone_in_q(
        values in prop::collection::vec(0.0f64..1.0e6, 1..96),
    ) {
        let h = hist_of(&values);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q).expect("non-empty histogram has quantiles");
            prop_assert!(v >= prev, "quantile({q}) = {v} < quantile(prev) = {prev}");
            prop_assert!(v >= h.min_secs().unwrap() && v <= h.max_secs().unwrap());
            prev = v;
        }
        prop_assert_eq!(h.quantile(0.0), h.min_secs(), "p0 is the exact min");
        prop_assert_eq!(h.quantile(1.0), h.max_secs(), "p100 is the exact max");
    }

    #[test]
    fn percentiles_survive_merge_order_permutations(
        values in prop::collection::vec(0.0f64..1.0e6, 1..96),
        cuts in prop::collection::vec(0usize..96, 0..4),
        seed in any::<u64>(),
    ) {
        // Partition `values` at the (sorted, clamped) cut points, then
        // fold the chunks in a seed-permuted order.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (values.len() + 1)).collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();
        let chunks: Vec<&[f64]> =
            bounds.windows(2).map(|w| &values[w[0]..w[1]]).collect();
        let serial = hist_of(&values);
        let mut permuted = Histogram::new();
        for chunk in shuffled(chunks, seed) {
            permuted.merge(&hist_of(chunk));
        }
        // The whole state matches bitwise, so every exported quantile
        // does too — assert both, the quantiles being what SLO
        // percentile rules actually consume.
        prop_assert_eq!(&permuted, &serial);
        for q in [0.50, 0.95, 0.99] {
            let (p, s) = (permuted.quantile(q), serial.quantile(q));
            prop_assert_eq!(p.map(f64::to_bits), s.map(f64::to_bits), "q = {}", q);
        }
    }

    #[test]
    fn atomic_histogram_matches_serial_for_any_values(
        values in prop::collection::vec(0.0f64..1.0e6, 0..64),
    ) {
        // The registry's lock-free histogram must share the serial
        // histogram's laws exactly, or live and offline percentiles
        // would drift apart.
        let atomic = AtomicHistogram::new();
        for &v in &values {
            atomic.record(v);
        }
        prop_assert_eq!(atomic.snapshot(), hist_of(&values));
    }
}
