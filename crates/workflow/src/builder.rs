//! Ergonomic workflow construction.
//!
//! The builder derives the activation dependency DAG from file
//! producer/consumer relations, exactly as the paper defines
//! `dep(ac_i, ac_j) ↔ ∃ r ∈ input(ac_j) | r ∈ output(ac_i)`.

use crate::model::{Activation, Activity, DataFile, Workflow};
use dag::Dag;
use std::collections::HashMap;
use wfcommon::ids::IdMap;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, ActivityId, Error, FileId, Result};

/// Incremental builder for [`Workflow`].
#[derive(Debug, Default)]
pub struct WorkflowBuilder {
    name: String,
    activities: IdMap<ActivityId, Activity>,
    activations: IdMap<ActivationId, Activation>,
    files: IdMap<FileId, DataFile>,
    activity_index: HashMap<String, ActivityId>,
    file_index: HashMap<String, FileId>,
}

impl WorkflowBuilder {
    /// Start a new workflow named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Default::default() }
    }

    /// Intern an activity by name (idempotent: same name → same id).
    pub fn activity(&mut self, name: &str, namespace: &str) -> ActivityId {
        if let Some(&id) = self.activity_index.get(name) {
            return id;
        }
        let id = self
            .activities
            .push(Activity { name: name.to_string(), namespace: namespace.to_string() });
        self.activity_index.insert(name.to_string(), id);
        id
    }

    /// Intern a file by logical name (idempotent). If the file was
    /// interned before with a different size, the larger size wins —
    /// DAX files list the same file under producer and consumers and
    /// occasionally disagree by a few bytes.
    pub fn file(&mut self, name: &str, size_bytes: u64) -> FileId {
        if let Some(&id) = self.file_index.get(name) {
            let f = &mut self.files[id];
            f.size_bytes = f.size_bytes.max(size_bytes);
            return id;
        }
        let id = self.files.push(DataFile { name: name.to_string(), size_bytes });
        self.file_index.insert(name.to_string(), id);
        id
    }

    /// Add an activation of `activity` with the given label, abstract
    /// length (millions of instructions) and file sets.
    pub fn activation(
        &mut self,
        activity: ActivityId,
        label: &str,
        length_mi: f64,
        inputs: Vec<FileId>,
        outputs: Vec<FileId>,
    ) -> ActivationId {
        self.activations.push(Activation {
            activity,
            label: label.to_string(),
            length_mi,
            inputs,
            outputs,
        })
    }

    /// Number of activations added so far.
    pub fn activation_count(&self) -> usize {
        self.activations.len()
    }

    /// Finish: derive the dependency DAG from files and validate.
    pub fn build(self) -> Result<Workflow> {
        if self.activations.is_empty() {
            return Err(Error::InvalidWorkflow("workflow has no activations".into()));
        }
        let mut producer: Vec<Option<ActivationId>> = vec![None; self.files.len()];
        for (id, ac) in self.activations.iter() {
            for &f in &ac.outputs {
                if let Some(prev) = producer[f.index()] {
                    return Err(Error::InvalidWorkflow(format!(
                        "file {} produced by both {prev} and {id}",
                        self.files[f].name
                    )));
                }
                producer[f.index()] = Some(id);
            }
        }
        let mut dag = Dag::with_nodes(self.activations.len());
        for (cid, ac) in self.activations.iter() {
            for &f in &ac.inputs {
                if let Some(pid) = producer[f.index()] {
                    if pid == cid {
                        return Err(Error::InvalidWorkflow(format!(
                            "activation {cid} consumes its own output {}",
                            self.files[f].name
                        )));
                    }
                    dag.add_edge(pid.index(), cid.index());
                }
            }
        }
        let wf = Workflow {
            name: self.name,
            activities: self.activities,
            activations: self.activations,
            files: self.files,
            dag,
        };
        wf.validate()?;
        Ok(wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut b = WorkflowBuilder::new("t");
        let a1 = b.activity("mAdd", "Montage");
        let a2 = b.activity("mAdd", "Montage");
        assert_eq!(a1, a2);
        let f1 = b.file("x.fits", 100);
        let f2 = b.file("x.fits", 80);
        assert_eq!(f1, f2);
    }

    #[test]
    fn file_size_takes_max() {
        let mut b = WorkflowBuilder::new("t");
        let f = b.file("x.fits", 100);
        b.file("x.fits", 250);
        let act = b.activity("p", "n");
        b.activation(act, "A", 1.0, vec![], vec![f]);
        b.activation(act, "B", 1.0, vec![f], vec![]);
        let w = b.build().unwrap();
        assert_eq!(w.files[f].size_bytes, 250);
    }

    #[test]
    fn fan_out_fan_in_edges() {
        let mut b = WorkflowBuilder::new("t");
        let act = b.activity("p", "n");
        let seed = b.file("seed", 1);
        let o1 = b.file("o1", 1);
        let o2 = b.file("o2", 1);
        b.activation(act, "src", 1.0, vec![seed], vec![o1, o2]);
        b.activation(act, "l", 1.0, vec![o1], vec![]);
        b.activation(act, "r", 1.0, vec![o2], vec![]);
        let w = b.build().unwrap();
        assert_eq!(w.dag.out_degree(0), 2);
        assert_eq!(w.dag.in_degree(1), 1);
        assert_eq!(w.dag.in_degree(2), 1);
    }

    #[test]
    fn empty_workflow_rejected() {
        let b = WorkflowBuilder::new("t");
        assert!(b.build().is_err());
    }

    #[test]
    fn self_consumption_rejected() {
        let mut b = WorkflowBuilder::new("t");
        let act = b.activity("p", "n");
        let f = b.file("loop", 1);
        b.activation(act, "A", 1.0, vec![f], vec![f]);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("own output"));
    }

    #[test]
    fn double_producer_rejected() {
        let mut b = WorkflowBuilder::new("t");
        let act = b.activity("p", "n");
        let f = b.file("dup", 1);
        b.activation(act, "A", 1.0, vec![], vec![f]);
        b.activation(act, "B", 1.0, vec![], vec![f]);
        assert!(b.build().is_err());
    }
}
