//! Core workflow data model (paper §I formalism).

use dag::Dag;
use serde::{Deserialize, Serialize};
use wfcommon::ids::{IdMap, Idx};
use wfcommon::{ActivationId, ActivityId, FileId};

/// Reference machine rating used to convert DAX reference runtimes to
/// abstract work: a DAX `runtime="13.59"` means 13.59 s on a
/// 1000-MIPS machine, i.e. `13_590` million instructions. This mirrors
/// WorkflowSim's convention.
pub const REFERENCE_MIPS: f64 = 1000.0;

/// A workflow *activity*: one program of the pipeline (e.g. `mDiffFit`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activity {
    /// Program name, e.g. `mProjectPP`.
    pub name: String,
    /// Namespace as recorded in DAX files (e.g. `Montage`).
    pub namespace: String,
}

/// A data file exchanged between activations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataFile {
    /// Logical file name.
    pub name: String,
    /// Size in bytes (used for transfer-time modelling).
    pub size_bytes: u64,
}

/// An *activation*: the smallest schedulable unit of work (paper §I).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Activation {
    /// The activity this activation instantiates.
    pub activity: ActivityId,
    /// Job identifier from the source DAX (e.g. `ID00007`) or generated.
    pub label: String,
    /// Abstract work in millions of instructions. Execution time on a
    /// VM rated `m` MIPS is `length_mi / m` seconds (before
    /// performance fluctuation).
    pub length_mi: f64,
    /// Files consumed.
    pub inputs: Vec<FileId>,
    /// Files produced.
    pub outputs: Vec<FileId>,
}

impl Activation {
    /// Reference runtime in seconds on the 1000-MIPS reference machine.
    pub fn reference_runtime_secs(&self) -> f64 {
        self.length_mi / REFERENCE_MIPS
    }
}

/// A complete workflow instance: activities, activations, files and the
/// activation-level dependency DAG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow name (e.g. `Montage_50`).
    pub name: String,
    /// Activity table.
    pub activities: IdMap<ActivityId, Activity>,
    /// Activation table (dense; ids match DAG node indices).
    pub activations: IdMap<ActivationId, Activation>,
    /// File table.
    pub files: IdMap<FileId, DataFile>,
    /// Dependency DAG over activations: edge `i → j` means `ac_j`
    /// consumes an output of `ac_i`.
    pub dag: Dag,
}

impl Workflow {
    /// Number of activations.
    pub fn len(&self) -> usize {
        self.activations.len()
    }

    /// True when the workflow has no activations.
    pub fn is_empty(&self) -> bool {
        self.activations.is_empty()
    }

    /// Direct dependencies of `ac` (producers it waits for).
    pub fn parents(&self, ac: ActivationId) -> impl Iterator<Item = ActivationId> + '_ {
        self.dag.preds(ac.index()).iter().map(|&i| ActivationId::from_index(i))
    }

    /// Direct dependents of `ac`.
    pub fn children(&self, ac: ActivationId) -> impl Iterator<Item = ActivationId> + '_ {
        self.dag.succs(ac.index()).iter().map(|&i| ActivationId::from_index(i))
    }

    /// Entry activations (no dependencies; *ready* at time zero).
    pub fn entries(&self) -> Vec<ActivationId> {
        self.dag.roots().into_iter().map(ActivationId::from_index).collect()
    }

    /// Exit activations (nothing depends on them).
    pub fn exits(&self) -> Vec<ActivationId> {
        self.dag.leaves().into_iter().map(ActivationId::from_index).collect()
    }

    /// Reference lengths (MI) of all activations, indexed by activation.
    pub fn lengths_mi(&self) -> Vec<f64> {
        self.activations.values().map(|a| a.length_mi).collect()
    }

    /// Total abstract work of the whole workflow, in MI.
    pub fn total_work_mi(&self) -> f64 {
        self.activations.values().map(|a| a.length_mi).sum()
    }

    /// Critical-path length in seconds on the reference machine — a
    /// lower bound for the makespan of any execution whose fastest VM
    /// is the reference machine.
    pub fn reference_critical_path_secs(&self) -> f64 {
        let w: Vec<f64> = self.activations.values().map(|a| a.reference_runtime_secs()).collect();
        dag::critical_path(&self.dag, &w).map(|cp| cp.length).unwrap_or(0.0)
    }

    /// Bytes that must flow over the edge `from → to` (sum of sizes of
    /// files produced by `from` and consumed by `to`).
    pub fn transfer_bytes(&self, from: ActivationId, to: ActivationId) -> u64 {
        let producer = &self.activations[from];
        let consumer = &self.activations[to];
        producer
            .outputs
            .iter()
            .filter(|f| consumer.inputs.contains(f))
            .map(|&f| self.files[f].size_bytes)
            .sum()
    }

    /// Per-activity activation counts, for summarising workflow shape.
    pub fn activity_histogram(&self) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; self.activities.len()];
        for a in self.activations.values() {
            counts[a.activity.index()] += 1;
        }
        self.activities.iter().map(|(id, act)| (act.name.clone(), counts[id.index()])).collect()
    }

    /// Validate structural invariants:
    /// * the activation DAG is acyclic,
    /// * every file referenced exists,
    /// * every file is produced by at most one activation,
    /// * every DAG edge is justified by a shared file, and every shared
    ///   file is reflected by a DAG edge.
    pub fn validate(&self) -> wfcommon::Result<()> {
        use wfcommon::Error;
        if self.dag.node_count() != self.activations.len() {
            return Err(Error::InvalidWorkflow(format!(
                "DAG has {} nodes but workflow has {} activations",
                self.dag.node_count(),
                self.activations.len()
            )));
        }
        dag::topo_sort(&self.dag)
            .map_err(|e| Error::InvalidWorkflow(format!("cyclic dependencies: {e}")))?;

        let mut producer: Vec<Option<ActivationId>> = vec![None; self.files.len()];
        for (id, ac) in self.activations.iter() {
            for &f in ac.inputs.iter().chain(ac.outputs.iter()) {
                if self.files.get(f).is_none() {
                    return Err(Error::InvalidWorkflow(format!(
                        "activation {id} references unknown file {f}"
                    )));
                }
            }
            for &f in &ac.outputs {
                if let Some(prev) = producer[f.index()] {
                    return Err(Error::InvalidWorkflow(format!(
                        "file {} produced by both {prev} and {id}",
                        self.files[f].name
                    )));
                }
                producer[f.index()] = Some(id);
            }
        }
        // Every data dependency must appear as an edge and vice versa.
        for (cid, cons) in self.activations.iter() {
            for &f in &cons.inputs {
                if let Some(pid) = producer[f.index()] {
                    if pid != cid && !self.dag.has_edge(pid.index(), cid.index()) {
                        return Err(Error::InvalidWorkflow(format!(
                            "missing edge {pid} -> {cid} for file {}",
                            self.files[f].name
                        )));
                    }
                }
            }
        }
        for (u, v) in self.dag.edges() {
            let pu = ActivationId::from_index(u);
            let pv = ActivationId::from_index(v);
            if self.transfer_bytes(pu, pv) == 0
                && !self.activations[pu]
                    .outputs
                    .iter()
                    .any(|f| self.activations[pv].inputs.contains(f))
            {
                return Err(Error::InvalidWorkflow(format!(
                    "edge {pu} -> {pv} has no supporting shared file"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;

    fn tiny() -> Workflow {
        // a (produces f1) -> b (consumes f1, produces f2) -> c (consumes f2)
        let mut b = WorkflowBuilder::new("tiny");
        let act = b.activity("prog", "test");
        let f1 = b.file("f1.dat", 100);
        let f2 = b.file("f2.dat", 200);
        let fin = b.file("in.dat", 50);
        b.activation(act, "A", 1000.0, vec![fin], vec![f1]);
        b.activation(act, "B", 2000.0, vec![f1], vec![f2]);
        b.activation(act, "C", 3000.0, vec![f2], vec![]);
        b.build().unwrap()
    }

    #[test]
    fn dependencies_follow_files() {
        let w = tiny();
        assert_eq!(w.len(), 3);
        assert_eq!(w.entries(), vec![ActivationId::new(0)]);
        assert_eq!(w.exits(), vec![ActivationId::new(2)]);
        let kids: Vec<_> = w.children(ActivationId::new(0)).collect();
        assert_eq!(kids, vec![ActivationId::new(1)]);
    }

    #[test]
    fn transfer_bytes_sums_shared_files() {
        let w = tiny();
        assert_eq!(w.transfer_bytes(ActivationId::new(0), ActivationId::new(1)), 100);
        assert_eq!(w.transfer_bytes(ActivationId::new(1), ActivationId::new(2)), 200);
        assert_eq!(w.transfer_bytes(ActivationId::new(0), ActivationId::new(2)), 0);
    }

    #[test]
    fn reference_runtime_uses_1000_mips() {
        let w = tiny();
        let a = &w.activations[ActivationId::new(0)];
        assert!((a.reference_runtime_secs() - 1.0).abs() < 1e-12);
        assert!((w.total_work_mi() - 6000.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_of_chain_is_serial_time() {
        let w = tiny();
        assert!((w.reference_critical_path_secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn validate_accepts_well_formed() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_rejects_double_producer() {
        let mut w = tiny();
        // Make activation C also claim to produce f1.
        let f1 = FileId::new(0);
        w.activations[ActivationId::new(2)].outputs.push(f1);
        let err = w.validate().unwrap_err();
        assert!(err.to_string().contains("produced by both"));
    }

    #[test]
    fn histogram_counts_activations_per_activity() {
        let w = tiny();
        assert_eq!(w.activity_histogram(), vec![("prog".to_string(), 3)]);
    }
}
