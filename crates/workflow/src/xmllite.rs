//! A minimal, dependency-free XML pull parser.
//!
//! DAX files from the Pegasus Workflow Generator use a small, regular
//! subset of XML: elements, attributes (double- or single-quoted),
//! comments, processing instructions and character data. This parser
//! covers exactly that subset — it does not implement DTDs, entities
//! beyond the five predefined ones, or namespaces (prefixes are kept as
//! part of the tag name).

use wfcommon::{Error, Result};

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" …>`; `self_closing` is true for `<… />`.
    Start { name: String, attrs: Vec<(String, String)>, self_closing: bool },
    /// `</name>`.
    End { name: String },
    /// Character data between tags (entity-decoded, never empty).
    Text(String),
}

impl Event {
    /// Attribute lookup helper for `Start` events.
    pub fn attr<'a>(&'a self, key: &str) -> Option<&'a str> {
        match self {
            Event::Start { attrs, .. } => {
                attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
            }
            _ => None,
        }
    }
}

/// Pull parser over an XML string.
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Create a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Self { input: input.as_bytes(), pos: 0 }
    }

    /// Parse the entire document into a list of events.
    pub fn parse_all(input: &'a str) -> Result<Vec<Event>> {
        let mut p = Parser::new(input);
        let mut events = Vec::new();
        while let Some(ev) = p.next_event()? {
            events.push(ev);
        }
        Ok(events)
    }

    /// The next event, or `None` at end of input.
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            if self.peek() == b'<' {
                if self.starts_with(b"<!--") {
                    self.skip_until(b"-->")?;
                    continue;
                }
                if self.starts_with(b"<?") {
                    self.skip_until(b"?>")?;
                    continue;
                }
                if self.starts_with(b"<!") {
                    // DOCTYPE and friends: skip to the closing '>'.
                    self.skip_until(b">")?;
                    continue;
                }
                return self.parse_tag().map(Some);
            }
            // Character data.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != b'<' {
                self.pos += 1;
            }
            let raw = std::str::from_utf8(&self.input[start..self.pos])
                .map_err(|_| Error::Parse("invalid UTF-8 in text".into()))?;
            let text = decode_entities(raw.trim())?;
            if !text.is_empty() {
                return Ok(Some(Event::Text(text)));
            }
        }
    }

    fn parse_tag(&mut self) -> Result<Event> {
        self.expect(b'<')?;
        if self.peek() == b'/' {
            self.pos += 1;
            let name = self.read_name()?;
            self.skip_ws();
            self.expect(b'>')?;
            return Ok(Event::End { name });
        }
        let name = self.read_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek_checked()? {
                b'>' => {
                    self.pos += 1;
                    return Ok(Event::Start { name, attrs, self_closing: false });
                }
                b'/' => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(Event::Start { name, attrs, self_closing: true });
                }
                _ => {
                    let key = self.read_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self.peek_checked()?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(Error::Parse(format!(
                            "expected quoted attribute value for {key}"
                        )));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek_checked()? != quote {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| Error::Parse("invalid UTF-8 in attribute".into()))?;
                    self.pos += 1; // closing quote
                    attrs.push((key, decode_entities(raw)?));
                }
            }
        }
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos];
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::Parse(format!("expected name at byte {}", self.pos)));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn peek(&self) -> u8 {
        self.input[self.pos]
    }

    fn peek_checked(&self) -> Result<u8> {
        self.input
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::Parse("unexpected end of input".into()))
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.input[self.pos..].starts_with(prefix)
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek_checked()? != c {
            return Err(Error::Parse(format!(
                "expected '{}' at byte {}, found '{}'",
                c as char, self.pos, self.input[self.pos] as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, needle: &[u8]) -> Result<()> {
        while self.pos < self.input.len() {
            if self.starts_with(needle) {
                self.pos += needle.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(Error::Parse(format!(
            "unterminated construct; expected {}",
            String::from_utf8_lossy(needle)
        )))
    }
}

/// Decode the five predefined XML entities.
fn decode_entities(s: &str) -> Result<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let semi = rest.find(';').ok_or_else(|| Error::Parse("unterminated entity".into()))?;
        let ent = &rest[1..semi];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| Error::Parse(format!("bad char ref &{ent};")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::Parse(format!("bad char ref &{ent};")))?,
                );
            }
            _ if ent.starts_with('#') => {
                let code: u32 =
                    ent[1..].parse().map_err(|_| Error::Parse(format!("bad char ref &{ent};")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::Parse(format!("bad char ref &{ent};")))?,
                );
            }
            _ => return Err(Error::Parse(format!("unknown entity &{ent};"))),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Encode text for safe embedding in XML attribute/text positions.
pub fn encode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let evs = Parser::parse_all(r#"<a x="1"><b/>hello</a>"#).unwrap();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs[0],
            Event::Start {
                name: "a".into(),
                attrs: vec![("x".into(), "1".into())],
                self_closing: false
            }
        );
        assert_eq!(evs[1], Event::Start { name: "b".into(), attrs: vec![], self_closing: true });
        assert_eq!(evs[2], Event::Text("hello".into()));
        assert_eq!(evs[3], Event::End { name: "a".into() });
    }

    #[test]
    fn skips_prolog_comments_doctype() {
        let doc = r#"<?xml version="1.0"?><!-- c --><!DOCTYPE adag><root/>"#;
        let evs = Parser::parse_all(doc).unwrap();
        assert_eq!(evs.len(), 1);
        assert!(matches!(&evs[0], Event::Start { name, .. } if name == "root"));
    }

    #[test]
    fn decodes_entities_in_attrs_and_text() {
        let evs = Parser::parse_all(r#"<f name="a&amp;b">1 &lt; 2 &#65;&#x42;</f>"#).unwrap();
        assert_eq!(evs[0].attr("name"), Some("a&b"));
        assert_eq!(evs[1], Event::Text("1 < 2 AB".into()));
    }

    #[test]
    fn single_quoted_attributes() {
        let evs = Parser::parse_all(r#"<j id='ID1' runtime='2.5'/>"#).unwrap();
        assert_eq!(evs[0].attr("id"), Some("ID1"));
        assert_eq!(evs[0].attr("runtime"), Some("2.5"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Parser::parse_all("<a").is_err());
        assert!(Parser::parse_all("<a x=1>").is_err());
        assert!(Parser::parse_all("<!-- unterminated").is_err());
        assert!(Parser::parse_all("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn namespace_prefixes_kept_verbatim() {
        let evs = Parser::parse_all(r#"<dax:adag xmlns:dax="u"/>"#).unwrap();
        assert!(matches!(&evs[0], Event::Start { name, .. } if name == "dax:adag"));
    }

    #[test]
    fn encode_round_trips() {
        let original = r#"a<b>&"c'"#;
        let enc = encode_entities(original);
        assert_eq!(decode_entities(&enc).unwrap(), original);
    }

    #[test]
    fn whitespace_only_text_is_skipped() {
        let evs = Parser::parse_all("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(evs.len(), 3);
    }
}
