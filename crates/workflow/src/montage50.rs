//! The canonical 50-activation Montage instance used by all paper
//! experiments.
//!
//! The paper evaluates ReASSIgN on the 50-node Montage DAX from the
//! Pegasus Workflow Generator. This module pins one deterministic
//! instance (generator seed `2019`, the paper's publication year) so
//! that Tables II–V are reproducible run-over-run, and exposes the DAX
//! serialization of that instance for tooling that expects the XML
//! form.

use crate::generators::montage::{generate, MontageParams};
use crate::model::Workflow;

/// Seed pinning the canonical instance.
pub const MONTAGE50_SEED: u64 = 2019;

/// The canonical 50-activation Montage workflow.
pub fn montage50() -> Workflow {
    let params = MontageParams::with_total_activations(50, MONTAGE50_SEED)
        .expect("50 is a valid Montage size");
    generate(&params).expect("canonical Montage parameters are valid")
}

/// The canonical instance serialized as DAX XML.
pub fn montage50_dax() -> String {
    crate::dax::write(&montage50())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_fifty_activations() {
        let wf = montage50();
        assert_eq!(wf.len(), 50);
        wf.validate().unwrap();
    }

    #[test]
    fn is_stable_across_calls() {
        assert_eq!(montage50(), montage50());
    }

    #[test]
    fn dax_round_trips() {
        let wf = montage50();
        let xml = montage50_dax();
        let reparsed = crate::dax::parse(&xml).unwrap();
        assert_eq!(wf.len(), reparsed.len());
        assert_eq!(wf.dag, reparsed.dag);
        assert_eq!(wf.activity_histogram(), reparsed.activity_histogram());
    }

    #[test]
    fn activation_ids_run_zero_to_fortynine() {
        // Table V reports activations 0..=49; our labels match.
        let wf = montage50();
        let first = &wf.activations[wfcommon::ActivationId::new(0)];
        let last = &wf.activations[wfcommon::ActivationId::new(49)];
        assert_eq!(first.label, "ID00000");
        assert_eq!(last.label, "ID00049");
    }
}
