//! Graphviz DOT export for workflows.
//!
//! `dot -Tsvg wf.dot > wf.svg` renders the activation DAG with
//! per-activity colours and runtime-proportional labels — the quickest
//! way to eyeball a generated workflow or a clustered quotient.

use crate::model::Workflow;
use wfcommon::ids::Idx;

/// Fill colours cycled per activity (Graphviz X11 names).
const PALETTE: [&str; 9] = [
    "lightblue",
    "lightgoldenrod",
    "palegreen",
    "lightpink",
    "lightsalmon",
    "plum",
    "khaki",
    "lightcyan",
    "lavender",
];

/// Render `wf` as a DOT digraph. Node labels show the activity name and
/// reference runtime; edges carry transferred megabytes when ≥ 0.1 MB.
pub fn to_dot(wf: &Workflow) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "digraph \"{}\" {{\n  rankdir=TB;\n  node [style=filled, shape=box, fontsize=10];\n",
        sanitize(&wf.name)
    ));
    for (id, ac) in wf.activations.iter() {
        let act = &wf.activities[ac.activity];
        let color = PALETTE[ac.activity.index() % PALETTE.len()];
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{}\\n{:.1}s\", fillcolor={}];\n",
            id.index(),
            sanitize(&ac.label),
            sanitize(&act.name),
            ac.reference_runtime_secs(),
            color
        ));
    }
    for (u, v) in wf.dag.edges() {
        let bytes = wf.transfer_bytes(
            wfcommon::ActivationId::from_index(u),
            wfcommon::ActivationId::from_index(v),
        );
        let mb = bytes as f64 / 1e6;
        if mb >= 0.1 {
            out.push_str(&format!("  n{u} -> n{v} [label=\"{mb:.1}MB\"];\n"));
        } else {
            out.push_str(&format!("  n{u} -> n{v};\n"));
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(s: &str) -> String {
    s.replace('"', "'").replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montage50::montage50;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let wf = montage50();
        let dot = to_dot(&wf);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        let node_lines = dot.lines().filter(|l| l.contains("fillcolor")).count();
        assert_eq!(node_lines, 50);
        let edge_lines = dot.lines().filter(|l| l.contains("->")).count();
        assert_eq!(edge_lines, wf.dag.edge_count());
        assert!(dot.contains("mProjectPP"));
    }

    #[test]
    fn heavy_edges_are_labelled() {
        let wf = montage50();
        let dot = to_dot(&wf);
        // Projected FITS files are ~8.2 MB.
        assert!(dot.contains("8.2MB"), "expected MB edge labels");
    }

    #[test]
    fn quotes_are_sanitized() {
        let mut b = crate::builder::WorkflowBuilder::new("has\"quote");
        let act = b.activity("p\"q", "n");
        let f = b.file("x", 1);
        b.activation(act, "a\"b", 1000.0, vec![], vec![f]);
        b.activation(act, "c", 1000.0, vec![f], vec![]);
        let wf = b.build().unwrap();
        let dot = to_dot(&wf);
        assert!(!dot.contains("\"a\"b\""));
        assert!(dot.contains("a'b"));
    }
}
