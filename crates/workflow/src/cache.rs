//! Precomputed, read-only structural caches over a [`Workflow`].
//!
//! The simulation hot path repeatedly asks the same structural
//! questions — who are an activation's parents, how many bytes cross
//! each dependency edge, how much input data has no producer and must
//! be staged in from shared storage. All of it is fixed the moment the
//! workflow is built, so a [`WorkflowCache`] answers each from a flat
//! array instead of re-deriving it per scheduling decision. One cache
//! is built per workflow and shared immutably across any number of
//! concurrent simulations (it is `Send + Sync`).

use crate::model::Workflow;
use std::collections::HashSet;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, FileId};

/// Immutable per-workflow lookup tables (see module docs).
#[derive(Clone, Debug)]
pub struct WorkflowCache {
    /// One valid topological order of the activation DAG.
    topo_order: Vec<usize>,
    /// Dependency count per activation.
    in_degree: Vec<u32>,
    /// CSR offsets into `parent_edges`, length `len() + 1`.
    parent_offsets: Vec<u32>,
    /// `(parent, transfer_bytes)` per dependency edge, grouped by child
    /// in `dag.preds` order.
    parent_edges: Vec<(u32, u64)>,
    /// Bytes of each activation's inputs that no parent produces
    /// (staged in from shared storage when the simulator models it).
    external_input_bytes: Vec<u64>,
    /// Upward rank: critical-path seconds from each activation to an
    /// exit, on the reference machine (HEFT-style priority).
    rank: Vec<f64>,
}

impl WorkflowCache {
    /// Build every table in one pass over the workflow. Fails only on a
    /// cyclic DAG.
    pub fn new(workflow: &Workflow) -> wfcommon::Result<Self> {
        let n = workflow.len();
        let topo_order = dag::topo_sort(&workflow.dag)
            .map_err(|e| wfcommon::Error::InvalidWorkflow(format!("cyclic dependencies: {e}")))?;
        let in_degree: Vec<u32> = (0..n).map(|i| workflow.dag.in_degree(i) as u32).collect();

        let mut parent_offsets = Vec::with_capacity(n + 1);
        let mut parent_edges = Vec::new();
        let mut external_input_bytes = Vec::with_capacity(n);
        let mut produced: HashSet<FileId> = HashSet::new();
        for i in 0..n {
            parent_offsets.push(parent_edges.len() as u32);
            let child = ActivationId::from_index(i);
            produced.clear();
            for &p in workflow.dag.preds(i) {
                let parent = ActivationId::from_index(p);
                let bytes = workflow.transfer_bytes(parent, child);
                parent_edges.push((p as u32, bytes));
                produced.extend(workflow.activations[parent].outputs.iter().copied());
            }
            let external: u64 = workflow.activations[child]
                .inputs
                .iter()
                .filter(|f| !produced.contains(f))
                .map(|&f| workflow.files[f].size_bytes)
                .sum();
            external_input_bytes.push(external);
        }
        parent_offsets.push(parent_edges.len() as u32);

        // Upward rank in reverse topological order: an activation's rank
        // is its own reference runtime plus the best continuation below.
        let mut rank = vec![0.0f64; n];
        for &i in topo_order.iter().rev() {
            let own = workflow.activations[ActivationId::from_index(i)].reference_runtime_secs();
            let below = workflow.dag.succs(i).iter().map(|&c| rank[c]).fold(0.0f64, f64::max);
            rank[i] = own + below;
        }

        Ok(Self { topo_order, in_degree, parent_offsets, parent_edges, external_input_bytes, rank })
    }

    /// Number of activations covered.
    pub fn len(&self) -> usize {
        self.in_degree.len()
    }

    /// True when the cached workflow has no activations.
    pub fn is_empty(&self) -> bool {
        self.in_degree.is_empty()
    }

    /// A valid topological order of the activation DAG.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo_order
    }

    /// Dependency count of activation `i`.
    #[inline]
    pub fn in_degree(&self, i: usize) -> u32 {
        self.in_degree[i]
    }

    /// `(parent_index, transfer_bytes)` per dependency edge of `i`.
    #[inline]
    pub fn parents(&self, i: usize) -> &[(u32, u64)] {
        let lo = self.parent_offsets[i] as usize;
        let hi = self.parent_offsets[i + 1] as usize;
        &self.parent_edges[lo..hi]
    }

    /// Bytes of `i`'s inputs produced by no parent (shared-storage
    /// stage-in volume).
    #[inline]
    pub fn external_input_bytes(&self, i: usize) -> u64 {
        self.external_input_bytes[i]
    }

    /// Upward rank of `i`: critical-path seconds to an exit on the
    /// reference machine.
    #[inline]
    pub fn rank(&self, i: usize) -> f64 {
        self.rank[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montage50::montage50;

    #[test]
    fn cache_matches_model_queries() {
        let wf = montage50();
        let cache = WorkflowCache::new(&wf).unwrap();
        assert_eq!(cache.len(), wf.len());
        for i in 0..wf.len() {
            let ac = ActivationId::from_index(i);
            assert_eq!(cache.in_degree(i) as usize, wf.dag.in_degree(i));
            let parents: Vec<usize> = cache.parents(i).iter().map(|&(p, _)| p as usize).collect();
            assert_eq!(parents, wf.dag.preds(i));
            for &(p, bytes) in cache.parents(i) {
                assert_eq!(bytes, wf.transfer_bytes(ActivationId::from_index(p as usize), ac));
            }
        }
    }

    #[test]
    fn external_bytes_match_engine_derivation() {
        let wf = montage50();
        let cache = WorkflowCache::new(&wf).unwrap();
        for i in 0..wf.len() {
            let ac = ActivationId::from_index(i);
            let produced: HashSet<FileId> =
                wf.parents(ac).flat_map(|p| wf.activations[p].outputs.iter().copied()).collect();
            let expected: u64 = wf.activations[ac]
                .inputs
                .iter()
                .filter(|f| !produced.contains(f))
                .map(|&f| wf.files[f].size_bytes)
                .sum();
            assert_eq!(cache.external_input_bytes(i), expected, "activation {i}");
        }
        // Montage's entry activations read real inputs from storage.
        assert!((0..wf.len()).any(|i| cache.external_input_bytes(i) > 0));
    }

    #[test]
    fn topo_order_respects_edges() {
        let wf = montage50();
        let cache = WorkflowCache::new(&wf).unwrap();
        let mut position = vec![0usize; wf.len()];
        for (pos, &i) in cache.topo_order().iter().enumerate() {
            position[i] = pos;
        }
        for (u, v) in wf.dag.edges() {
            assert!(position[u] < position[v], "edge {u}->{v} out of order");
        }
    }

    #[test]
    fn rank_is_monotone_down_the_dag() {
        let wf = montage50();
        let cache = WorkflowCache::new(&wf).unwrap();
        for (u, v) in wf.dag.edges() {
            assert!(cache.rank(u) > cache.rank(v), "parent rank must exceed child's");
        }
        let max_rank = (0..wf.len()).map(|i| cache.rank(i)).fold(0.0f64, f64::max);
        assert!(
            (max_rank - wf.reference_critical_path_secs()).abs() < 1e-9,
            "top rank {} vs critical path {}",
            max_rank,
            wf.reference_critical_path_secs()
        );
    }
}
