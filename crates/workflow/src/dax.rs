//! Reader/writer for the Pegasus DAX XML dialect.
//!
//! The paper obtains its Montage traces from the Pegasus *Workflow
//! Generator*, which emits DAX v3 files of this shape:
//!
//! ```xml
//! <adag name="Montage" jobCount="50" ...>
//!   <job id="ID00000" namespace="Montage" name="mProjectPP" version="1.0" runtime="13.59">
//!     <uses file="region.hdr" link="input" size="304"/>
//!     <uses file="p_2mass_001.fits" link="output" size="4222080"/>
//!   </job>
//!   ...
//!   <child ref="ID00005"><parent ref="ID00000"/></child>
//! </adag>
//! ```
//!
//! The reader derives activation dependencies from the `uses` file
//! relations (the `child/parent` elements are parsed and *verified*
//! against the file-derived edges but the files are authoritative, per
//! the paper's activation formalism). Job `runtime` attributes are
//! reference runtimes in seconds on a 1000-MIPS machine, matching the
//! WorkflowSim convention.

use crate::builder::WorkflowBuilder;
use crate::model::{Workflow, REFERENCE_MIPS};
use crate::xmllite::{encode_entities, Event, Parser};
use std::collections::HashMap;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Error, Result};

/// Parse a DAX document into a [`Workflow`].
pub fn parse(input: &str) -> Result<Workflow> {
    let events = Parser::parse_all(input)?;
    let mut name = String::from("dax-workflow");
    let mut builder: Option<WorkflowBuilder> = None;
    let mut label_to_id: HashMap<String, ActivationId> = HashMap::new();

    // Current <job> being assembled.
    struct PendingJob {
        id: String,
        namespace: String,
        program: String,
        runtime: f64,
        inputs: Vec<(String, u64)>,
        outputs: Vec<(String, u64)>,
    }
    let mut cur: Option<PendingJob> = None;
    // (child, parents) pairs for cross-checking.
    let mut declared_deps: Vec<(String, String)> = Vec::new();
    let mut cur_child: Option<String> = None;

    for ev in &events {
        match ev {
            Event::Start { name: tag, self_closing, .. } => {
                match local_name(tag) {
                    "adag" => {
                        if let Some(n) = ev.attr("name") {
                            name = n.to_string();
                        }
                        builder = Some(WorkflowBuilder::new(name.clone()));
                    }
                    "job" => {
                        let id = ev
                            .attr("id")
                            .ok_or_else(|| Error::Parse("job without id".into()))?
                            .to_string();
                        let program = ev
                            .attr("name")
                            .ok_or_else(|| Error::Parse("job without name".into()))?
                            .to_string();
                        let runtime: f64 = ev
                            .attr("runtime")
                            .unwrap_or("1.0")
                            .parse()
                            .map_err(|_| Error::Parse(format!("bad runtime on {id}")))?;
                        let job = PendingJob {
                            id,
                            namespace: ev.attr("namespace").unwrap_or("").to_string(),
                            program,
                            runtime,
                            inputs: Vec::new(),
                            outputs: Vec::new(),
                        };
                        if *self_closing {
                            finish_job(
                                &mut builder,
                                &mut label_to_id,
                                job.id,
                                job.namespace,
                                job.program,
                                job.runtime,
                                job.inputs,
                                job.outputs,
                            )?;
                        } else {
                            cur = Some(job);
                        }
                    }
                    "uses" => {
                        let job = cur
                            .as_mut()
                            .ok_or_else(|| Error::Parse("<uses> outside of <job>".into()))?;
                        let file = ev
                            .attr("file")
                            .or_else(|| ev.attr("name"))
                            .ok_or_else(|| Error::Parse("uses without file".into()))?
                            .to_string();
                        let size: u64 = ev.attr("size").unwrap_or("0").parse().unwrap_or(0);
                        match ev.attr("link") {
                            Some("input") => job.inputs.push((file, size)),
                            Some("output") => job.outputs.push((file, size)),
                            other => {
                                return Err(Error::Parse(format!(
                                    "uses with link={other:?} on {}",
                                    job.id
                                )))
                            }
                        }
                    }
                    "child" => {
                        cur_child = Some(
                            ev.attr("ref")
                                .ok_or_else(|| Error::Parse("child without ref".into()))?
                                .to_string(),
                        );
                        if *self_closing {
                            cur_child = None;
                        }
                    }
                    "parent" => {
                        let child = cur_child
                            .clone()
                            .ok_or_else(|| Error::Parse("<parent> outside of <child>".into()))?;
                        let parent = ev
                            .attr("ref")
                            .ok_or_else(|| Error::Parse("parent without ref".into()))?
                            .to_string();
                        declared_deps.push((child, parent));
                    }
                    _ => {}
                }
                if *self_closing {
                    continue;
                }
            }
            Event::End { name: tag } => match local_name(tag) {
                "job" => {
                    if let Some(job) = cur.take() {
                        finish_job(
                            &mut builder,
                            &mut label_to_id,
                            job.id,
                            job.namespace,
                            job.program,
                            job.runtime,
                            job.inputs,
                            job.outputs,
                        )?;
                    }
                }
                "child" => cur_child = None,
                _ => {}
            },
            Event::Text(_) => {}
        }
    }

    let builder = builder.ok_or_else(|| Error::Parse("no <adag> element found".into()))?;
    let wf = builder.build()?;

    // Cross-check: every declared child/parent pair must be an edge in
    // the file-derived DAG (files are the ground truth; a declared
    // dependency with no shared file indicates a corrupt DAX).
    for (child, parent) in &declared_deps {
        let (c, p) = match (label_to_id.get(child), label_to_id.get(parent)) {
            (Some(&c), Some(&p)) => (c, p),
            _ => {
                return Err(Error::Parse(format!(
                    "dependency references unknown job(s) {parent} -> {child}"
                )))
            }
        };
        if !wf.dag.has_edge(p.index(), c.index()) {
            return Err(Error::Parse(format!(
                "declared dependency {parent} -> {child} has no supporting file"
            )));
        }
    }
    Ok(wf)
}

#[allow(clippy::too_many_arguments)] // flat args mirror the DAX job attributes
fn finish_job(
    builder: &mut Option<WorkflowBuilder>,
    label_to_id: &mut HashMap<String, ActivationId>,
    id: String,
    namespace: String,
    program: String,
    runtime: f64,
    inputs: Vec<(String, u64)>,
    outputs: Vec<(String, u64)>,
) -> Result<()> {
    let b = builder.as_mut().ok_or_else(|| Error::Parse("<job> before <adag>".into()))?;
    if label_to_id.contains_key(&id) {
        return Err(Error::Parse(format!("duplicate job id {id}")));
    }
    let act = b.activity(&program, &namespace);
    let input_ids = inputs.iter().map(|(f, s)| b.file(f, *s)).collect();
    let output_ids = outputs.iter().map(|(f, s)| b.file(f, *s)).collect();
    let ac = b.activation(act, &id, runtime * REFERENCE_MIPS, input_ids, output_ids);
    label_to_id.insert(id, ac);
    Ok(())
}

/// Serialize a [`Workflow`] back to DAX XML. Round-trips through
/// [`parse`]: `parse(write(w))` reproduces the same structure.
pub fn write(wf: &Workflow) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&format!(
        "<adag name=\"{}\" jobCount=\"{}\" fileCount=\"{}\">\n",
        encode_entities(&wf.name),
        wf.activations.len(),
        wf.files.len()
    ));
    for (_, ac) in wf.activations.iter() {
        let act = &wf.activities[ac.activity];
        out.push_str(&format!(
            "  <job id=\"{}\" namespace=\"{}\" name=\"{}\" version=\"1.0\" runtime=\"{:.6}\">\n",
            encode_entities(&ac.label),
            encode_entities(&act.namespace),
            encode_entities(&act.name),
            ac.reference_runtime_secs()
        ));
        for &f in &ac.inputs {
            let file = &wf.files[f];
            out.push_str(&format!(
                "    <uses file=\"{}\" link=\"input\" size=\"{}\"/>\n",
                encode_entities(&file.name),
                file.size_bytes
            ));
        }
        for &f in &ac.outputs {
            let file = &wf.files[f];
            out.push_str(&format!(
                "    <uses file=\"{}\" link=\"output\" size=\"{}\"/>\n",
                encode_entities(&file.name),
                file.size_bytes
            ));
        }
        out.push_str("  </job>\n");
    }
    for (child_idx, ac) in wf.activations.iter() {
        let parents: Vec<ActivationId> = wf.parents(child_idx).collect();
        if parents.is_empty() {
            continue;
        }
        out.push_str(&format!("  <child ref=\"{}\">\n", encode_entities(&ac.label)));
        for p in parents {
            out.push_str(&format!(
                "    <parent ref=\"{}\"/>\n",
                encode_entities(&wf.activations[p].label)
            ));
        }
        out.push_str("  </child>\n");
    }
    out.push_str("</adag>\n");
    out
}

fn local_name(tag: &str) -> &str {
    tag.rsplit(':').next().unwrap_or(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<adag name="Mini" jobCount="3" fileCount="4">
  <job id="ID00000" namespace="Montage" name="mProjectPP" version="1.0" runtime="13.59">
    <uses file="in0.fits" link="input" size="4222080"/>
    <uses file="p0.fits" link="output" size="8000000"/>
  </job>
  <job id="ID00001" namespace="Montage" name="mProjectPP" version="1.0" runtime="11.20">
    <uses file="in1.fits" link="input" size="4222080"/>
    <uses file="p1.fits" link="output" size="8000000"/>
  </job>
  <job id="ID00002" namespace="Montage" name="mDiffFit" version="1.0" runtime="10.0">
    <uses file="p0.fits" link="input" size="8000000"/>
    <uses file="p1.fits" link="input" size="8000000"/>
    <uses file="d01.fits" link="output" size="100000"/>
  </job>
  <child ref="ID00002">
    <parent ref="ID00000"/>
    <parent ref="ID00001"/>
  </child>
</adag>
"#;

    #[test]
    fn parses_sample() {
        let wf = parse(SAMPLE).unwrap();
        assert_eq!(wf.name, "Mini");
        assert_eq!(wf.len(), 3);
        assert_eq!(wf.activities.len(), 2);
        assert_eq!(wf.dag.edge_count(), 2);
        let diff = ActivationId::new(2);
        let parents: Vec<_> = wf.parents(diff).collect();
        assert_eq!(parents.len(), 2);
        // runtime 13.59 s → 13590 MI.
        assert!((wf.activations[ActivationId::new(0)].length_mi - 13590.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let wf = parse(SAMPLE).unwrap();
        let xml = write(&wf);
        let wf2 = parse(&xml).unwrap();
        assert_eq!(wf.len(), wf2.len());
        assert_eq!(wf.dag, wf2.dag);
        assert_eq!(wf.activity_histogram(), wf2.activity_histogram());
        for (id, a) in wf.activations.iter() {
            let b = &wf2.activations[id];
            assert_eq!(a.label, b.label);
            assert!((a.length_mi - b.length_mi).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_unknown_dependency_refs() {
        let bad = SAMPLE.replace("ID00000\"/>", "ID99999\"/>");
        // The parent ref inside <child> now points at a job that exists
        // structurally but not by that name.
        let err = parse(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown job"), "{err}");
    }

    #[test]
    fn rejects_duplicate_job_ids() {
        let bad = SAMPLE.replace("ID00001", "ID00000");
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn rejects_dependency_without_file() {
        // Declare a dependency ID00001 -> ID00000 that no file supports.
        let bad = SAMPLE.replace(
            "<child ref=\"ID00002\">",
            "<child ref=\"ID00000\"><parent ref=\"ID00001\"/></child><child ref=\"ID00002\">",
        );
        let err = parse(&bad).unwrap_err();
        assert!(err.to_string().contains("no supporting file"), "{err}");
    }

    #[test]
    fn job_without_runtime_defaults_to_one_second() {
        let doc = r#"<adag name="t"><job id="J1" name="p">
            <uses file="o" link="output" size="1"/></job>
            <job id="J2" name="p"><uses file="o" link="input" size="1"/></job></adag>"#;
        let wf = parse(doc).unwrap();
        assert!((wf.activations[ActivationId::new(0)].length_mi - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn missing_adag_is_an_error() {
        assert!(parse("<job id=\"x\" name=\"y\"/>").is_err());
    }
}
