//! Workflow shape analysis.
//!
//! Scheduling behaviour is driven by workflow *shape* — how wide each
//! level is, how much work sits on the critical path, how heavy the
//! communication edges are. This module computes the standard shape
//! descriptors used in the workflow-scheduling literature, feeding the
//! CLI's `info` command and the scaling experiments.

use crate::model::{Workflow, REFERENCE_MIPS};
use serde::{Deserialize, Serialize};
use wfcommon::ids::Idx;

/// Shape descriptors of one workflow.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Shape {
    /// Number of activations.
    pub activations: usize,
    /// Number of dependency edges.
    pub edges: usize,
    /// Number of levels (pipeline depth).
    pub depth: usize,
    /// Activations per level, in level order.
    pub width_profile: Vec<usize>,
    /// Maximum level width (the peak exploitable parallelism).
    pub max_width: usize,
    /// Serial reference time ÷ critical-path reference time — the
    /// average parallelism available.
    pub parallelism: f64,
    /// Mean out-degree over non-sink activations.
    pub mean_fanout: f64,
    /// Communication-to-computation ratio: total transferred bytes at
    /// 1 Gbps over total reference compute seconds.
    pub ccr: f64,
}

/// Compute the shape of `wf`.
pub fn shape(wf: &Workflow) -> wfcommon::Result<Shape> {
    let levels =
        dag::levels(&wf.dag).map_err(|e| wfcommon::Error::InvalidWorkflow(e.to_string()))?;
    let depth = levels.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut width_profile = vec![0usize; depth];
    for &l in &levels {
        width_profile[l] += 1;
    }
    let max_width = width_profile.iter().copied().max().unwrap_or(0);

    let serial = wf.total_work_mi() / REFERENCE_MIPS;
    let cp = wf.reference_critical_path_secs();
    let parallelism = if cp > 0.0 { serial / cp } else { 0.0 };

    let non_sinks = (0..wf.len()).filter(|&v| wf.dag.out_degree(v) > 0).count();
    let mean_fanout =
        if non_sinks > 0 { wf.dag.edge_count() as f64 / non_sinks as f64 } else { 0.0 };

    let mut bytes: u64 = 0;
    for (u, v) in wf.dag.edges() {
        bytes += wf.transfer_bytes(
            wfcommon::ActivationId::from_index(u),
            wfcommon::ActivationId::from_index(v),
        );
    }
    let transfer_secs = bytes as f64 / 125.0e6;
    let ccr = if serial > 0.0 { transfer_secs / serial } else { 0.0 };

    Ok(Shape {
        activations: wf.len(),
        edges: wf.dag.edge_count(),
        depth,
        width_profile,
        max_width,
        parallelism,
        mean_fanout,
        ccr,
    })
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} activations / {} edges, depth {}, max width {}, \
             parallelism {:.2}, fan-out {:.2}, CCR {:.3}",
            self.activations,
            self.edges,
            self.depth,
            self.max_width,
            self.parallelism,
            self.mean_fanout,
            self.ccr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montage50::montage50;

    #[test]
    fn montage_shape_is_nine_levels() {
        let s = shape(&montage50()).unwrap();
        assert_eq!(s.activations, 50);
        assert_eq!(s.depth, 9);
        assert_eq!(s.width_profile.iter().sum::<usize>(), 50);
        assert!(s.parallelism > 1.5, "Montage is parallel: {}", s.parallelism);
        assert!(s.max_width >= 11, "diff level is the widest");
    }

    #[test]
    fn chain_has_parallelism_one() {
        let mut b = crate::builder::WorkflowBuilder::new("chain");
        let act = b.activity("p", "n");
        let mut prev = b.file("f0", 1);
        b.activation(act, "a0", 1000.0, vec![], vec![prev]);
        for i in 1..5 {
            let next = b.file(&format!("f{i}"), 1);
            b.activation(act, &format!("a{i}"), 1000.0, vec![prev], vec![next]);
            prev = next;
        }
        let wf = b.build().unwrap();
        let s = shape(&wf).unwrap();
        assert_eq!(s.depth, 5);
        assert!((s.parallelism - 1.0).abs() < 1e-9);
        assert_eq!(s.max_width, 1);
        assert!((s.mean_fanout - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ccr_scales_with_file_sizes() {
        let mk = |size: u64| {
            let mut b = crate::builder::WorkflowBuilder::new("x");
            let act = b.activity("p", "n");
            let f = b.file("f", size);
            b.activation(act, "a", 1000.0, vec![], vec![f]);
            b.activation(act, "b", 1000.0, vec![f], vec![]);
            shape(&b.build().unwrap()).unwrap().ccr
        };
        assert!(mk(1_000_000_000) > mk(1_000));
    }

    #[test]
    fn display_is_compact() {
        let s = shape(&montage50()).unwrap();
        let line = s.to_string();
        assert!(line.contains("depth 9"));
        assert!(!line.contains('\n'));
    }
}
