//! Workflow ensembles: merging several workflows into one scheduling
//! problem.
//!
//! Production SWfMS deployments rarely run a single workflow; users
//! submit *ensembles* (e.g. several Montage mosaics over different sky
//! regions) that compete for the same fleet. Merging the DAGs into one
//! composite workflow lets every scheduler in this repository — and
//! ReASSIgN's Q-table in particular — reason across workflow
//! boundaries, because the composite's activations are just rows of a
//! bigger table.
//!
//! Files and job labels are namespaced per member (`w0/`, `w1/`, …) so
//! identically-named files in different members never alias.

use crate::builder::WorkflowBuilder;
use crate::model::Workflow;
use wfcommon::ids::Idx;
use wfcommon::{ActivationId, Error, Result};

/// Maps composite activation ids back to their member workflows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnsembleMap {
    /// For each composite activation: `(member index, activation id
    /// within that member)`.
    pub origin: Vec<(usize, ActivationId)>,
    /// Activation-count offsets per member (member `i`'s activations
    /// occupy `offsets[i] .. offsets[i] + members[i].len()`).
    pub offsets: Vec<usize>,
}

impl EnsembleMap {
    /// The member and local id a composite activation came from.
    pub fn origin_of(&self, composite: ActivationId) -> Option<(usize, ActivationId)> {
        self.origin.get(composite.index()).copied()
    }

    /// The composite id of a member's activation.
    pub fn composite_of(&self, member: usize, local: ActivationId) -> ActivationId {
        ActivationId::from_index(self.offsets[member] + local.index())
    }
}

/// Merge `members` into one composite workflow.
pub fn merge(name: &str, members: &[Workflow]) -> Result<(Workflow, EnsembleMap)> {
    if members.is_empty() {
        return Err(Error::InvalidWorkflow("ensemble needs ≥ 1 member".into()));
    }
    let mut b = WorkflowBuilder::new(name);
    let mut origin = Vec::new();
    let mut offsets = Vec::with_capacity(members.len());
    let mut next = 0usize;
    for (mi, member) in members.iter().enumerate() {
        offsets.push(next);
        for (local_id, ac) in member.activations.iter() {
            let act = &member.activities[ac.activity];
            let activity = b.activity(&act.name, &act.namespace);
            let map_files = |ids: &[wfcommon::FileId], b: &mut WorkflowBuilder| {
                ids.iter()
                    .map(|&f| {
                        let file = &member.files[f];
                        b.file(&format!("w{mi}/{}", file.name), file.size_bytes)
                    })
                    .collect::<Vec<_>>()
            };
            let inputs = map_files(&ac.inputs, &mut b);
            let outputs = map_files(&ac.outputs, &mut b);
            b.activation(activity, &format!("w{mi}/{}", ac.label), ac.length_mi, inputs, outputs);
            origin.push((mi, local_id));
            next += 1;
        }
    }
    let composite = b.build()?;
    Ok((composite, EnsembleMap { origin, offsets }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::montage::{generate, MontageParams};
    use crate::montage50::montage50;

    fn two_montages() -> (Workflow, EnsembleMap) {
        let a = montage50();
        let b = generate(&MontageParams::with_total_activations(30, 7).unwrap()).unwrap();
        merge("Ensemble_2xMontage", &[a, b]).unwrap()
    }

    #[test]
    fn merged_counts_add_up() {
        let (composite, map) = two_montages();
        assert_eq!(composite.len(), 80);
        assert_eq!(map.origin.len(), 80);
        assert_eq!(map.offsets, vec![0, 50]);
        composite.validate().unwrap();
    }

    #[test]
    fn members_stay_independent() {
        // No edge crosses member boundaries.
        let (composite, map) = two_montages();
        for (u, v) in composite.dag.edges() {
            let (mu, _) = map.origin_of(ActivationId::from_index(u)).unwrap();
            let (mv, _) = map.origin_of(ActivationId::from_index(v)).unwrap();
            assert_eq!(mu, mv, "edge {u}->{v} crosses members");
        }
    }

    #[test]
    fn origin_round_trips() {
        let (_, map) = two_montages();
        for member in 0..2 {
            let local = ActivationId::new(3);
            let comp = map.composite_of(member, local);
            assert_eq!(map.origin_of(comp), Some((member, local)));
        }
    }

    #[test]
    fn same_file_names_do_not_alias() {
        // Both members contain "region.hdr"; the composite must keep
        // them distinct (one per member).
        let (composite, _) = two_montages();
        let regions = composite.files.values().filter(|f| f.name.ends_with("region.hdr")).count();
        assert_eq!(regions, 2);
    }

    #[test]
    fn work_is_conserved() {
        let a = montage50();
        let b = generate(&MontageParams::with_total_activations(30, 7).unwrap()).unwrap();
        let total = a.total_work_mi() + b.total_work_mi();
        let (composite, _) = merge("e", &[a, b]).unwrap();
        assert!((composite.total_work_mi() - total).abs() < 1e-6);
    }

    #[test]
    fn empty_ensemble_rejected() {
        assert!(merge("e", &[]).is_err());
    }

    #[test]
    fn single_member_is_isomorphic() {
        let a = montage50();
        let (composite, map) = merge("solo", std::slice::from_ref(&a)).unwrap();
        assert_eq!(composite.len(), a.len());
        assert_eq!(composite.dag, a.dag);
        assert_eq!(map.offsets, vec![0]);
    }
}
