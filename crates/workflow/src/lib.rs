//! Scientific-workflow model, DAX I/O and synthetic generators.
//!
//! This crate implements the formalism of the paper's §I:
//!
//! * a workflow `W(A, Dep)` is a DAG whose nodes are *activities*
//!   (program invocations such as `mProjectPP`) and whose edges are data
//!   dependencies;
//! * each activity fans out into *activations* — the smallest unit of
//!   work that can be processed in parallel, consuming a specific data
//!   chunk;
//! * dependencies between activations are induced by files: `ac_j`
//!   depends on `ac_i` iff some output of `ac_i` is an input of `ac_j`.
//!
//! On top of the model the crate provides:
//!
//! * [`dax`] — a reader/writer for the Pegasus DAX XML dialect used by
//!   the Workflow Generator the paper takes its Montage traces from
//!   (backed by [`xmllite`], a small self-contained XML pull parser);
//! * [`generators`] — trace-calibrated synthetic workflow families
//!   (Montage, CyberShake, Epigenomics, Inspiral, Sipht, random
//!   layered), replacing the proprietary trace archive;
//! * [`montage50`] — the concrete deterministic 50-activation Montage
//!   instance used by every paper experiment.

pub mod analysis;
pub mod builder;
pub mod cache;
pub mod dax;
pub mod dot;
pub mod ensemble;
pub mod generators;
pub mod model;
pub mod montage50;
pub mod xmllite;

pub use builder::WorkflowBuilder;
pub use cache::WorkflowCache;
pub use model::{Activation, Activity, DataFile, Workflow};
