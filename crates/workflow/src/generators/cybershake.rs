//! CyberShake seismic-hazard workflow generator.
//!
//! CyberShake characterizes earthquake hazards: for each *site*, an
//! `ExtractSGT` job cuts strain Green tensors, which fan out into many
//! `SeismogramSynthesis` jobs (one per rupture variation); each
//! synthesis feeds a `PeakValCalc` job; `ZipSeis` and `ZipPSA` collect
//! all seismograms and peak values respectively.
//!
//! ```text
//! ExtractSGT (×s) → SeismogramSynthesis (×s·v) → PeakValCalc (×s·v)
//!                          ↘ ZipSeis (×1)            ↘ ZipPSA (×1)
//! ```

use super::{secs_to_mi, TaskProfile};
use crate::builder::WorkflowBuilder;
use crate::model::Workflow;
use wfcommon::{Result, SeedDerivation};

/// Parameters of a CyberShake instance.
#[derive(Clone, Debug, PartialEq)]
pub struct CyberShakeParams {
    /// Number of sites (ExtractSGT jobs).
    pub sites: usize,
    /// Rupture variations per site (synthesis fan-out).
    pub variations: usize,
    /// Master seed.
    pub seed: u64,
}

impl CyberShakeParams {
    /// Total activations: `s + 2·s·v + 2`.
    pub fn total_activations(&self) -> usize {
        self.sites + 2 * self.sites * self.variations + 2
    }

    /// Shape an instance with approximately `total` activations.
    pub fn with_total_activations(total: usize, seed: u64) -> Result<Self> {
        if total < 7 {
            return Err(wfcommon::Error::Config(format!(
                "CyberShake needs at least 7 activations, got {total}"
            )));
        }
        // s + 2sv + 2 = total with s ≈ max(2, total/12).
        let sites = (total / 12).max(2);
        let variations = ((total - 2 - sites) / (2 * sites)).max(1);
        Ok(Self { sites, variations, seed })
    }
}

/// Generate a CyberShake workflow.
pub fn generate(params: &CyberShakeParams) -> Result<Workflow> {
    if params.sites == 0 || params.variations == 0 {
        return Err(wfcommon::Error::Config("CyberShake needs ≥1 site and ≥1 variation".into()));
    }
    let derivation = SeedDerivation::new(params.seed);
    let mut rt = derivation.rng_for("cybershake-runtimes", 0);

    // Profiles follow the published characterization's cost ordering:
    // extraction is minutes-scale, synthesis tens of seconds, peak-value
    // sub-second, zips tens of seconds.
    let p_extract = TaskProfile::new(110.0, 0.3);
    let p_synth = TaskProfile::new(48.0, 0.5);
    let p_peak = TaskProfile::new(1.0, 0.4);
    let p_zip = TaskProfile::new(30.0, 0.2);

    let mut b = WorkflowBuilder::new(format!("CyberShake_{}", params.total_activations()));
    let a_extract = b.activity("ExtractSGT", "CyberShake");
    let a_synth = b.activity("SeismogramSynthesis", "CyberShake");
    let a_peak = b.activity("PeakValCalc", "CyberShake");
    let a_zipseis = b.activity("ZipSeis", "CyberShake");
    let a_zippsa = b.activity("ZipPSA", "CyberShake");

    let mut job = 0usize;
    let mut label = move || {
        let l = format!("ID{job:05}");
        job += 1;
        l
    };

    let mut seismograms = Vec::new();
    let mut peaks = Vec::new();
    for s in 0..params.sites {
        let sgt_in = b.file(&format!("sgt_{s:03}.bin"), 240_000_000);
        let sgt_out = b.file(&format!("sgt_extracted_{s:03}.bin"), 25_000_000);
        let len = secs_to_mi(p_extract.sample(&mut rt));
        b.activation(a_extract, &label(), len, vec![sgt_in], vec![sgt_out]);
        for v in 0..params.variations {
            let rupture = b.file(&format!("rupture_{s:03}_{v:03}.var"), 120_000);
            let seis = b.file(&format!("seismogram_{s:03}_{v:03}.grm"), 850_000);
            let len = secs_to_mi(p_synth.sample(&mut rt));
            b.activation(a_synth, &label(), len, vec![sgt_out, rupture], vec![seis]);
            seismograms.push(seis);
            let pk = b.file(&format!("peak_{s:03}_{v:03}.bsa"), 1_200);
            let len = secs_to_mi(p_peak.sample(&mut rt));
            b.activation(a_peak, &label(), len, vec![seis], vec![pk]);
            peaks.push(pk);
        }
    }
    let zip1 = b.file("seismograms.zip", 120_000_000);
    let len = secs_to_mi(p_zip.sample(&mut rt));
    b.activation(a_zipseis, &label(), len, seismograms, vec![zip1]);
    let zip2 = b.file("peaks.zip", 2_000_000);
    let len = secs_to_mi(p_zip.sample(&mut rt));
    b.activation(a_zippsa, &label(), len, peaks, vec![zip2]);

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        let p = CyberShakeParams { sites: 3, variations: 4, seed: 1 };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.len(), p.total_activations());
        assert_eq!(wf.len(), 3 + 24 + 2);
        wf.validate().unwrap();
    }

    #[test]
    fn with_total_is_close() {
        let p = CyberShakeParams::with_total_activations(50, 2).unwrap();
        let total = p.total_activations();
        assert!((38..=62).contains(&total), "total {total}");
    }

    #[test]
    fn zips_depend_on_everything() {
        let p = CyberShakeParams { sites: 2, variations: 3, seed: 3 };
        let wf = generate(&p).unwrap();
        let exits = wf.exits();
        assert_eq!(exits.len(), 2);
        for e in exits {
            assert_eq!(wf.dag.in_degree(wfcommon::ids::Idx::index(e)), 6);
        }
    }

    #[test]
    fn extract_jobs_are_entries() {
        let p = CyberShakeParams { sites: 4, variations: 2, seed: 4 };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.entries().len(), 4);
    }

    #[test]
    fn zero_params_rejected() {
        assert!(generate(&CyberShakeParams { sites: 0, variations: 1, seed: 0 }).is_err());
        assert!(generate(&CyberShakeParams { sites: 1, variations: 0, seed: 0 }).is_err());
    }
}
