//! Synthetic workflow generators, calibrated to the published Pegasus
//! workflow characterizations.
//!
//! The paper takes its Montage instances from the Pegasus *Workflow
//! Generator* trace archive. That archive is an external artifact, so
//! this module rebuilds the same five workflow families (Montage,
//! CyberShake, Epigenomics, Inspiral/LIGO, SIPHT) as parameterized
//! generators whose per-activity runtime distributions follow the
//! published profiling means, plus a random layered family for
//! stress-testing. Structure (fan-in/fan-out per stage) matches the
//! canonical shapes used throughout the workflow-scheduling literature.
//!
//! All generators are deterministic given a seed: runtimes are sampled
//! from truncated normal distributions via a seeded ChaCha stream.

pub mod cybershake;
pub mod epigenomics;
pub mod inspiral;
pub mod layered;
pub mod montage;
pub mod sipht;

use rand::Rng as _;
use wfcommon::rng::Rng;

/// Runtime distribution of one activity type: a normal distribution
/// with the given mean (seconds on the 1000-MIPS reference machine)
/// and coefficient of variation, truncated below at 5 % of the mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskProfile {
    /// Mean reference runtime in seconds.
    pub mean_secs: f64,
    /// Coefficient of variation (stddev / mean).
    pub cv: f64,
}

impl TaskProfile {
    /// A profile with the given mean and coefficient of variation.
    pub const fn new(mean_secs: f64, cv: f64) -> Self {
        Self { mean_secs, cv }
    }

    /// Sample one runtime (seconds), truncated to stay positive.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let z = standard_normal(rng);
        let x = self.mean_secs * (1.0 + self.cv * z);
        x.max(self.mean_secs * 0.05)
    }
}

/// One standard-normal sample (Box–Muller; `rand` 0.8 has no normal
/// distribution without the separate `rand_distr` crate, and two lines
/// of Box–Muller beat a dependency).
pub(crate) fn standard_normal(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Convert a sampled reference runtime (seconds) to activation length (MI).
pub(crate) fn secs_to_mi(secs: f64) -> f64 {
    secs * crate::model::REFERENCE_MIPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfcommon::SeedDerivation;

    #[test]
    fn samples_are_positive_and_centered() {
        let p = TaskProfile::new(10.0, 0.3);
        let mut rng = SeedDerivation::new(7).rng_for("gen-test", 0);
        let xs: Vec<f64> = (0..4000).map(|_| p.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean drifted: {mean}");
    }

    #[test]
    fn truncation_floors_at_five_percent() {
        let p = TaskProfile::new(10.0, 10.0); // wildly noisy
        let mut rng = SeedDerivation::new(8).rng_for("gen-test", 1);
        for _ in 0..2000 {
            assert!(p.sample(&mut rng) >= 0.5);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = TaskProfile::new(5.0, 0.2);
        let mut a = SeedDerivation::new(1).rng_for("x", 0);
        let mut b = SeedDerivation::new(1).rng_for("x", 0);
        for _ in 0..100 {
            assert_eq!(p.sample(&mut a), p.sample(&mut b));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SeedDerivation::new(3).rng_for("normal", 0);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
