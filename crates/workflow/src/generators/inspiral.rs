//! LIGO Inspiral gravitational-wave analysis workflow generator.
//!
//! The Inspiral workflow searches detector data for compact-binary
//! coalescence signals. Data chunks flow through template-bank
//! generation and matched filtering, coincidence analysis (`Thinca`),
//! a trigger-bank refinement and a second filtering/coincidence pass:
//!
//! ```text
//! TmpltBank(×k) → Inspiral(×k) → Thinca (per group)
//!              → TrigBank(×k) → Inspiral2(×k) → Thinca2 (per group)
//! ```

use super::{secs_to_mi, TaskProfile};
use crate::builder::WorkflowBuilder;
use crate::model::Workflow;
use wfcommon::{Result, SeedDerivation};

/// Parameters of an Inspiral instance.
#[derive(Clone, Debug, PartialEq)]
pub struct InspiralParams {
    /// Number of data-chunk lanes.
    pub lanes: usize,
    /// Lanes per coincidence (Thinca) group.
    pub group: usize,
    /// Master seed.
    pub seed: u64,
}

impl InspiralParams {
    /// Number of Thinca groups (`ceil(lanes / group)`).
    pub fn groups(&self) -> usize {
        self.lanes.div_ceil(self.group)
    }

    /// Total activations: `4·lanes + 2·groups`.
    pub fn total_activations(&self) -> usize {
        4 * self.lanes + 2 * self.groups()
    }

    /// Shape an instance with approximately `total` activations.
    pub fn with_total_activations(total: usize, seed: u64) -> Result<Self> {
        if total < 6 {
            return Err(wfcommon::Error::Config(format!(
                "Inspiral needs at least 6 activations, got {total}"
            )));
        }
        let group = 4;
        // 4k + 2·ceil(k/4) ≈ 4.5k = total.
        let lanes = ((total as f64) / 4.5).round().max(1.0) as usize;
        Ok(Self { lanes, group, seed })
    }
}

/// Generate an Inspiral workflow.
pub fn generate(params: &InspiralParams) -> Result<Workflow> {
    if params.lanes == 0 || params.group == 0 {
        return Err(wfcommon::Error::Config("Inspiral needs ≥1 lane and group".into()));
    }
    let derivation = SeedDerivation::new(params.seed);
    let mut rt = derivation.rng_for("inspiral-runtimes", 0);

    let p_tmplt = TaskProfile::new(18.0, 0.2);
    let p_inspiral = TaskProfile::new(460.0, 0.3);
    let p_thinca = TaskProfile::new(5.0, 0.3);
    let p_trig = TaskProfile::new(5.0, 0.3);

    let mut b = WorkflowBuilder::new(format!("Inspiral_{}", params.total_activations()));
    let a_tmplt = b.activity("TmpltBank", "Inspiral");
    let a_insp = b.activity("Inspiral", "Inspiral");
    let a_thinca = b.activity("Thinca", "Inspiral");
    let a_trig = b.activity("TrigBank", "Inspiral");
    let a_insp2 = b.activity("Inspiral2", "Inspiral");
    let a_thinca2 = b.activity("Thinca2", "Inspiral");

    let mut job = 0usize;
    let mut label = move || {
        let l = format!("ID{job:05}");
        job += 1;
        l
    };

    // First pass.
    let mut first_triggers = Vec::with_capacity(params.lanes);
    for i in 0..params.lanes {
        let frame = b.file(&format!("frame_{i:03}.gwf"), 310_000_000);
        let bank = b.file(&format!("bank_{i:03}.xml"), 900_000);
        let len = secs_to_mi(p_tmplt.sample(&mut rt));
        b.activation(a_tmplt, &label(), len, vec![frame], vec![bank]);

        let trig = b.file(&format!("insp_{i:03}.xml"), 1_200_000);
        let len = secs_to_mi(p_inspiral.sample(&mut rt));
        b.activation(a_insp, &label(), len, vec![frame, bank], vec![trig]);
        first_triggers.push(trig);
    }

    // Thinca per group, then the second pass inside the same group.
    for (group_id, lane_group) in first_triggers.chunks(params.group).enumerate() {
        let coinc = b.file(&format!("thinca_{group_id:03}.xml"), 400_000);
        let len = secs_to_mi(p_thinca.sample(&mut rt));
        b.activation(a_thinca, &label(), len, lane_group.to_vec(), vec![coinc]);

        let mut second_triggers = Vec::with_capacity(lane_group.len());
        for j in 0..lane_group.len() {
            let tb = b.file(&format!("trigbank_{group_id:03}_{j:02}.xml"), 350_000);
            let len = secs_to_mi(p_trig.sample(&mut rt));
            b.activation(a_trig, &label(), len, vec![coinc], vec![tb]);

            let t2 = b.file(&format!("insp2_{group_id:03}_{j:02}.xml"), 1_100_000);
            let len = secs_to_mi(p_inspiral.sample(&mut rt));
            b.activation(a_insp2, &label(), len, vec![tb], vec![t2]);
            second_triggers.push(t2);
        }
        let final_out = b.file(&format!("thinca2_{group_id:03}.xml"), 380_000);
        let len = secs_to_mi(p_thinca.sample(&mut rt));
        b.activation(a_thinca2, &label(), len, second_triggers, vec![final_out]);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        let p = InspiralParams { lanes: 8, group: 4, seed: 1 };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.len(), 4 * 8 + 2 * 2);
        wf.validate().unwrap();
    }

    #[test]
    fn uneven_groups_handled() {
        let p = InspiralParams { lanes: 5, group: 4, seed: 2 };
        assert_eq!(p.groups(), 2);
        let wf = generate(&p).unwrap();
        assert_eq!(wf.len(), p.total_activations());
    }

    #[test]
    fn six_level_pipeline() {
        let p = InspiralParams { lanes: 4, group: 2, seed: 3 };
        let wf = generate(&p).unwrap();
        let lv = dag::levels(&wf.dag).unwrap();
        assert_eq!(*lv.iter().max().unwrap(), 5);
    }

    #[test]
    fn thinca2_are_exits() {
        let p = InspiralParams { lanes: 6, group: 3, seed: 4 };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.exits().len(), p.groups());
    }

    #[test]
    fn with_total_close() {
        let p = InspiralParams::with_total_activations(50, 0).unwrap();
        let total = p.total_activations();
        assert!((42..=58).contains(&total), "total {total}");
    }
}
