//! Epigenomics (USC genome-mapping) workflow generator.
//!
//! The Epigenomics workflow maps short DNA reads: a `fastQSplit` job
//! splits the read archive into `k` chunks; each chunk flows through a
//! four-stage pipeline (`filterContams → sol2sanger → fastq2bfq →
//! map`); `mapMerge` joins the mapped chunks and `maqIndex`/`pileup`
//! finish sequentially.
//!
//! ```text
//! fastQSplit(×1) → k × [filterContams → sol2sanger → fastq2bfq → map]
//!                → mapMerge(×1) → maqIndex(×1) → pileup(×1)
//! ```

use super::{secs_to_mi, TaskProfile};
use crate::builder::WorkflowBuilder;
use crate::model::Workflow;
use wfcommon::{Result, SeedDerivation};

/// Parameters of an Epigenomics instance.
#[derive(Clone, Debug, PartialEq)]
pub struct EpigenomicsParams {
    /// Number of parallel read-chunk lanes.
    pub lanes: usize,
    /// Master seed.
    pub seed: u64,
}

impl EpigenomicsParams {
    /// Total activations: `4·lanes + 4`.
    pub fn total_activations(&self) -> usize {
        4 * self.lanes + 4
    }

    /// Shape an instance with approximately `total` activations.
    pub fn with_total_activations(total: usize, seed: u64) -> Result<Self> {
        if total < 8 {
            return Err(wfcommon::Error::Config(format!(
                "Epigenomics needs at least 8 activations, got {total}"
            )));
        }
        Ok(Self { lanes: (total - 4) / 4, seed })
    }
}

/// Generate an Epigenomics workflow.
pub fn generate(params: &EpigenomicsParams) -> Result<Workflow> {
    if params.lanes == 0 {
        return Err(wfcommon::Error::Config("Epigenomics needs ≥1 lane".into()));
    }
    let derivation = SeedDerivation::new(params.seed);
    let mut rt = derivation.rng_for("epigenomics-runtimes", 0);

    // `map` dominates; the published characterization has map jobs two
    // orders of magnitude above the format-conversion stages.
    let p_split = TaskProfile::new(35.0, 0.2);
    let p_filter = TaskProfile::new(2.5, 0.3);
    let p_sol = TaskProfile::new(0.5, 0.3);
    let p_bfq = TaskProfile::new(1.5, 0.3);
    let p_map = TaskProfile::new(200.0, 0.4);
    let p_merge = TaskProfile::new(60.0, 0.2);
    let p_index = TaskProfile::new(45.0, 0.2);
    let p_pileup = TaskProfile::new(55.0, 0.2);

    let mut b = WorkflowBuilder::new(format!("Epigenomics_{}", params.total_activations()));
    let a_split = b.activity("fastQSplit", "Epigenomics");
    let a_filter = b.activity("filterContams", "Epigenomics");
    let a_sol = b.activity("sol2sanger", "Epigenomics");
    let a_bfq = b.activity("fastq2bfq", "Epigenomics");
    let a_map = b.activity("map", "Epigenomics");
    let a_merge = b.activity("mapMerge", "Epigenomics");
    let a_index = b.activity("maqIndex", "Epigenomics");
    let a_pileup = b.activity("pileup", "Epigenomics");

    let mut job = 0usize;
    let mut label = move || {
        let l = format!("ID{job:05}");
        job += 1;
        l
    };

    let archive = b.file("reads.fastq", 1_800_000_000);
    let chunks: Vec<_> =
        (0..params.lanes).map(|i| b.file(&format!("chunk_{i:03}.fastq"), 28_000_000)).collect();
    let len = secs_to_mi(p_split.sample(&mut rt));
    b.activation(a_split, &label(), len, vec![archive], chunks.clone());

    let mut mapped = Vec::with_capacity(params.lanes);
    for (i, &chunk) in chunks.iter().enumerate() {
        let filtered = b.file(&format!("filtered_{i:03}.fastq"), 27_000_000);
        let len = secs_to_mi(p_filter.sample(&mut rt));
        b.activation(a_filter, &label(), len, vec![chunk], vec![filtered]);

        let sanger = b.file(&format!("sanger_{i:03}.fastq"), 27_000_000);
        let len = secs_to_mi(p_sol.sample(&mut rt));
        b.activation(a_sol, &label(), len, vec![filtered], vec![sanger]);

        let bfq = b.file(&format!("reads_{i:03}.bfq"), 9_000_000);
        let len = secs_to_mi(p_bfq.sample(&mut rt));
        b.activation(a_bfq, &label(), len, vec![sanger], vec![bfq]);

        let map = b.file(&format!("aligned_{i:03}.map"), 14_000_000);
        let len = secs_to_mi(p_map.sample(&mut rt));
        b.activation(a_map, &label(), len, vec![bfq], vec![map]);
        mapped.push(map);
    }

    let merged = b.file("merged.map", 150_000_000);
    let len = secs_to_mi(p_merge.sample(&mut rt));
    b.activation(a_merge, &label(), len, mapped, vec![merged]);

    let index = b.file("reads.bfa", 900_000_000);
    let len = secs_to_mi(p_index.sample(&mut rt));
    b.activation(a_index, &label(), len, vec![merged], vec![index]);

    let pile = b.file("pileup.txt", 300_000_000);
    let len = secs_to_mi(p_pileup.sample(&mut rt));
    b.activation(a_pileup, &label(), len, vec![index], vec![pile]);

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        let p = EpigenomicsParams { lanes: 5, seed: 1 };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.len(), 24);
        wf.validate().unwrap();
    }

    #[test]
    fn single_entry_single_exit() {
        let p = EpigenomicsParams { lanes: 7, seed: 2 };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.entries().len(), 1);
        assert_eq!(wf.exits().len(), 1);
    }

    #[test]
    fn pipeline_depth_is_seven() {
        let p = EpigenomicsParams { lanes: 3, seed: 3 };
        let wf = generate(&p).unwrap();
        let lv = dag::levels(&wf.dag).unwrap();
        assert_eq!(*lv.iter().max().unwrap(), 7);
    }

    #[test]
    fn with_total_close() {
        let p = EpigenomicsParams::with_total_activations(48, 0).unwrap();
        assert_eq!(p.total_activations(), 48);
    }

    #[test]
    fn zero_lanes_rejected() {
        assert!(generate(&EpigenomicsParams { lanes: 0, seed: 0 }).is_err());
    }
}
