//! Random layered-DAG workflow generator (stress-testing family).
//!
//! Produces an `L`-layer DAG with `W` activations per layer; each
//! non-root activation consumes the outputs of 1..=`max_fanin` random
//! activations from the previous layer. Runtimes are log-normal —
//! heavy-tailed, like real batch traces — which exercises schedulers
//! far from the regular structures of the Pegasus families.

use super::{secs_to_mi, standard_normal};
use crate::builder::WorkflowBuilder;
use crate::model::Workflow;
use rand::seq::SliceRandom as _;
use rand::Rng as _;
use wfcommon::{Result, SeedDerivation};

/// Parameters of a random layered workflow.
#[derive(Clone, Debug, PartialEq)]
pub struct LayeredParams {
    /// Number of layers (≥ 1).
    pub layers: usize,
    /// Activations per layer (≥ 1).
    pub width: usize,
    /// Maximum fan-in from the previous layer (≥ 1).
    pub max_fanin: usize,
    /// Median runtime in reference seconds.
    pub median_secs: f64,
    /// Log-space standard deviation (0 = constant runtimes).
    pub sigma: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for LayeredParams {
    fn default() -> Self {
        Self { layers: 5, width: 10, max_fanin: 3, median_secs: 10.0, sigma: 0.8, seed: 0 }
    }
}

/// Generate a random layered workflow.
pub fn generate(params: &LayeredParams) -> Result<Workflow> {
    if params.layers == 0 || params.width == 0 || params.max_fanin == 0 {
        return Err(wfcommon::Error::Config(
            "layered generator needs layers, width, max_fanin ≥ 1".into(),
        ));
    }
    if params.median_secs <= 0.0 || params.sigma < 0.0 {
        return Err(wfcommon::Error::Config("invalid runtime distribution".into()));
    }
    let derivation = SeedDerivation::new(params.seed);
    let mut rng = derivation.rng_for("layered", 0);

    let mut b = WorkflowBuilder::new(format!("Layered_{}x{}", params.layers, params.width));
    let act = b.activity("task", "Layered");
    let mut prev_outputs: Vec<wfcommon::FileId> = Vec::new();
    let mut job = 0usize;
    for layer in 0..params.layers {
        let mut outputs = Vec::with_capacity(params.width);
        for w in 0..params.width {
            let label = format!("L{layer:02}W{w:03}");
            let runtime = params.median_secs * (params.sigma * standard_normal(&mut rng)).exp();
            let out =
                b.file(&format!("out_{layer:02}_{w:03}.dat"), rng.gen_range(10_000..5_000_000));
            let inputs = if layer == 0 {
                let seed_file = b.file(&format!("seed_{w:03}.dat"), 1_000);
                vec![seed_file]
            } else {
                let fanin = rng.gen_range(1..=params.max_fanin.min(prev_outputs.len()));
                let mut pool = prev_outputs.clone();
                pool.shuffle(&mut rng);
                pool.truncate(fanin);
                pool
            };
            b.activation(act, &label, secs_to_mi(runtime), inputs, vec![out]);
            outputs.push(out);
            job += 1;
        }
        prev_outputs = outputs;
    }
    debug_assert_eq!(job, params.layers * params.width);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_validity() {
        let p = LayeredParams { layers: 4, width: 6, ..Default::default() };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.len(), 24);
        wf.validate().unwrap();
    }

    #[test]
    fn level_structure_matches_layers() {
        let p = LayeredParams { layers: 6, width: 4, seed: 9, ..Default::default() };
        let wf = generate(&p).unwrap();
        let lv = dag::levels(&wf.dag).unwrap();
        assert_eq!(*lv.iter().max().unwrap(), 5);
        assert_eq!(wf.entries().len(), 4);
    }

    #[test]
    fn deterministic() {
        let p = LayeredParams::default();
        assert_eq!(generate(&p).unwrap(), generate(&p).unwrap());
    }

    #[test]
    fn fanin_capped() {
        let p = LayeredParams { layers: 3, width: 8, max_fanin: 2, ..Default::default() };
        let wf = generate(&p).unwrap();
        for v in 0..wf.dag.node_count() {
            assert!(wf.dag.in_degree(v) <= 2);
        }
    }

    #[test]
    fn rejects_degenerate() {
        assert!(generate(&LayeredParams { layers: 0, ..Default::default() }).is_err());
        assert!(generate(&LayeredParams { median_secs: -1.0, ..Default::default() }).is_err());
        assert!(generate(&LayeredParams { sigma: -0.1, ..Default::default() }).is_err());
    }

    #[test]
    fn sigma_zero_gives_constant_runtimes() {
        let p = LayeredParams { sigma: 0.0, median_secs: 7.0, ..Default::default() };
        let wf = generate(&p).unwrap();
        for a in wf.activations.values() {
            assert!((a.reference_runtime_secs() - 7.0).abs() < 1e-9);
        }
    }
}
