//! Montage astronomy-mosaic workflow generator (paper §IV workload).
//!
//! Montage assembles Flexible Image Transport System (FITS) images into
//! a custom mosaic through a nine-stage pipeline:
//!
//! ```text
//! mProjectPP (×k)  — re-project each raw image
//!      ↓ pairs
//! mDiffFit   (×d)  — fit plane differences between overlapping pairs
//!      ↓ all
//! mConcatFit (×1)  — concatenate the fit results
//!      ↓
//! mBgModel   (×1)  — model global background corrections
//!      ↓ fan-out
//! mBackground(×k)  — apply correction to each projected image
//!      ↓ all
//! mImgtbl    (×1)  — build the image metadata table
//!      ↓
//! mAdd       (×1)  — co-add into the mosaic
//!      ↓
//! mShrink    (×1)  — down-sample
//!      ↓
//! mJPEG      (×1)  — render a JPEG preview
//! ```
//!
//! Task-runtime profiles follow the relative cost structure of the
//! published Montage characterizations (projection and background jobs
//! are seconds-scale; `mConcatFit`, `mBgModel`, `mAdd` and `mShrink`
//! dominate the critical path), scaled so a 50-activation instance has
//! a serial reference time of roughly 780 s and a critical path of
//! roughly 280 s — which is what places the paper's Table III
//! makespans in the 250–930 s band for 9–15 VMs.

use super::{secs_to_mi, TaskProfile};
use crate::builder::WorkflowBuilder;
use crate::model::Workflow;
use rand::seq::SliceRandom as _;
use rand::Rng as _;
use wfcommon::{Result, SeedDerivation};

/// Parameters of a Montage instance.
#[derive(Clone, Debug, PartialEq)]
pub struct MontageParams {
    /// Number of raw input images (mProjectPP / mBackground count).
    pub projections: usize,
    /// Number of mDiffFit overlap jobs. Must be ≥ `projections - 1`
    /// (the overlap graph must connect the strip of images) and at most
    /// `projections·(projections-1)/2`.
    pub diffs: usize,
    /// Master seed for runtime sampling and overlap-pair choice.
    pub seed: u64,
    /// Runtime profiles per stage.
    pub profile: MontageProfile,
}

/// Per-stage runtime profiles (reference seconds).
#[derive(Clone, Debug, PartialEq)]
pub struct MontageProfile {
    pub project: TaskProfile,
    pub diff_fit: TaskProfile,
    pub concat_fit: TaskProfile,
    pub bg_model: TaskProfile,
    pub background: TaskProfile,
    pub img_tbl: TaskProfile,
    pub add: TaskProfile,
    pub shrink: TaskProfile,
    pub jpeg: TaskProfile,
}

impl Default for MontageProfile {
    fn default() -> Self {
        Self {
            project: TaskProfile::new(13.0, 0.20),
            diff_fit: TaskProfile::new(11.0, 0.25),
            concat_fit: TaskProfile::new(45.0, 0.10),
            bg_model: TaskProfile::new(55.0, 0.10),
            background: TaskProfile::new(13.0, 0.20),
            img_tbl: TaskProfile::new(8.0, 0.10),
            add: TaskProfile::new(70.0, 0.10),
            shrink: TaskProfile::new(60.0, 0.10),
            jpeg: TaskProfile::new(1.0, 0.20),
        }
    }
}

impl MontageParams {
    /// Parameters for a Montage instance with exactly `total`
    /// activations (`total ≥ 11`). Solves `2k + d + 6 = total` with a
    /// literature-typical overlap density `d ≈ 2k`.
    pub fn with_total_activations(total: usize, seed: u64) -> Result<Self> {
        if total < 11 {
            return Err(wfcommon::Error::Config(format!(
                "Montage needs at least 11 activations, got {total}"
            )));
        }
        // Search k: d = total - 6 - 2k must satisfy k-1 ≤ d ≤ C(k,2).
        // Prefer the k whose d is closest to the literature-typical
        // overlap density d ≈ 2k.
        let mut best: Option<(usize, usize, usize)> = None; // (k, d, |d - 2k|)
        for k in 2..=(total.saturating_sub(7)) / 2 {
            let d = total - 6 - 2 * k;
            let max_d = k * (k - 1) / 2;
            if d < k - 1 || d > max_d {
                continue;
            }
            let dist = d.abs_diff(2 * k);
            if best.is_none_or(|(_, _, bd)| dist < bd) {
                best = Some((k, d, dist));
            }
        }
        let Some((k, d, _)) = best else {
            return Err(wfcommon::Error::Config(format!(
                "cannot shape a Montage with {total} activations"
            )));
        };
        Ok(Self { projections: k, diffs: d, seed, profile: MontageProfile::default() })
    }

    /// Total number of activations this parameter set will generate.
    pub fn total_activations(&self) -> usize {
        2 * self.projections + self.diffs + 6
    }
}

/// Generate a Montage workflow.
pub fn generate(params: &MontageParams) -> Result<Workflow> {
    let k = params.projections;
    let d = params.diffs;
    if k < 2 {
        return Err(wfcommon::Error::Config("Montage needs ≥ 2 projections".into()));
    }
    let max_d = k * (k - 1) / 2;
    if d < k - 1 || d > max_d {
        return Err(wfcommon::Error::Config(format!(
            "diffs={d} outside [{}..{max_d}] for {k} projections",
            k - 1
        )));
    }
    let derivation = SeedDerivation::new(params.seed);
    let mut rt = derivation.rng_for("montage-runtimes", 0);
    let mut pairs_rng = derivation.rng_for("montage-overlaps", 0);
    let p = &params.profile;

    let mut b = WorkflowBuilder::new(format!("Montage_{}", params.total_activations()));
    let a_project = b.activity("mProjectPP", "Montage");
    let a_diff = b.activity("mDiffFit", "Montage");
    let a_concat = b.activity("mConcatFit", "Montage");
    let a_bgmodel = b.activity("mBgModel", "Montage");
    let a_background = b.activity("mBackground", "Montage");
    let a_imgtbl = b.activity("mImgtbl", "Montage");
    let a_add = b.activity("mAdd", "Montage");
    let a_shrink = b.activity("mShrink", "Montage");
    let a_jpeg = b.activity("mJPEG", "Montage");

    let region = b.file("region.hdr", 304);
    let mut job = 0usize;
    let mut label = move || {
        let l = format!("ID{job:05}");
        job += 1;
        l
    };

    // Stage 1: mProjectPP.
    let mut projected = Vec::with_capacity(k);
    for i in 0..k {
        let raw = b.file(&format!("raw_{i:03}.fits"), 4_222_080);
        let out = b.file(&format!("proj_{i:03}.fits"), 8_200_000);
        let len = secs_to_mi(p.project.sample(&mut rt));
        b.activation(a_project, &label(), len, vec![region, raw], vec![out]);
        projected.push(out);
    }

    // Stage 2: mDiffFit over an overlap graph: the strip (i, i+1) plus
    // extra random pairs up to `d`.
    let mut pairs: Vec<(usize, usize)> = (0..k - 1).map(|i| (i, i + 1)).collect();
    let mut extra: Vec<(usize, usize)> =
        (0..k).flat_map(|i| (i + 2..k).map(move |j| (i, j))).collect();
    extra.shuffle(&mut pairs_rng);
    pairs.extend(extra.into_iter().take(d - (k - 1)));
    let mut diff_outs = Vec::with_capacity(d);
    for &(i, j) in &pairs {
        let out = b.file(&format!("diff_{i:03}_{j:03}.fits"), 410_000);
        let len = secs_to_mi(p.diff_fit.sample(&mut rt));
        b.activation(a_diff, &label(), len, vec![projected[i], projected[j]], vec![out]);
        diff_outs.push(out);
    }

    // Stage 3: mConcatFit.
    let fits_tbl = b.file("fits.tbl", 1_300);
    let len = secs_to_mi(p.concat_fit.sample(&mut rt));
    b.activation(a_concat, &label(), len, diff_outs, vec![fits_tbl]);

    // Stage 4: mBgModel.
    let corrections = b.file("corrections.tbl", 1_100);
    let len = secs_to_mi(p.bg_model.sample(&mut rt));
    b.activation(a_bgmodel, &label(), len, vec![fits_tbl], vec![corrections]);

    // Stage 5: mBackground per image.
    let mut corrected = Vec::with_capacity(k);
    for (i, &proj) in projected.iter().enumerate() {
        let out = b.file(&format!("corr_{i:03}.fits"), 8_200_000);
        let len = secs_to_mi(p.background.sample(&mut rt));
        b.activation(a_background, &label(), len, vec![proj, corrections], vec![out]);
        corrected.push(out);
    }

    // Stage 6: mImgtbl.
    let newimages = b.file("newimages.tbl", 100_000);
    let len = secs_to_mi(p.img_tbl.sample(&mut rt));
    b.activation(a_imgtbl, &label(), len, corrected.clone(), vec![newimages]);

    // Stage 7: mAdd.
    let mosaic = b.file("mosaic.fits", 34_000_000);
    let len = secs_to_mi(p.add.sample(&mut rt));
    let mut add_inputs = corrected;
    add_inputs.push(newimages);
    b.activation(a_add, &label(), len, add_inputs, vec![mosaic]);

    // Stage 8: mShrink.
    let shrunken = b.file("shrunken.fits", 4_200_000);
    let len = secs_to_mi(p.shrink.sample(&mut rt));
    b.activation(a_shrink, &label(), len, vec![mosaic], vec![shrunken]);

    // Stage 9: mJPEG.
    let jpg = b.file("mosaic.jpg", 1_100_000);
    let len = secs_to_mi(p.jpeg.sample(&mut rt));
    b.activation(a_jpeg, &label(), len, vec![shrunken], vec![jpg]);

    // Light size jitter keeps file-transfer modelling from being
    // perfectly uniform (matches the archive's per-file variation).
    let _ = pairs_rng.gen::<u64>();

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_task_instance_has_fifty_activations() {
        let params = MontageParams::with_total_activations(50, 2019).unwrap();
        assert_eq!(params.total_activations(), 50);
        let wf = generate(&params).unwrap();
        assert_eq!(wf.len(), 50);
        wf.validate().unwrap();
    }

    #[test]
    fn histogram_matches_shape() {
        let params = MontageParams::with_total_activations(50, 1).unwrap();
        let wf = generate(&params).unwrap();
        let h: std::collections::HashMap<String, usize> =
            wf.activity_histogram().into_iter().collect();
        let k = params.projections;
        assert_eq!(h["mProjectPP"], k);
        assert_eq!(h["mBackground"], k);
        assert_eq!(h["mDiffFit"], params.diffs);
        assert_eq!(h["mConcatFit"], 1);
        assert_eq!(h["mBgModel"], 1);
        assert_eq!(h["mImgtbl"], 1);
        assert_eq!(h["mAdd"], 1);
        assert_eq!(h["mShrink"], 1);
        assert_eq!(h["mJPEG"], 1);
    }

    #[test]
    fn structure_has_nine_levels() {
        let params = MontageParams::with_total_activations(50, 3).unwrap();
        let wf = generate(&params).unwrap();
        let lv = dag::levels(&wf.dag).unwrap();
        assert_eq!(*lv.iter().max().unwrap(), 8, "Montage is a 9-level pipeline");
        // All projections are entries.
        assert_eq!(wf.entries().len(), params.projections);
        // Exactly one exit: mJPEG.
        assert_eq!(wf.exits().len(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = MontageParams::with_total_activations(50, 42).unwrap();
        let a = generate(&p).unwrap();
        let b = generate(&p).unwrap();
        assert_eq!(a, b);
        let mut p2 = p.clone();
        p2.seed = 43;
        let c = generate(&p2).unwrap();
        assert_ne!(a.lengths_mi(), c.lengths_mi());
    }

    #[test]
    fn serial_and_critical_path_are_in_calibrated_band() {
        let p = MontageParams::with_total_activations(50, 2019).unwrap();
        let wf = generate(&p).unwrap();
        let serial = wf.total_work_mi() / crate::model::REFERENCE_MIPS;
        let cp = wf.reference_critical_path_secs();
        assert!((550.0..1100.0).contains(&serial), "serial {serial}");
        assert!((200.0..400.0).contains(&cp), "critical path {cp}");
    }

    #[test]
    fn rejects_unshapable_sizes() {
        assert!(MontageParams::with_total_activations(10, 0).is_err());
        let bad =
            MontageParams { projections: 1, diffs: 0, seed: 0, profile: MontageProfile::default() };
        assert!(generate(&bad).is_err());
    }

    #[test]
    fn every_total_from_17_up_is_shapable() {
        for total in 17..=400 {
            let p = MontageParams::with_total_activations(total, 0)
                .unwrap_or_else(|e| panic!("total {total}: {e}"));
            assert_eq!(p.total_activations(), total, "total {total}");
        }
        // Known-unshapable small sizes are rejected cleanly.
        assert!(MontageParams::with_total_activations(16, 0).is_err());
    }

    #[test]
    fn scales_to_large_instances() {
        let p = MontageParams::with_total_activations(500, 7).unwrap();
        let wf = generate(&p).unwrap();
        assert_eq!(wf.len(), 500);
        wf.validate().unwrap();
    }

    #[test]
    fn diff_bounds_checked() {
        let p = MontageParams {
            projections: 4,
            diffs: 100, // > C(4,2)=6
            seed: 0,
            profile: MontageProfile::default(),
        };
        assert!(generate(&p).is_err());
    }
}
