//! SIPHT (sRNA identification) bioinformatics workflow generator.
//!
//! SIPHT searches bacterial genomes for small untranslated RNAs. The
//! canonical shape has a wide independent front (many `Patser` motif
//! scans plus several BLAST variants per genome partition), a
//! `Patser_Concate` join, an `SRNA` core prediction that everything
//! funnels into, a second BLAST wave over the candidates, and an
//! `SRNA_Annotate` final join:
//!
//! ```text
//! Patser(×p) → Patser_Concate(×1) ─┐
//! Blast(×b) ───────────────────────┼→ SRNA(×1) → Blast_Candidate(×b) → SRNA_Annotate(×1)
//! Transterm, FindTerm, RNAMotif ───┘
//! ```

use super::{secs_to_mi, TaskProfile};
use crate::builder::WorkflowBuilder;
use crate::model::Workflow;
use wfcommon::{Result, SeedDerivation};

/// Parameters of a SIPHT instance.
#[derive(Clone, Debug, PartialEq)]
pub struct SiphtParams {
    /// Number of Patser motif-scan jobs.
    pub patser: usize,
    /// Number of BLAST jobs in each of the two waves.
    pub blast: usize,
    /// Master seed.
    pub seed: u64,
}

impl SiphtParams {
    /// Total activations: `patser + 1 + 3 + blast + 1 + blast + 1`.
    pub fn total_activations(&self) -> usize {
        self.patser + 2 * self.blast + 6
    }

    /// Shape an instance with approximately `total` activations.
    pub fn with_total_activations(total: usize, seed: u64) -> Result<Self> {
        if total < 10 {
            return Err(wfcommon::Error::Config(format!(
                "SIPHT needs at least 10 activations, got {total}"
            )));
        }
        let patser = ((total - 6) / 2).max(1);
        let blast = ((total - 6 - patser) / 2).max(1);
        Ok(Self { patser, blast, seed })
    }
}

/// Generate a SIPHT workflow.
pub fn generate(params: &SiphtParams) -> Result<Workflow> {
    if params.patser == 0 || params.blast == 0 {
        return Err(wfcommon::Error::Config("SIPHT needs ≥1 patser and blast".into()));
    }
    let derivation = SeedDerivation::new(params.seed);
    let mut rt = derivation.rng_for("sipht-runtimes", 0);

    let p_patser = TaskProfile::new(1.0, 0.3);
    let p_concate = TaskProfile::new(0.5, 0.2);
    let p_scan = TaskProfile::new(30.0, 0.4); // Transterm / FindTerm / RNAMotif
    let p_blast = TaskProfile::new(140.0, 0.4);
    let p_srna = TaskProfile::new(25.0, 0.2);
    let p_annotate = TaskProfile::new(2.0, 0.2);

    let mut b = WorkflowBuilder::new(format!("Sipht_{}", params.total_activations()));
    let a_patser = b.activity("Patser", "Sipht");
    let a_concate = b.activity("Patser_Concate", "Sipht");
    let a_transterm = b.activity("Transterm", "Sipht");
    let a_findterm = b.activity("FindTerm", "Sipht");
    let a_rnamotif = b.activity("RNAMotif", "Sipht");
    let a_blast = b.activity("Blast", "Sipht");
    let a_srna = b.activity("SRNA", "Sipht");
    let a_blast2 = b.activity("Blast_Candidate", "Sipht");
    let a_annotate = b.activity("SRNA_Annotate", "Sipht");

    let mut job = 0usize;
    let mut label = move || {
        let l = format!("ID{job:05}");
        job += 1;
        l
    };

    let genome = b.file("genome.fna", 5_200_000);

    // Patser front.
    let mut patser_outs = Vec::with_capacity(params.patser);
    for i in 0..params.patser {
        let matrix = b.file(&format!("matrix_{i:03}.mat"), 2_000);
        let out = b.file(&format!("patser_{i:03}.out"), 7_000);
        let len = secs_to_mi(p_patser.sample(&mut rt));
        b.activation(a_patser, &label(), len, vec![genome, matrix], vec![out]);
        patser_outs.push(out);
    }
    let concat = b.file("patser_concat.out", 60_000);
    let len = secs_to_mi(p_concate.sample(&mut rt));
    b.activation(a_concate, &label(), len, patser_outs, vec![concat]);

    // Terminator / motif scans.
    let transterm = b.file("transterm.out", 33_000);
    let len = secs_to_mi(p_scan.sample(&mut rt));
    b.activation(a_transterm, &label(), len, vec![genome], vec![transterm]);
    let findterm = b.file("findterm.out", 1_300_000);
    let len = secs_to_mi(p_scan.sample(&mut rt));
    b.activation(a_findterm, &label(), len, vec![genome], vec![findterm]);
    let rnamotif = b.file("rnamotif.out", 48_000);
    let len = secs_to_mi(p_scan.sample(&mut rt));
    b.activation(a_rnamotif, &label(), len, vec![genome], vec![rnamotif]);

    // First BLAST wave.
    let mut blast_outs = Vec::with_capacity(params.blast);
    for i in 0..params.blast {
        let db = b.file(&format!("blastdb_{i:03}.db"), 900_000);
        let out = b.file(&format!("blast_{i:03}.out"), 550_000);
        let len = secs_to_mi(p_blast.sample(&mut rt));
        b.activation(a_blast, &label(), len, vec![genome, db], vec![out]);
        blast_outs.push(out);
    }

    // SRNA core join.
    let candidates = b.file("srna_candidates.fa", 120_000);
    let len = secs_to_mi(p_srna.sample(&mut rt));
    let mut srna_inputs = vec![concat, transterm, findterm, rnamotif];
    srna_inputs.extend(blast_outs);
    b.activation(a_srna, &label(), len, srna_inputs, vec![candidates]);

    // Candidate BLAST wave.
    let mut cand_outs = Vec::with_capacity(params.blast);
    for i in 0..params.blast {
        let out = b.file(&format!("blast_cand_{i:03}.out"), 320_000);
        let len = secs_to_mi(p_blast.sample(&mut rt));
        b.activation(a_blast2, &label(), len, vec![candidates], vec![out]);
        cand_outs.push(out);
    }

    // Final annotation join.
    let annotated = b.file("srna_annotated.gff", 90_000);
    let len = secs_to_mi(p_annotate.sample(&mut rt));
    b.activation(a_annotate, &label(), len, cand_outs, vec![annotated]);

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        let p = SiphtParams { patser: 10, blast: 5, seed: 1 };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.len(), 10 + 10 + 6);
        wf.validate().unwrap();
    }

    #[test]
    fn srna_is_the_funnel() {
        let p = SiphtParams { patser: 4, blast: 3, seed: 2 };
        let wf = generate(&p).unwrap();
        // SRNA consumes: concat + 3 scans + 3 blasts = in-degree 7.
        let srna_idx = 4 + 1 + 3 + 3; // patser, concate, scans, blasts precede
        assert_eq!(wf.dag.in_degree(srna_idx), 7);
    }

    #[test]
    fn annotate_is_single_exit() {
        let p = SiphtParams { patser: 3, blast: 2, seed: 3 };
        let wf = generate(&p).unwrap();
        assert_eq!(wf.exits().len(), 1);
    }

    #[test]
    fn with_total_close() {
        let p = SiphtParams::with_total_activations(60, 0).unwrap();
        let total = p.total_activations();
        assert!((50..=70).contains(&total), "total {total}");
    }
}
