//! Property tests over every generator family: structural invariants
//! and DAX round-trips.

use proptest::prelude::*;
use workflow::generators::*;
use workflow::Workflow;

/// Any family, any valid size, any seed.
fn arb_family_workflow() -> impl Strategy<Value = Workflow> {
    (0usize..6, 20usize..120, 0u64..300).prop_map(|(family, size, seed)| match family {
        0 => montage::generate(
            &montage::MontageParams::with_total_activations(size.max(11), seed).unwrap(),
        )
        .unwrap(),
        1 => cybershake::generate(
            &cybershake::CyberShakeParams::with_total_activations(size.max(7), seed).unwrap(),
        )
        .unwrap(),
        2 => epigenomics::generate(
            &epigenomics::EpigenomicsParams::with_total_activations(size.max(8), seed).unwrap(),
        )
        .unwrap(),
        3 => inspiral::generate(
            &inspiral::InspiralParams::with_total_activations(size.max(6), seed).unwrap(),
        )
        .unwrap(),
        4 => sipht::generate(
            &sipht::SiphtParams::with_total_activations(size.max(10), seed).unwrap(),
        )
        .unwrap(),
        _ => layered::generate(&layered::LayeredParams {
            layers: (size / 15).max(2),
            width: 8,
            max_fanin: 3,
            median_secs: 10.0,
            sigma: 0.5,
            seed,
        })
        .unwrap(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Every generated workflow validates, is acyclic, has positive
    /// work, and every non-entry activation is reachable from an entry.
    #[test]
    fn families_generate_valid_workflows(wf in arb_family_workflow()) {
        wf.validate().unwrap();
        prop_assert!(wf.total_work_mi() > 0.0);
        prop_assert!(dag::topo_sort(&wf.dag).is_ok());
        prop_assert!(!wf.entries().is_empty());
        prop_assert!(!wf.exits().is_empty());

        // Critical path ≤ serial time; both positive.
        let serial = wf.total_work_mi() / workflow::model::REFERENCE_MIPS;
        let cp = wf.reference_critical_path_secs();
        prop_assert!(cp > 0.0 && cp <= serial + 1e-9);

        // Shape analysis works and is internally consistent.
        let shape = workflow::analysis::shape(&wf).unwrap();
        prop_assert_eq!(shape.activations, wf.len());
        prop_assert_eq!(shape.width_profile.iter().sum::<usize>(), wf.len());
        prop_assert!(shape.parallelism >= 1.0 - 1e-9);
    }

    /// DAX round-trips preserve structure and lengths for all families.
    #[test]
    fn families_round_trip_through_dax(wf in arb_family_workflow()) {
        let xml = workflow::dax::write(&wf);
        let back = workflow::dax::parse(&xml).unwrap();
        prop_assert_eq!(wf.len(), back.len());
        prop_assert_eq!(&wf.dag, &back.dag);
        prop_assert_eq!(wf.files.len(), back.files.len());
        for (id, a) in wf.activations.iter() {
            prop_assert!((a.length_mi - back.activations[id].length_mi).abs() < 1e-3);
        }
    }

    /// Serde round-trips the full workflow value.
    #[test]
    fn workflows_serde_round_trip(wf in arb_family_workflow()) {
        let json = serde_json::to_string(&wf).unwrap();
        let back: Workflow = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(wf, back);
    }
}
