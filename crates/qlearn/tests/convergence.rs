//! Convergence and policy-quality tests on synthetic MDPs — the
//! evidence that the tabular learners actually learn.

use proptest::prelude::*;
use qlearn::learner::{QLearner, QLearnerConfig};
use qlearn::mdp::{train, Mdp};
use qlearn::policy::EpsilonGreedy;
use wfcommon::rng::Rng;
use wfcommon::SeedDerivation;

/// A randomly generated layered MDP: `depth` decision steps, `width`
/// states per layer, 3 actions; each action moves to a random next
/// state with a reward drawn once at construction. One terminal layer.
struct RandomMdp {
    depth: usize,
    width: usize,
    /// transition[state][action] = (next_state, reward)
    transition: Vec<Vec<(usize, f64)>>,
}

impl RandomMdp {
    fn new(depth: usize, width: usize, seed: u64) -> Self {
        use rand::Rng as _;
        let mut rng = SeedDerivation::new(seed).rng_for("random-mdp", 0);
        let states = depth * width + 1; // +1 shared terminal
        let mut transition = vec![Vec::new(); states];
        for layer in 0..depth {
            for w in 0..width {
                let s = layer * width + w;
                for _a in 0..3 {
                    let next = if layer + 1 == depth {
                        depth * width
                    } else {
                        (layer + 1) * width + rng.gen_range(0..width)
                    };
                    let reward = rng.gen_range(-1.0..1.0);
                    transition[s].push((next, reward));
                }
            }
        }
        Self { depth, width, transition }
    }

    fn terminal(&self) -> usize {
        self.depth * self.width
    }
}

impl Mdp for RandomMdp {
    fn num_states(&self) -> usize {
        self.depth * self.width + 1
    }
    fn num_actions(&self) -> usize {
        3
    }
    fn initial_state(&self, _rng: &mut Rng) -> usize {
        0
    }
    fn available_actions(&self, _s: usize) -> Vec<usize> {
        vec![0, 1, 2]
    }
    fn transition(&self, s: usize, a: usize, _rng: &mut Rng) -> (usize, f64) {
        self.transition[s][a]
    }
    fn is_terminal(&self, s: usize) -> bool {
        s == self.terminal()
    }
}

/// Exact value iteration for the deterministic layered MDP.
fn optimal_value(mdp: &RandomMdp, gamma: f64) -> f64 {
    let mut v = vec![0.0f64; mdp.num_states()];
    for layer in (0..mdp.depth).rev() {
        for w in 0..mdp.width {
            let s = layer * mdp.width + w;
            v[s] = mdp.transition[s]
                .iter()
                .map(|&(next, r)| r + gamma * v[next])
                .fold(f64::NEG_INFINITY, f64::max);
        }
    }
    v[0]
}

/// Greedy rollout return from state 0 under the learned table.
fn rollout(mdp: &RandomMdp, table: &qlearn::DenseQTable, gamma: f64) -> f64 {
    let mut s = 0usize;
    let mut ret = 0.0;
    let mut disc = 1.0;
    while !mdp.is_terminal(s) {
        let a = table.argmax_over(s, Some(&[0, 1, 2])).unwrap();
        let (next, r) = mdp.transition[s][a];
        ret += disc * r;
        disc *= gamma;
        s = next;
    }
    ret
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On deterministic layered MDPs, sufficient Q-learning recovers a
    /// near-optimal greedy policy.
    #[test]
    fn q_learning_approaches_value_iteration(
        depth in 2usize..5,
        width in 2usize..5,
        seed in 0u64..200,
    ) {
        let mdp = RandomMdp::new(depth, width, seed);
        let gamma = 0.95;
        let learner = QLearner::new(QLearnerConfig {
            alpha: 0.3,
            gamma,
            discount_power_t: false,
        }).unwrap();
        let mut policy = EpsilonGreedy::new(0.3);
        let mut rng = SeedDerivation::new(seed ^ 0xABCD).rng_for("train", 0);
        let table = train(&mdp, &learner, &mut policy, 1500, 100, &mut rng);

        let opt = optimal_value(&mdp, gamma);
        let got = rollout(&mdp, &table, gamma);
        prop_assert!(
            got >= opt - 0.15,
            "greedy return {got:.3} vs optimal {opt:.3}"
        );
    }
}

#[test]
fn longer_training_does_not_degrade_policy() {
    let mdp = RandomMdp::new(4, 4, 42);
    let gamma = 0.9;
    let learner =
        QLearner::new(QLearnerConfig { alpha: 0.2, gamma, discount_power_t: false }).unwrap();
    let opt = optimal_value(&mdp, gamma);
    let mut prev_gap = f64::INFINITY;
    for episodes in [50u32, 500, 5000] {
        let mut policy = EpsilonGreedy::new(0.3);
        let mut rng = SeedDerivation::new(7).rng_for("train", episodes as u64);
        let table = train(&mdp, &learner, &mut policy, episodes, 100, &mut rng);
        let gap = opt - rollout(&mdp, &table, gamma);
        assert!(
            gap <= prev_gap + 0.25,
            "{episodes} episodes regressed: gap {gap:.3} vs prev {prev_gap:.3}"
        );
        prev_gap = prev_gap.min(gap);
    }
    assert!(prev_gap < 0.1, "final gap {prev_gap:.3}");
}
