//! Generic tabular reinforcement learning (paper §II).
//!
//! Implements the classical model-free, off-policy Q-learning algorithm
//! the paper builds ReASSIgN on: Q-tables ([`qtable`]), action-selection
//! policies ([`policy`]), parameter schedules ([`schedule`]), the update
//! rule ([`learner`]) and persistence ([`persist`]).
//!
//! One faithful quirk: the paper's Algorithm 1 *inverts* the usual
//! ε-greedy convention — "with probability ε choose a as the **best**
//! action … otherwise choose a at random". Under that reading ε = 0.1
//! explores 90 % of the time, which is consistent with the paper's
//! results (the best configurations all use ε = 0.1 *and* benefit from
//! long histories). [`policy::PaperEpsilonGreedy`] implements the
//! paper's convention; [`policy::EpsilonGreedy`] implements the
//! textbook one. ReASSIgN uses the paper's.

pub mod double_q;
pub mod inspect;
pub mod learner;
pub mod mdp;
pub mod persist;
pub mod policy;
pub mod qtable;
pub mod sarsa;
pub mod schedule;

pub use double_q::DoubleQLearner;
pub use learner::{QLearner, QLearnerConfig, Transition};
pub use policy::{EpsilonGreedy, Greedy, PaperEpsilonGreedy, Policy, Softmax, Ucb1};
pub use qtable::DenseQTable;
pub use sarsa::ExpectedSarsa;
pub use schedule::Schedule;
